#!/usr/bin/env bash
# Regenerates every table/figure of the paper and collects the outputs under
# results/. Runtimes are sized for a small machine; pass larger --scale
# values on bigger hardware (see DESIGN.md section 2).
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
    local name="$1"; shift
    echo "=== $name ==="
    ( "$@" 2>&1 | tee "results/$name.txt" ) || echo "(failed: $name)"
    echo
}

run table1 cargo run --release -p tt-bench --bin table1
run fig2a  cargo run --release -p tt-bench --bin fig2 -- --model 1
run fig2b  cargo run --release -p tt-bench --bin fig2 -- --model 2
run fig3   cargo run --release -p tt-bench --bin fig3
run fig4   cargo run --release -p tt-bench --bin fig4
run fig7   cargo run --release -p tt-bench --bin fig7
run headline cargo run --release -p tt-bench --bin headline
run fig6   cargo run --release -p tt-bench --bin fig6
run fig5   cargo run --release -p tt-bench --bin fig5 -- --max-level "${FIG5_MAX_LEVEL:-2}"

echo "All outputs in results/."
