//! Offline drop-in shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the three external dev-facing crates it depends on (`rand`, `proptest`,
//! `criterion`) as minimal API-compatible reimplementations (DESIGN.md §6).
//! This crate covers exactly what the TT reproduction calls:
//!
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding,
//! * [`rngs::StdRng`] — the standard generator (here xoshiro256++ seeded via
//!   SplitMix64 instead of ChaCha12; every use in the workspace is either
//!   statistical or compares two runs of the *same* stream, so the concrete
//!   generator does not matter),
//! * [`Rng::gen`] for `f64`/`u64`/`u32`/`usize`/`bool` draws.
//!
//! The generator is deliberately *not* cryptographic.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface (the subset of `rand::Rng` we need).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their range).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range<T: SampleUniform>(&mut self, low: T, high: T) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self, low, high)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution (`rand::distributions::Standard`).
pub trait SampleStandard {
    /// Draws one standard sample from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample uniform in `[low, high)`.
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for usize {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: usize, high: usize) -> usize {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        let span = (high - low) as u64;
        // Modulo bias is negligible for the small spans this workspace draws.
        low + (rng.next_u64() % span) as usize
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        low + (high - low) * f64::sample_standard(rng)
    }
}

/// Deterministic construction from a 64-bit seed (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion (Blackman–Vigna). Deterministic, fast, passes BigCrush;
    /// not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let k = rng.gen_range(3usize, 9usize);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = rngs::StdRng::seed_from_u64(5);
        // Reborrow through a nested &mut, as the workspace's helpers do.
        let r = &mut rng;
        let x = draw(r);
        let y = draw(r);
        assert_ne!(x, y);
    }
}
