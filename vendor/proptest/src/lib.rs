//! Offline drop-in shim for the subset of [proptest] this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal API-compatible reimplementation (DESIGN.md §6). Differences from
//! real proptest, deliberately accepted for this repo's test suites:
//!
//! * **No shrinking** — a failing case panics with the case index; cases are
//!   deterministic per test name, so failures reproduce exactly.
//! * **Deterministic seeding** — the RNG seed is derived from the test
//!   function's name (FNV-1a), not from an entropy source. Of the `PROPTEST`
//!   environment variables only `PROPTEST_CASES` is honored: like upstream it
//!   overrides the per-test case count, so CI's nightly profile can raise
//!   coverage (`PROPTEST_CASES=256`) without touching the sources.
//! * Only the strategies the workspace uses exist: integer/float ranges,
//!   `any::<T>()`, tuples, `collection::vec`, `prop_flat_map`, `prop_filter`.
//!
//! `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one property run.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at the scales these tests draw.
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Effective case count for one property run: the `PROPTEST_CASES`
/// environment variable when set and parseable (matching upstream proptest's
/// env-override behavior), else the configured count.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// FNV-1a hash of a test name, used as its deterministic seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator of test-case values (no shrinking in this shim).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy from each sampled value (`proptest::Strategy::prop_flat_map`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects samples failing `pred`, retrying with fresh draws
    /// (`proptest::Strategy::prop_filter`).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps each sampled value (`proptest::Strategy::prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let v = self.inner.sample(rng);
        (self.f)(v).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        // analyze::allow(panic_surface): test-harness shim mirroring upstream proptest, whose filter exhaustion aborts the test by design
        panic!(
            "prop_filter rejected 10000 consecutive samples ({})",
            self.reason
        );
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategies!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Full-domain strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain uniform generator.
pub trait Arbitrary {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/Inf, which
        // no test in this workspace wants from `any::<f64>()`.
        let mag = rng.unit_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Lengths acceptable to [`vec`]: a fixed `usize` or a range.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    impl IntoLen for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with element strategy `s` and length `len`.
    pub fn vec<S: Strategy, L: IntoLen>(s: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element: s, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Property assertion — plain `assert!` in this shim (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion — plain `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion — plain `assert_ne!` in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block macro: each contained `fn name(bindings in
/// strategies) { body }` becomes a `#[test]` running `cases` deterministic
/// samples of the bound strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(__cfg.cases);
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                let mut __rng =
                    $crate::TestRng::new(__seed ^ (__case as u64).wrapping_mul(0x2545F4914F6CDD1D));
                $(let $binding = $crate::Strategy::sample(&{ $strat }, &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn proptest_cases_env_overrides() {
        // Unset / garbage values fall back to the configured count.
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(crate::resolve_cases(64), 64);
        std::env::set_var("PROPTEST_CASES", "3");
        assert_eq!(crate::resolve_cases(64), 3);
        std::env::set_var("PROPTEST_CASES", "junk");
        assert_eq!(crate::resolve_cases(64), 64);
        std::env::remove_var("PROPTEST_CASES");
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = crate::Strategy::sample(&(1u32..=6), &mut rng);
            assert!((1..=6).contains(&w));
            let x = crate::Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn filter_and_flat_map_compose() {
        let strat = (2usize..6)
            .prop_flat_map(|n| crate::collection::vec(0usize..10, n))
            .prop_filter("nonempty", |v| !v.is_empty());
        let mut rng = crate::TestRng::new(2);
        for _ in 0..50 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, tuple patterns, trailing bodies.
        #[test]
        fn macro_binds_strategies(a in 1usize..5, (b, c) in (0u32..3, 0.0f64..1.0)) {
            prop_assert!((1..5).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn second_fn_in_block_also_runs(n in 2usize..=4) {
            prop_assert_ne!(n, 1);
        }
    }
}
