//! Offline drop-in shim for the subset of [Criterion] this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal API-compatible reimplementation (DESIGN.md §6): `criterion_group!`/
//! `criterion_main!`, benchmark groups, `bench_function`/`bench_with_input`,
//! and `Bencher::iter`. Measurement is a fixed warmup followed by a bounded
//! timed loop, reporting mean and min wall-clock time per iteration — no
//! statistical analysis, HTML reports, or baselines.
//!
//! Two environment variables hook the shim into `cargo xtask bench-check`:
//!
//! * `CRITERION_FILTER` — run only benchmarks whose id contains the given
//!   substring (the shim's stand-in for real criterion's CLI filter);
//! * `CRITERION_JSON` — append one JSON line per benchmark
//!   (`{"id":…,"mean_ns":…,"min_ns":…,"samples":…}`) to the given file, so
//!   the regression gate can parse results without scraping stdout.
//!
//! [Criterion]: https://docs.rs/criterion

#![allow(clippy::print_stdout)] // user-facing output is this target's job
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-exported opaque-value helper (`criterion::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 20, &mut f);
        self
    }
}

/// A named set of benchmarks (shim of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: std::fmt::Display,
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<F, T: ?Sized, I>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
        I: std::fmt::Display,
    {
        run_one(&id.to_string(), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate in this shim; kept for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter (shim of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier showing only the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing harness handed to benchmark closures (shim of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    /// Samples to collect in the timed phase.
    target_samples: usize,
    /// Hard wall-clock budget so slow benches stay bounded.
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, collecting up to the configured number of samples
    /// within the time budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: one untimed call (pages in code and data).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if let Ok(filter) = std::env::var("CRITERION_FILTER") {
        if !filter.is_empty() && !id.contains(&filter) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
        budget: Duration::from_secs(3),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples: Bencher::iter never called)");
        return;
    }
    let n = b.samples.len() as u32;
    let total: Duration = b.samples.iter().sum();
    let mean = total / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<40} mean {:>12?}  min {:>12?}  ({n} samples)",
        mean, min
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            emit_json(&path, id, mean, min, n);
        }
    }
}

/// Appends one machine-readable result line to `path`. Failures are reported
/// on stderr but never fail the bench run itself.
fn emit_json(path: &str, id: &str, mean: Duration, min: Duration, samples: u32) {
    use std::io::Write;
    let line = format!(
        "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
        json_escape(id),
        mean.as_nanos(),
        min.as_nanos(),
        samples
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion shim: could not append to CRITERION_JSON={path}: {e}");
    }
}

/// Minimal JSON string escaping for benchmark ids.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Declares the benchmark entry list (shim of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` (shim of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain/id-256"), "plain/id-256");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn filter_and_json_hooks() {
        // One test owns both env vars (they are process-global); assertions
        // are containment-based so concurrent benches can only add lines.
        let path =
            std::env::temp_dir().join(format!("criterion-shim-{}.jsonl", std::process::id()));
        let path_str = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path_str);
        std::env::set_var("CRITERION_FILTER", "hook_kept");
        run_one("hook_kept/one", 2, &mut |b| b.iter(|| black_box(1 + 1)));
        run_one("hook_dropped/one", 2, &mut |b| b.iter(|| black_box(2 + 2)));
        std::env::remove_var("CRITERION_FILTER");
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let _ = std::fs::remove_file(&path);
        assert!(
            text.contains("\"id\":\"hook_kept/one\"") && text.contains("\"mean_ns\":"),
            "JSON line missing: {text:?}"
        );
        assert!(
            !text.contains("hook_dropped"),
            "filtered bench still emitted: {text:?}"
        );
    }
}
