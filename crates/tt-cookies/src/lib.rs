//! The parametrized-PDE "cookies problem" (§II-C of the paper).
//!
//! ```text
//!   −div(σ(x, y; ρ) ∇u) = f   in Ω = (−1,1)²,    u = 0 on ∂Ω,
//!   σ = 1 + Σ_i ρ_i · χ_{D_i},   D_i disjoint disks ("cookies"),
//!   ρ_i log-spaced in [0.1, 10].
//! ```
//!
//! The all-parameter-combinations problem is the `(p+1)`-way tensor system
//! `G·U = F` with the operator in Kronecker-sum (operator-rank `p+1`) form
//!
//! ```text
//!   G = A₀ ⊗ I ⊗ … ⊗ I + Σ_i A_i ⊗ I ⊗ … ⊗ diag(ρ_i) ⊗ … ⊗ I,
//! ```
//!
//! which TT-GMRES solves with TT-Rounding controlling the Krylov ranks.
//!
//! **Substitution note (see DESIGN.md):** the paper discretizes with P1
//! finite elements via FreeFem++; we use a 5-point finite-difference flux
//! discretization on a uniform grid. The coefficient is affine in ρ, so the
//! discrete operator splits into exactly the same `A₀ + Σ ρ_i A_i`
//! structure with SPD blocks — which is all the solver and rounding
//! algorithms ever interact with. Grid sizes are chosen to match the
//! paper's mode-1 dimensions (2855/11141/24981 → 53²/105²/158²; Fig. 6's
//! 1781 → 42²).

#![forbid(unsafe_code)]

pub mod fem;

use tt_core::{TtCore, TtTensor};
use tt_linalg::Matrix;
use tt_solvers::{KroneckerSumOperator, MeanPreconditioner, ModeFactor};
use tt_sparse::{CooBuilder, CsrMatrix};

/// A disk inclusion ("cookie").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disk {
    /// Center x ∈ (−1, 1).
    pub cx: f64,
    /// Center y ∈ (−1, 1).
    pub cy: f64,
    /// Radius.
    pub radius: f64,
}

impl Disk {
    /// Whether `(x, y)` lies inside the disk.
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        self.contains(x, y)
    }

    fn contains(&self, x: f64, y: f64) -> bool {
        let dx = x - self.cx;
        let dy = y - self.cy;
        dx * dx + dy * dy <= self.radius * self.radius
    }
}

/// The assembled cookies problem.
#[derive(Debug, Clone)]
pub struct CookiesProblem {
    /// Interior grid points per side; the spatial dimension is `grid²`.
    pub grid: usize,
    /// The disks.
    pub disks: Vec<Disk>,
    /// Parameter samples per disk (each log-spaced in `[0.1, 10]`).
    pub samples: Vec<Vec<f64>>,
    /// Background stiffness block `A₀` (σ ≡ 1).
    pub a0: CsrMatrix,
    /// Inclusion stiffness blocks `A_i` (indicator-coefficient flux terms).
    pub a_disks: Vec<CsrMatrix>,
}

/// The paper's default 2×2 cookie arrangement.
pub fn default_disks() -> Vec<Disk> {
    [(-0.5, -0.5), (0.5, -0.5), (-0.5, 0.5), (0.5, 0.5)]
        .into_iter()
        .map(|(cx, cy)| Disk {
            cx,
            cy,
            radius: 0.3,
        })
        .collect()
}

/// Log-spaced samples in `[0.1, 10]` (the paper's parameter distribution).
pub fn log_spaced_samples(count: usize) -> Vec<f64> {
    assert!(count >= 1);
    if count == 1 {
        return vec![1.0];
    }
    (0..count)
        .map(|k| 10f64.powf(-1.0 + 2.0 * k as f64 / (count - 1) as f64))
        .collect()
}

impl CookiesProblem {
    /// Assembles the problem on an interior `grid × grid` uniform grid of
    /// `(−1,1)²` with the default 4 disks, `samples_per_disk` log-spaced
    /// parameter values each.
    pub fn new(grid: usize, samples_per_disk: usize) -> Self {
        Self::with_disks(grid, default_disks(), samples_per_disk)
    }

    /// Assembles with a custom disk arrangement.
    pub fn with_disks(grid: usize, disks: Vec<Disk>, samples_per_disk: usize) -> Self {
        assert!(grid >= 2);
        let samples = vec![log_spaced_samples(samples_per_disk); disks.len()];
        let a0 = assemble_flux(grid, |_, _| 1.0);
        let a_disks = disks
            .iter()
            .map(|d| assemble_flux(grid, |x, y| if d.contains(x, y) { 1.0 } else { 0.0 }))
            .collect();
        CookiesProblem {
            grid,
            disks,
            samples,
            a0,
            a_disks,
        }
    }

    /// Assembles with P1 finite elements on the structured triangulation
    /// ([`fem::assemble_p1`]) instead of the finite-difference flux stencil —
    /// the discretization family the paper actually used. The operator keeps
    /// the identical `A₀ + Σ ρ_i A_i` affine structure (note the FEM blocks
    /// carry no `1/h²` scaling; the solve is the same up to rhs scaling).
    pub fn with_disks_fem(grid: usize, disks: Vec<Disk>, samples_per_disk: usize) -> Self {
        assert!(grid >= 2);
        let samples = vec![log_spaced_samples(samples_per_disk); disks.len()];
        let a0 = fem::assemble_p1(grid, |_, _| 1.0);
        let a_disks = disks
            .iter()
            .map(|d| fem::assemble_p1(grid, |x, y| if d.contains(x, y) { 1.0 } else { 0.0 }))
            .collect();
        CookiesProblem {
            grid,
            disks,
            samples,
            a0,
            a_disks,
        }
    }

    /// The three spatial refinements of §V-D1 (`level` 0, 1, 2): grids
    /// matching the paper's FEM dimensions 2855, 11141, 24981.
    pub fn paper_discretization(level: usize, samples_per_disk: usize) -> Self {
        let grid = match level {
            0 => 53,  // 2809 ≈ 2855
            1 => 105, // 11025 ≈ 11141
            2 => 158, // 24964 ≈ 24981
            // analyze::allow(panic_surface): constructor precondition on a compile-time-small enum of paper levels; a Result would only move the abort to every caller
            _ => panic!("the paper uses 3 refinement levels"),
        };
        Self::new(grid, samples_per_disk)
    }

    /// The Fig. 6 configuration: `I₁ = 1781 → 42² = 1764`, `I_k = 10`.
    pub fn fig6_configuration() -> Self {
        Self::new(42, 10)
    }

    /// Number of parameters `p`.
    pub fn num_params(&self) -> usize {
        self.disks.len()
    }

    /// Spatial dimension `I₁ = grid²`.
    pub fn spatial_dim(&self) -> usize {
        self.grid * self.grid
    }

    /// Tensor mode dimensions `[I₁, I₂, …, I_{p+1}]`.
    pub fn dims(&self) -> Vec<usize> {
        std::iter::once(self.spatial_dim())
            .chain(self.samples.iter().map(|s| s.len()))
            .collect()
    }

    /// The Kronecker-sum operator `G` (operator rank `p+1`).
    pub fn operator(&self) -> KroneckerSumOperator {
        let p = self.num_params();
        let mut op = KroneckerSumOperator::new();
        // Term 0: A₀ ⊗ I ⊗ … ⊗ I.
        let mut t0 = vec![ModeFactor::Sparse(self.a0.clone())];
        t0.extend((0..p).map(|_| ModeFactor::Identity));
        op.add_term(t0);
        // Term i: A_i ⊗ I … diag(ρ_i) … I.
        for i in 0..p {
            let mut t = vec![ModeFactor::Sparse(self.a_disks[i].clone())];
            for k in 0..p {
                if k == i {
                    t.push(ModeFactor::Diagonal(self.samples[i].clone()));
                } else {
                    t.push(ModeFactor::Identity);
                }
            }
            op.add_term(t);
        }
        op
    }

    /// The right-hand side `F = f ⊗ 1 ⊗ … ⊗ 1` with `f ≡ 1` (rank one).
    pub fn rhs(&self) -> TtTensor {
        let n1 = self.spatial_dim();
        let mut cores = Vec::with_capacity(self.num_params() + 1);
        cores.push(TtCore::from_v(Matrix::from_fn(n1, 1, |_, _| 1.0), 1, n1, 1));
        for s in &self.samples {
            let d = s.len();
            cores.push(TtCore::from_v(Matrix::from_fn(d, 1, |_, _| 1.0), 1, d, 1));
        }
        TtTensor::new(cores)
    }

    /// The mean spatial operator `Ḡ = A₀ + Σ mean(ρ_i)·A_i` (SPD, banded).
    pub fn mean_matrix(&self) -> CsrMatrix {
        let mut m = self.a0.clone();
        for (i, a) in self.a_disks.iter().enumerate() {
            let mean = self.samples[i].iter().sum::<f64>() / self.samples[i].len() as f64;
            m = m.add_scaled(mean, a);
        }
        m
    }

    /// The rank-one mean preconditioner [26].
    pub fn mean_preconditioner(&self) -> MeanPreconditioner {
        MeanPreconditioner::new(&self.mean_matrix())
    }

    /// Directly assembles the spatial operator for one fixed parameter
    /// value vector (test oracle for the affine decomposition).
    pub fn assemble_for(&self, rho: &[f64]) -> CsrMatrix {
        assert_eq!(rho.len(), self.disks.len());
        let disks = self.disks.clone();
        let rho = rho.to_vec();
        assemble_flux(self.grid, move |x, y| {
            let mut sigma = 1.0;
            for (d, r) in disks.iter().zip(&rho) {
                if d.contains(x, y) {
                    sigma += r;
                }
            }
            sigma
        })
    }
}

/// 5-point flux discretization of `−div(σ∇·)` on the interior grid of
/// `(−1,1)²` with homogeneous Dirichlet boundary, σ evaluated at face
/// midpoints. Scaled by `1/h²`.
pub fn assemble_flux_public(grid: usize, sigma: impl Fn(f64, f64) -> f64) -> CsrMatrix {
    assemble_flux(grid, sigma)
}

fn assemble_flux(grid: usize, sigma: impl Fn(f64, f64) -> f64) -> CsrMatrix {
    let n = grid * grid;
    let h = 2.0 / (grid as f64 + 1.0);
    let coord = |k: usize| -1.0 + (k as f64 + 1.0) * h;
    let inv_h2 = 1.0 / (h * h);
    let mut b = CooBuilder::new(n, n);
    for gy in 0..grid {
        for gx in 0..grid {
            let row = gy * grid + gx;
            let (x, y) = (coord(gx), coord(gy));
            // Face conductivities at the four mid-edges.
            let se = sigma(x + 0.5 * h, y);
            let sw = sigma(x - 0.5 * h, y);
            let sn = sigma(x, y + 0.5 * h);
            let ss = sigma(x, y - 0.5 * h);
            let mut diag = 0.0;
            // East neighbor.
            diag += se;
            if gx + 1 < grid {
                b.add(row, row + 1, -se * inv_h2);
            }
            // West.
            diag += sw;
            if gx > 0 {
                b.add(row, row - 1, -sw * inv_h2);
            }
            // North.
            diag += sn;
            if gy + 1 < grid {
                b.add(row, row + grid, -sn * inv_h2);
            }
            // South.
            diag += ss;
            if gy > 0 {
                b.add(row, row - grid, -ss * inv_h2);
            }
            b.add(row, row, diag * inv_h2);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_solvers::{
        tt_gmres, GmresOptions, IdentityPreconditioner, Preconditioner, RoundingMethod,
    };

    #[test]
    fn geometry_is_sane() {
        let disks = default_disks();
        assert_eq!(disks.len(), 4);
        // Disjoint and inside the domain.
        for (i, a) in disks.iter().enumerate() {
            assert!(a.cx.abs() + a.radius < 1.0 && a.cy.abs() + a.radius < 1.0);
            for b in &disks[i + 1..] {
                let d = ((a.cx - b.cx).powi(2) + (a.cy - b.cy).powi(2)).sqrt();
                assert!(d > a.radius + b.radius, "disks overlap");
            }
        }
    }

    #[test]
    fn samples_are_log_spaced_in_range() {
        let s = log_spaced_samples(5);
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!((s[4] - 10.0).abs() < 1e-10);
        // geometric progression
        for w in s.windows(2) {
            assert!((w[1] / w[0] - s[1] / s[0]).abs() < 1e-10);
        }
    }

    #[test]
    fn stiffness_blocks_are_symmetric() {
        let p = CookiesProblem::new(12, 3);
        assert!(p.a0.is_symmetric(1e-12));
        for a in &p.a_disks {
            assert!(a.is_symmetric(1e-12));
        }
        assert!(p.mean_matrix().is_symmetric(1e-12));
    }

    #[test]
    fn affine_decomposition_matches_direct_assembly() {
        let p = CookiesProblem::new(14, 3);
        let rho = [0.7, 2.0, 0.1, 5.0];
        let direct = p.assemble_for(&rho);
        let mut affine = p.a0.clone();
        for (i, a) in p.a_disks.iter().enumerate() {
            affine = affine.add_scaled(rho[i], a);
        }
        assert_eq!(direct.to_dense().shape(), affine.to_dense().shape());
        let diff = direct.to_dense().max_abs_diff(&affine.to_dense());
        assert!(diff < 1e-9, "affine split mismatch {diff}");
    }

    #[test]
    fn mean_matrix_is_spd() {
        let p = CookiesProblem::new(10, 3);
        assert!(tt_sparse::BandedCholesky::factor(&p.mean_matrix()).is_some());
        assert!(tt_sparse::BandedCholesky::factor(&p.a0).is_some());
    }

    #[test]
    fn dims_and_operator_rank() {
        let p = CookiesProblem::new(8, 5);
        assert_eq!(p.dims(), vec![64, 5, 5, 5, 5]);
        assert_eq!(p.operator().operator_rank(), 5);
        assert_eq!(p.rhs().ranks(), vec![1; 6]);
    }

    #[test]
    fn paper_discretizations_match_dimensions() {
        assert_eq!(
            CookiesProblem::paper_discretization(0, 2).spatial_dim(),
            2809
        );
        assert_eq!(
            CookiesProblem::paper_discretization(1, 2).spatial_dim(),
            11025
        );
        assert_eq!(
            CookiesProblem::paper_discretization(2, 2).spatial_dim(),
            24964
        );
        assert_eq!(CookiesProblem::fig6_configuration().spatial_dim(), 1764);
    }

    #[test]
    fn small_cookies_gmres_solves() {
        // Tiny instance: 2 disks on an 8×8 grid, 3 samples each.
        let disks = vec![
            Disk {
                cx: -0.4,
                cy: 0.0,
                radius: 0.25,
            },
            Disk {
                cx: 0.4,
                cy: 0.0,
                radius: 0.25,
            },
        ];
        let p = CookiesProblem::with_disks(8, disks, 3);
        let op = p.operator();
        let f = p.rhs();
        let pre = p.mean_preconditioner();
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 40,
            rounding: RoundingMethod::GramLrl,
            true_residual: tt_solvers::gmres::TrueResidualMode::Dense,
            stagnation_window: 5,
            restart: None,
        };
        let (u, trace) = tt_gmres(&op, &pre, &f, &opts);
        assert!(trace.converged, "{trace:?}");
        assert!(trace.true_relative_residual < 1e-5);
        // Solution is nontrivial and positive-ish in the interior (diffusion
        // with positive forcing): check a few entries of the dense solution
        // at the first parameter combination.
        let ud = u.to_dense();
        let mid = ud.at(&[p.spatial_dim() / 2, 0, 0]);
        assert!(mid > 0.0, "interior solution should be positive, got {mid}");
    }

    #[test]
    fn preconditioner_reduces_iterations_on_cookies() {
        let p = CookiesProblem::new(8, 3);
        let op = p.operator();
        let f = p.rhs();
        let opts = GmresOptions {
            tolerance: 1e-4,
            // Keep the unpreconditioned run short: without the mean
            // preconditioner the Krylov ranks (and iteration cost) grow
            // steadily, and all this test asserts is "preconditioned needs
            // fewer iterations".
            max_iters: 18,
            rounding: RoundingMethod::GramLrl,
            true_residual: tt_solvers::gmres::TrueResidualMode::Off,
            stagnation_window: 5,
            restart: None,
        };
        let pre = p.mean_preconditioner();
        let (_, with_pre) = tt_gmres(&op, &pre, &f, &opts);
        let (_, without) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
        assert!(with_pre.converged);
        assert!(
            with_pre.iterations.len() < without.iterations.len().max(2),
            "precond {} vs plain {}",
            with_pre.iterations.len(),
            without.iterations.len()
        );
        // The preconditioner leaves ranks unchanged per application.
        let x = f.clone();
        assert_eq!(pre.apply(&x).ranks(), x.ranks());
    }

    #[test]
    fn fem_discretization_solves_through_gmres() {
        // The full pipeline on the paper's actual discretization family:
        // P1 FEM blocks, mean preconditioner, TT-GMRES.
        let disks = default_disks();
        let p = CookiesProblem::with_disks_fem(10, disks, 3);
        assert!(p.a0.is_symmetric(1e-12));
        let op = p.operator();
        let f = p.rhs();
        let pre = p.mean_preconditioner();
        let opts = GmresOptions {
            tolerance: 1e-5,
            max_iters: 40,
            rounding: RoundingMethod::GramLrl,
            true_residual: tt_solvers::gmres::TrueResidualMode::Dense,
            stagnation_window: 5,
            restart: None,
        };
        let (_, trace) = tt_gmres(&op, &pre, &f, &opts);
        assert!(trace.converged, "{:?}", trace.computed_relative_residual);
        assert!(trace.true_relative_residual < 1e-3);
    }
}
