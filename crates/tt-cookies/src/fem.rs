//! P1 finite-element assembly on a structured triangulation.
//!
//! The paper discretizes the cookies problem with P1 finite elements
//! (FreeFem++). This module provides a genuine P1 FEM assembly — linear
//! elements on the structured triangulation obtained by splitting each grid
//! cell of (−1,1)² along its SW–NE diagonal — as an alternative to the
//! finite-difference flux discretization in the crate root.
//!
//! Two properties make it a strong cross-check:
//!
//! * with σ ≡ 1, the assembled P1 stiffness matrix on this mesh is
//!   *identical* to the 5-point finite-difference Laplacian (a classical
//!   identity, verified in the tests), and
//! * with σ piecewise-constant per triangle (evaluated at centroids), the
//!   operator keeps the exact affine structure `A₀ + Σ ρ_i A_i` the TT
//!   solver machinery needs, while weighting the disk indicators the way a
//!   FEM quadrature would.

use tt_sparse::{CooBuilder, CsrMatrix};

/// Assembles the P1 stiffness matrix of `−div(σ∇·)` with homogeneous
/// Dirichlet boundary on the structured triangulation of (−1,1)² with
/// `grid × grid` interior nodes (matching the FDM node layout: node
/// `(gx, gy)` at `(−1 + (gx+1)h, −1 + (gy+1)h)`, `h = 2/(grid+1)`).
///
/// `sigma` is evaluated at triangle centroids (piecewise-constant
/// coefficient — the standard P0 quadrature for P1 elements).
pub fn assemble_p1(grid: usize, sigma: impl Fn(f64, f64) -> f64) -> CsrMatrix {
    assert!(grid >= 1);
    let n = grid * grid;
    let h = 2.0 / (grid as f64 + 1.0);
    // Global node lattice (including boundary): (grid+2) × (grid+2); node
    // (ix, iy) at (−1 + ix·h, −1 + iy·h). Interior nodes have
    // 1 ≤ ix, iy ≤ grid and unknown index (ix−1) + (iy−1)·grid.
    let coord = |k: usize| -1.0 + k as f64 * h;
    let interior = |ix: usize, iy: usize| -> Option<usize> {
        if ix >= 1 && ix <= grid && iy >= 1 && iy <= grid {
            Some((ix - 1) + (iy - 1) * grid)
        } else {
            None
        }
    };

    let mut b = CooBuilder::new(n, n);
    // Loop over cells; each cell (cx, cy) has corners
    //   sw = (cx, cy), se = (cx+1, cy), nw = (cx, cy+1), ne = (cx+1, cy+1)
    // and splits into triangles (sw, se, nw) and (se, ne, nw).
    for cy in 0..grid + 1 {
        for cx in 0..grid + 1 {
            let corners = [
                (cx, cy),         // sw
                (cx + 1, cy),     // se
                (cx, cy + 1),     // nw
                (cx + 1, cy + 1), // ne
            ];
            for tri in [[0usize, 1, 2], [1, 3, 2]] {
                let p: Vec<(f64, f64)> = tri
                    .iter()
                    .map(|&c| (coord(corners[c].0), coord(corners[c].1)))
                    .collect();
                let centroid = (
                    (p[0].0 + p[1].0 + p[2].0) / 3.0,
                    (p[0].1 + p[1].1 + p[2].1) / 3.0,
                );
                let s = sigma(centroid.0, centroid.1);
                // analyze::allow(float_cmp): the indicator coefficient is piecewise-constant and returns literal 0.0 outside its disk — exact sparsity skip
                if s == 0.0 {
                    continue;
                }
                let k_local = p1_local_stiffness(&p, s);
                for (a, &ca) in tri.iter().enumerate() {
                    let Some(ia) = interior(corners[ca].0, corners[ca].1) else {
                        continue;
                    };
                    for (bb, &cb) in tri.iter().enumerate() {
                        if let Some(ib) = interior(corners[cb].0, corners[cb].1) {
                            b.add(ia, ib, k_local[a][bb]);
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Local P1 stiffness of a triangle with vertices `p` and constant
/// coefficient `s`: `K_ij = s · A · (∇λ_i · ∇λ_j)`.
fn p1_local_stiffness(p: &[(f64, f64)], s: f64) -> [[f64; 3]; 3] {
    let (x0, y0) = p[0];
    let (x1, y1) = p[1];
    let (x2, y2) = p[2];
    let det = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0);
    let area = det.abs() / 2.0;
    // ∇λ_i = (b_i, c_i) / det with the standard cyclic formulas.
    let grads = [
        ((y1 - y2) / det, (x2 - x1) / det),
        ((y2 - y0) / det, (x0 - x2) / det),
        ((y0 - y1) / det, (x1 - x0) / det),
    ];
    let mut k = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            k[i][j] = s * area * (grads[i].0 * grads[j].0 + grads[i].1 * grads[j].1);
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fdm_laplacian(grid: usize) -> CsrMatrix {
        // σ ≡ 1 flux discretization, scaled like the FEM matrix: the FEM
        // stiffness has no 1/h² (it integrates ∇·∇), so multiply by h².
        let a = crate::assemble_flux_public(grid, |_, _| 1.0);
        let h = 2.0 / (grid as f64 + 1.0);
        let mut b = CooBuilder::new(a.rows(), a.cols());
        for i in 0..a.rows() {
            for (j, v) in a.row(i) {
                b.add(i, j, v * h * h);
            }
        }
        b.build()
    }

    #[test]
    fn p1_laplacian_equals_five_point_stencil() {
        // The classical identity: P1 on the diagonal-split structured mesh
        // assembles exactly the 5-point Laplacian (σ ≡ 1).
        for grid in [3usize, 6, 10] {
            let fem = assemble_p1(grid, |_, _| 1.0);
            let fdm = fdm_laplacian(grid);
            assert_eq!(fem.rows(), fdm.rows());
            let diff = fem.to_dense().max_abs_diff(&fdm.to_dense());
            assert!(
                diff < 1e-12,
                "grid {grid}: FEM vs FDM Laplacian diff {diff}"
            );
        }
    }

    #[test]
    fn p1_stiffness_is_symmetric_spd() {
        let disks = crate::default_disks();
        let a = assemble_p1(12, |x, y| {
            1.0 + if disks[0].contains_point(x, y) {
                3.0
            } else {
                0.0
            }
        });
        assert!(a.is_symmetric(1e-12));
        assert!(
            tt_sparse::BandedCholesky::factor(&a).is_some(),
            "must be SPD"
        );
    }

    #[test]
    fn local_stiffness_rows_sum_to_zero() {
        // Constants are in the P1 kernel: K · 1 = 0.
        let p = [(0.0, 0.0), (0.3, 0.1), (0.05, 0.4)];
        let k = p1_local_stiffness(&p, 2.5);
        for row in k {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-14, "row sum {s}");
        }
    }

    #[test]
    fn affine_decomposition_holds_for_fem() {
        // A(ρ) = A₀ + Σ ρ_i A_i with indicator blocks, exactly as for FDM.
        let disks = crate::default_disks();
        let grid = 10;
        let a0 = assemble_p1(grid, |_, _| 1.0);
        let blocks: Vec<CsrMatrix> = disks
            .iter()
            .map(|d| assemble_p1(grid, |x, y| if d.contains_point(x, y) { 1.0 } else { 0.0 }))
            .collect();
        let rho = [0.3, 2.0, 0.5, 7.0];
        let direct = assemble_p1(grid, |x, y| {
            let mut s = 1.0;
            for (d, r) in disks.iter().zip(&rho) {
                if d.contains_point(x, y) {
                    s += r;
                }
            }
            s
        });
        let mut affine = a0.clone();
        for (i, bl) in blocks.iter().enumerate() {
            affine = affine.add_scaled(rho[i], bl);
        }
        let diff = direct.to_dense().max_abs_diff(&affine.to_dense());
        assert!(diff < 1e-10, "affine split mismatch {diff}");
    }

    #[test]
    fn fem_and_fdm_solutions_converge_together() {
        // Solve −Δu = 1 with both discretizations; the discrete solutions
        // (same node layout) must agree to discretization accuracy.
        let grid = 24;
        let fem = assemble_p1(grid, |_, _| 1.0);
        let fdm = crate::assemble_flux_public(grid, |_, _| 1.0);
        let h = 2.0 / (grid as f64 + 1.0);
        let n = grid * grid;
        // FEM rhs: load ∫f·φ ≈ f·h² per node; FDM rhs: f per node (A has
        // the 1/h² scaling built in).
        let mut x_fem = vec![h * h; n];
        tt_sparse::BandedCholesky::factor(&fem)
            .unwrap()
            .solve_in_place(&mut x_fem);
        let mut x_fdm = vec![1.0; n];
        tt_sparse::BandedCholesky::factor(&fdm)
            .unwrap()
            .solve_in_place(&mut x_fdm);
        let max_u = x_fdm.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for i in 0..n {
            assert!(
                (x_fem[i] - x_fdm[i]).abs() < 1e-10 * (1.0 + max_u),
                "node {i}: fem {} vs fdm {}",
                x_fem[i],
                x_fdm[i]
            );
        }
    }
}
