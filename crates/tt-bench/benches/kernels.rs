//! Criterion microbenchmarks for the kernels behind the paper's claims:
//!
//! * `matprod`   — §III: QR-based (Alg. 3) vs Gram-SVD (Alg. 4) truncation
//!   of a tall-skinny product `A·Bᵀ` (Gram must win — it is the paper's
//!   core flop argument).
//! * `rounding`  — the four TT-Rounding variants on a model-4-shaped tensor
//!   (sequence variants fastest, QR slowest).
//! * `gram_sweep` — §IV-B ablation: non-symmetric (`gemm`+`gemm`) vs
//!   symmetric (`chol`+`trmm`+`syrk`) structured Gram sweeps.
//! * `gemm`      — the raw multiply kernel at rounding-typical shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tt_core::matprod::{mat_rounding_qr, tsvd_abt_gram};
use tt_core::round::{gram_sweep_right, gram_sweep_right_symmetric};
use tt_core::synthetic::generate_redundant;
use tt_core::RoundingOptions;
use tt_linalg::{gemm, Matrix, Trans};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(42)
}

fn bench_matprod(c: &mut Criterion) {
    let mut group = c.benchmark_group("matprod");
    let mut r = rng();
    for &(m, k, rank) in &[(2000usize, 2000usize, 20usize), (8000, 4000, 40)] {
        let a = Matrix::gaussian(m, rank, &mut r);
        let b = Matrix::gaussian(k, rank, &mut r);
        let thr = 1e-8;
        group.bench_with_input(
            BenchmarkId::new("alg3_qr", format!("{m}x{k}r{rank}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| mat_rounding_qr(a, b, thr)),
        );
        group.bench_with_input(
            BenchmarkId::new("alg4_gram", format!("{m}x{k}r{rank}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| tsvd_abt_gram(a, b, thr)),
        );
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounding");
    group.sample_size(10);
    let mut r = rng();
    // Model-4 shape at 1/8 scale: 1250 x 20 x ... x 20, ranks 20 -> 10.
    let mut dims = vec![20usize; 10];
    dims[0] = 1250;
    let x = generate_redundant(&dims, 10, &mut r);
    let opts = RoundingOptions::with_tolerance(1e-8);
    let comm = tt_comm::SelfComm::new();
    for v in tt_bench::ALL_VARIANTS {
        group.bench_function(v.name(), |bench| {
            bench.iter(|| v.round(&comm, &x, &opts));
        });
    }
    // The paper's future-work hypothesis: randomized rounding reduces
    // arithmetic further while staying gemm-based.
    let rand_opts = tt_core::round::RandomizedOptions::uniform(10, dims.len());
    group.bench_function("Randomized", |bench| {
        bench.iter(|| tt_core::round::round_randomized(&x, &rand_opts));
    });
    group.finish();
}

fn bench_gram_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_sweep");
    let mut r = rng();
    let mut dims = vec![20usize; 10];
    dims[0] = 2500;
    let x = generate_redundant(&dims, 10, &mut r);
    let comm = tt_comm::SelfComm::new();
    group.bench_function("nonsymmetric_gemm", |bench| {
        bench.iter(|| gram_sweep_right(&comm, &x));
    });
    group.bench_function("symmetric_chol_trmm_syrk", |bench| {
        bench.iter(|| gram_sweep_right_symmetric(&comm, &x));
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut r = rng();
    // Rounding-typical shapes: tall-skinny contractions and small updates.
    let a = Matrix::gaussian(20 * 2000, 20, &mut r);
    group.bench_function("syrk_40000x20", |bench| {
        bench.iter(|| tt_linalg::syrk(&a, 1.0));
    });
    let b = Matrix::gaussian(20, 20, &mut r);
    group.bench_function("vxw_40000x20x20", |bench| {
        bench.iter(|| gemm(Trans::No, &a, Trans::No, &b, 1.0));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matprod,
    bench_rounding,
    bench_gram_sweep,
    bench_gemm
);
criterion_main!(benches);
