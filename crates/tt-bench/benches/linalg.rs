//! Criterion microbenchmarks for the dense-LA substrate at TT-rank-typical
//! sizes: the `R × R` eigen/SVD problems every bond truncation solves, and
//! the tall-skinny factorizations of the unfolding kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tt_linalg::par::with_threads;
use tt_linalg::{
    blocked_qr, cholesky, eigh, golub_kahan_svd, householder_qr, householder_qr_unblocked,
    jacobi_svd, syrk, Matrix, Trans,
};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(7)
}

fn bench_eigh(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigh");
    let mut r = rng();
    for n in [20usize, 40, 80] {
        let a = Matrix::gaussian(n + 10, n, &mut r);
        let g = syrk(&a, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| eigh(g).unwrap());
        });
    }
    group.finish();
}

fn bench_svd_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    let mut r = rng();
    for n in [20usize, 40, 80] {
        let a = Matrix::gaussian(n, n, &mut r);
        group.bench_with_input(BenchmarkId::new("jacobi", n), &a, |b, a| {
            b.iter(|| jacobi_svd(a));
        });
        group.bench_with_input(BenchmarkId::new("golub_kahan", n), &a, |b, a| {
            b.iter(|| golub_kahan_svd(a).unwrap());
        });
    }
    // Tall-skinny case, where bidiagonalization's O(mn²) pays off.
    let a = Matrix::gaussian(4000, 20, &mut r);
    group.bench_function("jacobi_tall_4000x20", |b| {
        b.iter(|| jacobi_svd(&a));
    });
    group.bench_function("golub_kahan_tall_4000x20", |b| {
        b.iter(|| golub_kahan_svd(&a).unwrap());
    });
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    let mut r = rng();
    for (m, n) in [(4000usize, 20usize), (40000, 20)] {
        let a = Matrix::gaussian(m, n, &mut r);
        group.bench_with_input(
            BenchmarkId::new("householder_thin_q", format!("{m}x{n}")),
            &a,
            |b, a| {
                b.iter(|| {
                    let f = householder_qr(a);
                    (f.thin_q(), f.r())
                });
            },
        );
        // The Gram alternative for the same task: syrk + small Cholesky —
        // the flop comparison behind the whole paper.
        group.bench_with_input(
            BenchmarkId::new("syrk_chol", format!("{m}x{n}")),
            &a,
            |b, a| {
                b.iter(|| {
                    let g = syrk(a, 1.0);
                    cholesky(&g).unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Blocked-vs-reference kernel pairs at the fig2/fig3 calibration sizes.
/// Ids carry the `kernels_` prefix so `cargo xtask bench-check` can select
/// exactly this set via `CRITERION_FILTER` and gate on the speedups in
/// `BENCH_kernels.json`.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    let mut r = rng();

    // GEMM at the γ-calibration size (the 256³ probe of `calibrate_gamma`).
    let n = 256usize;
    let a = Matrix::gaussian(n, n, &mut r);
    let b = Matrix::gaussian(n, n, &mut r);
    group.bench_function(BenchmarkId::new("kernels_gemm_blocked", n), |bch| {
        bch.iter(|| {
            let mut c_out = Matrix::zeros(n, n);
            tt_linalg::block::gemm_accumulate(
                Trans::No,
                a.view(),
                Trans::No,
                b.view(),
                1.0,
                &mut c_out.view_mut(),
            );
            black_box(c_out)
        });
    });
    group.bench_function(BenchmarkId::new("kernels_gemm_reference", n), |bch| {
        bch.iter(|| {
            let mut c_out = Matrix::zeros(n, n);
            tt_linalg::reference::gemm_v(
                Trans::No,
                a.view(),
                Trans::No,
                b.view(),
                1.0,
                0.0,
                c_out.view_mut(),
            );
            black_box(c_out)
        });
    });

    // SYRK on a tall-skinny unfolding (the Gram-path workhorse shape).
    let ts = Matrix::gaussian(40_000, 20, &mut r);
    group.bench_function(
        BenchmarkId::new("kernels_syrk_blocked", "40000x20"),
        |bch| {
            bch.iter(|| {
                black_box(tt_linalg::block::syrk(
                    ts.view(),
                    1.0,
                    tt_linalg::SyrkShape::TransposeA,
                ))
            });
        },
    );
    group.bench_function(
        BenchmarkId::new("kernels_syrk_reference", "40000x20"),
        |bch| bch.iter(|| black_box(tt_linalg::reference::syrk_v(ts.view(), 1.0))),
    );

    // QR on a TSQR-leaf-like panel: compact-WY vs rank-1 reflector loop.
    let q_in = Matrix::gaussian(4000, 32, &mut r);
    group.bench_function(BenchmarkId::new("kernels_qr_blocked", "4000x32"), |bch| {
        bch.iter(|| {
            let f = blocked_qr(&q_in, 32);
            black_box((f.thin_q(), f.r()))
        });
    });
    group.bench_function(BenchmarkId::new("kernels_qr_unblocked", "4000x32"), |bch| {
        bch.iter(|| {
            let f = householder_qr_unblocked(&q_in);
            black_box((f.thin_q(), f.r()))
        });
    });
    group.finish();
}

/// Forced-thread-count pairs for the shared-memory parallel layer. Each
/// kernel runs under `par::with_threads(1)` and `par::with_threads(4)` (the
/// override pins the pool regardless of `TT_NUM_THREADS`, the flop
/// threshold, and the machine-share cap), so the pair isolates the chunked
/// dispatch itself. `cargo xtask bench-check` gates the 4-thread GEMM at
/// ≥ 2.0× over 1-thread on 512³ — but only on machines with ≥ 4 hardware
/// threads; elsewhere the pair is recorded for the regression gate only.
fn bench_kernels_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_par");
    group.sample_size(10);
    let mut r = rng();

    // GEMM at 512³: large enough that the chunked sweep amortizes its
    // fork/join, and the size the speedup floor is defined at.
    let n = 512usize;
    let a = Matrix::gaussian(n, n, &mut r);
    let b = Matrix::gaussian(n, n, &mut r);
    for threads in [1usize, 4] {
        group.bench_function(
            BenchmarkId::new(&format!("kernels_par_gemm_{threads}t"), n),
            |bch| {
                bch.iter(|| {
                    with_threads(threads, || {
                        let mut c_out = Matrix::zeros(n, n);
                        tt_linalg::block::gemm_accumulate(
                            Trans::No,
                            a.view(),
                            Trans::No,
                            b.view(),
                            1.0,
                            &mut c_out.view_mut(),
                        );
                        black_box(c_out)
                    })
                });
            },
        );
    }

    // SYRK on a tall-skinny unfolding: the Gram-sweep workhorse, split over
    // triangle block-columns.
    let ts = Matrix::gaussian(60_000, 64, &mut r);
    for threads in [1usize, 4] {
        group.bench_function(
            BenchmarkId::new(&format!("kernels_par_syrk_{threads}t"), "60000x64"),
            |bch| {
                bch.iter(|| {
                    with_threads(threads, || {
                        black_box(tt_linalg::block::syrk(
                            ts.view(),
                            1.0,
                            tt_linalg::SyrkShape::TransposeA,
                        ))
                    })
                });
            },
        );
    }

    // Compact-WY QR: threading arrives indirectly through the trailing-
    // update GEMMs.
    let q_in = Matrix::gaussian(8000, 128, &mut r);
    for threads in [1usize, 4] {
        group.bench_function(
            BenchmarkId::new(&format!("kernels_par_qr_{threads}t"), "8000x128"),
            |bch| {
                bch.iter(|| {
                    with_threads(threads, || {
                        let f = blocked_qr(&q_in, 32);
                        black_box((f.thin_q(), f.r()))
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eigh,
    bench_svd_backends,
    bench_qr,
    bench_kernels,
    bench_kernels_par
);
criterion_main!(benches);
