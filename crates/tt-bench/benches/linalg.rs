//! Criterion microbenchmarks for the dense-LA substrate at TT-rank-typical
//! sizes: the `R × R` eigen/SVD problems every bond truncation solves, and
//! the tall-skinny factorizations of the unfolding kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tt_linalg::{cholesky, eigh, golub_kahan_svd, householder_qr, jacobi_svd, syrk, Matrix};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(7)
}

fn bench_eigh(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigh");
    let mut r = rng();
    for n in [20usize, 40, 80] {
        let a = Matrix::gaussian(n + 10, n, &mut r);
        let g = syrk(&a, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| eigh(g).unwrap());
        });
    }
    group.finish();
}

fn bench_svd_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    let mut r = rng();
    for n in [20usize, 40, 80] {
        let a = Matrix::gaussian(n, n, &mut r);
        group.bench_with_input(BenchmarkId::new("jacobi", n), &a, |b, a| {
            b.iter(|| jacobi_svd(a));
        });
        group.bench_with_input(BenchmarkId::new("golub_kahan", n), &a, |b, a| {
            b.iter(|| golub_kahan_svd(a).unwrap());
        });
    }
    // Tall-skinny case, where bidiagonalization's O(mn²) pays off.
    let a = Matrix::gaussian(4000, 20, &mut r);
    group.bench_function("jacobi_tall_4000x20", |b| {
        b.iter(|| jacobi_svd(&a));
    });
    group.bench_function("golub_kahan_tall_4000x20", |b| {
        b.iter(|| golub_kahan_svd(&a).unwrap());
    });
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    let mut r = rng();
    for (m, n) in [(4000usize, 20usize), (40000, 20)] {
        let a = Matrix::gaussian(m, n, &mut r);
        group.bench_with_input(
            BenchmarkId::new("householder_thin_q", format!("{m}x{n}")),
            &a,
            |b, a| {
                b.iter(|| {
                    let f = householder_qr(a);
                    (f.thin_q(), f.r())
                });
            },
        );
        // The Gram alternative for the same task: syrk + small Cholesky —
        // the flop comparison behind the whole paper.
        group.bench_with_input(
            BenchmarkId::new("syrk_chol", format!("{m}x{n}")),
            &a,
            |b, a| {
                b.iter(|| {
                    let g = syrk(a, 1.0);
                    cholesky(&g).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eigh, bench_svd_backends, bench_qr);
criterion_main!(benches);
