//! Benchmark harness reproducing the paper's evaluation (§V).
//!
//! One binary per table/figure (see DESIGN.md §4 for the index):
//!
//! | target   | reproduces |
//! |----------|------------|
//! | `table1` | Table I (synthetic models) |
//! | `fig2`   | Fig. 2a/2b (strong scaling, models 1–2) |
//! | `fig3`   | Fig. 3a/3b (strong scaling + breakdown, model 3) |
//! | `fig4`   | Fig. 4 (weak scaling breakdown, model 1) |
//! | `fig5`   | Fig. 5a/5b (TT-GMRES on the cookies problem) |
//! | `fig6`   | Fig. 6 (+ §V-D2 true-residual table) |
//! | `fig7`   | Fig. 7 (weak scaling, model 4) |
//!
//! Scaling runs execute one representative rank's real local computation and
//! price communication with the LogP-style [`tt_comm::CostModel`] — see
//! DESIGN.md §2 for why this preserves the paper's comparisons on a
//! single-core machine. Every binary prints the machine parameters it used.

#![allow(clippy::print_stdout)] // user-facing output is this target's job
#![forbid(unsafe_code)]

use std::time::Instant;

use tt_comm::{Communicator, CostModel, ModelComm};
use tt_core::round::{round_gram_seq_dist, round_gram_sim_dist, round_qr_dist};
use tt_core::synthetic::ModelSpec;
use tt_core::{GramOrder, RoundReport, RoundingOptions, TtTensor};

/// The four rounding algorithms compared throughout §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// TT-Rounding via orthogonalization (Alg. 2) — the baseline.
    Qr,
    /// Gram SVD, sequence, RLR ordering (Alg. 6).
    GramRlr,
    /// Gram SVD, sequence, LRL ordering.
    GramLrl,
    /// Gram SVD, simultaneous (Alg. 5).
    GramSim,
}

/// All four variants, in the paper's plotting order.
pub const ALL_VARIANTS: [Variant; 4] = [
    Variant::Qr,
    Variant::GramSim,
    Variant::GramRlr,
    Variant::GramLrl,
];

impl Variant {
    /// Legend name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Qr => "TT-Round-QR",
            Variant::GramRlr => "Gram-RLR",
            Variant::GramLrl => "Gram-LRL",
            Variant::GramSim => "Gram-Sim",
        }
    }

    /// Runs the variant on a (local) tensor against the given communicator.
    pub fn round(
        &self,
        comm: &impl Communicator,
        x: &TtTensor,
        opts: &RoundingOptions,
    ) -> (TtTensor, RoundReport) {
        match self {
            Variant::Qr => round_qr_dist(comm, x, opts),
            Variant::GramRlr => round_gram_seq_dist(comm, x, opts, GramOrder::Rlr),
            Variant::GramLrl => round_gram_seq_dist(comm, x, opts, GramOrder::Lrl),
            Variant::GramSim => round_gram_sim_dist(comm, x, opts),
        }
    }
}

/// One timed rounding run at a given rank count.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Rank count `P`.
    pub p: usize,
    /// Measured per-rank local compute seconds (min over trials).
    pub compute_s: f64,
    /// Modeled communication seconds.
    pub comm_s: f64,
}

impl TimedRun {
    /// Total modeled wall time.
    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// The maximum local mode dimensions over all ranks (`⌈I_k/P⌉`): the
/// critical-path rank that gates every collective.
pub fn max_local_dims(dims: &[usize], p: usize) -> Vec<usize> {
    dims.iter().map(|&d| d.div_ceil(p)).collect()
}

/// Executes one representative rank's rounding work for `spec` at `p` ranks
/// and returns measured compute + modeled communication.
///
/// The tensor is the Table-I redundant construction (rank 20 → 10) on the
/// *local* mode dimensions, and rounding runs with the target-rank cap so
/// the executed instruction stream matches a real distributed run exactly.
pub fn run_scaling_point(
    spec: &ModelSpec,
    p: usize,
    variant: Variant,
    model: &CostModel,
    trials: usize,
    seed: u64,
) -> TimedRun {
    let local_dims = max_local_dims(&spec.dims, p);
    run_scaling_point_dims(
        &local_dims,
        spec.target_rank,
        p,
        variant,
        model,
        trials,
        seed,
    )
}

/// Same as [`run_scaling_point`] but with explicit local dimensions (used by
/// the weak-scaling harnesses).
#[allow(clippy::too_many_arguments)]
pub fn run_scaling_point_dims(
    local_dims: &[usize],
    target_rank: usize,
    p: usize,
    variant: Variant,
    model: &CostModel,
    trials: usize,
    seed: u64,
) -> TimedRun {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let x = tt_core::synthetic::generate_redundant(local_dims, target_rank, &mut rng);
    let opts = RoundingOptions::with_tolerance(1e-8).max_rank(target_rank);

    let mut best_compute = f64::INFINITY;
    let mut comm_s = 0.0;
    for _ in 0..trials.max(1) {
        let comm = ModelComm::new(p);
        let t0 = Instant::now();
        let (_y, _report) = variant.round(&comm, &x, &opts);
        let dt = t0.elapsed().as_secs_f64();
        best_compute = best_compute.min(dt);
        comm_s = comm.stats().modeled_time(model, p);
    }
    TimedRun {
        p,
        compute_s: best_compute,
        comm_s,
    }
}

/// Calibrates γ (seconds per flop) from a GEMM probe, so modeled compute
/// numbers printed alongside measurements refer to this machine.
///
/// The probe goes through the public `gemm` dispatcher, which routes a
/// 256×256×256 multiply to the packed blocked kernel
/// (`tt_linalg::kernel_choice(256, 256, 256) == Kernel::Blocked` — pinned by
/// a test below), and the modeled flop count is `gemm_flops` for the same
/// dimensions. γ therefore reflects the flop rate of the engine the rounding
/// hot path actually runs on, not the reference loops.
pub fn calibrate_gamma() -> f64 {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let n = 256;
    debug_assert_eq!(
        tt_linalg::kernel_choice(n, n, n),
        tt_linalg::Kernel::Blocked
    );
    let a = tt_linalg::Matrix::gaussian(n, n, &mut rng);
    let b = tt_linalg::Matrix::gaussian(n, n, &mut rng);
    // warm-up + 3 timed reps
    let _ = tt_linalg::gemm(tt_linalg::Trans::No, &a, tt_linalg::Trans::No, &b, 1.0);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let c = tt_linalg::gemm(tt_linalg::Trans::No, &a, tt_linalg::Trans::No, &b, 1.0);
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&c);
    }
    best / tt_linalg::gemm::gemm_flops(n, n, n)
}

/// Builds the default cost model with γ calibrated on this machine.
pub fn calibrated_model() -> CostModel {
    CostModel {
        gamma: calibrate_gamma(),
        ..Default::default()
    }
}

/// Prints the cost-model banner every harness emits.
pub fn print_model_banner(model: &CostModel) {
    println!(
        "# cost model: alpha = {:.2e} s/msg, beta = {:.2e} s/word, gamma = {:.2e} s/flop ({:.2} Gflop/s, blocked-gemm probe)",
        model.alpha,
        model.beta,
        model.gamma,
        1e-9 / model.gamma
    );
    println!("# compute times are MEASURED on this machine (one representative rank's");
    println!("# real local work); communication times are MODELED (see DESIGN.md #2).");
}

/// Tiny `--key value` argument parser for the harness binaries.
pub struct Args {
    args: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Args {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--key`, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        let flag = format!("--{key}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Whether the bare flag `--key` is present.
    pub fn has(&self, key: &str) -> bool {
        let flag = format!("--{key}");
        self.args.iter().any(|a| a == &flag)
    }
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:8.3} s")
    } else if s >= 1e-3 {
        format!("{:8.3} ms", s * 1e3)
    } else {
        format!("{:8.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the γ-calibration contract: the probe GEMM's dimensions route to
    /// the blocked kernel, and the flop count the measurement is divided by
    /// is the standard 2·m·n·k of that same multiply. If the dispatch
    /// threshold ever moves past 256, or `gemm_flops` changes convention,
    /// this fails rather than silently mis-calibrating the cost model.
    #[test]
    fn gamma_calibration_uses_blocked_kernel() {
        assert_eq!(
            tt_linalg::kernel_choice(256, 256, 256),
            tt_linalg::Kernel::Blocked
        );
        let flops = tt_linalg::gemm_flops(256, 256, 256);
        assert_eq!(flops, 2.0 * 256.0f64.powi(3));
        let gamma = calibrate_gamma();
        // Sanity range: between 10 Mflop/s and 1 Tflop/s on any real machine.
        assert!(gamma > 1e-12 && gamma < 1e-7, "gamma = {gamma}");
    }

    #[test]
    fn max_local_dims_is_ceiling() {
        assert_eq!(max_local_dims(&[10, 20, 7], 4), vec![3, 5, 2]);
        assert_eq!(max_local_dims(&[10], 1), vec![10]);
        assert_eq!(max_local_dims(&[5], 8), vec![1]);
    }

    #[test]
    fn scaling_point_runs_all_variants() {
        let model = CostModel::default();
        let spec = ModelSpec::table1(4).scaled(0.01);
        for v in ALL_VARIANTS {
            let run = run_scaling_point(&spec, 8, v, &model, 1, 1);
            assert!(run.compute_s > 0.0, "{v:?}");
            assert!(run.comm_s > 0.0, "{v:?}");
        }
    }

    #[test]
    fn comm_grows_with_p_compute_shrinks() {
        let model = CostModel::default();
        let spec = ModelSpec::table1(1).scaled(0.05);
        let a = run_scaling_point(&spec, 1, Variant::GramLrl, &model, 1, 2);
        let b = run_scaling_point(&spec, 64, Variant::GramLrl, &model, 1, 2);
        assert_eq!(a.comm_s, 0.0, "P=1 has no communication");
        assert!(b.comm_s > 0.0);
        assert!(b.compute_s < a.compute_s, "local work must shrink with P");
    }

    #[test]
    fn qr_variant_records_more_bandwidth_than_gram() {
        // The headline communication claim: TSQR bandwidth carries log P.
        let model = CostModel::default();
        let spec = ModelSpec::table1(1).scaled(0.02);
        let q = run_scaling_point(&spec, 256, Variant::Qr, &model, 1, 3);
        let g = run_scaling_point(&spec, 256, Variant::GramLrl, &model, 1, 3);
        assert!(
            q.comm_s > g.comm_s,
            "QR comm {} must exceed Gram comm {}",
            q.comm_s,
            g.comm_s
        );
    }

    #[test]
    fn args_parse() {
        let a = Args {
            args: vec!["--model".into(), "2".into(), "--verbose".into()],
        };
        assert_eq!(a.get::<usize>("model"), Some(2));
        assert_eq!(a.get::<f64>("missing"), None);
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }
}
