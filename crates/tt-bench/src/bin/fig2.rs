//! Figure 2: strong scaling of TT-Rounding, models 1 and 2.
//!
//! * Fig. 2a — model 1 (50 modes × 2K, 77 MB): 1 core → 4 nodes
//!   (P = 1 … 128); the paper sees 14–17× on-node scaling and ~3× Gram-vs-QR
//!   on 32 cores, with fall-off beyond one node (the problem is small).
//! * Fig. 2b — model 2 (16 modes, 100M × 50K … × 1M): 1 → 32 nodes
//!   (P = 32 … 1024); the paper sees up to 21× Gram-vs-QR and ~2× LRL-vs-RLR
//!   while compute-bound (the boundary modes differ in size).
//!
//! Usage:
//!   cargo run --release -p tt-bench --bin fig2 -- --model 1 [--scale f]
//!                                               [--trials n]
//!
//! Default scales are sized for this machine; EXPERIMENTS.md records the
//! scales used for the reported numbers.

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_bench::{
    calibrated_model, fmt_secs, print_model_banner, run_scaling_point, Args, ALL_VARIANTS,
};
use tt_core::synthetic::ModelSpec;

fn main() {
    let args = Args::parse();
    let model_id: usize = args.get("model").unwrap_or(1);
    assert!(model_id == 1 || model_id == 2, "fig2 covers models 1 and 2");
    let default_scale = if model_id == 1 { 0.25 } else { 0.002 };
    let scale: f64 = args.get("scale").unwrap_or(default_scale);
    let trials: usize = args.get("trials").unwrap_or(3);

    let spec = ModelSpec::table1(model_id).scaled(scale);
    let cost = calibrated_model();

    println!(
        "FIGURE 2{}: strong scaling, model {model_id} (scale {scale})",
        if model_id == 1 { 'a' } else { 'b' }
    );
    println!(
        "# dims: {} modes, I_1 = {}, interior = {}, I_N = {}; formal rank {} -> {}",
        spec.dims.len(),
        spec.dims[0],
        spec.dims[spec.dims.len() / 2],
        spec.dims[spec.dims.len() - 1],
        spec.rank,
        spec.target_rank
    );
    print_model_banner(&cost);
    println!();

    let ps: Vec<usize> = if model_id == 1 {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    } else {
        vec![32, 64, 128, 256, 512, 1024]
    };

    println!(
        "{:>6} | {:>14} {:>14} {:>14} {:>14} | {:>10}",
        "P", "TT-Round-QR", "Gram-Sim", "Gram-RLR", "Gram-LRL", "QR/LRL"
    );
    let mut firsts: Option<Vec<f64>> = None;
    let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
    for &p in &ps {
        let times: Vec<f64> = ALL_VARIANTS
            .iter()
            .map(|&v| run_scaling_point(&spec, p, v, &cost, trials, 100 + p as u64).total())
            .collect();
        if firsts.is_none() {
            firsts = Some(times.clone());
        }
        println!(
            "{:>6} | {:>14} {:>14} {:>14} {:>14} | {:>9.1}x",
            p,
            fmt_secs(times[0]),
            fmt_secs(times[1]),
            fmt_secs(times[2]),
            fmt_secs(times[3]),
            times[0] / times[3]
        );
        rows.push((p, times));
    }

    let Some(base) = firsts else {
        unreachable!("the P sweep is non-empty, so the first scaling row was recorded")
    };
    println!();
    println!("# parallel speedups vs P = {}:", ps[0]);
    println!(
        "{:>6} | {:>12} {:>12} {:>12} {:>12}",
        "P", "QR", "Gram-Sim", "Gram-RLR", "Gram-LRL"
    );
    for (p, times) in &rows {
        println!(
            "{:>6} | {:>11.1}x {:>11.1}x {:>11.1}x {:>11.1}x",
            p,
            base[0] / times[0],
            base[1] / times[1],
            base[2] / times[2],
            base[3] / times[3]
        );
    }

    // Headline comparisons the paper quotes in §V-B.
    let last = &rows[rows.len() - 1].1;
    println!();
    println!(
        "# at P = {}: Gram-LRL is {:.1}x faster than TT-Round-QR (paper: ~3x for model 1 on-node, up to 21x for model 2)",
        rows[rows.len() - 1].0,
        last[0] / last[3]
    );
}
