//! Figure 7: weak scaling of TT-Rounding for model 4 (the cookies-shaped
//! tensor: 10K × 20 × … × 20, 10 modes).
//!
//! The spatial mode is weakly scaled with P (per-rank share constant) while
//! the parameter modes stay fixed — the paper reports only the LRL variant
//! (it does less computation than RLR when mode 1 dominates) and sees flat
//! weak scaling to 2¹⁰ cores; we print all variants so the LRL-vs-RLR gap of
//! the conclusion is visible too.
//!
//! Usage: `cargo run --release -p tt-bench --bin fig7 [-- --local 313 --trials n]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_bench::{
    calibrated_model, fmt_secs, print_model_banner, run_scaling_point_dims, Args, ALL_VARIANTS,
};
use tt_core::synthetic::ModelSpec;

fn main() {
    let args = Args::parse();
    // 10_000 / 32 = 313: the per-rank spatial share of a full-size
    // one-node run.
    let local_spatial: usize = args.get("local").unwrap_or(313);
    let trials: usize = args.get("trials").unwrap_or(3);
    let cost = calibrated_model();

    let spec = ModelSpec::table1(4);
    println!("FIGURE 7: weak scaling, model 4 (spatial mode grows with P; {local_spatial} spatial slices/rank)");
    print_model_banner(&cost);
    println!();
    println!(
        "{:>6} | {:>10} | {:>14} {:>14} {:>14} {:>14}",
        "P", "global I1", "TT-Round-QR", "Gram-Sim", "Gram-RLR", "Gram-LRL"
    );

    for &p in &[1usize, 4, 16, 64, 256, 1024] {
        // Weak scaling: global I1 = local * P; parameter modes fixed at 20,
        // so their per-rank share shrinks to ceil(20/P).
        let mut local_dims = vec![20usize.div_ceil(p); spec.dims.len()];
        local_dims[0] = local_spatial;
        let times: Vec<f64> = ALL_VARIANTS
            .iter()
            .map(|&v| {
                run_scaling_point_dims(
                    &local_dims,
                    spec.target_rank,
                    p,
                    v,
                    &cost,
                    trials,
                    700 + p as u64,
                )
                .total()
            })
            .collect();
        println!(
            "{:>6} | {:>10} | {:>14} {:>14} {:>14} {:>14}",
            p,
            local_spatial * p,
            fmt_secs(times[0]),
            fmt_secs(times[1]),
            fmt_secs(times[2]),
            fmt_secs(times[3]),
        );
    }
    println!();
    println!("# expected: near-flat LRL times (good weak scaling) with a slow log P");
    println!("# communication creep; LRL below RLR because mode 1 dominates the work.");
}
