//! Comm/compute overlap in the distributed Gram rounding sweep: the
//! pipelined schedule (each bond's allreduce posted early, the neighbor
//! core's update running in its shadow) against the serial-wait schedule
//! (`RoundingOptions::serial_waits()`) on `P` thread-backed ranks.
//!
//! Both schedules consume identical bytes in identical order, so the rank
//! chains must agree exactly — the bin asserts that before timing. For each
//! schedule it reports mean/min wall time over `--reps` runs (per run: the
//! slowest rank's rounding time, which is what a bulk-synchronous caller
//! experiences), and closes with the analytic prediction: the [`CostModel`]
//! prices the recorded collective stream, splits the measured serial time
//! into compute + comm legs, and [`CostModel::pipelined_time`] folds them —
//! modeled vs measured speedup side by side (EXPERIMENTS.md carries the
//! table).
//!
//! With `--json <path>` the timing rows are emitted as JSONL entries
//!
//! ```text
//! {"id":"dist_overlap_pipelined/p4","mean_ns":…,"min_ns":…,"samples":…}
//! ```
//!
//! which `cargo xtask bench-check` consumes: on a box with ≥ 4 hardware
//! threads the pipelined schedule must beat serial by the overlap floor,
//! and both rows ride the usual 15% mean-regression gate against
//! `results/BENCH_dist_overlap.json` everywhere.
//!
//! Usage: `cargo run --release -p tt-bench --bin dist_overlap
//!         [-- --reps N --ranks P --json PATH]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job

use std::time::Instant;

use rand::SeedableRng;
use tt_bench::{fmt_secs, Args};
use tt_comm::{Communicator, CostModel, ModelComm, ThreadComm};
use tt_core::round::round_gram_seq_dist;
use tt_core::{block_range, scatter_tensor, GramOrder, RoundingOptions, TtTensor};

/// Mode sizes: large enough that a distributed sweep is milliseconds of
/// real GEMM work per rank, small enough for a CI gate.
const DIMS: [usize; 4] = [32, 32, 32, 32];
/// TT ranks of the redundant instance's dominant half (formal ranks 2×).
const RANK_HALF: usize = 14;
/// Rounding tolerance (cuts the redundant half away).
const TOL: f64 = 1e-8;
/// Seed for instance generation.
const SEED: u64 = 712;

/// One timing row of the pipelined/serial pair.
struct Row {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    samples: u64,
}

/// Times `reps` distributed RLR sweeps under `opts` on `p` ranks; each
/// rep's time is the slowest rank's (scatter excluded, one warm-up run).
fn measure(id: String, x: &TtTensor, p: usize, opts: &RoundingOptions, reps: usize) -> Row {
    let mut min_ns = u128::MAX;
    let mut total_ns: u128 = 0;
    for rep in 0..=reps {
        let times = ThreadComm::run(p, |comm| {
            let local = scatter_tensor(x, &comm);
            let t0 = Instant::now();
            let _ = round_gram_seq_dist(&comm, &local, opts, GramOrder::Rlr);
            t0.elapsed().as_nanos()
        });
        let dt = times.into_iter().max().unwrap_or(0);
        if rep == 0 {
            continue; // warm-up
        }
        min_ns = min_ns.min(dt);
        total_ns += dt;
    }
    Row {
        id,
        mean_ns: total_ns / reps as u128,
        min_ns,
        samples: reps as u64,
    }
}

/// Rank chain of one distributed rounding under `opts` (rank 0's view).
fn ranks_under(x: &TtTensor, p: usize, opts: &RoundingOptions) -> Vec<usize> {
    ThreadComm::run(p, |comm| {
        let local = scatter_tensor(x, &comm);
        let (rounded, _) = round_gram_seq_dist(&comm, &local, opts, GramOrder::Rlr);
        rounded.ranks()
    })
    .into_iter()
    .next()
    .unwrap_or_default()
}

fn main() {
    let args = Args::parse();
    let reps: usize = args.get("reps").unwrap_or(8);
    let p: usize = args.get("ranks").unwrap_or(4);

    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let x = tt_core::synthetic::generate_redundant(&DIMS, RANK_HALF, &mut rng);

    let pipelined_opts = RoundingOptions::with_tolerance(TOL);
    let serial_opts = RoundingOptions::with_tolerance(TOL).serial_waits();

    // Determinism guard before any timing: the two schedules are the same
    // algorithm in a different wait order, so their rank decisions (and the
    // cores — pinned bitwise by the tt-core agreement tests) must agree.
    let ranks_pipe = ranks_under(&x, p, &pipelined_opts);
    let ranks_serial = ranks_under(&x, p, &serial_opts);
    assert_eq!(
        ranks_pipe, ranks_serial,
        "pipelined and serial-wait schedules diverged"
    );

    let rows = [
        measure(
            format!("dist_overlap_pipelined/p{p}"),
            &x,
            p,
            &pipelined_opts,
            reps,
        ),
        measure(
            format!("dist_overlap_serial/p{p}"),
            &x,
            p,
            &serial_opts,
            reps,
        ),
    ];

    println!(
        "# dist overlap: dims {DIMS:?}, rank half {RANK_HALF}, tol {TOL:.0e}, p = {p}, {reps} reps, ranks out {ranks_pipe:?}"
    );
    println!("{:<28} {:>12} {:>12}", "schedule", "mean", "min");
    for r in &rows {
        println!(
            "{:<28} {:>12} {:>12}",
            r.id,
            fmt_secs(r.mean_ns as f64 * 1e-9),
            fmt_secs(r.min_ns as f64 * 1e-9)
        );
    }

    // Modeled prediction: price the sweep's collective stream with the
    // analytic model, read the compute leg out of the measured serial time
    // (serial = compute + comm by construction), and fold the two legs with
    // the pipelined-stage formula. On a machine where the comm leg is a
    // meaningful fraction this predicts the measured speedup; on a 1-core
    // box both land near 1.0x (thread "ranks" share the core, so there is
    // nothing to hide the comm behind).
    let local_dims: Vec<usize> = DIMS.iter().map(|&d| block_range(d, p, 0).len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let local = tt_core::synthetic::generate_redundant(&local_dims, RANK_HALF, &mut rng);
    let model_comm = ModelComm::new(p);
    let _ = round_gram_seq_dist(&model_comm, &local, &pipelined_opts, GramOrder::Rlr);
    let model = CostModel::default();
    let comm_s = model_comm.stats().modeled_time(&model, p);
    let serial_s = rows[1].mean_ns as f64 * 1e-9;
    let compute_s = (serial_s - comm_s).max(0.0);
    let modeled_pipelined_s = model.pipelined_time(compute_s, comm_s);
    let modeled_speedup = serial_s / modeled_pipelined_s.max(f64::MIN_POSITIVE);
    let measured_speedup = rows[1].mean_ns as f64 / rows[0].mean_ns.max(1) as f64;
    println!(
        "# modeled: comm {} + compute {} -> pipelined {} ({modeled_speedup:.2}x); measured {measured_speedup:.2}x",
        fmt_secs(comm_s),
        fmt_secs(compute_s),
        fmt_secs(modeled_pipelined_s)
    );

    if let Some(path) = args.get::<String>("json") {
        let mut text = String::new();
        for r in &rows {
            text.push_str(&format!(
                "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
                r.id, r.mean_ns, r.min_ns, r.samples
            ));
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("dist_overlap: could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("# wrote {path}");
    }
}
