//! Figure 3: model 3 (30 modes × 2M) strong scaling and its
//! computation/communication breakdown.
//!
//! * Fig. 3a — run times of the four variants from 1 to 64 nodes
//!   (P = 32 … 2048); the paper sees 6–8× Gram-vs-QR speedups and ~2×
//!   LRL/RLR-vs-Sim (equal mode sizes make LRL and RLR identical in cost).
//! * Fig. 3b — relative communication/computation split of the same runs;
//!   communication is a larger share for QR (the TSQR `log P` bandwidth
//!   factor).
//!
//! Usage: `cargo run --release -p tt-bench --bin fig3 [-- --scale f --trials n]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_bench::{
    calibrated_model, fmt_secs, print_model_banner, run_scaling_point, Args, ALL_VARIANTS,
};
use tt_core::synthetic::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale").unwrap_or(0.002);
    let trials: usize = args.get("trials").unwrap_or(3);
    let spec = ModelSpec::table1(3).scaled(scale);
    let cost = calibrated_model();

    println!("FIGURE 3: model 3 strong scaling + time breakdown (scale {scale})");
    println!(
        "# dims: {} modes x {}; formal rank {} -> {}",
        spec.dims.len(),
        spec.dims[0],
        spec.rank,
        spec.target_rank
    );
    print_model_banner(&cost);
    println!();

    let ps = [32usize, 64, 128, 256, 512, 1024, 2048];

    println!("(a) run times");
    println!(
        "{:>6} | {:>14} {:>14} {:>14} {:>14} | {:>8}",
        "P", "TT-Round-QR", "Gram-Sim", "Gram-RLR", "Gram-LRL", "QR/LRL"
    );
    let mut all = Vec::new();
    for &p in &ps {
        let runs: Vec<_> = ALL_VARIANTS
            .iter()
            .map(|&v| run_scaling_point(&spec, p, v, &cost, trials, 300 + p as u64))
            .collect();
        println!(
            "{:>6} | {:>14} {:>14} {:>14} {:>14} | {:>7.1}x",
            p,
            fmt_secs(runs[0].total()),
            fmt_secs(runs[1].total()),
            fmt_secs(runs[2].total()),
            fmt_secs(runs[3].total()),
            runs[0].total() / runs[3].total()
        );
        all.push((p, runs));
    }

    println!();
    println!("(b) communication share of total time (dark = computation, light = communication)");
    println!(
        "{:>6} | {:>12} {:>12} {:>12} {:>12}",
        "P", "QR", "Gram-Sim", "Gram-RLR", "Gram-LRL"
    );
    for (p, runs) in &all {
        let share = |i: usize| 100.0 * all_comm(&runs[i]) / runs[i].total();
        println!(
            "{:>6} | {:>10.1}%% {:>10.1}%% {:>10.1}%% {:>10.1}%%",
            p,
            share(0),
            share(1),
            share(2),
            share(3)
        );
    }

    let first = &all[0].1;
    let last = &all[all.len() - 1].1;
    println!();
    println!(
        "# Gram-SVD-over-QR speedup: {:.1}x at P={} ... {:.1}x at P={} (paper: 6x-8x)",
        first[0].total() / first[3].total(),
        all[0].0,
        last[0].total() / last[3].total(),
        all[all.len() - 1].0
    );
    println!(
        "# parallel speedup P={} -> P={}: LRL {:.1}x, RLR {:.1}x, Sim {:.1}x (paper: 42x/27x/15x over 64x more cores)",
        all[0].0,
        all[all.len() - 1].0,
        first[3].total() / last[3].total(),
        first[2].total() / last[2].total(),
        first[1].total() / last[1].total(),
    );
}

fn all_comm(r: &tt_bench::TimedRun) -> f64 {
    r.comm_s
}
