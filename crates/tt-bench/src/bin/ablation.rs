//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Gram-sweep update** (§IV-B): non-symmetric (`gemm`+`gemm`, the
//!    paper's empirical choice) vs symmetric (`chol`+`trmm`+`syrk`, half
//!    the flops). The paper found gemm's higher machine efficiency wins;
//!    with our naive kernels the flop saving may or may not.
//! 2. **Randomized-rounding oversampling**: accuracy/time vs the
//!    oversampling parameter (the §VI future-work method's single knob).
//! 3. **Solver choice**: TT-GMRES vs TT-Richardson on the same cookies
//!    instance — iterations, time, and where rounding time goes.
//!
//! Usage: `cargo run --release -p tt-bench --bin ablation`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use std::time::Instant;

use rand::SeedableRng;
use tt_bench::fmt_secs;
use tt_cookies::CookiesProblem;
use tt_core::round::{
    gram_sweep_right, gram_sweep_right_symmetric, round_randomized, RandomizedOptions,
};
use tt_core::synthetic::generate_redundant;
use tt_solvers::gmres::TrueResidualMode;
use tt_solvers::{tt_gmres, tt_richardson, GmresOptions, RichardsonOptions, RoundingMethod};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2022);

    // ---- 1. Symmetric vs non-symmetric Gram sweep. ----
    println!("(1) structured Gram sweep: nonsymmetric (gemm+gemm) vs symmetric (chol+trmm+syrk)");
    let mut dims = vec![20usize; 12];
    dims[0] = 4000;
    let x = generate_redundant(&dims, 10, &mut rng);
    let comm = tt_comm::SelfComm::new();
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(gram_sweep_right(&comm, &x));
    }
    let t_ns = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(gram_sweep_right_symmetric(&comm, &x));
    }
    let t_sym = t0.elapsed().as_secs_f64() / reps as f64;
    println!("    nonsymmetric: {}", fmt_secs(t_ns));
    println!(
        "    symmetric:    {}  ({:.2}x the nonsymmetric time; paper kept the nonsymmetric variant)",
        fmt_secs(t_sym),
        t_sym / t_ns
    );

    // ---- 2. Randomized rounding: oversampling sweep. ----
    println!();
    println!("(2) randomized rounding: oversampling vs accuracy (target rank 10, true rank 10)");
    let xnorm = x.norm();
    println!("    {:>4} {:>12} {:>12}", "p", "time", "rel error");
    for p in [0usize, 2, 4, 8, 16] {
        let opts = RandomizedOptions::uniform(10, dims.len())
            .oversample(p)
            .seed(42);
        let t0 = Instant::now();
        let y = round_randomized(&x, &opts);
        let dt = t0.elapsed().as_secs_f64();
        let err = y.sub(&x).norm() / xnorm;
        println!("    {:>4} {:>12} {:>12.2e}", p, fmt_secs(dt), err);
    }
    println!("    (exact-rank inputs recover to the sqrt(eps) inner-product floor even at p = 0;");
    println!("     oversampling matters for noisy spectra — see round::random tests)");

    // ---- 3. GMRES vs Richardson on the cookies problem. ----
    println!();
    println!("(3) TT-GMRES vs TT-Richardson, cookies 16x16 grid, 6 samples/disk, tol 1e-6");
    let problem = CookiesProblem::new(16, 6);
    let op = problem.operator();
    let f = problem.rhs();
    let pre = problem.mean_preconditioner();
    let g_opts = GmresOptions {
        tolerance: 1e-6,
        max_iters: 60,
        rounding: RoundingMethod::GramLrl,
        true_residual: TrueResidualMode::Off,
        stagnation_window: 5,
        restart: None,
    };
    let (_, gm) = tt_gmres(&op, &pre, &f, &g_opts);
    let r_opts = RichardsonOptions {
        tolerance: 1e-6,
        max_iters: 400,
        rounding: RoundingMethod::GramLrl,
        rounding_tolerance: 1e-8,
        damping: 1.0,
    };
    let (_, rich) = tt_richardson(&op, &pre, &f, &r_opts);
    println!(
        "    TT-GMRES:      {:>4} iters, {:>9}, rounding {:>9}, converged {}",
        gm.iterations.len(),
        fmt_secs(gm.total_seconds),
        fmt_secs(gm.rounding_seconds),
        gm.converged
    );
    println!(
        "    TT-Richardson: {:>4} iters, {:>9}, rounding {:>9}, converged {}",
        rich.residuals.len(),
        fmt_secs(rich.total_seconds),
        fmt_secs(rich.rounding_seconds),
        rich.converged
    );
}
