//! Figure 6 (+ §V-D2 true-residual table): accuracy of TT-GMRES with QR-
//! versus Gram-based rounding across convergence tolerances 1e-2, 1e-6,
//! 1e-10.
//!
//! Configuration per the paper: cookies problem with I₁ = 1781 (ours: the
//! matching 42² = 1764 FDM grid) and I₂..₅ = 10 parameter samples, mean
//! preconditioner.
//!
//! Expected reproduction targets:
//! * computed residual histories nearly identical between QR and Gram-LRL
//!   for every ε (Figs. 6a–c, solid lines);
//! * for ε = 1e-10 (below √ε_machine), Gram rounding *overestimates the TT
//!   ranks* in the early iterations (Fig. 6c, dashed lines deviate);
//! * true residuals match the paper's table: ~1.1e-2, ~3.6e-6 for both, and
//!   ~4e-9 (QR) vs ~1.2e-9 (Gram) at 1e-10.
//!
//! Usage: `cargo run --release -p tt-bench --bin fig6 [-- --samples 10]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_bench::Args;
use tt_cookies::CookiesProblem;
use tt_solvers::gmres::TrueResidualMode;
use tt_solvers::{tt_gmres, GmresOptions, RoundingMethod};

fn main() {
    let args = Args::parse();
    let samples: usize = args.get("samples").unwrap_or(10);
    let max_iters: usize = args.get("max-iters").unwrap_or(40);
    let problem = CookiesProblem::with_disks(42, tt_cookies::default_disks(), samples);
    let op = problem.operator();
    let f = problem.rhs();
    let pre = problem.mean_preconditioner();

    println!(
        "FIGURE 6: accuracy of TT-GMRES, QR vs Gram rounding; I1 = {} (paper: 1781), I_k = {samples}",
        problem.spatial_dim()
    );
    println!();

    let tols = [1e-2, 1e-6, 1e-10];
    let mut true_table: Vec<(f64, &'static str, f64)> = Vec::new();

    for (panel, &tol) in tols.iter().enumerate() {
        println!(
            "--- panel ({}) epsilon = {tol:.0e} ---",
            // analyze::allow(narrow_cast): panel indexes a 3-element tolerance table, so the ASCII label arithmetic cannot overflow
            (b'a' + panel as u8) as char
        );
        for method in [RoundingMethod::Qr, RoundingMethod::GramLrl] {
            // Dense true residual is exact but only feasible while ranks are
            // moderate; fall back to TT arithmetic at the tightest tolerance.
            let true_mode = if tol >= 1e-6 {
                TrueResidualMode::Dense
            } else {
                TrueResidualMode::Tt
            };
            let opts = GmresOptions {
                tolerance: tol,
                max_iters,
                rounding: method,
                true_residual: true_mode,
                stagnation_window: 5,
                restart: None,
            };
            let (_, trace) = tt_gmres(&op, &pre, &f, &opts);
            print!("{:<10} resid:", method.name());
            for r in &trace.iterations {
                print!(" {:.1e}", r.relative_residual);
            }
            println!();
            print!("{:<10} ranks:", method.name());
            for r in &trace.iterations {
                print!(" {}", r.max_rank);
            }
            println!("   (max {})", trace.max_krylov_rank());
            true_table.push((tol, method.name(), trace.true_relative_residual));
        }
        println!();
    }

    println!("true residual norms (paper §V-D2: 1.1e-2 / 1.1e-2, 3.6e-6 / 3.6e-6, 4.0e-9 QR vs 1.2e-9 Gram):");
    println!("{:>10} {:<10} {:>12}", "epsilon", "rounding", "true resid");
    for (tol, name, tr) in &true_table {
        println!("{:>10.0e} {:<10} {:>12.2e}", tol, name, tr);
    }
    println!();
    println!("# note: at eps = 1e-10 the true residual is computed with TT arithmetic,");
    println!("# whose cancellation floor is ~sqrt(eps_machine)*||F||; the computed");
    println!("# residual histories above are the primary reproduction target there.");
}
