//! The abstract's headline claims, reproduced:
//!
//! 1. "up to 39× parallel speedup when scaling from 1 node to 64 nodes …
//!    for rounding a 16-way tensor with dimensions 100M × 50K × … × 50K ×
//!    10M and TT ranks all of size 20" — model-2-like strong scaling,
//!    32 → 2048 ranks;
//! 2. "on that tensor, a 6× speedup over a state-of-the-art implementation
//!    of the standard TT-Rounding approach using 64 nodes";
//! 3. "a 28× speedup over the same implementation on a smaller tensor with
//!    memory footprint less than 1 MB using a single node (32 cores)" —
//!    the model-4-shaped tensor.
//!
//! Usage: `cargo run --release -p tt-bench --bin headline [-- --scale f]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_bench::{calibrated_model, fmt_secs, print_model_banner, run_scaling_point, Args, Variant};
use tt_core::synthetic::ModelSpec;

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale").unwrap_or(0.002);
    let trials: usize = args.get("trials").unwrap_or(3);
    let cost = calibrated_model();

    // The abstract's tensor: like Table I model 2 but with a 10M last mode.
    let mut spec = ModelSpec::table1(2);
    spec.dims[15] = 10_000_000;
    let spec = spec.scaled(scale);

    println!("HEADLINE CLAIMS (abstract)");
    print_model_banner(&cost);
    println!();

    // ---- Claim 1 + 2: strong scaling of the 16-way tensor. ----
    println!("(1) parallel speedup, 1 node (P=32) -> 64 nodes (P=2048), Gram-LRL:");
    let base = run_scaling_point(&spec, 32, Variant::GramLrl, &cost, trials, 1);
    let top = run_scaling_point(&spec, 2048, Variant::GramLrl, &cost, trials, 2);
    println!(
        "    t(32) = {}   t(2048) = {}   speedup = {:.1}x   (paper: 39x)",
        fmt_secs(base.total()),
        fmt_secs(top.total()),
        base.total() / top.total()
    );

    let qr_top = run_scaling_point(&spec, 2048, Variant::Qr, &cost, trials, 3);
    println!();
    println!("(2) Gram-LRL vs TT-Round-QR at 64 nodes (P=2048):");
    println!(
        "    QR = {}   Gram-LRL = {}   speedup = {:.1}x   (paper: 6x)",
        fmt_secs(qr_top.total()),
        fmt_secs(top.total()),
        qr_top.total() / top.total()
    );

    // ---- Claim 3: the small tensor on one node. ----
    // Model 4 rounded footprint is ~930 KB (< 1 MB).
    let small = ModelSpec::table1(4);
    let p = 32;
    let qr = run_scaling_point(&small, p, Variant::Qr, &cost, trials, 4);
    let gram = run_scaling_point(&small, p, Variant::GramLrl, &cost, trials, 5);
    println!();
    println!(
        "(3) model 4 (footprint {:.0} KB) on one node (P=32):",
        small.memory_bytes(small.target_rank) / 1e3
    );
    println!(
        "    QR = {}   Gram-LRL = {}   speedup = {:.1}x   (paper: 28x)",
        fmt_secs(qr.total()),
        fmt_secs(gram.total()),
        qr.total() / gram.total()
    );
    println!();
    println!("# claim 3 is latency-dominated in the paper (tiny local blocks, TSQR's");
    println!("# log P latency tree vs one allreduce); the ratio here depends on the");
    println!("# alpha/gamma balance of the cost model.");
}
