//! Table I: the four synthetic TT models.
//!
//! Prints the paper's table (modes, dimensions, memory at the rounded rank)
//! and then *verifies* the construction by generating a scaled-down instance
//! of each model and checking that every rounding variant cuts the formal
//! ranks 20 → 10.
//!
//! Usage: `cargo run --release -p tt-bench --bin table1 [-- --scale 0.01]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use rand::SeedableRng;
use tt_bench::{Args, ALL_VARIANTS};
use tt_core::synthetic::{generate_redundant, ModelSpec, TABLE1_RANK, TABLE1_TARGET_RANK};
use tt_core::RoundingOptions;

fn dims_string(dims: &[usize]) -> String {
    let fmt = |d: usize| -> String {
        if d >= 1_000_000 {
            format!("{}M", d / 1_000_000)
        } else if d >= 1_000 {
            format!("{}K", d / 1_000)
        } else {
            format!("{d}")
        }
    };
    if dims.iter().all(|&d| d == dims[0]) {
        format!("{} x ... x {}", fmt(dims[0]), fmt(dims[0]))
    } else {
        format!(
            "{} x {} x ... x {} x {}",
            fmt(dims[0]),
            fmt(dims[1]),
            fmt(dims[dims.len() - 2]),
            fmt(dims[dims.len() - 1])
        )
    }
}

fn human_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.0} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.0} MB", b / 1e6)
    } else {
        format!("{:.0} KB", b / 1e3)
    }
}

fn main() {
    let args = Args::parse();
    // Per-model verification scales, sized so the largest core stays small
    // enough for a quick all-variant check (model 2's full mode-1 dimension
    // is 100M; verification only needs the 20 -> 10 rank contract).
    let verify_scales = [0.01, 0.0002, 0.002, 0.1];
    let scale_override: Option<f64> = args.get("scale");

    println!("TABLE I: Synthetic TT models used for performance experiments.");
    println!(
        "All formal ranks are {TABLE1_RANK} and are cut in half to {TABLE1_TARGET_RANK} by TT-Rounding."
    );
    println!();
    println!(
        "{:<6} {:<6} {:<42} {:>8}",
        "Model", "Modes", "Dimensions", "Memory"
    );
    for id in 1..=4 {
        let spec = ModelSpec::table1(id);
        println!(
            "{:<6} {:<6} {:<42} {:>8}",
            id,
            spec.dims.len(),
            dims_string(&spec.dims),
            human_bytes(spec.memory_bytes(TABLE1_TARGET_RANK))
        );
    }

    println!();
    println!("Verification on scaled instances:");
    println!(
        "{:<6} {:<14} {:<14} {:<14} ok",
        "Model", "ranks before", "ranks after", "variant"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(20220531);
    for id in 1..=4 {
        let scale = scale_override.unwrap_or(verify_scales[id - 1]);
        let spec = ModelSpec::table1(id).scaled(scale);
        let x = generate_redundant(&spec.dims, spec.target_rank, &mut rng);
        for v in ALL_VARIANTS {
            let comm = tt_comm::SelfComm::new();
            let (y, _) = v.round(&comm, &x, &RoundingOptions::with_tolerance(1e-8));
            let before = x.max_rank();
            let after = y.max_rank();
            let ok = after == spec.target_rank;
            println!(
                "{:<6} {:<14} {:<14} {:<14} {}",
                id,
                before,
                after,
                v.name(),
                if ok { "yes" } else { "NO" }
            );
            assert!(ok, "model {id} variant {v:?} failed to halve the ranks");
        }
    }
    println!();
    println!("All variants reproduce the Table I rank reduction (20 -> 10).");
}
