//! Figure 5: TT-GMRES on the cookies problem, three spatial refinements.
//!
//! * Fig. 5a — wall time of preconditioned TT-GMRES (tolerance 1e-5, mean
//!   preconditioner, p = 4 cookies) for QR, Gram-Sim and Gram-Seq(LRL)
//!   rounding; dark = TT-Rounding time, light = everything else. The paper
//!   sees rounding at ~half the runtime for QR and ≥ 2× rounding speedup
//!   from Gram-Seq, for an overall faster solve.
//! * Fig. 5b — relative residual and max Krylov TT rank per iteration; the
//!   curves must be nearly identical across rounding methods.
//!
//! The paper's discretizations are P1 FEM (2855/11141/24981 DoFs); ours are
//! FDM grids of matching size (53²/105²/158², see DESIGN.md). Level 2 takes
//! a few minutes on one core; restrict with `--max-level`.
//!
//! Usage: `cargo run --release -p tt-bench --bin fig5
//!           [-- --max-level 2 --samples 20 --tol 1e-5]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_bench::Args;
use tt_cookies::CookiesProblem;
use tt_solvers::gmres::TrueResidualMode;
use tt_solvers::{tt_gmres, GmresOptions, RoundingMethod};

fn main() {
    let args = Args::parse();
    let max_level: usize = args.get("max-level").unwrap_or(2);
    let samples: usize = args.get("samples").unwrap_or(20);
    let tol: f64 = args.get("tol").unwrap_or(1e-5);

    println!("FIGURE 5: TT-GMRES on the cookies problem (p = 4, tol {tol}, {samples} samples/disk, mean preconditioner)");
    println!();

    let methods = [
        RoundingMethod::Qr,
        RoundingMethod::GramSim,
        RoundingMethod::GramLrl,
    ];

    println!("(a) timings  [dark = TT-Rounding, light = other]");
    println!(
        "{:>6} {:>8} | {:<10} {:>10} {:>10} {:>10} {:>6} {:>9}",
        "I_1", "grid", "rounding", "round(s)", "other(s)", "total(s)", "iters", "resid"
    );

    // (iteration, residual, max TT rank) per recorded GMRES step.
    type ConvergenceCurve = Vec<(usize, f64, usize)>;
    let mut convergence: Vec<(usize, RoundingMethod, ConvergenceCurve)> = Vec::new();

    for level in 0..=max_level.min(2) {
        let problem = CookiesProblem::paper_discretization(level, samples);
        let op = problem.operator();
        let f = problem.rhs();
        let pre = problem.mean_preconditioner();
        for method in methods {
            let opts = GmresOptions {
                tolerance: tol,
                max_iters: 60,
                rounding: method,
                true_residual: TrueResidualMode::Off,
                stagnation_window: 5,
                restart: None,
            };
            let (_, trace) = tt_gmres(&op, &pre, &f, &opts);
            println!(
                "{:>6} {:>5}^2 | {:<10} {:>10.2} {:>10.2} {:>10.2} {:>6} {:>9.2e}",
                problem.spatial_dim(),
                problem.grid,
                method.name(),
                trace.rounding_seconds,
                trace.total_seconds - trace.rounding_seconds,
                trace.total_seconds,
                trace.iterations.len(),
                trace.computed_relative_residual
            );
            convergence.push((
                problem.spatial_dim(),
                method,
                trace
                    .iterations
                    .iter()
                    .map(|r| (r.iter, r.relative_residual, r.max_rank))
                    .collect(),
            ));
        }
        println!();
    }

    println!("(b) convergence histories  [solid: relative residual, dashed: max TT rank]");
    for (dim, method, hist) in &convergence {
        print!("I1={dim:>6} {:<10} resid:", method.name());
        for (_, r, _) in hist {
            print!(" {r:.1e}");
        }
        println!();
        print!("I1={dim:>6} {:<10} ranks:", method.name());
        for (_, _, k) in hist {
            print!(" {k}");
        }
        println!();
    }
    println!();
    println!("# expected: residual/rank curves nearly identical across rounding methods;");
    println!("# Gram-Seq rounding at least ~2x faster than QR rounding (paper Fig. 5a).");
}
