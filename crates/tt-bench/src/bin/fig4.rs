//! Figure 4: weak-scaling time breakdown for model 1.
//!
//! Every rank keeps a constant share of every mode (the global tensor grows
//! proportionally with P), so computation time per rank stays flat while the
//! communication share grows like log P — until the machine's allreduce
//! anomaly kicks in past 32 nodes (§V-C), which the optional congestion knee
//! reproduces (`--knee 1024`).
//!
//! Usage: `cargo run --release -p tt-bench --bin fig4
//!           [-- --local 64 --trials n --knee P]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job
use tt_bench::{
    calibrated_model, fmt_secs, print_model_banner, run_scaling_point_dims, Args, ALL_VARIANTS,
};
use tt_core::synthetic::ModelSpec;

fn main() {
    let args = Args::parse();
    // Per-rank share of each of the 50 modes of model 1 (2000/32 ≈ 63 for a
    // full-size one-node run).
    let local: usize = args.get("local").unwrap_or(63);
    let trials: usize = args.get("trials").unwrap_or(3);
    let mut cost = calibrated_model();
    if let Some(knee) = args.get::<usize>("knee") {
        cost.congestion_knee = Some(knee);
        cost.congestion_factor = args.get("knee-factor").unwrap_or(3.0);
        println!(
            "# congestion knee enabled at P = {knee} (x{} per doubling)",
            cost.congestion_factor
        );
    }

    let spec = ModelSpec::table1(1);
    let n_modes = spec.dims.len();
    let local_dims = vec![local; n_modes];

    println!(
        "FIGURE 4: weak scaling breakdown, model 1 ({n_modes} modes, {local} slices/rank/mode)"
    );
    print_model_banner(&cost);
    println!();
    println!(
        "{:>6} | {:<12} {:>14} {:>14} {:>14} {:>8}",
        "P", "variant", "compute", "comm", "total", "comm%"
    );

    for &p in &[1usize, 4, 16, 64, 256, 1024, 2048] {
        for v in ALL_VARIANTS {
            let run = run_scaling_point_dims(
                &local_dims,
                spec.target_rank,
                p,
                v,
                &cost,
                trials,
                400 + p as u64,
            );
            println!(
                "{:>6} | {:<12} {:>14} {:>14} {:>14} {:>7.1}%",
                p,
                v.name(),
                fmt_secs(run.compute_s),
                fmt_secs(run.comm_s),
                fmt_secs(run.total()),
                100.0 * run.comm_s / run.total()
            );
        }
        println!();
    }
    println!("# expected shapes: flat compute per variant; Gram comm grows ~log P and");
    println!("# stays below QR comm (TSQR carries an extra log P bandwidth factor).");
}
