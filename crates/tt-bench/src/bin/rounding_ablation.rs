//! Rounding-family ablation: accuracy × rank × time across every variant.
//!
//! One fixed graded-spectrum instance (a rank-`BASE_RANK` base plus noise
//! `NOISE_REL` below it in norm) runs through all seven rounding paths —
//! the QR baseline (Alg. 2), Gram sequence RLR (Alg. 6) and simultaneous
//! (Alg. 5) at tolerance `TOL`, the three fixed-rank randomized variants at
//! the base rank, and the adaptive Khatri–Rao variant at ε = `TOL` — and
//! reports for each: achieved relative error, the variant's accuracy bound,
//! the maximum output rank, and mean/min wall time over `--reps` runs.
//!
//! With `--json <path>` each row is also emitted as a JSONL entry
//!
//! ```text
//! {"id":"rounding_qr","mean_ns":…,"min_ns":…,"samples":…,
//!  "rel_err":…,"bound":…,"max_rank":…}
//! ```
//!
//! which `cargo xtask bench-check` consumes: it gates `rel_err ≤ bound`
//! unconditionally, and rank drift plus >15% mean-time regressions against
//! the recorded `results/BENCH_rounding_ablation.json` baseline.
//!
//! Usage: `cargo run --release -p tt-bench --bin rounding_ablation
//!         [-- --reps N --json PATH]`

#![allow(clippy::print_stdout)] // user-facing output is this target's job

use std::time::Instant;

use rand::SeedableRng;
use tt_bench::{fmt_secs, Args};
use tt_core::round::{
    round_gram_rlr, round_gram_simultaneous, round_qr, round_randomized, RandomizedOptions,
    RandomizedVariant,
};
use tt_core::TtTensor;

/// Mode sizes of the ablation instance (big enough that a rounding call is
/// milliseconds, small enough for a CI gate).
const DIMS: [usize; 4] = [40, 40, 40, 40];
/// TT ranks of the dominant part; the input's formal ranks are twice this.
const BASE_RANK: usize = 12;
/// Relative norm of the noise term riding on the base.
const NOISE_REL: f64 = 1e-6;
/// Rounding tolerance for the ε-driven variants (well above the noise, well
/// below the base spectrum: every variant should cut back to `BASE_RANK`).
const TOL: f64 = 1e-4;
/// Sketch oversampling for the fixed-rank randomized variants.
const OVERSAMPLING: usize = 8;
/// Seed for instance generation and all sketches.
const SEED: u64 = 2022;

/// One ablation row, in both the printed table and the JSONL stream.
struct Row {
    id: &'static str,
    rel_err: f64,
    bound: f64,
    max_rank: usize,
    mean_ns: u128,
    min_ns: u128,
    samples: u64,
}

/// Graded-spectrum instance: base + NOISE_REL·noise, both random TT.
fn instance() -> TtTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let ranks = vec![BASE_RANK; DIMS.len() - 1];
    let base = TtTensor::random(&DIMS, &ranks, &mut rng);
    let mut noise = TtTensor::random(&DIMS, &ranks, &mut rng);
    noise.scale(NOISE_REL * base.norm() / noise.norm());
    base.add(&noise)
}

/// Times `reps` runs of one variant and measures its achieved error.
fn measure(
    id: &'static str,
    bound: f64,
    reps: usize,
    x: &TtTensor,
    xnorm: f64,
    round: impl Fn(&TtTensor) -> TtTensor,
) -> Row {
    let mut min_ns = u128::MAX;
    let mut total_ns: u128 = 0;
    let mut y = round(x); // warm-up, also the accuracy sample
    for _ in 0..reps {
        let t0 = Instant::now();
        y = round(x);
        let dt = t0.elapsed().as_nanos();
        min_ns = min_ns.min(dt);
        total_ns += dt;
    }
    let rel_err = y.sub(x).norm() / xnorm;
    Row {
        id,
        rel_err,
        bound,
        max_rank: y.max_rank(),
        mean_ns: total_ns / reps as u128,
        min_ns,
        samples: reps as u64,
    }
}

fn main() {
    let args = Args::parse();
    let reps: usize = args.get("reps").unwrap_or(12);
    let x = instance();
    let xnorm = x.norm();

    let fixed = |v: RandomizedVariant| {
        RandomizedOptions::uniform(BASE_RANK, DIMS.len())
            .oversample(OVERSAMPLING)
            .seed(SEED)
            .variant(v)
    };
    // Accuracy bounds. ε-driven variants promise ε·‖X‖ (1.5 slack for the
    // deterministic ones, matching the property-test constant; the adaptive
    // certificate needs none). Fixed-rank variants can at best reach the
    // noise floor; the constants are the usual sketch-quality factors with
    // generous margin — one-sided ~(1 + √(r/(s−1))), two-sided paying an
    // extra pseudo-inverse conditioning factor.
    let rows = vec![
        measure("rounding_qr", 1.5 * TOL, reps, &x, xnorm, |x| {
            round_qr(x, TOL)
        }),
        measure("rounding_gram_rlr", 1.5 * TOL, reps, &x, xnorm, |x| {
            round_gram_rlr(x, TOL)
        }),
        measure("rounding_gram_sim", 1.5 * TOL, reps, &x, xnorm, |x| {
            round_gram_simultaneous(x, TOL)
        }),
        measure(
            "rounding_rand_then_orth",
            100.0 * NOISE_REL,
            reps,
            &x,
            xnorm,
            |x| round_randomized(x, &fixed(RandomizedVariant::RandThenOrth)),
        ),
        measure(
            "rounding_orth_then_rand",
            100.0 * NOISE_REL,
            reps,
            &x,
            xnorm,
            |x| round_randomized(x, &fixed(RandomizedVariant::OrthThenRand)),
        ),
        measure(
            "rounding_two_sided",
            10_000.0 * NOISE_REL,
            reps,
            &x,
            xnorm,
            |x| round_randomized(x, &fixed(RandomizedVariant::TwoSided)),
        ),
        measure("rounding_adaptive_kr", TOL, reps, &x, xnorm, |x| {
            round_randomized(x, &RandomizedOptions::adaptive(TOL).seed(SEED))
        }),
    ];

    println!(
        "# rounding ablation: dims {DIMS:?}, base rank {BASE_RANK} (formal {}), noise {NOISE_REL:.0e}, tol {TOL:.0e}, {reps} reps",
        2 * BASE_RANK
    );
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "variant", "rel error", "bound", "max rank", "mean", "min"
    );
    for r in &rows {
        println!(
            "{:<26} {:>10.2e} {:>10.2e} {:>9} {:>12} {:>12}",
            r.id,
            r.rel_err,
            r.bound,
            r.max_rank,
            fmt_secs(r.mean_ns as f64 * 1e-9),
            fmt_secs(r.min_ns as f64 * 1e-9)
        );
        if r.rel_err > r.bound {
            println!("  ^ WARNING: accuracy bound violated");
        }
    }

    if let Some(path) = args.get::<String>("json") {
        let mut text = String::new();
        for r in &rows {
            text.push_str(&format!(
                "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{},\"rel_err\":{:e},\"bound\":{:e},\"max_rank\":{}}}\n",
                r.id, r.mean_ns, r.min_ns, r.samples, r.rel_err, r.bound, r.max_rank
            ));
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("rounding_ablation: could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("# wrote {path}");
    }
}
