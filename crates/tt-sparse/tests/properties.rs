//! Property tests for the sparse substrate: the banded direct solver and CG
//! must agree on random SPD banded systems, and CSR algebra must match its
//! dense shadow.

use proptest::prelude::*;
use tt_sparse::{conjugate_gradient, BandedCholesky, CooBuilder, CsrMatrix};

/// Random diagonally-dominant symmetric banded matrix (hence SPD).
fn random_spd_banded(n: usize, bw: usize, seed: u64) -> CsrMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 500.0 - 1.0
    };
    let mut b = CooBuilder::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for i in 0..n {
        for j in i + 1..(i + bw + 1).min(n) {
            let v = next();
            b.add(i, j, v);
            b.add(j, i, v);
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for (i, s) in row_sums.iter().enumerate() {
        b.add(i, i, s + 1.0);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Direct banded solve and Jacobi-CG agree.
    #[test]
    fn direct_and_cg_agree(n in 2usize..40, bw in 1usize..5, seed in any::<u64>()) {
        let a = random_spd_banded(n, bw, seed);
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let f = BandedCholesky::factor(&a).expect("diagonally dominant => SPD");
        let mut direct = rhs.clone();
        f.solve_in_place(&mut direct);
        let mut iterative = vec![0.0; n];
        let out = conjugate_gradient(&a, &rhs, &mut iterative, 1e-12, 10 * n + 50);
        prop_assert!(out.converged, "{out:?}");
        for i in 0..n {
            prop_assert!((direct[i] - iterative[i]).abs() <= 1e-7 * (1.0 + direct[i].abs()));
        }
    }

    /// Solving then multiplying returns the right-hand side.
    #[test]
    fn solve_matvec_roundtrip(n in 2usize..50, bw in 1usize..6, seed in any::<u64>()) {
        let a = random_spd_banded(n, bw, seed);
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let f = BandedCholesky::factor(&a).unwrap();
        let mut x = rhs.clone();
        f.solve_in_place(&mut x);
        let mut back = vec![0.0; n];
        a.matvec(&x, &mut back);
        for i in 0..n {
            prop_assert!((back[i] - rhs[i]).abs() <= 1e-8 * (1.0 + rhs[i].abs()));
        }
    }

    /// CSR matvec equals dense matvec.
    #[test]
    fn csr_matvec_matches_dense(n in 1usize..20, bw in 0usize..4, seed in any::<u64>()) {
        let a = random_spd_banded(n, bw.min(n.saturating_sub(1)), seed);
        let d = a.to_dense();
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
        let mut y = vec![0.0; n];
        a.matvec(&x, &mut y);
        for i in 0..n {
            let expect: f64 = (0..n).map(|j| d[(i, j)] * x[j]).sum();
            prop_assert!((y[i] - expect).abs() <= 1e-10 * (1.0 + expect.abs()));
        }
    }

    /// add_scaled is elementwise.
    #[test]
    fn add_scaled_elementwise(n in 1usize..15, seed in any::<u64>(), alpha in -3.0f64..3.0) {
        let a = random_spd_banded(n, 2.min(n.saturating_sub(1)), seed);
        let b = random_spd_banded(n, 1.min(n.saturating_sub(1)), seed.wrapping_add(5));
        let s = a.add_scaled(alpha, &b);
        let (da, db, ds) = (a.to_dense(), b.to_dense(), s.to_dense());
        for i in 0..n {
            for j in 0..n {
                let expect = da[(i, j)] + alpha * db[(i, j)];
                prop_assert!((ds[(i, j)] - expect).abs() <= 1e-11 * (1.0 + expect.abs()));
            }
        }
    }
}
