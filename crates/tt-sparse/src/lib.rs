//! Sparse-matrix substrate for the cookies-problem discretization.
//!
//! The paper's application experiments (§V-D) solve a parametrized diffusion
//! PDE whose mode-1 operator blocks are large sparse SPD stiffness matrices;
//! the mean preconditioner requires *solving* with one of them on every
//! application. This crate provides the three pieces that requires:
//!
//! * [`CsrMatrix`] — compressed-sparse-row storage with matrix–(multi)vector
//!   products (the operator application inside TT-GMRES),
//! * [`BandedCholesky`] — an exact direct solver for the banded SPD systems a
//!   uniform-grid finite-difference discretization produces (substituting
//!   for the sparse direct solves FreeFem++/MATLAB performed in the paper),
//! * [`conjugate_gradient`] — Jacobi-preconditioned CG as the
//!   matrix-structure-agnostic alternative.

#![forbid(unsafe_code)]

pub mod banded;
pub mod cg;
pub mod csr;

pub use banded::BandedCholesky;
pub use cg::{conjugate_gradient, CgOutcome};
pub use csr::{CooBuilder, CsrMatrix};
