//! Banded SPD Cholesky factorization.
//!
//! A 5-point finite-difference discretization on an `nx × ny` grid in
//! natural ordering has half-bandwidth `nx`, so its Cholesky factor fits in
//! band storage with no fill outside the band. This gives an *exact* direct
//! solver for the mean-preconditioner systems at `O(n·bw²)` factorization
//! and `O(n·bw)` solve cost — the substitute for the sparse direct solves
//! the paper's MATLAB/FreeFem++ pipeline used.

use crate::csr::CsrMatrix;
use tt_linalg::Matrix;

/// Cholesky factorization `A = L Lᵀ` of a banded SPD matrix, stored in
/// LAPACK-style lower band format: `band[(d, j)] = L[j + d, j]` for
/// `0 ≤ d ≤ bw`.
#[derive(Debug, Clone)]
pub struct BandedCholesky {
    n: usize,
    bw: usize,
    /// `(bw + 1) × n` band storage of L.
    band: Matrix,
}

impl BandedCholesky {
    /// Factors a symmetric positive-definite CSR matrix.
    ///
    /// Returns `None` if a non-positive pivot is hit (matrix not SPD).
    pub fn factor(a: &CsrMatrix) -> Option<BandedCholesky> {
        assert_eq!(
            a.rows(),
            a.cols(),
            "banded Cholesky requires a square matrix"
        );
        let n = a.rows();
        let bw = a.half_bandwidth();
        // Load lower band of A.
        let mut band = Matrix::zeros(bw + 1, n);
        for i in 0..n {
            for (j, v) in a.row(i) {
                if j <= i {
                    band[(i - j, j)] = v;
                }
            }
        }
        // In-place banded Cholesky (left-looking on columns).
        for j in 0..n {
            let d = band[(0, j)];
            if d <= 0.0 {
                return None;
            }
            let lj = d.sqrt();
            band[(0, j)] = lj;
            let inv = 1.0 / lj;
            let top = (j + bw + 1).min(n);
            for i in j + 1..top {
                band[(i - j, j)] *= inv;
            }
            // Rank-1 update of the remaining columns within the band.
            for k in j + 1..top {
                let ljk = band[(k - j, j)];
                // analyze::allow(float_cmp): sparsity skip in the rank-1 update — dropping exactly zero multipliers is lossless (LAPACK idiom)
                if ljk == 0.0 {
                    continue;
                }
                for i in k..top {
                    let delta = ljk * band[(i - j, j)];
                    band[(i - k, k)] -= delta;
                }
            }
        }
        Some(BandedCholesky { n, bw, band })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Half-bandwidth of the factor.
    pub fn bandwidth(&self) -> usize {
        self.bw
    }

    /// Solves `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n, "solve: rhs length mismatch");
        let n = self.n;
        let bw = self.bw;
        // Forward: L y = b
        for j in 0..n {
            let yj = b[j] / self.band[(0, j)];
            b[j] = yj;
            let top = (j + bw + 1).min(n);
            for (i, bi) in b.iter_mut().enumerate().take(top).skip(j + 1) {
                *bi -= self.band[(i - j, j)] * yj;
            }
        }
        // Backward: Lᵀ x = y
        for j in (0..n).rev() {
            let top = (j + bw + 1).min(n);
            let mut s = b[j];
            for (i, &bi) in b.iter().enumerate().take(top).skip(j + 1) {
                s -= self.band[(i - j, j)] * bi;
            }
            b[j] = s / self.band[(0, j)];
        }
    }

    /// Solves `A X = B` column-by-column on a dense matrix in place.
    pub fn solve_dense_in_place(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.n, "solve: rhs rows mismatch");
        for c in 0..b.cols() {
            self.solve_in_place(b.col_mut(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;

    /// 1-D Laplacian (tridiagonal SPD).
    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
                b.add(i + 1, i, -1.0);
            }
        }
        b.build()
    }

    /// 2-D 5-point Laplacian on an nx × ny grid.
    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut b = CooBuilder::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                b.add(i, i, 4.0);
                if x + 1 < nx {
                    b.add(i, i + 1, -1.0);
                    b.add(i + 1, i, -1.0);
                }
                if y + 1 < ny {
                    b.add(i, i + nx, -1.0);
                    b.add(i + nx, i, -1.0);
                }
            }
        }
        b.build()
    }

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        a.matvec(x, &mut ax);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solve_1d_laplacian() {
        let a = laplacian_1d(50);
        let f = BandedCholesky::factor(&a).expect("SPD");
        assert_eq!(f.bandwidth(), 1);
        let b: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        f.solve_in_place(&mut x);
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn solve_2d_laplacian() {
        let a = laplacian_2d(13, 9);
        let f = BandedCholesky::factor(&a).expect("SPD");
        assert_eq!(f.bandwidth(), 13);
        let n = 13 * 9;
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut x = b.clone();
        f.solve_in_place(&mut x);
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn rejects_indefinite() {
        let mut b = CooBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 2.0);
        b.add(1, 0, 2.0);
        b.add(1, 1, 1.0);
        assert!(BandedCholesky::factor(&b.build()).is_none());
    }

    #[test]
    fn dense_multi_rhs() {
        let a = laplacian_1d(20);
        let f = BandedCholesky::factor(&a).unwrap();
        let mut rhs = Matrix::from_fn(20, 3, |i, j| (i + j) as f64);
        let orig = rhs.clone();
        f.solve_dense_in_place(&mut rhs);
        for c in 0..3 {
            assert!(residual(&a, rhs.col(c), orig.col(c)) < 1e-10);
        }
    }

    #[test]
    fn diagonal_matrix_solve_is_division() {
        let d = CsrMatrix::from_diagonal(&[2.0, 4.0, 8.0]);
        let f = BandedCholesky::factor(&d).unwrap();
        let mut x = vec![2.0, 4.0, 8.0];
        f.solve_in_place(&mut x);
        for v in x {
            assert!((v - 1.0).abs() < 1e-15);
        }
    }
}
