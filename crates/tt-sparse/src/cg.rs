//! Jacobi-preconditioned conjugate gradients.
//!
//! Structure-agnostic iterative alternative to [`crate::BandedCholesky`] for
//! applying the inverse of an SPD operator (used in tests as an independent
//! check on the direct solver, and available for discretizations whose
//! bandwidth makes the banded factorization unattractive).

use crate::csr::CsrMatrix;

/// Result of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual norm `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Solves `A x = b` for SPD `A` with Jacobi (diagonal) preconditioning.
///
/// `x` holds the initial guess on entry and the solution on exit.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
) -> CgOutcome {
    let n = b.len();
    assert_eq!(a.rows(), n, "cg: dimension mismatch");
    assert_eq!(x.len(), n, "cg: dimension mismatch");

    let diag = a.diagonal();
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
        .collect();

    let bnorm = norm(b);
    // analyze::allow(float_cmp): exactly zero right-hand side has the exact solution x = 0; a tolerance would misclassify tiny-but-valid systems
    if bnorm == 0.0 {
        x.fill(0.0);
        return CgOutcome {
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }

    let mut r = vec![0.0; n];
    a.matvec(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 0..max_iters {
        let rnorm = norm(&r);
        if rnorm <= rel_tol * bnorm {
            return CgOutcome {
                iterations: it,
                relative_residual: rnorm / bnorm,
                converged: true,
            };
        }
        a.matvec(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or breakdown); stop with the current iterate.
            return CgOutcome {
                iterations: it,
                relative_residual: rnorm / bnorm,
                converged: false,
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rnorm = norm(&r);
    CgOutcome {
        iterations: max_iters,
        relative_residual: rnorm / bnorm,
        converged: rnorm <= rel_tol * bnorm,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use crate::BandedCholesky;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut b = CooBuilder::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                b.add(i, i, 4.0);
                if x + 1 < nx {
                    b.add(i, i + 1, -1.0);
                    b.add(i + 1, i, -1.0);
                }
                if y + 1 < ny {
                    b.add(i, i + nx, -1.0);
                    b.add(i + nx, i, -1.0);
                }
            }
        }
        b.build()
    }

    #[test]
    fn cg_solves_laplacian() {
        let a = laplacian_2d(10, 10);
        let b: Vec<f64> = (0..100).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let mut x = vec![0.0; 100];
        let out = conjugate_gradient(&a, &b, &mut x, 1e-10, 1000);
        assert!(out.converged, "{out:?}");
        assert!(out.relative_residual <= 1e-10);
    }

    #[test]
    fn cg_matches_direct_solver() {
        let a = laplacian_2d(8, 6);
        let n = 48;
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut x_cg = vec![0.0; n];
        conjugate_gradient(&a, &b, &mut x_cg, 1e-12, 2000);
        let f = BandedCholesky::factor(&a).unwrap();
        let mut x_direct = b.clone();
        f.solve_in_place(&mut x_direct);
        for i in 0..n {
            assert!((x_cg[i] - x_direct[i]).abs() < 1e-8, "entry {i}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_2d(4, 4);
        let b = vec![0.0; 16];
        let mut x = vec![5.0; 16];
        let out = conjugate_gradient(&a, &b, &mut x, 1e-10, 100);
        assert!(out.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_converges_immediately() {
        let a = laplacian_2d(5, 5);
        let b: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let mut x = vec![0.0; 25];
        conjugate_gradient(&a, &b, &mut x, 1e-12, 1000);
        let x0 = x.clone();
        let out = conjugate_gradient(&a, &b, &mut x, 1e-10, 100);
        assert_eq!(out.iterations, 0);
        assert_eq!(x, x0);
    }
}
