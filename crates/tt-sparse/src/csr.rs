//! Compressed-sparse-row matrices.

use tt_linalg::Matrix;

/// Triplet (COO) accumulator used to assemble discretization matrices.
/// Duplicate entries are summed, matching FEM/FDM assembly semantics.
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Creates an empty `rows × cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `v` at `(i, j)` (accumulating with any existing entry there).
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        // analyze::allow(float_cmp): sparsity-pattern filter — only exactly zero values may be omitted from the assembled matrix
        if v != 0.0 {
            self.entries.push((i, j, v));
        }
    }

    /// Finalizes into CSR form (sorted rows, duplicates summed).
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut vals = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);
        let mut cur_row = 0;
        let mut k = 0;
        while k < self.entries.len() {
            let (i, j, mut v) = self.entries[k];
            k += 1;
            while k < self.entries.len() && self.entries[k].0 == i && self.entries[k].1 == j {
                v += self.entries[k].2;
                k += 1;
            }
            while cur_row < i {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            col_idx.push(j);
            vals.push(v);
        }
        while cur_row < self.rows {
            row_ptr.push(col_idx.len());
            cur_row += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

/// A compressed-sparse-row `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The `n × n` identity in CSR form.
    pub fn identity(n: usize) -> CsrMatrix {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// A diagonal matrix from its diagonal entries.
    pub fn from_diagonal(d: &[f64]) -> CsrMatrix {
        let n = d.len();
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: d.to_vec(),
        }
    }

    /// Iterator over the stored entries of row `i` as `(col, value)`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// The main diagonal (zeros where unstored).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        let mut d = vec![0.0; n];
        for (i, di) in d.iter_mut().enumerate().take(n) {
            for (j, v) in self.row(i) {
                if j == i {
                    *di = v;
                }
            }
        }
        d
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (i, yi) in y.iter_mut().enumerate().take(self.rows) {
            let mut s = 0.0;
            for (j, v) in self.row(i) {
                s += v * x[j];
            }
            *yi = s;
        }
    }

    /// `Y = A X` on every column of a dense matrix (used to apply a sparse
    /// operator block to a TT-core unfolding).
    pub fn mat_mul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.cols, "mat_mul_dense: dimension mismatch");
        let mut y = Matrix::zeros(self.rows, x.cols());
        for c in 0..x.cols() {
            let xcol = x.col(c);
            let ycol = y.col_mut(c);
            for (i, yv) in ycol.iter_mut().enumerate().take(self.rows) {
                let mut s = 0.0;
                let lo = self.row_ptr[i];
                let hi = self.row_ptr[i + 1];
                for k in lo..hi {
                    s += self.vals[k] * xcol[self.col_idx[k]];
                }
                *yv = s;
            }
        }
        y
    }

    /// Dense copy (tests and tiny problems only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Checks structural+numerical symmetry to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                let vt = self.get(j, i);
                if (v - vt).abs() > tol * (1.0 + v.abs()) {
                    return false;
                }
            }
        }
        true
    }

    /// Entry lookup (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.vals[lo + k],
            Err(_) => 0.0,
        }
    }

    /// `C = self + alpha * other` (same shape, union sparsity).
    pub fn add_scaled(&self, alpha: f64, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut b = CooBuilder::new(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                b.add(i, j, v);
            }
            for (j, v) in other.row(i) {
                b.add(i, j, alpha * v);
            }
        }
        b.build()
    }

    /// Half bandwidth: `max |i - j|` over stored entries (for the banded
    /// Cholesky solver).
    pub fn half_bandwidth(&self) -> usize {
        let mut bw = 0;
        for i in 0..self.rows {
            for (j, _) in self.row(i) {
                bw = bw.max(i.abs_diff(j));
            }
        }
        bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [2 0 1]
        // [0 3 0]
        // [1 0 4]
        let mut b = CooBuilder::new(3, 3);
        b.add(0, 0, 2.0);
        b.add(0, 2, 1.0);
        b.add(1, 1, 3.0);
        b.add(2, 0, 1.0);
        b.add(2, 2, 4.0);
        b.build()
    }

    #[test]
    fn build_and_lookup() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 4.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CooBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        b.add(1, 0, 1.0);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, vec![5.0, 6.0, 13.0]);
    }

    #[test]
    fn mat_mul_dense_matches_matvec() {
        let a = sample();
        let x = Matrix::from_row_major(3, 2, &[1., 4., 2., 5., 3., 6.]);
        let y = a.mat_mul_dense(&x);
        let mut col0 = vec![0.0; 3];
        a.matvec(&[1., 2., 3.], &mut col0);
        assert_eq!(y.col(0), &col0[..]);
    }

    #[test]
    fn symmetry_check() {
        assert!(sample().is_symmetric(1e-14));
        let mut b = CooBuilder::new(2, 2);
        b.add(0, 1, 1.0);
        assert!(!b.build().is_symmetric(1e-14));
    }

    #[test]
    fn add_scaled_unions() {
        let a = sample();
        let i = CsrMatrix::identity(3);
        let s = a.add_scaled(10.0, &i);
        assert_eq!(s.get(0, 0), 12.0);
        assert_eq!(s.get(1, 1), 13.0);
        assert_eq!(s.get(0, 2), 1.0);
    }

    #[test]
    fn empty_rows_ok() {
        let mut b = CooBuilder::new(4, 4);
        b.add(0, 0, 1.0);
        b.add(3, 3, 2.0);
        let a = b.build();
        assert_eq!(a.row(1).count(), 0);
        assert_eq!(a.row(2).count(), 0);
        let mut y = vec![0.0; 4];
        a.matvec(&[1.0; 4], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn bandwidth() {
        assert_eq!(sample().half_bandwidth(), 2);
        assert_eq!(CsrMatrix::identity(5).half_bandwidth(), 0);
    }

    #[test]
    fn diagonal_extraction() {
        let d = sample().diagonal();
        assert_eq!(d, vec![2.0, 3.0, 4.0]);
    }
}
