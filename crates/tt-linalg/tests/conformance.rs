//! Kernel-conformance suite: the packed blocked GEMM/SYRK engine against the
//! naive-loop reference oracle, over randomized shapes and the edge cases
//! the blocking scheme must absorb (empty operands, single-row/column
//! problems, sub-microkernel tiles, tall-skinny `R₀I × R₁` unfoldings, all
//! four transpose combinations, non-unit `alpha`/`beta`).
//!
//! Error bounds are componentwise and scaled by the contraction depth:
//! both engines compute each entry as a length-`k` inner product, so
//! `|blocked − reference| ≤ c·k·ε·(|op(A)|·|op(B)|)_ij·|alpha| + c·ε·|beta·C|`
//! with a small constant `c` absorbing reassociation. The abs-product is
//! computed with the reference kernel on elementwise-absolute operands.
//!
//! This suite is also the SIMD conformance statement: built with
//! `--features simd` the same properties run against the `std::simd`
//! microkernels (the bounds already cover FMA's different rounding), so CI's
//! simd job replays every shape/transpose/edge-slab case here against the
//! same f64 oracle. The `f32_*` properties at the bottom hold the reduced-
//! precision Gram-accumulation kernels (`block32`) to the analogous
//! componentwise bound with `eps_f32` in place of `eps_f64`.

use proptest::prelude::*;
use rand::SeedableRng;
use tt_linalg::block::{self, SyrkShape, MR, NR};
use tt_linalg::reference;
use tt_linalg::view::MatMut;
use tt_linalg::{Matrix, Trans, EPS};

/// Componentwise bound constant: generous but tight enough to catch any
/// indexing bug (a misplaced entry is wrong by O(1), not O(k·ε)).
const C_BOUND: f64 = 16.0;

fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::gaussian(rows, cols, &mut rng)
}

fn abs_matrix(m: &Matrix) -> Matrix {
    Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)].abs())
}

/// Runs the blocked engine and checks it entry-by-entry against the
/// reference oracle under the componentwise k·ε bound.
#[allow(clippy::too_many_arguments)]
fn assert_gemm_conforms(
    m: usize,
    n: usize,
    k: usize,
    ta: Trans,
    tb: Trans,
    alpha: f64,
    beta: f64,
    seed: u64,
) {
    let a = match ta {
        Trans::No => gaussian(m, k, seed),
        Trans::Yes => gaussian(k, m, seed),
    };
    let b = match tb {
        Trans::No => gaussian(k, n, seed ^ 0x9e37),
        Trans::Yes => gaussian(n, k, seed ^ 0x9e37),
    };
    let c0 = gaussian(m, n, seed ^ 0x51ed);

    // Blocked: beta pre-scaling exactly as the dispatcher performs it.
    let mut blocked = c0.clone();
    blocked.scale(beta);
    if alpha != 0.0 && m > 0 && n > 0 && k > 0 {
        let mut bv: MatMut<'_> = blocked.view_mut();
        block::gemm_accumulate(ta, a.view(), tb, b.view(), alpha, &mut bv);
    }

    // Reference oracle.
    let mut expect = c0.clone();
    reference::gemm_v(ta, a.view(), tb, b.view(), alpha, beta, expect.view_mut());

    // Componentwise bound scaled by the abs-product.
    let mut absprod = Matrix::zeros(m, n);
    reference::gemm_v(
        ta,
        abs_matrix(&a).view(),
        tb,
        abs_matrix(&b).view(),
        alpha.abs(),
        0.0,
        absprod.view_mut(),
    );
    let kf = k as f64 + 2.0;
    for j in 0..n {
        for i in 0..m {
            let tol = C_BOUND * kf * EPS * (absprod[(i, j)] + (beta * c0[(i, j)]).abs() + 1.0);
            let diff = (blocked[(i, j)] - expect[(i, j)]).abs();
            assert!(
                diff <= tol,
                "({m},{n},{k}) {ta:?} {tb:?} alpha={alpha} beta={beta}: \
                 C[{i},{j}] off by {diff:.3e} (tol {tol:.3e})"
            );
        }
    }
}

fn trans_from(bit: bool) -> Trans {
    if bit {
        Trans::Yes
    } else {
        Trans::No
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes spanning sub-tile to multi-cache-block, all transpose
    /// combinations, non-unit alpha and beta.
    #[test]
    fn gemm_conforms_on_random_shapes(
        m in 1usize..200,
        n in 1usize..80,
        k in 1usize..300,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -3.0f64..3.0,
        beta in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        assert_gemm_conforms(m, n, k, trans_from(ta), trans_from(tb), alpha, beta, seed);
    }

    /// Tall-skinny unfolding shapes (`R₀·I × R₁` with small ranks): the
    /// workload the paper's Gram path is built around.
    #[test]
    fn gemm_conforms_on_tall_skinny_unfoldings(
        r0 in 1usize..12,
        dim in 2usize..40,
        r1 in 1usize..12,
        ta in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // op(A): (r0*dim) x r1 unfolding against its own transpose partner.
        assert_gemm_conforms(r1, r1, r0 * dim, Trans::Yes, Trans::No, 1.0, 0.0, seed);
        // And the application GEMM: unfolding times a small square factor.
        assert_gemm_conforms(r0 * dim, r1, r1, trans_from(ta), Trans::No, 1.0, 0.0, seed ^ 1);
    }

    /// SYRK in both orientations vs the reference, including exact-symmetry.
    #[test]
    fn syrk_conforms_on_random_shapes(
        rows in 1usize..220,
        cols in 1usize..60,
        alpha in -3.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let a = gaussian(rows, cols, seed);
        let kf = rows as f64 + 2.0;
        let tn = block::syrk(a.view(), alpha, SyrkShape::TransposeA);
        let tn_ref = reference::syrk_v(a.view(), alpha);
        let mut absprod = Matrix::zeros(cols, cols);
        reference::gemm_v(
            Trans::Yes, abs_matrix(&a).view(), Trans::No, abs_matrix(&a).view(),
            alpha.abs(), 0.0, absprod.view_mut(),
        );
        for i in 0..cols {
            for j in 0..cols {
                let tol = C_BOUND * kf * EPS * (absprod[(i, j)] + 1.0);
                prop_assert!((tn[(i, j)] - tn_ref[(i, j)]).abs() <= tol,
                    "TN {rows}x{cols} C[{i},{j}]");
                prop_assert_eq!(tn[(i, j)], tn[(j, i)]);
            }
        }

        let nt = block::syrk(a.view(), alpha, SyrkShape::TransposeB);
        let nt_ref = reference::syrk_nt_v(a.view(), alpha);
        let kf_nt = cols as f64 + 2.0;
        let mut absprod_nt = Matrix::zeros(rows, rows);
        reference::gemm_v(
            Trans::No, abs_matrix(&a).view(), Trans::Yes, abs_matrix(&a).view(),
            alpha.abs(), 0.0, absprod_nt.view_mut(),
        );
        for i in 0..rows {
            for j in 0..rows {
                let tol = C_BOUND * kf_nt * EPS * (absprod_nt[(i, j)] + 1.0);
                prop_assert!((nt[(i, j)] - nt_ref[(i, j)]).abs() <= tol,
                    "NT {rows}x{cols} C[{i},{j}]");
                prop_assert_eq!(nt[(i, j)], nt[(j, i)]);
            }
        }
    }

    /// The public dispatcher (whatever engine it picks) always agrees with
    /// the reference oracle — the user-facing conformance statement.
    #[test]
    fn dispatcher_conforms(
        m in 1usize..120,
        n in 1usize..50,
        k in 1usize..150,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let (ta, tb) = (trans_from(ta), trans_from(tb));
        let a = match ta { Trans::No => gaussian(m, k, seed), Trans::Yes => gaussian(k, m, seed) };
        let b = match tb { Trans::No => gaussian(k, n, seed ^ 7), Trans::Yes => gaussian(n, k, seed ^ 7) };
        let got = tt_linalg::gemm(ta, &a, tb, &b, alpha);
        let mut expect = Matrix::zeros(m, n);
        reference::gemm_v(ta, a.view(), tb, b.view(), alpha, 0.0, expect.view_mut());
        let tol = C_BOUND * (k as f64 + 2.0) * EPS
            * (1.0 + alpha.abs() * (a.max_abs() * b.max_abs()).max(1.0) * k as f64);
        prop_assert!(got.max_abs_diff(&expect) <= tol);
    }
}

/// `f64::from(f32::EPSILON)`: the unit roundoff governing the reduced-
/// precision Gram-accumulation path.
const EPS32: f64 = f32::EPSILON as f64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The f32-accumulation GEMM against the f64 oracle: all four transpose
    /// combos, edge slabs (shape ranges straddle the MR/NR/KC boundaries),
    /// non-unit alpha/beta — the f64 componentwise bound with `eps_f32` in
    /// place of `eps_f64` (demotion of each operand entry is absorbed by
    /// the same constant).
    #[test]
    fn f32_gemm_tracks_f64_oracle_componentwise(
        m in 1usize..150,
        n in 1usize..60,
        k in 1usize..200,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f64..2.0,
        beta in -1.5f64..1.5,
        seed in any::<u64>(),
    ) {
        let (ta, tb) = (trans_from(ta), trans_from(tb));
        let a = match ta { Trans::No => gaussian(m, k, seed), Trans::Yes => gaussian(k, m, seed) };
        let b = match tb { Trans::No => gaussian(k, n, seed ^ 11), Trans::Yes => gaussian(n, k, seed ^ 11) };
        let c0 = gaussian(m, n, seed ^ 22);

        let mut got = c0.clone();
        tt_linalg::gemm_f32_v(ta, a.view(), tb, b.view(), alpha, beta, got.view_mut());
        let mut expect = c0.clone();
        reference::gemm_v(ta, a.view(), tb, b.view(), alpha, beta, expect.view_mut());

        let mut absprod = Matrix::zeros(m, n);
        reference::gemm_v(
            ta, abs_matrix(&a).view(), tb, abs_matrix(&b).view(),
            alpha.abs(), 0.0, absprod.view_mut(),
        );
        let kf = k as f64 + 4.0;
        for i in 0..m {
            for j in 0..n {
                let tol = C_BOUND * kf * EPS32 * (absprod[(i, j)] + 1.0)
                    + C_BOUND * EPS32 * (beta * c0[(i, j)]).abs();
                prop_assert!(
                    (got[(i, j)] - expect[(i, j)]).abs() <= tol,
                    "f32 gemm {}x{}x{} C[{},{}]", m, n, k, i, j
                );
            }
        }
    }

    /// The f32-accumulation SYRK in both orientations against the f64
    /// oracle, exact symmetry included (the property the Gram sweeps rely
    /// on when feeding the symmetric eigensolver).
    #[test]
    fn f32_syrk_tracks_f64_oracle_componentwise(
        rows in 1usize..180,
        cols in 1usize..48,
        alpha in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let a = gaussian(rows, cols, seed);
        let cases = [
            (
                "TN",
                tt_linalg::syrk_f32_v(a.view(), alpha),
                reference::syrk_v(a.view(), alpha),
                rows,
                cols,
            ),
            (
                "NT",
                tt_linalg::syrk_nt_f32_v(a.view(), alpha),
                reference::syrk_nt_v(a.view(), alpha),
                cols,
                rows,
            ),
        ];
        for (label, got, oracle, kdepth, dim) in cases {
            let kf = kdepth as f64 + 4.0;
            let scale = a.max_abs().max(1.0);
            let tol = C_BOUND * kf * EPS32 * alpha.abs().max(1.0) * scale * scale;
            for i in 0..dim {
                for j in 0..dim {
                    prop_assert!(
                        (got[(i, j)] - oracle[(i, j)]).abs() <= tol,
                        "f32 syrk {} {}x{} C[{},{}]", label, rows, cols, i, j
                    );
                    prop_assert_eq!(got[(i, j)], got[(j, i)]);
                }
            }
        }
    }
}

/// Deterministic edge cases the blocking scheme must absorb without special
/// casing in the microkernel.
#[test]
fn gemm_edge_cases() {
    for &(m, n, k) in &[
        (0usize, 5usize, 3usize), // 0×n output
        (5, 0, 3),                // m×0 output
        (4, 4, 0),                // empty contraction: C = beta·C
        (1, 1, 1),                // scalar
        (1, 64, 300),             // single row, deep contraction
        (300, 1, 64),             // single column
        (MR - 1, NR - 1, 5),      // strictly sub-microkernel tile
        (MR, NR, 1),              // exact tile, k=1
        (MR + 1, NR + 1, 2),      // one-past-tile
        (2000, 4, 4),             // extreme tall-skinny
        (4, 2000, 4),             // extreme short-wide
    ] {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            assert_gemm_conforms(m, n, k, ta, tb, -1.75, 0.5, 1000 + m as u64 + n as u64);
        }
    }
}

/// Alpha = 0 must leave `C = beta·C` exactly (no kernel invocation).
#[test]
fn gemm_zero_alpha_is_exact() {
    let c0 = gaussian(40, 40, 5);
    let a = gaussian(40, 40, 6);
    let b = gaussian(40, 40, 7);
    let mut c = c0.clone();
    tt_linalg::gemm_into(Trans::No, &a, Trans::No, &b, 0.0, 2.0, &mut c);
    for j in 0..40 {
        for i in 0..40 {
            assert_eq!(c[(i, j)], 2.0 * c0[(i, j)]);
        }
    }
}

/// SYRK edge cases: empty, single-vector, and square-at-block-boundary.
#[test]
fn syrk_edge_cases() {
    for &(rows, cols) in &[
        (0usize, 4usize),
        (4, 0),
        (1, 1),
        (1, 50),
        (50, 1),
        (256, 256),
    ] {
        let a = gaussian(rows, cols, 2000 + rows as u64);
        let tn = block::syrk(a.view(), 2.0, SyrkShape::TransposeA);
        let tn_ref = reference::syrk_v(a.view(), 2.0);
        assert_eq!(tn.shape(), (cols, cols));
        assert!(
            tn.max_abs_diff(&tn_ref)
                <= C_BOUND * (rows as f64 + 2.0) * EPS * (1.0 + tn_ref.max_abs()),
            "TN {rows}x{cols}"
        );
        let nt = block::syrk(a.view(), 2.0, SyrkShape::TransposeB);
        let nt_ref = reference::syrk_nt_v(a.view(), 2.0);
        assert_eq!(nt.shape(), (rows, rows));
        assert!(
            nt.max_abs_diff(&nt_ref)
                <= C_BOUND * (cols as f64 + 2.0) * EPS * (1.0 + nt_ref.max_abs()),
            "NT {rows}x{cols}"
        );
    }
}
