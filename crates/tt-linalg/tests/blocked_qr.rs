//! Property tests for the compact-WY blocked QR: orthogonality and
//! reconstruction bounds on random and adversarial matrices (rank-deficient,
//! graded singular values), plus agreement with the unblocked oracle.

use proptest::prelude::*;
use rand::SeedableRng;
use tt_linalg::{blocked_qr, gemm, householder_qr, householder_qr_unblocked, Matrix, Trans};

fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::gaussian(rows, cols, &mut rng)
}

/// Asserts ‖QᵀQ − I‖_max and ‖A − QR‖_max bounds for a factorization of `a`.
fn assert_qr_invariants(a: &Matrix, f: &tt_linalg::QrFactors, label: &str) {
    let (m, n) = (a.rows(), a.cols());
    let k = m.min(n);
    let q = f.thin_q();
    let r = f.r();
    assert_eq!(q.shape(), (m, k), "{label}: Q shape");
    assert_eq!(r.shape(), (k, n), "{label}: R shape");

    // Orthogonality: ‖QᵀQ − I‖_max ≤ c·m·ε (Householder Q is backward
    // stable regardless of A's conditioning).
    let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
    let orth = qtq.max_abs_diff(&Matrix::identity(k));
    let orth_bound = 64.0 * (m as f64) * tt_linalg::EPS;
    assert!(
        orth <= orth_bound,
        "{label}: ||QtQ - I|| = {orth:.3e} > {orth_bound:.3e}"
    );

    // Reconstruction: ‖A − QR‖_max ≤ c·m·ε·‖A‖_max.
    let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
    let recon = qr.max_abs_diff(a);
    let recon_bound = 64.0 * (m as f64) * tt_linalg::EPS * (1.0 + a.max_abs());
    assert!(
        recon <= recon_bound,
        "{label}: ||A - QR|| = {recon:.3e} > {recon_bound:.3e}"
    );

    // R strictly upper triangular below the diagonal.
    for j in 0..n {
        for i in j + 1..k {
            assert_eq!(r[(i, j)], 0.0, "{label}: R[{i},{j}] not zero");
        }
    }
}

/// `U diag(s) Vᵀ` with orthonormal `U` (m×n), `V` (n×n): test matrices with
/// prescribed singular values.
fn with_singular_values(m: usize, n: usize, s: &[f64], seed: u64) -> Matrix {
    assert_eq!(s.len(), n);
    let u = householder_qr(&gaussian(m, n, seed)).thin_q();
    let v = householder_qr(&gaussian(n, n, seed ^ 0xabc)).thin_q();
    let mut us = u.clone();
    for (j, &sj) in s.iter().enumerate() {
        us.scale_col(j, sj);
    }
    gemm(Trans::No, &us, Trans::Yes, &v, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes across the blocked/unblocked dispatch boundary.
    #[test]
    fn qr_invariants_on_random_matrices(
        m in 1usize..220,
        n in 1usize..70,
        seed in any::<u64>(),
    ) {
        let a = gaussian(m, n, seed);
        assert_qr_invariants(&a, &householder_qr(&a), "dispatch");
        assert_qr_invariants(&a, &blocked_qr(&a, 16), "blocked-nb16");
    }

    /// Rank-deficient matrices: `A = B·C` with inner rank far below `n`.
    #[test]
    fn qr_invariants_on_rank_deficient(
        m in 20usize..160,
        n in 8usize..40,
        rank in 1usize..6,
        seed in any::<u64>(),
    ) {
        let b = gaussian(m, rank, seed);
        let c = gaussian(rank, n, seed ^ 0x55);
        let a = gemm(Trans::No, &b, Trans::No, &c, 1.0);
        assert_qr_invariants(&a, &blocked_qr(&a, 8), "rank-deficient");
    }

    /// Graded singular values spanning 12 orders of magnitude: the blocked
    /// panel updates must not destroy orthogonality on ill-conditioned input.
    #[test]
    fn qr_invariants_on_graded_spectra(
        m in 40usize..160,
        n in 4usize..32,
        seed in any::<u64>(),
    ) {
        let s: Vec<f64> = (0..n).map(|i| 10f64.powf(-(12.0 * i as f64) / n as f64)).collect();
        let a = with_singular_values(m, n, &s, seed);
        assert_qr_invariants(&a, &blocked_qr(&a, 8), "graded");
    }

    /// Blocked and unblocked produce the same R (they apply the same
    /// reflectors; only the trailing-update association differs).
    #[test]
    fn blocked_r_matches_unblocked(
        m in 10usize..150,
        n in 4usize..48,
        seed in any::<u64>(),
    ) {
        let a = gaussian(m, n, seed);
        let rb = blocked_qr(&a, 16).r();
        let ru = householder_qr_unblocked(&a).r();
        let tol = 256.0 * (m as f64) * tt_linalg::EPS * (1.0 + a.max_abs());
        prop_assert!(rb.max_abs_diff(&ru) <= tol,
            "{m}x{n}: R differs by {:.3e}", rb.max_abs_diff(&ru));
    }
}

/// Adversarial deterministic cases: zero matrix, repeated columns, a column
/// that is already e₁ (τ = 0 reflector), and identity input.
#[test]
fn qr_adversarial_cases() {
    // Zero matrix.
    let z = Matrix::zeros(90, 24);
    let f = blocked_qr(&z, 8);
    assert!(f.r().max_abs() == 0.0);
    let q = f.thin_q();
    let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
    assert!(qtq.max_abs_diff(&Matrix::identity(24)) < 1e-13);

    // All columns identical (rank 1).
    let col = gaussian(80, 1, 3);
    let rep = Matrix::from_fn(80, 20, |i, _| col[(i, 0)]);
    assert_qr_invariants(&rep, &blocked_qr(&rep, 8), "repeated-columns");

    // Identity: every reflector is trivial (τ = 0 path through build_t).
    let id = Matrix::identity(64);
    assert_qr_invariants(&id, &blocked_qr(&id, 16), "identity");

    // Wide matrix: trailing update extends past k = m.
    let wide = gaussian(24, 100, 4);
    assert_qr_invariants(&wide, &blocked_qr(&wide, 8), "wide");
}

/// The WY `apply_qt`/`apply_q` agree with the explicit-Q matrix products.
#[test]
fn wy_applications_match_explicit_q() {
    let a = gaussian(150, 40, 9);
    let f = householder_qr(&a);
    assert!(f.is_blocked(), "dispatch should choose the blocked path");
    let q = f.thin_q();
    let b = gaussian(150, 6, 10);

    let mut qtb = b.clone();
    f.apply_qt(&mut qtb);
    let expect = gemm(Trans::Yes, &q, Trans::No, &b, 1.0);
    assert!(qtb.sub_matrix(0, 0, 40, 6).max_abs_diff(&expect) < 1e-11);

    let mut roundtrip = b.clone();
    f.apply_qt(&mut roundtrip);
    f.apply_q(&mut roundtrip);
    assert!(roundtrip.max_abs_diff(&b) < 1e-11);
}
