//! Bitwise-determinism suite for the shared-memory parallel kernel layer.
//!
//! The contract (DESIGN.md §9): for every thread count, every kernel routed
//! through `tt_linalg::par` produces output **bit-for-bit identical** to the
//! single-threaded run, because work is partitioned only over output blocks
//! and the `k`-reduction order per element never changes. These tests pin
//! that contract on the shapes where it could plausibly break: edge slabs
//! (dimensions not a multiple of any blocking constant), rank-deficient
//! inputs, and partitions narrower than one chunk per thread.
//!
//! `par::with_threads` is used instead of `TT_NUM_THREADS` so the suite
//! genuinely exercises the multi-threaded chunking even on single-core CI
//! runners (the override bypasses the flop threshold and machine-share cap).

use rand::SeedableRng;
use tt_linalg::par::with_threads;
use tt_linalg::{blocked_qr, gemm_v, householder_qr, syrk_nt_v, syrk_v, Matrix, SyrkShape, Trans};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: entry {idx} differs: {x:?} vs {y:?}"
        );
    }
}

/// A rank-deficient matrix: `rank` independent gaussian columns, the rest
/// exact copies (so the deficiency is exact in floating point, not merely
/// numerical).
fn rank_deficient(rows: usize, cols: usize, rank: usize, seed: u64) -> Matrix {
    let mut r = rng(seed);
    let base = Matrix::gaussian(rows, rank.max(1), &mut r);
    Matrix::from_fn(rows, cols, |i, j| base[(i, j % rank.max(1))])
}

const THREAD_COUNTS: [usize; 4] = [2, 3, 4, 8];

/// Shapes straddling the blocking constants: MR=8/NR=4 register tiles,
/// MC=128/KC=256/NC=2048 cache blocks — tile-exact, one-past-tile, and
/// far-from-aligned cases.
const GEMM_SHAPES: [(usize, usize, usize); 5] = [
    (96, 96, 96),
    (129, 37, 257), // one past MC, odd n, one past KC
    (8, 4, 16),     // single register tile
    (200, 3, 300),  // fewer column blocks than threads
    (61, 131, 67),  // nothing aligned
];

#[test]
fn gemm_bitwise_identical_across_thread_counts() {
    let mut seed = 100;
    for &(m, n, k) in &GEMM_SHAPES {
        for &ta in &[Trans::No, Trans::Yes] {
            for &tb in &[Trans::No, Trans::Yes] {
                seed += 1;
                let mut r = rng(seed);
                let a = match ta {
                    Trans::No => Matrix::gaussian(m, k, &mut r),
                    Trans::Yes => Matrix::gaussian(k, m, &mut r),
                };
                let b = match tb {
                    Trans::No => Matrix::gaussian(k, n, &mut r),
                    Trans::Yes => Matrix::gaussian(n, k, &mut r),
                };
                let c0 = Matrix::gaussian(m, n, &mut r);
                let mut c1 = c0.clone();
                with_threads(1, || {
                    gemm_v(ta, a.view(), tb, b.view(), 1.5, 0.25, c1.view_mut());
                });
                for &t in &THREAD_COUNTS {
                    let mut ct = c0.clone();
                    with_threads(t, || {
                        gemm_v(ta, a.view(), tb, b.view(), 1.5, 0.25, ct.view_mut());
                    });
                    assert_bits_eq(
                        &c1,
                        &ct,
                        &format!("gemm ({m},{n},{k}) {ta:?}{tb:?} 1t vs {t}t"),
                    );
                }
            }
        }
    }
}

#[test]
fn gemm_rank_deficient_bitwise_identical() {
    let a = rank_deficient(120, 60, 5, 7);
    let b = rank_deficient(60, 90, 3, 8);
    let mut c1 = Matrix::zeros(120, 90);
    with_threads(1, || {
        gemm_v(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            -2.0,
            0.0,
            c1.view_mut(),
        );
    });
    for &t in &THREAD_COUNTS {
        let mut ct = Matrix::zeros(120, 90);
        with_threads(t, || {
            gemm_v(
                Trans::No,
                a.view(),
                Trans::No,
                b.view(),
                -2.0,
                0.0,
                ct.view_mut(),
            );
        });
        assert_bits_eq(&c1, &ct, &format!("rank-deficient gemm 1t vs {t}t"));
    }
}

#[test]
fn syrk_bitwise_identical_across_thread_counts() {
    // (rows, cols) pairs covering tall-skinny (the TT unfolding case),
    // square, edge-slab, and rank-deficient inputs.
    let cases: Vec<(Matrix, &str)> = vec![
        (Matrix::gaussian(400, 67, &mut rng(20)), "tall-skinny"),
        (Matrix::gaussian(130, 130, &mut rng(21)), "square edge"),
        (Matrix::gaussian(37, 259, &mut rng(22)), "wide"),
        (rank_deficient(300, 48, 7, 23), "rank-deficient"),
    ];
    for (a, label) in &cases {
        for shape in [SyrkShape::TransposeA, SyrkShape::TransposeB] {
            let s1 = with_threads(1, || match shape {
                SyrkShape::TransposeA => syrk_v(a.view(), 1.0),
                SyrkShape::TransposeB => syrk_nt_v(a.view(), 1.0),
            });
            for &t in &THREAD_COUNTS {
                let st = with_threads(t, || match shape {
                    SyrkShape::TransposeA => syrk_v(a.view(), 1.0),
                    SyrkShape::TransposeB => syrk_nt_v(a.view(), 1.0),
                });
                assert_bits_eq(&s1, &st, &format!("syrk {label} {shape:?} 1t vs {t}t"));
            }
        }
    }
}

#[test]
fn qr_bitwise_identical_across_thread_counts() {
    // The compact-WY trailing updates ride on the threaded gemm; the whole
    // factorization (packed reflectors, tau, thin Q, R) must be unchanged.
    let cases: Vec<(Matrix, &str)> = vec![
        (Matrix::gaussian(600, 64, &mut rng(30)), "tall"),
        (Matrix::gaussian(257, 65, &mut rng(31)), "edge-slab"),
        (rank_deficient(500, 40, 6, 32), "rank-deficient"),
    ];
    for (a, label) in &cases {
        let (q1, r1) = with_threads(1, || {
            let f = householder_qr(a);
            (f.thin_q(), f.r())
        });
        for &t in &THREAD_COUNTS {
            let (qt, rt) = with_threads(t, || {
                let f = householder_qr(a);
                (f.thin_q(), f.r())
            });
            assert_bits_eq(&q1, &qt, &format!("qr {label} Q 1t vs {t}t"));
            assert_bits_eq(&r1, &rt, &format!("qr {label} R 1t vs {t}t"));
        }
        // Same for an explicitly blocked factorization with a small panel,
        // which exercises many trailing updates.
        let (q1, r1) = with_threads(1, || {
            let f = blocked_qr(a, 8);
            (f.thin_q(), f.r())
        });
        for &t in &THREAD_COUNTS {
            let (qt, rt) = with_threads(t, || {
                let f = blocked_qr(a, 8);
                (f.thin_q(), f.r())
            });
            assert_bits_eq(&q1, &qt, &format!("blocked qr {label} Q 1t vs {t}t"));
            assert_bits_eq(&r1, &rt, &format!("blocked qr {label} R 1t vs {t}t"));
        }
    }
}

#[test]
fn parallel_results_also_match_reference_oracle() {
    // Determinism alone could hide a systematically wrong parallel path if
    // both thread counts shared the bug; anchor one case to the naive oracle.
    let mut r = rng(40);
    let a = Matrix::gaussian(100, 80, &mut r);
    let b = Matrix::gaussian(80, 90, &mut r);
    let par = with_threads(4, || {
        let mut c = Matrix::zeros(100, 90);
        gemm_v(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            1.0,
            0.0,
            c.view_mut(),
        );
        c
    });
    let mut oracle = Matrix::zeros(100, 90);
    tt_linalg::reference::gemm_v(
        Trans::No,
        a.view(),
        Trans::No,
        b.view(),
        1.0,
        0.0,
        oracle.view_mut(),
    );
    assert!(par.max_abs_diff(&oracle) < 1e-11 * 81.0);
}
