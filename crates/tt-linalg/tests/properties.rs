//! Property-based tests for the factorization kernels.

use proptest::prelude::*;
use rand::SeedableRng;
use tt_linalg::{
    cholesky, eigh, gemm, householder_qr, jacobi_svd, pivoted_cholesky, syrk, truncation_rank,
    tsvd, Matrix, Trans,
};

fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::gaussian(rows, cols, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// QR: A = Q R with orthonormal Q, for arbitrary shapes.
    #[test]
    fn qr_factorizes(rows in 1usize..40, cols in 1usize..12, seed in any::<u64>()) {
        let a = gaussian(rows, cols, seed);
        let f = householder_qr(&a);
        let (q, r) = (f.thin_q(), f.r());
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        prop_assert!(qr.max_abs_diff(&a) <= 1e-11 * (1.0 + a.max_abs()));
        let k = rows.min(cols);
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(k)) <= 1e-12);
    }

    /// SVD: reconstruction, orthogonality, ordering.
    #[test]
    fn svd_factorizes(rows in 1usize..25, cols in 1usize..25, seed in any::<u64>()) {
        let a = gaussian(rows, cols, seed);
        let s = jacobi_svd(&a);
        let mut us = s.u.clone();
        for (j, &sv) in s.singular_values.iter().enumerate() {
            us.scale_col(j, sv);
        }
        let back = gemm(Trans::No, &us, Trans::Yes, &s.v, 1.0);
        prop_assert!(back.max_abs_diff(&a) <= 1e-10 * (1.0 + a.max_abs()));
        for w in s.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // Frobenius norm identity.
        let fro2: f64 = s.singular_values.iter().map(|x| x * x).sum();
        prop_assert!((fro2.sqrt() - a.fro_norm()).abs() <= 1e-9 * (1.0 + a.fro_norm()));
    }

    /// Symmetric EVD on Gram matrices: nonnegative spectrum, reconstruction.
    #[test]
    fn eigh_on_gram(rows in 2usize..30, cols in 1usize..10, seed in any::<u64>()) {
        let a = gaussian(rows, cols, seed);
        let g = syrk(&a, 1.0);
        let e = eigh(&g).unwrap();
        for &lam in &e.values {
            prop_assert!(lam >= -1e-9 * (1.0 + g.max_abs()));
        }
        // trace identity: Σλ = tr(G)
        let tr: f64 = (0..cols).map(|i| g[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() <= 1e-9 * (1.0 + tr.abs()));
        // reconstruction
        let az = gemm(Trans::No, &g, Trans::No, &e.vectors, 1.0);
        let mut zl = e.vectors.clone();
        for (j, &lam) in e.values.iter().enumerate() {
            zl.scale_col(j, lam);
        }
        prop_assert!(az.max_abs_diff(&zl) <= 1e-8 * (1.0 + g.max_abs()));
    }

    /// Cholesky of an SPD matrix reconstructs it; pivoted agrees on rank.
    #[test]
    fn cholesky_roundtrip(n in 1usize..12, extra in 0usize..6, seed in any::<u64>()) {
        let a = gaussian(n + extra + 1, n, seed);
        let g = syrk(&a, 1.0);
        let l = cholesky(&g).unwrap();
        let llt = gemm(Trans::No, &l, Trans::Yes, &l, 1.0);
        prop_assert!(llt.max_abs_diff(&g) <= 1e-9 * (1.0 + g.max_abs()));
        let pc = pivoted_cholesky(&g, 1e-12);
        prop_assert_eq!(pc.rank, n);
    }

    /// The truncation rule is exactly the minimal rank meeting the budget.
    #[test]
    fn truncation_rule_is_minimal(mut svs in proptest::collection::vec(0.0f64..10.0, 1..12),
                                  frac in 0.0f64..1.2) {
        svs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = svs.iter().map(|s| s * s).sum::<f64>().sqrt();
        let thr = frac * total;
        let (rank, discarded) = truncation_rank(&svs, thr);
        prop_assert!(rank >= 1 && rank <= svs.len());
        prop_assert!(discarded <= thr + 1e-12);
        // minimality: discarding one more would exceed the threshold
        if rank > 1 {
            let tail: f64 = svs[rank - 1..].iter().map(|s| s * s).sum::<f64>().sqrt();
            prop_assert!(tail > thr || rank == 1);
        }
    }

    /// TSVD approximation error equals the discarded tail energy.
    #[test]
    fn tsvd_error_is_tail(rows in 2usize..15, cols in 2usize..15,
                          seed in any::<u64>(), frac in 0.0f64..0.9) {
        let a = gaussian(rows, cols, seed);
        let t = tsvd(&a, frac * a.fro_norm());
        let mut us = t.u.clone();
        for (j, &s) in t.singular_values.iter().enumerate() {
            us.scale_col(j, s);
        }
        let approx = gemm(Trans::No, &us, Trans::Yes, &t.v, 1.0);
        let mut diff = approx;
        diff.axpy(-1.0, &a);
        prop_assert!((diff.fro_norm() - t.discarded_norm).abs() <= 1e-8 * (1.0 + a.fro_norm()));
    }

    /// gemm distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn gemm_distributes(m in 1usize..10, n in 1usize..10, k in 1usize..10, seed in any::<u64>()) {
        let a = gaussian(m, k, seed);
        let b = gaussian(m, k, seed.wrapping_add(1));
        let c = gaussian(k, n, seed.wrapping_add(2));
        let mut ab = a.clone();
        ab.axpy(1.0, &b);
        let lhs = gemm(Trans::No, &ab, Trans::No, &c, 1.0);
        let mut rhs = gemm(Trans::No, &a, Trans::No, &c, 1.0);
        rhs.axpy(1.0, &gemm(Trans::No, &b, Trans::No, &c, 1.0));
        prop_assert!(lhs.max_abs_diff(&rhs) <= 1e-11 * (1.0 + lhs.max_abs()));
    }
}
