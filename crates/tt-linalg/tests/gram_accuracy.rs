//! Quantitative check of the §II-B accuracy discussion: orthogonal-
//! transformation SVDs compute singular values with error ~ ‖A‖·ε, while
//! the Gram route (eigenvalues of AᵀA) loses accuracy like the condition
//! number — it cannot resolve singular values below √ε·σ_max. This is the
//! numerical trade-off the whole paper is built around, so we verify it
//! holds for our kernels exactly as described.

use rand::SeedableRng;
use tt_linalg::{eigh, gemm, householder_qr, jacobi_svd, syrk, Matrix, Trans};

/// Builds a matrix with exactly known singular values.
fn matrix_with_spectrum(m: usize, spectrum: &[f64], seed: u64) -> Matrix {
    let n = spectrum.len();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let u = householder_qr(&Matrix::gaussian(m, n, &mut rng)).thin_q();
    let v = householder_qr(&Matrix::gaussian(n, n, &mut rng)).thin_q();
    let mut us = u;
    for (j, &s) in spectrum.iter().enumerate() {
        us.scale_col(j, s);
    }
    gemm(Trans::No, &us, Trans::Yes, &v, 1.0)
}

/// Singular values via the Gram route: √eig(AᵀA), descending.
fn gram_singular_values(a: &Matrix) -> Vec<f64> {
    let g = syrk(a, 1.0);
    let e = eigh(&g).unwrap().descending();
    e.values.iter().map(|&l| l.max(0.0).sqrt()).collect()
}

#[test]
fn direct_svd_resolves_below_sqrt_eps() {
    // σ = [1, 1e-10]: far below √ε ≈ 1.5e-8 relative.
    let spectrum = [1.0, 1e-10];
    let a = matrix_with_spectrum(60, &spectrum, 1);
    let s = jacobi_svd(&a);
    let rel_err = (s.singular_values[1] - 1e-10).abs() / 1e-10;
    assert!(
        rel_err < 1e-3,
        "Jacobi SVD should resolve σ₂ = 1e-10 to high relative accuracy, err {rel_err}"
    );
}

#[test]
fn gram_route_cannot_resolve_below_sqrt_eps() {
    // The same matrix through AᵀA: σ₂² = 1e-20 is far below ε·σ₁² = 2e-16,
    // so the Gram eigenvalue is pure roundoff — the computed "σ₂" lands
    // somewhere around √ε, orders of magnitude off.
    let spectrum = [1.0, 1e-10];
    let a = matrix_with_spectrum(60, &spectrum, 2);
    let sv = gram_singular_values(&a);
    let rel_err = (sv[1] - 1e-10).abs() / 1e-10;
    assert!(
        rel_err > 1.0,
        "the Gram route should NOT resolve σ₂ = 1e-10 (got rel err {rel_err}) — \
         if this starts passing, the §II-B premise needs re-examination"
    );
    // ... but it stays bounded by ~√ε·σ₁ (a small nonzero quantity, which
    // is exactly the robustness property §III-B2 relies on).
    assert!(
        sv[1] < 1e-6,
        "Gram σ₂ estimate should stay near √ε·σ₁, got {}",
        sv[1]
    );
}

#[test]
fn gram_route_accurate_above_sqrt_eps() {
    // σ₂ = 1e-6 is above √ε: the Gram route resolves it fine — this is why
    // rounding tolerances above √ε (the paper's regime of interest) lose
    // nothing.
    let spectrum = [1.0, 1e-6];
    let a = matrix_with_spectrum(60, &spectrum, 3);
    let sv = gram_singular_values(&a);
    let rel_err = (sv[1] - 1e-6).abs() / 1e-6;
    assert!(
        rel_err < 1e-3,
        "Gram route should resolve σ₂ = 1e-6, err {rel_err}"
    );
}

#[test]
fn error_scales_with_conditioning() {
    // Sweep the condition number; the Gram route's relative error on the
    // smallest singular value grows ~ ε·κ², the direct SVD's stays ~ ε.
    let mut prev_gram_err = 0.0;
    for (i, &sigma_min) in [1e-2, 1e-4, 1e-6].iter().enumerate() {
        let spectrum = [1.0, sigma_min];
        let a = matrix_with_spectrum(50, &spectrum, 10 + i as u64);
        let direct = jacobi_svd(&a).singular_values[1];
        let gram = gram_singular_values(&a)[1];
        let direct_err = (direct - sigma_min).abs() / sigma_min;
        let gram_err = (gram - sigma_min).abs() / sigma_min;
        assert!(
            direct_err < 1e-8,
            "direct err {direct_err} at κ = {}",
            1.0 / sigma_min
        );
        // The Gram error must be growing with κ (allowing noise at the
        // well-conditioned end).
        assert!(
            gram_err + 1e-14 >= prev_gram_err,
            "Gram error should not shrink as κ grows: {gram_err} vs {prev_gram_err}"
        );
        prev_gram_err = gram_err;
    }
    // At κ = 1e6 (σ² ratio 1e12 ≈ 1/ε·10⁴) the Gram error is visible.
    assert!(
        prev_gram_err > 1e-8,
        "expected visible Gram error at κ = 1e6: {prev_gram_err}"
    );
}
