//! Dense linear algebra substrate for the Tensor-Train Gram-SVD rounding
//! reproduction.
//!
//! The paper's implementation is built on OpenBLAS/LAPACK (`gemm`, `syrk`,
//! `trmm`, Householder QR, symmetric eigensolvers, SVD, Cholesky). This crate
//! provides from-scratch, pure-Rust implementations of exactly the kernels the
//! TT algorithms need, on a single column-major [`Matrix`] type:
//!
//! * [`gemm`]/[`syrk`] — general and symmetric matrix multiplication
//!   (the workhorses of the Gram-SVD rounding path), dispatched between the
//!   packed cache-blocked engine in [`block`] and the naive-loop oracle in
//!   [`reference`],
//! * [`qr`] — Householder QR (compact-WY blocked above a size threshold) with
//!   explicit thin-Q recovery and the stacked-R combine step used by TSQR
//!   (the workhorse of the baseline rounding path),
//! * [`eig`] — symmetric eigendecomposition (Householder tridiagonalization +
//!   implicit-shift QL), used for the Gram eigenproblems,
//! * [`svd`] — one-sided Jacobi SVD and the ε-truncated TSVD rule used by all
//!   rounding variants,
//! * [`chol`] — Cholesky and diagonally-pivoted Cholesky (§III-B1 variant),
//! * [`tri`] — triangular multiply/solve/invert helpers.
//!
//! All kernels are deterministic and allocation-conscious; hot paths take
//! output buffers where it matters. Numerical conventions follow LAPACK:
//! eigenvalues ascending, singular values descending, thin factorizations.
//!
//! The optional `simd` cargo feature swaps the blocked engine's register
//! microkernels for explicit `std::simd` implementations (portable SIMD is
//! a nightly feature, hence the gate — the default build stays on stable).
//! Results remain bitwise reproducible per (feature, thread-count)
//! configuration; [`reference`] is the conformance oracle for both.

#![forbid(unsafe_code)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod block;
pub mod block32;
pub mod chol;
pub mod eig;
pub mod gemm;
pub mod matrix;
pub mod par;
pub mod paranoid;
pub mod qr;
pub mod reference;
pub mod rng;
pub mod svd;
pub mod svd_gk;
pub mod tri;
pub mod tune;
pub mod view;

pub use block::SyrkShape;
pub use chol::{cholesky, pivoted_cholesky, PivotedCholesky};
pub use eig::{eigh, EigH};
pub use gemm::{
    gemm, gemm_alloc, gemm_f32_v, gemm_flops, gemm_into, gemm_v, kernel_choice, parallel_threads,
    syrk, syrk_f32_v, syrk_nt_f32_v, syrk_nt_v, syrk_v, Kernel, Trans,
};
pub use matrix::Matrix;
pub use qr::{blocked_qr, householder_qr, householder_qr_unblocked, qr_stacked_pair, QrFactors};
pub use svd::{jacobi_svd, truncation_rank, tsvd, Svd, TruncatedSvd};
pub use svd_gk::golub_kahan_svd;
pub use tri::{solve_lower, solve_upper, tri_invert_upper, trmm_right_lower, trmm_upper_left};
pub use view::{MatMut, MatRef};

/// Machine epsilon for `f64`, re-exported for truncation-threshold logic.
pub const EPS: f64 = f64::EPSILON;

/// Errors produced by the factorization kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Dimensions of the operands are incompatible with the operation.
    DimensionMismatch(String),
    /// A matrix that must be (numerically) positive definite is not.
    NotPositiveDefinite { pivot: usize },
    /// An iterative eigen/SVD sweep failed to converge.
    NoConvergence { iterations: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration failed to converge after {iterations} sweeps")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the factorization kernels.
pub type Result<T> = std::result::Result<T, LinalgError>;
