//! Numeric-hygiene assertions for kernel entry points.
//!
//! Corrupted buffers (NaN/Inf from an upstream bug, mismatched unfoldings)
//! otherwise propagate silently through `gemm`-class kernels and only
//! surface sweeps later as a nonsensical truncation or a non-converging
//! eigensolve. The checks here run at the *entry* of every hot kernel so the
//! failure is reported where the bad data is produced.
//!
//! Gating: checks are active in debug builds and under the `paranoid`
//! feature (which release CI enables for one job); plain release builds
//! compile them out entirely — [`enabled`] is `const`, so the loops vanish.
//! Downstream crates (`tt-core`, `tt-solvers`) re-export their own
//! `paranoid` feature forwarding to this one, so
//! `cargo test --features paranoid` arms the whole stack.

/// Whether paranoid checks are compiled in.
#[inline]
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "paranoid"))
}

/// Asserts every element of `data` is finite (no NaN/Inf).
///
/// `kernel` and `operand` name the entry point and argument for the
/// diagnostic, e.g. `check_finite("gemm", "A", a.as_slice())`.
#[inline]
pub fn check_finite(kernel: &str, operand: &str, data: &[f64]) {
    if !enabled() {
        return;
    }
    for (i, &x) in data.iter().enumerate() {
        if !x.is_finite() {
            // analyze::allow(panic_surface): the paranoid layer's whole job is to abort at the first non-finite value instead of letting NaN propagate
            panic!(
                "{kernel}: paranoid check failed: non-finite value {x} at flat \
                 index {i} of operand {operand} (len {}) — the buffer was \
                 corrupted before this kernel ran",
                data.len()
            );
        }
    }
}

/// Asserts a finite scalar parameter (scale factors, tolerances).
#[inline]
pub fn check_finite_scalar(kernel: &str, name: &str, value: f64) {
    if enabled() && !value.is_finite() {
        // analyze::allow(panic_surface): the paranoid layer's whole job is to abort at the first non-finite value instead of letting NaN propagate
        panic!("{kernel}: paranoid check failed: parameter {name} = {value} is not finite");
    }
}

/// Asserts a dimension invariant, with a lazily built diagnostic.
#[inline]
pub fn check_dims(kernel: &str, ok: bool, detail: impl FnOnce() -> String) {
    if enabled() && !ok {
        // analyze::allow(panic_surface): the paranoid layer's whole job is to abort on broken invariants instead of computing garbage
        panic!(
            "{kernel}: paranoid check failed: dimension invariant violated: {}",
            detail()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_data_passes() {
        check_finite("test_kernel", "A", &[0.0, -1.5, f64::MAX]);
        check_finite_scalar("test_kernel", "alpha", 2.0);
        check_dims("test_kernel", true, || unreachable!());
    }

    // The negative tests only make sense when the checks are compiled in
    // (debug builds or the `paranoid` feature); a plain release test run
    // compiles the checks out, so the tests are gated the same way.
    #[cfg(any(debug_assertions, feature = "paranoid"))]
    mod armed {
        use super::*;

        #[test]
        #[should_panic(expected = "non-finite value")]
        fn nan_is_caught() {
            check_finite("test_kernel", "A", &[1.0, f64::NAN, 3.0]);
        }

        #[test]
        #[should_panic(expected = "non-finite value")]
        fn infinity_is_caught() {
            check_finite("test_kernel", "A", &[f64::INFINITY]);
        }

        #[test]
        #[should_panic(expected = "alpha")]
        fn non_finite_scalar_is_caught() {
            check_finite_scalar("test_kernel", "alpha", f64::NAN);
        }

        #[test]
        #[should_panic(expected = "dimension invariant")]
        fn dim_violation_is_caught() {
            check_dims("test_kernel", false, || "rows 3 != cols 4".to_string());
        }
    }
}
