//! Singular value decomposition and ε-truncation.
//!
//! The rounding algorithms only ever take SVDs of *small* `R × R` matrices
//! (the combined Gram factor `Λ_L^{1/2} V_Lᵀ V_R Λ_R^{1/2}` or the triangular
//! `R_A R_Bᵀ`), so a one-sided Jacobi SVD is used: it is simple, very
//! accurate (it computes small singular values to high relative accuracy,
//! which matters for the truncation-rank decision), and entirely
//! `gemm`-class arithmetic.

use crate::matrix::Matrix;

/// A full (thin) singular value decomposition `A = U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k` with `k = min(m, n)`.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n × k` (columns, not transposed).
    pub v: Matrix,
}

/// A rank-truncated SVD together with the truncation diagnostics.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Leading `L` left singular vectors (`m × L`).
    pub u: Matrix,
    /// Leading `L` singular values.
    pub singular_values: Vec<f64>,
    /// Leading `L` right singular vectors (`n × L`).
    pub v: Matrix,
    /// The discarded tail energy `√(Σ_{k>L} σ_k²)`.
    pub discarded_norm: f64,
}

impl TruncatedSvd {
    /// The retained rank `L`.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }
}

/// Maximum number of Jacobi sweeps before declaring non-convergence. In
/// practice well-conditioned `R × R` inputs converge in < 10 sweeps.
const MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD of an arbitrary dense matrix.
///
/// Always converges for finite input (the off-diagonal mass of `AᵀA` is
/// strictly decreasing); after [`MAX_SWEEPS`] the current iterate is
/// returned, which for any realistic input is long past convergence.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    crate::paranoid::check_finite("jacobi_svd", "A", a.as_slice());
    let (m, n) = a.shape();
    if m < n {
        // Work on the transpose and swap the roles of U and V.
        let t = jacobi_svd(&a.transpose());
        return Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        };
    }

    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-15;

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in p + 1..n {
                let (app, aqq, apq) = column_grams(&w, p, q);
                if apq.abs() <= tol * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                rotated = true;
                // Symmetric 2x2 Jacobi rotation diagonalizing
                // [app apq; apq aqq].
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(&mut w, p, q, c, s);
                rotate_cols(&mut v, p, q, c, s);
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and normalize the left vectors.
    let mut sigma: Vec<f64> = (0..n).map(|j| norm2(w.col(j))).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].total_cmp(&sigma[i]));

    let mut u = Matrix::zeros(m, n);
    let mut vs = Matrix::zeros(n, n);
    let mut svals = vec![0.0; n];
    for (dst, &src) in order.iter().enumerate() {
        svals[dst] = sigma[src];
        vs.col_mut(dst).copy_from_slice(v.col(src));
        let ucol = u.col_mut(dst);
        ucol.copy_from_slice(w.col(src));
        if sigma[src] > 0.0 {
            let inv = 1.0 / sigma[src];
            for x in ucol {
                *x *= inv;
            }
        }
    }
    sigma.clear();

    Svd {
        u,
        singular_values: svals,
        v: vs,
    }
}

/// The paper's truncation rule: the minimal rank `L ≥ 1` such that the
/// discarded tail satisfies `√(Σ_{k>L} σ_k²) ≤ threshold`.
///
/// Returns `(L, discarded_norm)`.
pub fn truncation_rank(singular_values: &[f64], threshold: f64) -> (usize, f64) {
    crate::paranoid::check_finite("truncation_rank", "singular_values", singular_values);
    crate::paranoid::check_finite_scalar("truncation_rank", "threshold", threshold);
    let k = singular_values.len();
    if k == 0 {
        return (0, 0.0);
    }
    // Accumulate tail energies from the back.
    let mut tail = 0.0;
    let mut rank = k;
    let mut discarded = 0.0;
    for l in (1..=k).rev() {
        let next_tail = tail + singular_values[l - 1] * singular_values[l - 1];
        if next_tail.sqrt() <= threshold && l > 1 {
            tail = next_tail;
            rank = l - 1;
            discarded = tail.sqrt();
        } else if next_tail.sqrt() <= threshold && l == 1 {
            // Even the full matrix is below threshold; keep rank 1 by
            // convention (a TT rank of 0 would collapse the tensor).
            tail = next_tail;
            rank = 1;
            discarded = (tail - singular_values[0] * singular_values[0])
                .max(0.0)
                .sqrt();
        } else {
            break;
        }
    }
    (rank, discarded)
}

/// ε-truncated SVD: full Jacobi SVD followed by the tail-energy truncation
/// rule of [`truncation_rank`].
pub fn tsvd(a: &Matrix, threshold: f64) -> TruncatedSvd {
    crate::paranoid::check_finite_scalar("tsvd", "threshold", threshold);
    let full = jacobi_svd(a);
    let (rank, discarded) = truncation_rank(&full.singular_values, threshold);
    TruncatedSvd {
        u: full.u.truncate_cols(rank),
        singular_values: full.singular_values[..rank].to_vec(),
        v: full.v.truncate_cols(rank),
        discarded_norm: discarded,
    }
}

fn column_grams(w: &Matrix, p: usize, q: usize) -> (f64, f64, f64) {
    let cp = w.col(p);
    let cq = w.col(q);
    let mut app = 0.0;
    let mut aqq = 0.0;
    let mut apq = 0.0;
    for i in 0..cp.len() {
        app += cp[i] * cp[i];
        aqq += cq[i] * cq[i];
        apq += cp[i] * cq[i];
    }
    (app, aqq, apq)
}

fn rotate_cols(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let (cp, cq) = m.cols_mut_pair(p, q);
    for i in 0..cp.len() {
        let a = cp[i];
        let b = cq[i];
        cp[i] = c * a - s * b;
        cq[i] = s * a + c * b;
    }
}

fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};
    use rand::SeedableRng;

    fn reconstruct(svd: &Svd) -> Matrix {
        let mut us = svd.u.clone();
        for (j, &s) in svd.singular_values.iter().enumerate() {
            us.scale_col(j, s);
        }
        gemm(Trans::No, &us, Trans::Yes, &svd.v, 1.0)
    }

    fn check(m: usize, n: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::gaussian(m, n, &mut rng);
        let s = jacobi_svd(&a);
        let r = reconstruct(&s);
        assert!(
            r.max_abs_diff(&a) < 1e-11 * (1.0 + a.max_abs()),
            "reconstruction {m}x{n}"
        );
        let k = m.min(n);
        let utu = gemm(Trans::Yes, &s.u, Trans::No, &s.u, 1.0);
        assert!(
            utu.max_abs_diff(&Matrix::identity(k)) < 1e-11,
            "U orth {m}x{n}"
        );
        let vtv = gemm(Trans::Yes, &s.v, Trans::No, &s.v, 1.0);
        assert!(
            vtv.max_abs_diff(&Matrix::identity(k)) < 1e-11,
            "V orth {m}x{n}"
        );
        // descending order
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn svd_tall() {
        check(30, 7, 1);
    }

    #[test]
    fn svd_square() {
        check(12, 12, 2);
    }

    #[test]
    fn svd_wide() {
        check(6, 19, 3);
    }

    #[test]
    fn svd_known_diagonal() {
        let a = Matrix::from_fn(3, 3, |i, j| if i == j { (3 - i) as f64 } else { 0.0 });
        let s = jacobi_svd(&a);
        assert!((s.singular_values[0] - 3.0).abs() < 1e-14);
        assert!((s.singular_values[1] - 2.0).abs() < 1e-14);
        assert!((s.singular_values[2] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn svd_rank_deficient() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let b = Matrix::gaussian(20, 3, &mut rng);
        let c = Matrix::gaussian(3, 8, &mut rng);
        let a = gemm(Trans::No, &b, Trans::No, &c, 1.0);
        let s = jacobi_svd(&a);
        // Ranks beyond 3 are (numerically) zero.
        for &sv in &s.singular_values[3..] {
            assert!(sv < 1e-10 * s.singular_values[0]);
        }
        let r = reconstruct(&s);
        assert!(r.max_abs_diff(&a) < 1e-11 * (1.0 + a.max_abs()));
    }

    #[test]
    fn svd_small_singular_values_accurate() {
        // Diagonal with huge dynamic range: Jacobi should nail every value.
        let d = [1.0, 1e-4, 1e-8, 1e-12];
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { d[i] } else { 0.0 });
        let s = jacobi_svd(&a);
        for (i, &expect) in d.iter().enumerate() {
            let got = s.singular_values[i];
            assert!(
                (got - expect).abs() <= 1e-12 * expect.max(1e-300) + 1e-300,
                "sv {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn truncation_rule_matches_definition() {
        let sv = vec![10.0, 5.0, 1.0, 0.5, 0.1];
        // tail after keeping 3: sqrt(0.25 + 0.01) ~ 0.5099
        let (rank, disc) = truncation_rank(&sv, 0.52);
        assert_eq!(rank, 3);
        assert!((disc - (0.25f64 + 0.01).sqrt()).abs() < 1e-14);
        // Very tight threshold keeps everything.
        let (rank, _) = truncation_rank(&sv, 1e-12);
        assert_eq!(rank, 5);
        // Huge threshold keeps exactly one by convention.
        let (rank, _) = truncation_rank(&sv, 1e9);
        assert_eq!(rank, 1);
    }

    #[test]
    fn tsvd_respects_threshold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = Matrix::gaussian(15, 15, &mut rng);
        let t = tsvd(&a, 1.0);
        assert!(t.discarded_norm <= 1.0 + 1e-12);
        // Error of the truncated reconstruction equals the tail energy
        // in Frobenius norm.
        let mut us = t.u.clone();
        for (j, &s) in t.singular_values.iter().enumerate() {
            us.scale_col(j, s);
        }
        let approx = gemm(Trans::No, &us, Trans::Yes, &t.v, 1.0);
        let mut diff = approx.clone();
        diff.axpy(-1.0, &a);
        assert!((diff.fro_norm() - t.discarded_norm).abs() < 1e-9);
    }
}
