//! Householder QR factorization and TSQR building blocks.
//!
//! This is the orthogonalization machinery of the *baseline* rounding
//! algorithm (Alg. 2 of the paper, following Al Daas–Ballard–Benner): a
//! LAPACK-style compact-WY-free Householder QR with explicit thin-Q
//! recovery, plus the stacked-R combine step used by the Tall-Skinny QR
//! reduction tree [Demmel et al.].

use crate::matrix::Matrix;

/// Compact Householder QR factorization of an `m × n` matrix (`m ≥ n` not
/// required; `k = min(m, n)` reflectors are produced).
///
/// The reflectors are stored LAPACK-style: reflector `j` is
/// `H_j = I − τ_j v vᵀ` with `v = [0…0, 1, factors[(j+1.., j)]]`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Packed reflectors (below diagonal) and R (upper triangle).
    factors: Matrix,
    /// Householder scalars, one per reflector.
    tau: Vec<f64>,
}

/// Computes the Householder QR factorization of `a`.
pub fn householder_qr(a: &Matrix) -> QrFactors {
    crate::paranoid::check_finite("householder_qr", "A", a.as_slice());
    let mut f = a.clone();
    let (m, n) = f.shape();
    let k = m.min(n);
    let mut tau = vec![0.0; k];
    let mut work = vec![0.0; n];

    for j in 0..k {
        // Build the reflector annihilating f[j+1.., j].
        let (t, beta) = make_householder(&mut f, j);
        tau[j] = t;
        // Apply H_j to the trailing columns: A := (I - τ v vᵀ) A.
        if t != 0.0 && j + 1 < n {
            apply_reflector_left(&mut f, j, t, &mut work);
        }
        f[(j, j)] = beta;
    }
    QrFactors { factors: f, tau }
}

impl QrFactors {
    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.factors.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.factors.cols()
    }

    /// The upper-triangular factor, as a `k × n` matrix (`k = min(m, n)`).
    pub fn r(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let k = m.min(n);
        Matrix::from_fn(k, n, |i, j| if i <= j { self.factors[(i, j)] } else { 0.0 })
    }

    /// Explicit thin Q (`m × k`), by backward accumulation of the reflectors
    /// applied to the leading columns of the identity.
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let k = m.min(n);
        let mut q = Matrix::zeros(m, k);
        for j in 0..k {
            q[(j, j)] = 1.0;
        }
        let mut work = vec![0.0; k];
        for j in (0..k).rev() {
            let t = self.tau[j];
            if t != 0.0 {
                apply_stored_reflector(&self.factors, j, t, &mut q, &mut work);
            }
        }
        q
    }

    /// Applies `Qᵀ` to `b` in place (`b` has `m` rows).
    pub fn apply_qt(&self, b: &mut Matrix) {
        let (m, n) = self.factors.shape();
        assert_eq!(b.rows(), m, "apply_qt: row mismatch");
        let k = m.min(n);
        let mut work = vec![0.0; b.cols()];
        for j in 0..k {
            let t = self.tau[j];
            if t != 0.0 {
                apply_stored_reflector(&self.factors, j, t, b, &mut work);
            }
        }
    }

    /// Applies `Q` to `b` in place (`b` has `m` rows).
    pub fn apply_q(&self, b: &mut Matrix) {
        let (m, n) = self.factors.shape();
        assert_eq!(b.rows(), m, "apply_q: row mismatch");
        let k = m.min(n);
        let mut work = vec![0.0; b.cols()];
        for j in (0..k).rev() {
            let t = self.tau[j];
            if t != 0.0 {
                apply_stored_reflector(&self.factors, j, t, b, &mut work);
            }
        }
    }
}

/// TSQR combine step: QR of two stacked `k × n` upper-triangular blocks
/// `[R₁; R₂]`. Returns `(q, r)` with `q` the explicit `2k × k'` thin Q and
/// `r` the combined triangular factor — one internal node of the TSQR
/// reduction tree.
pub fn qr_stacked_pair(r1: &Matrix, r2: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(
        r1.cols(),
        r2.cols(),
        "stacked QR requires equal column counts"
    );
    crate::paranoid::check_finite("qr_stacked_pair", "R1", r1.as_slice());
    crate::paranoid::check_finite("qr_stacked_pair", "R2", r2.as_slice());
    let stacked = r1.vstack(r2);
    let f = householder_qr(&stacked);
    (f.thin_q(), f.r())
}

/// Builds the reflector for column `j`; returns `(tau, beta)` where `beta`
/// is the new diagonal entry. The vector tail is written below the diagonal.
fn make_householder(f: &mut Matrix, j: usize) -> (f64, f64) {
    let m = f.rows();
    let alpha = f[(j, j)];
    let mut xnorm2 = 0.0;
    for i in j + 1..m {
        let v = f[(i, j)];
        xnorm2 += v * v;
    }
    if xnorm2 == 0.0 {
        // Column already zero below the diagonal: H = I.
        return (0.0, alpha);
    }
    let norm = (alpha * alpha + xnorm2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for i in j + 1..m {
        f[(i, j)] *= scale;
    }
    (tau, beta)
}

/// Applies the reflector stored in column `j` of `f` to the trailing columns
/// of `f` itself (used during factorization).
fn apply_reflector_left(f: &mut Matrix, j: usize, tau: f64, work: &mut [f64]) {
    let (m, n) = f.shape();
    // w = vᵀ A[j.., j+1..]  where v = [1, f[j+1.., j]]
    for c in j + 1..n {
        let mut s = f[(j, c)];
        for i in j + 1..m {
            s += f[(i, j)] * f[(i, c)];
        }
        work[c] = s;
    }
    // A -= τ v wᵀ
    for c in j + 1..n {
        let tw = tau * work[c];
        f[(j, c)] -= tw;
        for i in j + 1..m {
            let vij = f[(i, j)];
            f[(i, c)] -= tw * vij;
        }
    }
}

/// Applies reflector `j` (stored in `stored`) to every column of `b`.
fn apply_stored_reflector(stored: &Matrix, j: usize, tau: f64, b: &mut Matrix, work: &mut [f64]) {
    let m = stored.rows();
    let n = b.cols();
    debug_assert!(work.len() >= n);
    for (c, w) in work.iter_mut().enumerate().take(n) {
        let bcol = b.col(c);
        let mut s = bcol[j];
        for i in j + 1..m {
            s += stored[(i, j)] * bcol[i];
        }
        *w = s;
    }
    for (c, &w) in work.iter().enumerate().take(n) {
        let tw = tau * w;
        let bcol = b.col_mut(c);
        bcol[j] -= tw;
        for i in j + 1..m {
            bcol[i] -= tw * stored[(i, j)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};
    use rand::SeedableRng;

    fn check_qr(m: usize, n: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::gaussian(m, n, &mut rng);
        let f = householder_qr(&a);
        let q = f.thin_q();
        let r = f.r();
        let k = m.min(n);
        assert_eq!(q.shape(), (m, k));
        assert_eq!(r.shape(), (k, n));
        // A = Q R
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(
            qr.max_abs_diff(&a) < 1e-12 * (1.0 + a.max_abs()),
            "reconstruction {m}x{n}"
        );
        // QᵀQ = I
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        assert!(
            qtq.max_abs_diff(&Matrix::identity(k)) < 1e-13,
            "orthogonality {m}x{n}"
        );
        // R upper triangular
        for j in 0..n {
            for i in j + 1..k {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_tall() {
        check_qr(50, 8, 1);
    }

    #[test]
    fn qr_square() {
        check_qr(12, 12, 2);
    }

    #[test]
    fn qr_wide() {
        check_qr(5, 9, 3);
    }

    #[test]
    fn qr_single_column() {
        check_qr(17, 1, 4);
    }

    #[test]
    fn qr_rank_deficient_is_stable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let b = Matrix::gaussian(30, 3, &mut rng);
        let c = Matrix::gaussian(3, 6, &mut rng);
        let a = gemm(Trans::No, &b, Trans::No, &c, 1.0); // rank 3, 30x6
        let f = householder_qr(&a);
        let q = f.thin_q();
        let r = f.r();
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(qr.max_abs_diff(&a) < 1e-12 * (1.0 + a.max_abs()));
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        assert!(qtq.max_abs_diff(&Matrix::identity(6)) < 1e-13);
    }

    #[test]
    fn apply_q_and_qt_are_inverses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = Matrix::gaussian(20, 5, &mut rng);
        let f = householder_qr(&a);
        let b0 = Matrix::gaussian(20, 4, &mut rng);
        let mut b = b0.clone();
        f.apply_qt(&mut b);
        f.apply_q(&mut b);
        assert!(b.max_abs_diff(&b0) < 1e-12);
    }

    #[test]
    fn stacked_pair_combines_r_factors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a1 = Matrix::gaussian(40, 6, &mut rng);
        let a2 = Matrix::gaussian(40, 6, &mut rng);
        let r1 = householder_qr(&a1).r();
        let r2 = householder_qr(&a2).r();
        let (q, r) = qr_stacked_pair(&r1, &r2);
        // [R1; R2] = Q R
        let stacked = r1.vstack(&r2);
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(qr.max_abs_diff(&stacked) < 1e-12 * (1.0 + stacked.max_abs()));
        // Singular values of [A1; A2] equal those of R (TSQR invariant):
        let big = a1.vstack(&a2);
        let s_big = crate::svd::jacobi_svd(&big).singular_values;
        let s_r = crate::svd::jacobi_svd(&r).singular_values;
        for (x, y) in s_big.iter().zip(s_r.iter()) {
            assert!((x - y).abs() < 1e-10 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn zero_matrix_qr() {
        let a = Matrix::zeros(10, 3);
        let f = householder_qr(&a);
        assert!(f.r().max_abs() == 0.0);
        // Q columns are still well-defined (identity embedding).
        let q = f.thin_q();
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        assert!(qtq.max_abs_diff(&Matrix::identity(3)) < 1e-14);
    }
}
