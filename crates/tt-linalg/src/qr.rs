//! Householder QR factorization and TSQR building blocks.
//!
//! This is the orthogonalization machinery of the *baseline* rounding
//! algorithm (Alg. 2 of the paper, following Al Daas–Ballard–Benner): a
//! LAPACK-style Householder QR with explicit thin-Q recovery, plus the
//! stacked-R combine step used by the Tall-Skinny QR reduction tree
//! [Demmel et al.].
//!
//! Above a size threshold the factorization runs *blocked* in compact-WY
//! form (LAPACK `geqrt`-style): each `NB`-column panel is factored with the
//! classic rank-1 reflector loop, its reflectors are aggregated into an
//! upper-triangular `T` with `Q_panel = I − V T Vᵀ` (forward columnwise
//! convention, `larft`), and the trailing matrix is updated with two GEMMs
//! and a tiny triangular multiply — so nearly all QR flops run through the
//! packed blocked engine in [`crate::block`]. The stored `T` factors also
//! turn [`QrFactors::thin_q`]/[`QrFactors::apply_q`]/[`QrFactors::apply_qt`]
//! into GEMM-rich WY applications, which is what makes the TSQR leaf
//! factorizations in `tt-core::round::tsqr` fast.

use crate::gemm::{gemm, gemm_into, Trans};
use crate::matrix::Matrix;

/// Panel width of the blocked factorization. 32 keeps `T` and the `W`
/// workspace tiny while making the trailing update a `KC`-deep GEMM.
const NB: usize = 32;

/// Below this many elements (or for very few columns) the rank-1 loop wins:
/// there is no trailing matrix worth aggregating.
const BLOCKED_MIN_ELEMS: usize = 2048;
const BLOCKED_MIN_COLS: usize = 4;

/// One compact-WY panel: columns `j0 .. j0 + t.cols()` of the factored
/// matrix, with `Q_panel = I − V T Vᵀ` where `V` is the unit-lower-
/// trapezoidal reflector block stored below the diagonal.
#[derive(Debug, Clone)]
struct Panel {
    /// First column (= first row) of the panel.
    j0: usize,
    /// The `jb × jb` upper-triangular block-reflector factor.
    t: Matrix,
}

/// Compact Householder QR factorization of an `m × n` matrix (`m ≥ n` not
/// required; `k = min(m, n)` reflectors are produced).
///
/// The reflectors are stored LAPACK-style: reflector `j` is
/// `H_j = I − τ_j v vᵀ` with `v = [0…0, 1, factors[(j+1.., j)]]`. When the
/// factorization ran blocked, the per-panel `T` factors are stored alongside
/// and every `Q` application runs in WY (GEMM) form; the packed reflectors
/// and `tau` are identical either way.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Packed reflectors (below diagonal) and R (upper triangle).
    factors: Matrix,
    /// Householder scalars, one per reflector.
    tau: Vec<f64>,
    /// Compact-WY panel factors; empty for the unblocked factorization.
    panels: Vec<Panel>,
}

/// Computes the Householder QR factorization of `a`, dispatching to the
/// compact-WY blocked algorithm when the problem is large enough for the
/// GEMM-based trailing update to pay.
pub fn householder_qr(a: &Matrix) -> QrFactors {
    let (m, n) = a.shape();
    if m * n >= BLOCKED_MIN_ELEMS && n >= BLOCKED_MIN_COLS {
        blocked_qr(a, NB)
    } else {
        householder_qr_unblocked(a)
    }
}

/// The classic one-reflector-at-a-time factorization: the conformance oracle
/// for [`blocked_qr`] and the small-size fast path.
pub fn householder_qr_unblocked(a: &Matrix) -> QrFactors {
    crate::paranoid::check_finite("householder_qr", "A", a.as_slice());
    let mut f = a.clone();
    let (m, n) = f.shape();
    let k = m.min(n);
    let mut tau = vec![0.0; k];
    let mut work = vec![0.0; n];

    for j in 0..k {
        // Build the reflector annihilating f[j+1.., j].
        let (t, beta) = make_householder(&mut f, j);
        tau[j] = t;
        // Apply H_j to the trailing columns: A := (I - τ v vᵀ) A.
        if t != 0.0 && j + 1 < n {
            apply_reflector_left(&mut f, j, t, n, &mut work);
        }
        f[(j, j)] = beta;
    }
    QrFactors {
        factors: f,
        tau,
        panels: Vec::new(),
    }
}

/// Compact-WY blocked Householder QR with panel width `nb`.
///
/// Identical `factors`/`tau` semantics to [`householder_qr_unblocked`] (the
/// two produce the same factorization bit-for-bit up to floating-point
/// reassociation in the trailing update); additionally stores each panel's
/// `T` so `Q` applications run as GEMMs.
pub fn blocked_qr(a: &Matrix, nb: usize) -> QrFactors {
    crate::paranoid::check_finite("blocked_qr", "A", a.as_slice());
    assert!(nb > 0, "blocked_qr: panel width must be positive");
    let mut f = a.clone();
    let (m, n) = f.shape();
    let k = m.min(n);
    let mut tau = vec![0.0; k];
    let mut work = vec![0.0; n];
    let mut twork = vec![0.0; nb.min(k)];
    let mut panels = Vec::with_capacity(k.div_ceil(nb));

    for j0 in (0..k).step_by(nb) {
        let jb = nb.min(k - j0);
        // Panel factorization: the rank-1 loop restricted to the panel's own
        // columns (the trailing matrix is untouched until the WY update).
        for j in j0..j0 + jb {
            let (t, beta) = make_householder(&mut f, j);
            tau[j] = t;
            if t != 0.0 && j + 1 < j0 + jb {
                apply_reflector_left(&mut f, j, t, j0 + jb, &mut work);
            }
            f[(j, j)] = beta;
        }
        // Aggregate the panel's reflectors: Q_panel = I − V T Vᵀ.
        let t = build_t(&f, j0, jb, &tau[j0..j0 + jb], &mut twork[..jb]);
        // Trailing update with Qᵀ_panel = I − V Tᵀ Vᵀ:
        //   C := C − V · Tᵀ · (Vᵀ C)   for C = f[j0.., j0+jb..].
        if j0 + jb < n {
            let v = explicit_v(&f, j0, jb);
            let nc = n - (j0 + jb);
            let mut c = f.sub_matrix(j0, j0 + jb, m - j0, nc);
            let mut w = gemm(Trans::Yes, &v, Trans::No, &c, 1.0);
            trmm_t_upper_inplace(&t, &mut w);
            gemm_into(Trans::No, &v, Trans::No, &w, -1.0, 1.0, &mut c);
            for jc in 0..nc {
                f.col_mut(j0 + jb + jc)[j0..m].copy_from_slice(c.col(jc));
            }
        }
        panels.push(Panel { j0, t });
    }
    QrFactors {
        factors: f,
        tau,
        panels,
    }
}

impl QrFactors {
    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.factors.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.factors.cols()
    }

    /// Whether this factorization carries compact-WY `T` factors (i.e. ran
    /// blocked). Exposed so tests can pin the dispatch.
    pub fn is_blocked(&self) -> bool {
        !self.panels.is_empty()
    }

    /// The upper-triangular factor, as a `k × n` matrix (`k = min(m, n)`).
    pub fn r(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let k = m.min(n);
        Matrix::from_fn(k, n, |i, j| if i <= j { self.factors[(i, j)] } else { 0.0 })
    }

    /// Explicit thin Q (`m × k`), by backward accumulation of the reflectors
    /// (unblocked) or backward WY panel application (blocked) onto the
    /// leading columns of the identity.
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let k = m.min(n);
        let mut q = Matrix::zeros(m, k);
        for j in 0..k {
            q[(j, j)] = 1.0;
        }
        if self.panels.is_empty() {
            let mut work = vec![0.0; k];
            for j in (0..k).rev() {
                let t = self.tau[j];
                if t != 0.0 {
                    apply_stored_reflector(&self.factors, j, t, &mut q, &mut work);
                }
            }
        } else {
            self.apply_wy(&mut q, false);
        }
        q
    }

    /// Applies `Qᵀ` to `b` in place (`b` has `m` rows).
    pub fn apply_qt(&self, b: &mut Matrix) {
        let (m, n) = self.factors.shape();
        assert_eq!(b.rows(), m, "apply_qt: row mismatch");
        if self.panels.is_empty() {
            let k = m.min(n);
            let mut work = vec![0.0; b.cols()];
            for j in 0..k {
                let t = self.tau[j];
                if t != 0.0 {
                    apply_stored_reflector(&self.factors, j, t, b, &mut work);
                }
            }
        } else {
            self.apply_wy(b, true);
        }
    }

    /// Applies `Q` to `b` in place (`b` has `m` rows).
    pub fn apply_q(&self, b: &mut Matrix) {
        let (m, n) = self.factors.shape();
        assert_eq!(b.rows(), m, "apply_q: row mismatch");
        if self.panels.is_empty() {
            let k = m.min(n);
            let mut work = vec![0.0; b.cols()];
            for j in (0..k).rev() {
                let t = self.tau[j];
                if t != 0.0 {
                    apply_stored_reflector(&self.factors, j, t, b, &mut work);
                }
            }
        } else {
            self.apply_wy(b, false);
        }
    }

    /// WY application of `Q` (`transpose = false`, panels backward) or `Qᵀ`
    /// (`transpose = true`, panels forward) to `b`:
    /// `B := B − V · op(T) · (Vᵀ B)` per panel, restricted to rows `j0..m`.
    fn apply_wy(&self, b: &mut Matrix, transpose: bool) {
        let m = self.factors.rows();
        let nb_cols = b.cols();
        let order: Vec<usize> = if transpose {
            (0..self.panels.len()).collect()
        } else {
            (0..self.panels.len()).rev().collect()
        };
        for pi in order {
            let panel = &self.panels[pi];
            let (j0, jb) = (panel.j0, panel.t.cols());
            let v = explicit_v(&self.factors, j0, jb);
            let mut c = b.sub_matrix(j0, 0, m - j0, nb_cols);
            let mut w = gemm(Trans::Yes, &v, Trans::No, &c, 1.0);
            if transpose {
                trmm_t_upper_inplace(&panel.t, &mut w);
            } else {
                trmm_upper_inplace(&panel.t, &mut w);
            }
            gemm_into(Trans::No, &v, Trans::No, &w, -1.0, 1.0, &mut c);
            for jc in 0..nb_cols {
                b.col_mut(jc)[j0..m].copy_from_slice(c.col(jc));
            }
        }
    }
}

/// TSQR combine step: QR of two stacked `k × n` upper-triangular blocks
/// `[R₁; R₂]`. Returns `(q, r)` with `q` the explicit `2k × k'` thin Q and
/// `r` the combined triangular factor — one internal node of the TSQR
/// reduction tree.
pub fn qr_stacked_pair(r1: &Matrix, r2: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(
        r1.cols(),
        r2.cols(),
        "stacked QR requires equal column counts"
    );
    crate::paranoid::check_finite("qr_stacked_pair", "R1", r1.as_slice());
    crate::paranoid::check_finite("qr_stacked_pair", "R2", r2.as_slice());
    let stacked = r1.vstack(r2);
    let f = householder_qr(&stacked);
    (f.thin_q(), f.r())
}

/// Builds the reflector for column `j`; returns `(tau, beta)` where `beta`
/// is the new diagonal entry. The vector tail is written below the diagonal.
fn make_householder(f: &mut Matrix, j: usize) -> (f64, f64) {
    let m = f.rows();
    let alpha = f[(j, j)];
    let mut xnorm2 = 0.0;
    for i in j + 1..m {
        let v = f[(i, j)];
        xnorm2 += v * v;
    }
    if xnorm2 == 0.0 {
        // Column already zero below the diagonal: H = I.
        return (0.0, alpha);
    }
    let norm = (alpha * alpha + xnorm2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for i in j + 1..m {
        f[(i, j)] *= scale;
    }
    (tau, beta)
}

/// Applies the reflector stored in column `j` of `f` to columns
/// `j+1 .. jend` of `f` itself (used during factorization; the blocked
/// algorithm passes the panel edge as `jend`).
fn apply_reflector_left(f: &mut Matrix, j: usize, tau: f64, jend: usize, work: &mut [f64]) {
    let m = f.rows();
    // w = vᵀ A[j.., j+1..jend]  where v = [1, f[j+1.., j]]
    for c in j + 1..jend {
        let mut s = f[(j, c)];
        for i in j + 1..m {
            s += f[(i, j)] * f[(i, c)];
        }
        work[c] = s;
    }
    // A -= τ v wᵀ
    for c in j + 1..jend {
        let tw = tau * work[c];
        f[(j, c)] -= tw;
        for i in j + 1..m {
            let vij = f[(i, j)];
            f[(i, c)] -= tw * vij;
        }
    }
}

/// Applies reflector `j` (stored in `stored`) to every column of `b`.
fn apply_stored_reflector(stored: &Matrix, j: usize, tau: f64, b: &mut Matrix, work: &mut [f64]) {
    let m = stored.rows();
    let n = b.cols();
    debug_assert!(work.len() >= n);
    for (c, w) in work.iter_mut().enumerate().take(n) {
        let bcol = b.col(c);
        let mut s = bcol[j];
        for i in j + 1..m {
            s += stored[(i, j)] * bcol[i];
        }
        *w = s;
    }
    for (c, &w) in work.iter().enumerate().take(n) {
        let tw = tau * w;
        let bcol = b.col_mut(c);
        bcol[j] -= tw;
        for i in j + 1..m {
            bcol[i] -= tw * stored[(i, j)];
        }
    }
}

/// `larft`-style forward-columnwise `T` recurrence for one panel:
/// `H_{j0} H_{j0+1} … = I − V T Vᵀ` with `T` upper triangular,
/// `T[i][i] = τᵢ` and `T[0..i, i] = −τᵢ · T[0..i, 0..i] · (Vᵀ vᵢ)`.
///
/// `w` is caller-provided workspace of length `jb` (column `i` writes
/// `w[0..i]` before reading it, so no zeroing between panels is needed);
/// the returned `T` itself escapes into the factorization's panel list.
fn build_t(f: &Matrix, j0: usize, jb: usize, tau: &[f64], w: &mut [f64]) -> Matrix {
    let m = f.rows();
    debug_assert_eq!(w.len(), jb);
    let mut t = Matrix::zeros(jb, jb);
    for i in 0..jb {
        let ti = tau[i];
        if ti == 0.0 {
            // H_i = I: larft leaves the whole column (incl. diagonal) zero.
            continue;
        }
        // w[p] = (Vᵀ vᵢ)[p] = V[i, p] + Σ_{r>i} V[r, p]·vᵢ[r]  for p < i
        // (vᵢ has an implicit 1 at row i and support below it).
        for (p, wp) in w.iter_mut().enumerate().take(i) {
            let mut s = f[(j0 + i, j0 + p)];
            for r in j0 + i + 1..m {
                s += f[(r, j0 + p)] * f[(r, j0 + i)];
            }
            *wp = s;
        }
        for p in 0..i {
            let mut s = 0.0;
            for (q, &wq) in w.iter().enumerate().take(i).skip(p) {
                s += t[(p, q)] * wq;
            }
            t[(p, i)] = -ti * s;
        }
        t[(i, i)] = ti;
    }
    t
}

/// Materializes the unit-lower-trapezoidal reflector block `V`
/// (`(m − j0) × jb`) of the panel starting at `j0`.
fn explicit_v(f: &Matrix, j0: usize, jb: usize) -> Matrix {
    let m = f.rows();
    Matrix::from_fn(m - j0, jb, |i, j| match i.cmp(&j) {
        std::cmp::Ordering::Less => 0.0,
        std::cmp::Ordering::Equal => 1.0,
        std::cmp::Ordering::Greater => f[(j0 + i, j0 + j)],
    })
}

/// `W := Tᵀ W` for upper-triangular `T` (tiny `jb × jb` triangular multiply;
/// descending row order makes the update safely in-place).
fn trmm_t_upper_inplace(t: &Matrix, w: &mut Matrix) {
    let jb = t.rows();
    debug_assert_eq!(w.rows(), jb);
    for c in 0..w.cols() {
        let col = w.col_mut(c);
        for p in (0..jb).rev() {
            let mut s = 0.0;
            for (q, &wq) in col.iter().enumerate().take(p + 1) {
                s += t[(q, p)] * wq;
            }
            col[p] = s;
        }
    }
}

/// `W := T W` for upper-triangular `T` (ascending row order is in-place
/// safe: row `p` only reads rows `≥ p`).
fn trmm_upper_inplace(t: &Matrix, w: &mut Matrix) {
    let jb = t.rows();
    debug_assert_eq!(w.rows(), jb);
    for c in 0..w.cols() {
        let col = w.col_mut(c);
        for p in 0..jb {
            let mut s = 0.0;
            for (q, &wq) in col.iter().enumerate().take(jb).skip(p) {
                s += t[(p, q)] * wq;
            }
            col[p] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};
    use rand::SeedableRng;

    fn check_qr(m: usize, n: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::gaussian(m, n, &mut rng);
        let f = householder_qr(&a);
        let q = f.thin_q();
        let r = f.r();
        let k = m.min(n);
        assert_eq!(q.shape(), (m, k));
        assert_eq!(r.shape(), (k, n));
        // A = Q R
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(
            qr.max_abs_diff(&a) < 1e-12 * (1.0 + a.max_abs()) * (1.0 + k as f64).sqrt(),
            "reconstruction {m}x{n}"
        );
        // QᵀQ = I
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        assert!(
            qtq.max_abs_diff(&Matrix::identity(k)) < 1e-13 * (1.0 + k as f64).sqrt(),
            "orthogonality {m}x{n}"
        );
        // R upper triangular
        for j in 0..n {
            for i in j + 1..k {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_tall() {
        check_qr(50, 8, 1);
    }

    #[test]
    fn qr_square() {
        check_qr(12, 12, 2);
    }

    #[test]
    fn qr_wide() {
        check_qr(5, 9, 3);
    }

    #[test]
    fn qr_single_column() {
        check_qr(17, 1, 4);
    }

    #[test]
    fn qr_blocked_sizes() {
        // Sizes that route to the compact-WY path, straddling panel edges.
        check_qr(200, 40, 21); // multi-panel tall
        check_qr(100, NB, 22); // exactly one panel
        check_qr(90, NB + 3, 23); // one full + one ragged panel
        check_qr(70, 70, 24); // square, panels hit the bottom
        check_qr(40, 90, 25); // wide: trailing update past k
    }

    #[test]
    fn blocked_dispatch_engages() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        let big = Matrix::gaussian(200, 40, &mut rng);
        assert!(householder_qr(&big).is_blocked());
        let small = Matrix::gaussian(10, 3, &mut rng);
        assert!(!householder_qr(&small).is_blocked());
    }

    #[test]
    fn blocked_matches_unblocked_factors() {
        // Same reflectors and R up to roundoff: the WY update is just a
        // reassociated application of the same Householder transforms.
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for (m, n) in [(120usize, 50usize), (64, 64), (45, 100)] {
            let a = Matrix::gaussian(m, n, &mut rng);
            let fb = blocked_qr(&a, 16);
            let fu = householder_qr_unblocked(&a);
            let scale = 1.0 + a.max_abs();
            assert!(
                fb.r().max_abs_diff(&fu.r()) < 1e-11 * scale,
                "R mismatch {m}x{n}"
            );
            assert!(
                fb.thin_q().max_abs_diff(&fu.thin_q()) < 1e-11,
                "Q mismatch {m}x{n}"
            );
        }
    }

    #[test]
    fn qr_rank_deficient_is_stable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let b = Matrix::gaussian(30, 3, &mut rng);
        let c = Matrix::gaussian(3, 6, &mut rng);
        let a = gemm(Trans::No, &b, Trans::No, &c, 1.0); // rank 3, 30x6
        let f = householder_qr(&a);
        let q = f.thin_q();
        let r = f.r();
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(qr.max_abs_diff(&a) < 1e-12 * (1.0 + a.max_abs()));
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        assert!(qtq.max_abs_diff(&Matrix::identity(6)) < 1e-13);
    }

    #[test]
    fn apply_q_and_qt_are_inverses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for (m, n) in [(20usize, 5usize), (150, 40)] {
            let a = Matrix::gaussian(m, n, &mut rng);
            let f = householder_qr(&a);
            let b0 = Matrix::gaussian(m, 4, &mut rng);
            let mut b = b0.clone();
            f.apply_qt(&mut b);
            f.apply_q(&mut b);
            assert!(b.max_abs_diff(&b0) < 1e-11, "{m}x{n}");
        }
    }

    #[test]
    fn apply_qt_matches_explicit_q() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let a = Matrix::gaussian(130, 48, &mut rng);
        let f = householder_qr(&a);
        assert!(f.is_blocked());
        let b = Matrix::gaussian(130, 3, &mut rng);
        // Qᵀb via WY vs via explicit thin Q (leading k rows agree).
        let mut wy = b.clone();
        f.apply_qt(&mut wy);
        let q = f.thin_q();
        let explicit = gemm(Trans::Yes, &q, Trans::No, &b, 1.0);
        let lead = wy.sub_matrix(0, 0, 48, 3);
        assert!(lead.max_abs_diff(&explicit) < 1e-11);
    }

    #[test]
    fn stacked_pair_combines_r_factors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a1 = Matrix::gaussian(40, 6, &mut rng);
        let a2 = Matrix::gaussian(40, 6, &mut rng);
        let r1 = householder_qr(&a1).r();
        let r2 = householder_qr(&a2).r();
        let (q, r) = qr_stacked_pair(&r1, &r2);
        // [R1; R2] = Q R
        let stacked = r1.vstack(&r2);
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(qr.max_abs_diff(&stacked) < 1e-12 * (1.0 + stacked.max_abs()));
        // Singular values of [A1; A2] equal those of R (TSQR invariant):
        let big = a1.vstack(&a2);
        let s_big = crate::svd::jacobi_svd(&big).singular_values;
        let s_r = crate::svd::jacobi_svd(&r).singular_values;
        for (x, y) in s_big.iter().zip(s_r.iter()) {
            assert!((x - y).abs() < 1e-10 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn zero_matrix_qr() {
        let a = Matrix::zeros(10, 3);
        let f = householder_qr(&a);
        assert!(f.r().max_abs() == 0.0);
        // Q columns are still well-defined (identity embedding).
        let q = f.thin_q();
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        assert!(qtq.max_abs_diff(&Matrix::identity(3)) < 1e-14);
    }

    #[test]
    fn zero_matrix_blocked_qr() {
        let a = Matrix::zeros(80, 32);
        let f = blocked_qr(&a, 16);
        assert!(f.r().max_abs() == 0.0);
        let q = f.thin_q();
        let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
        assert!(qtq.max_abs_diff(&Matrix::identity(32)) < 1e-14);
    }

    #[test]
    fn gemm_alloc_used_by_wy_path_is_consistent() {
        // Guards the gemm/gemm_alloc pair the WY update depends on.
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let v = Matrix::gaussian(50, 8, &mut rng);
        let c = Matrix::gaussian(50, 7, &mut rng);
        let w1 = gemm(Trans::Yes, &v, Trans::No, &c, 1.0);
        let w2 = crate::gemm::gemm_alloc(Trans::Yes, v.view(), Trans::No, c.view(), 1.0);
        assert!(w1.max_abs_diff(&w2) == 0.0);
    }
}
