//! Intra-rank shared-memory parallel kernel layer.
//!
//! The paper's headline speedups assume multithreaded BLAS-3 inside every
//! MPI rank (OpenBLAS with OpenMP); Röhrig-Zöllner et al. show the same
//! kernels reward careful shared-memory parallelization. This module is the
//! pure-Rust stand-in: a fork/join layer the packed blocked engine in
//! [`crate::block`] uses to data-parallelize the GEMM macro-kernel over
//! output column blocks and the SYRK triangle update over block-columns.
//! The compact-WY QR trailing updates and every TT hot path (Gram products,
//! truncation applies, TSQR leaves) inherit the threading through the
//! [`crate::gemm`] dispatcher.
//!
//! # Determinism contract
//!
//! Parallel results are **bitwise identical** to single-threaded results,
//! for every thread count. Work is partitioned only over *output* blocks —
//! the `k`-dimension reduction is never split — so each output element is
//! produced by exactly one worker running exactly the sequential
//! accumulation order. All conformance oracles, `VerifyComm` fingerprints,
//! and differential rounding tests therefore stay valid verbatim under any
//! `TT_NUM_THREADS`.
//!
//! # Configuration and oversubscription
//!
//! The pool size comes from the `TT_NUM_THREADS` environment variable
//! (default 1 — exact current single-threaded behavior). Because the SPMD
//! harness ([`tt_comm`]'s `ThreadComm`) runs `P` rank-threads in one
//! process, a naive per-rank pool of `T` threads would put `P × T` runnable
//! threads on the machine. The layer therefore tracks how many parallel
//! regions are in flight process-wide and caps each region at
//! `hardware_threads / in_flight` — with `P` ranks computing at once each
//! gets an even share, and a lone sequential caller gets the whole machine.
//!
//! Tests and benches bypass the environment with [`with_threads`], which
//! forces an exact thread count for the current thread's kernel calls
//! (ignoring the flop and arithmetic-intensity gates and the
//! oversubscription cap, so determinism suites can exercise
//! multi-threaded chunking on any box, including single-core CI runners).
//!
//! # Dispatch gates
//!
//! A kernel fans out only when its [`Work`] profile clears *two*
//! autotuned floors (see [`crate::tune`]): a flop floor (spawn overhead
//! amortization) and an arithmetic-intensity floor (flops per byte of
//! memory traffic). The second gate is what keeps memory-bound shapes —
//! tall-skinny TSQR leaves, narrow QR trailing updates — sequential:
//! their working set streams from DRAM, so added threads fight for the
//! same bus and lose (the original flat flop threshold fanned them out
//! and measurably regressed).
//!
//! # Why scoped threads and no channels
//!
//! A persistent channel-fed pool cannot accept borrowed jobs (closures
//! writing into a caller's `&mut` output) without lifetime-erasing
//! `unsafe`, which `#![forbid(unsafe_code)]` rules out. [`std::thread::scope`]
//! is the safe equivalent: workers borrow the disjoint output partitions
//! directly, and the scope joins every worker — propagating any worker
//! panic — before returning, with no `unwrap`/`join` handling of our own
//! (which also keeps the `panic_surface` analyzer pass clean without
//! suppressions). Spawn cost is paid only above
//! [`PAR_FLOP_THRESHOLD`], where it is noise against the multiply itself.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::tune;

/// Default flop count (2·m·n·k) below which a multiply never fans out:
/// under ~96³ the fork/join overhead (tens of microseconds per worker) is
/// comparable to the multiply itself, while every unfolding contraction
/// and calibration GEMM on the hot path sits far above it. The effective
/// floor is autotuned/overridable — see [`crate::tune`].
pub const PAR_FLOP_THRESHOLD: f64 = tune::DEFAULT_PAR_FLOP_FLOOR;

/// A kernel's work descriptor for the dispatch decision: raw flop volume
/// plus an estimate of the bytes the blocked sweep must move (operand
/// reads + packing + output writeback). The ratio is the arithmetic
/// intensity; memory-bound shapes (low intensity) never fan out because
/// extra threads only add memory-bus contention — the committed
/// `BENCH_kernels_par.json` baseline that motivated this gate showed
/// 4-thread SYRK 47% *slower* than 1-thread on such a shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Work {
    /// Floating-point operations the kernel will execute.
    pub flops: f64,
    /// Estimated bytes of memory traffic (8 bytes per f64 element).
    pub bytes: f64,
}

impl Work {
    /// `C += op(A)·op(B)` with `op(A)` `m×k`, `op(B)` `k×n`: `2mnk` flops
    /// against reading both operands once and read-modify-writing `C`.
    pub fn gemm(m: usize, n: usize, k: usize) -> Self {
        let (m, n, k) = (m as f64, n as f64, k as f64);
        Work {
            flops: 2.0 * m * n * k,
            bytes: 8.0 * (m * k + k * n + 2.0 * m * n),
        }
    }

    /// Symmetric rank-k update producing an `n×n` Gram matrix from an
    /// operand with `n·k` entries: half a GEMM's arithmetic (only the
    /// triangle is computed) against one operand read plus the output.
    pub fn syrk(n: usize, k: usize) -> Self {
        let (n, k) = (n as f64, k as f64);
        Work {
            flops: n * n * k,
            bytes: 8.0 * (n * k + n * n),
        }
    }

    /// Flops per byte moved; infinite for degenerate zero-byte work.
    pub fn intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

/// Hard ceiling on any configured or forced thread count, so a malformed
/// `TT_NUM_THREADS` cannot ask for an absurd spawn storm.
pub const MAX_THREADS: usize = 256;

/// Parallel regions currently executing, process-wide. Used to divide the
/// machine between concurrent callers (the ThreadComm rank-threads case).
static IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`with_threads`]; takes precedence
    /// over `TT_NUM_THREADS`, the flop threshold, and the cap.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The pool size requested via `TT_NUM_THREADS`, clamped to
/// `[1, MAX_THREADS]`. Unset, empty, or unparsable values mean 1
/// (exact single-threaded behavior).
pub fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        // analyze::allow(determinism): TT_NUM_THREADS selects the worker
        // partition only; the output-block contract (DESIGN.md §9) makes
        // every partition produce bit-identical results, so the environment
        // can change scheduling but never values.
        std::env::var("TT_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|n| n.clamp(1, MAX_THREADS))
            .unwrap_or(1)
    })
}

/// Hardware thread count (`std::thread::available_parallelism`), defaulting
/// to 1 when the platform cannot report it.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        // analyze::allow(determinism): the hardware count only caps the
        // worker partition (oversubscription guard); by the output-block
        // contract (DESIGN.md §9) the partition never affects the bits.
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f` with kernel calls on the current thread forced to exactly
/// `threads` workers (clamped to `[1, MAX_THREADS]`), restoring the previous
/// setting afterwards even if `f` panics.
///
/// The override bypasses the flop/intensity dispatch gates and the
/// oversubscription cap: it exists so determinism tests and
/// `kernels_par_*` benches can pin exact 1-vs-N comparisons on any
/// machine.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(Some(threads.clamp(1, MAX_THREADS))));
    let _restore = Restore(prev);
    f()
}

/// The thread count a kernel of this work profile would be given right now
/// on the current thread (override, then flop/intensity gates + config +
/// cap). Pure query — does not enter a region.
pub fn planned_threads(work: Work) -> usize {
    planned(work, IN_FLIGHT.load(Ordering::Relaxed))
}

/// Whether this work profile clears both autotuned dispatch gates: enough
/// flops to amortize the fork/join, and enough arithmetic intensity that
/// extra cores bring extra flop throughput rather than contention on the
/// same memory bus.
pub fn admits_parallel(work: Work) -> bool {
    let t = tune::tuning();
    admits(work, t.par_flop_floor, t.par_intensity_floor)
}

/// Pure, environment-free form of [`admits_parallel`] for unit tests.
fn admits(work: Work, flop_floor: f64, intensity_floor: f64) -> bool {
    work.flops >= flop_floor && work.intensity() >= intensity_floor
}

/// Cap/threshold policy, factored out so it is unit-testable: `in_flight`
/// is the number of *other* parallel regions already running.
fn planned(work: Work, in_flight: usize) -> usize {
    if let Some(forced) = OVERRIDE.with(Cell::get) {
        return forced.max(1);
    }
    if !admits_parallel(work) {
        return 1;
    }
    let cfg = configured_threads();
    let share = (hardware_threads() / (in_flight + 1)).max(1);
    cfg.min(share)
}

/// An active parallel-dispatch decision. Holds the in-flight slot (for the
/// oversubscription cap) while the kernel runs; dropping it releases the
/// slot.
pub struct Region {
    threads: usize,
    counted: bool,
}

impl Region {
    /// Worker count this region was granted (1 = run sequentially).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        if self.counted {
            IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Opens a parallel region for a kernel with the given work profile. The
/// returned [`Region`] carries the granted thread count and keeps the
/// region counted in the oversubscription tracker until dropped.
pub fn region(work: Work) -> Region {
    let threads = planned(work, IN_FLIGHT.load(Ordering::Relaxed));
    let counted = threads > 1;
    if counted {
        IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
    }
    Region { threads, counted }
}

/// Runs every job, the first on the calling thread and the rest on scoped
/// worker threads, returning after all complete. A panicking worker
/// propagates the panic out of the scope (after all workers have joined).
///
/// With zero or one job no thread is spawned — the single job runs inline,
/// so a 1-thread "pool" is byte-for-byte the sequential code path.
pub fn join_all<F: FnOnce() + Send>(jobs: Vec<F>) {
    let mut jobs = jobs;
    if jobs.len() <= 1 {
        if let Some(job) = jobs.pop() {
            job();
        }
        return;
    }
    let first = jobs.remove(0);
    std::thread::scope(|scope| {
        for job in jobs {
            scope.spawn(job);
        }
        first();
    });
}

/// Partitions `0..n` into at most `parts` contiguous ranges whose interior
/// boundaries are multiples of `align`, with block counts as even as
/// possible. Deterministic in all arguments; empty ranges are dropped.
pub fn split_even(n: usize, parts: usize, align: usize) -> Vec<(usize, usize)> {
    let align = align.max(1);
    let blocks = n.div_ceil(align);
    let parts = parts.clamp(1, blocks.max(1));
    let mut out = Vec::with_capacity(parts);
    let mut begin_block = 0usize;
    for p in 0..parts {
        let end_block = blocks * (p + 1) / parts;
        let lo = (begin_block * align).min(n);
        let hi = (end_block * align).min(n);
        if hi > lo {
            out.push((lo, hi));
        }
        begin_block = end_block;
    }
    out
}

/// Partitions the block-columns of an `n × n` *upper-triangular* update
/// into at most `parts` contiguous, `align`-aligned column ranges of
/// roughly equal triangle area (column `j` of the triangle holds `j + 1`
/// entries, so equal-width ranges would leave the last worker with almost
/// all the work). Boundary `p` sits near `n·√(p/parts)`. Deterministic;
/// empty ranges are dropped.
pub fn split_triangle(n: usize, parts: usize, align: usize) -> Vec<(usize, usize)> {
    let align = align.max(1);
    let blocks = n.div_ceil(align);
    let parts = parts.clamp(1, blocks.max(1));
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for p in 0..parts {
        let hi = if p + 1 == parts {
            n
        } else {
            // Column c with c² ≈ n²·(p+1)/parts splits the area evenly;
            // round the block index to keep boundaries align-multiples.
            let target = isqrt((n as u128) * (n as u128) * ((p + 1) as u128) / (parts as u128));
            let col = usize::try_from(target).unwrap_or(n).min(n);
            (col.div_ceil(align) * align).min(n)
        };
        if hi > lo {
            out.push((lo, hi));
        }
        lo = lo.max(hi);
    }
    out
}

/// Integer square root (floor), Newton's method on `u128`.
fn isqrt(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    let mut x = v;
    let mut y = (x + 1) >> 1;
    while y < x {
        x = y;
        y = (x + v / x) >> 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_covers_and_aligns() {
        for &(n, parts, align) in &[
            (512usize, 4usize, 4usize),
            (17, 4, 4),
            (1, 8, 4),
            (0, 3, 4),
            (100, 1, 8),
            (33, 33, 1),
        ] {
            let ranges = split_even(n, parts, align);
            let mut expect = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, expect, "contiguous");
                assert!(hi > lo, "nonempty");
                if hi != n {
                    assert_eq!(hi % align, 0, "aligned interior boundary");
                }
                expect = hi;
            }
            assert_eq!(expect, n, "covers 0..n (n={n} parts={parts})");
            assert!(ranges.len() <= parts.max(1));
        }
    }

    #[test]
    fn split_even_balances_blocks() {
        let ranges = split_even(512, 4, 4);
        assert_eq!(ranges, vec![(0, 128), (128, 256), (256, 384), (384, 512)]);
    }

    #[test]
    fn split_triangle_covers_and_balances_area() {
        for &(n, parts, align) in &[(512usize, 4usize, 4usize), (100, 3, 4), (40, 8, 4)] {
            let ranges = split_triangle(n, parts, align);
            let mut expect = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, expect);
                assert!(hi > lo);
                expect = hi;
            }
            assert_eq!(expect, n);
            // Area balance: no range owns more than ~2x the ideal share of
            // triangle entries (alignment rounding forbids exactness).
            let total = n * (n + 1) / 2;
            let ideal = total / ranges.len();
            for &(lo, hi) in &ranges {
                let area = hi * (hi + 1) / 2 - lo * (lo + 1) / 2;
                assert!(
                    area <= 2 * ideal + (align * n),
                    "n={n} parts={parts}: range ({lo},{hi}) area {area} vs ideal {ideal}"
                );
            }
        }
        // The last range must be narrower than the first for a real split.
        let ranges = split_triangle(512, 4, 4);
        let first = ranges[0].1 - ranges[0].0;
        let last = ranges[ranges.len() - 1].1 - ranges[ranges.len() - 1].0;
        assert!(last < first, "triangle split must narrow: {ranges:?}");
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for v in 0..2000u128 {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "v={v} r={r}");
        }
        assert_eq!(isqrt(u128::from(u64::MAX)), (1u128 << 32) - 1);
    }

    #[test]
    fn planned_respects_threshold_and_cap() {
        // Below the flop floor: always sequential (no override in place).
        let tiny = Work {
            flops: PAR_FLOP_THRESHOLD - 1.0,
            bytes: 1.0,
        };
        assert_eq!(planned(tiny, 0), 1);
        // Above it the grant is bounded by both config and the machine
        // share; with in-flight regions the share shrinks.
        let big = Work::gemm(512, 512, 512);
        let grant0 = planned(big, 0);
        assert!(grant0 >= 1 && grant0 <= configured_threads().max(1));
        let grant8 = planned(big, 8);
        assert!(grant8 <= grant0.max(1));
        assert!(grant8 >= 1);
    }

    #[test]
    fn intensity_gate_admits_compute_bound_shapes_only() {
        let ff = tune::DEFAULT_PAR_FLOP_FLOOR;
        let fi = tune::DEFAULT_PAR_INTENSITY_FLOOR;
        // The two committed bench shapes must fan out: a square 512³ GEMM
        // (intensity ≈ 32 flops/byte) and the deep 60000×64 Gram SYRK
        // (intensity ≈ 8).
        assert!(admits(Work::gemm(512, 512, 512), ff, fi));
        assert!(admits(Work::syrk(64, 60000), ff, fi));
        // Tall-skinny TSQR leaves and narrow QR trailing updates carry
        // plenty of flops but stream their operands once (intensity < 4):
        // fanning them out loses, so the gate must keep them sequential.
        assert!(!admits(Work::gemm(40000, 20, 20), ff, fi));
        assert!(!admits(Work::gemm(8000, 96, 32), ff, fi));
        // Small cache-resident multiplies stop at the flop floor.
        assert!(!admits(Work::gemm(64, 64, 64), ff, fi));
    }

    #[test]
    fn work_profiles_match_hand_counts() {
        let g = Work::gemm(10, 20, 30);
        assert_eq!(g.flops, 2.0 * 10.0 * 20.0 * 30.0);
        assert_eq!(g.bytes, 8.0 * (300.0 + 600.0 + 400.0));
        let s = Work::syrk(10, 30);
        assert_eq!(s.flops, 100.0 * 30.0);
        assert_eq!(s.bytes, 8.0 * (300.0 + 100.0));
        assert!(Work {
            flops: 5.0,
            bytes: 0.0
        }
        .intensity()
        .is_infinite());
    }

    #[test]
    fn override_forces_exact_count_and_restores() {
        // Far below the flop floor.
        let tiny = Work {
            flops: 8.0,
            bytes: 8.0,
        };
        assert_eq!(planned_threads(tiny), 1);
        let inner = with_threads(3, || {
            let nested = with_threads(7, || planned_threads(tiny));
            assert_eq!(nested, 7, "nested override wins while active");
            planned_threads(tiny)
        });
        assert_eq!(inner, 3, "outer override restored after nested scope");
        assert_eq!(planned_threads(tiny), 1, "override removed on exit");
    }

    #[test]
    fn override_clamps_degenerate_counts() {
        let huge = Work::gemm(4096, 4096, 4096);
        let tiny = Work {
            flops: 1.0,
            bytes: 1.0,
        };
        assert_eq!(with_threads(0, || planned_threads(huge)), 1);
        assert_eq!(
            with_threads(MAX_THREADS * 10, || planned_threads(tiny)),
            MAX_THREADS
        );
    }

    #[test]
    fn region_tracks_in_flight() {
        with_threads(4, || {
            let before = IN_FLIGHT.load(Ordering::Relaxed);
            {
                let r = region(Work {
                    flops: 1.0,
                    bytes: 1.0,
                });
                assert_eq!(r.threads(), 4);
                assert_eq!(IN_FLIGHT.load(Ordering::Relaxed), before + 1);
            }
            assert_eq!(IN_FLIGHT.load(Ordering::Relaxed), before);
        });
    }

    #[test]
    fn join_all_runs_every_job_once() {
        use std::sync::atomic::AtomicU64;
        let hits = AtomicU64::new(0);
        let jobs: Vec<_> = (0..5)
            .map(|i: u64| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1 << (8 * i), Ordering::Relaxed);
                }
            })
            .collect();
        join_all(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 0x01_01_01_01_01);
        // Degenerate arities.
        join_all(Vec::<fn()>::new());
        let once = AtomicU64::new(0);
        join_all(vec![|| {
            once.fetch_add(1, Ordering::Relaxed);
        }]);
        assert_eq!(once.load(Ordering::Relaxed), 1);
    }
}
