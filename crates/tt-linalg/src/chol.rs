//! Cholesky and diagonally-pivoted Cholesky factorization.
//!
//! The pivoted variant implements the §III-B1 alternative to Gram SVD
//! ("Cholesky QR"): for numerically low-rank Gram matrices it terminates at
//! the first non-positive pivot, sharply truncating the spectrum at `√ε`
//! relative magnitude — exactly the robustness limitation the paper's
//! Gram-SVD route avoids. It is also used by the *symmetric* structured
//! Gram-sweep variant of §IV-B.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Unpivoted Cholesky: returns lower-triangular `L` with `A = L Lᵀ`.
///
/// Only the lower triangle of `a` is read. Fails with
/// [`LinalgError::NotPositiveDefinite`] at the first non-positive pivot.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    crate::paranoid::check_finite("cholesky", "A", a.as_slice());
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// Result of a diagonally-pivoted (rank-revealing) Cholesky factorization:
/// `Pᵀ A P ≈ L Lᵀ` with `L` lower-trapezoidal of width [`rank`](Self::rank).
#[derive(Debug, Clone)]
pub struct PivotedCholesky {
    /// `n × rank` lower-trapezoidal factor (in the *pivoted* row order).
    pub l: Matrix,
    /// Permutation: `perm[k]` is the original index pivoted to position `k`.
    pub perm: Vec<usize>,
    /// Numerical rank detected (columns processed before the pivot fell
    /// below the tolerance).
    pub rank: usize,
}

impl PivotedCholesky {
    /// Expands the factor back to original row ordering:
    /// returns `M` with `A ≈ M Mᵀ` (`M = P L`).
    pub fn factor_unpivoted(&self) -> Matrix {
        let n = self.l.rows();
        let mut m = Matrix::zeros(n, self.rank);
        for k in 0..n {
            let orig = self.perm[k];
            for j in 0..self.rank {
                m[(orig, j)] = self.l[(k, j)];
            }
        }
        m
    }
}

/// Diagonally-pivoted Cholesky with relative pivot tolerance `tol`
/// (LAPACK `dpstrf`-style). Stops as soon as the largest remaining diagonal
/// falls below `tol · max_initial_diagonal`, approximating all remaining
/// singular directions as zero — the "sharp truncation" behavior §III-B1
/// describes.
pub fn pivoted_cholesky(a: &Matrix, tol: f64) -> PivotedCholesky {
    let n = a.rows();
    assert_eq!(
        a.rows(),
        a.cols(),
        "pivoted cholesky requires a square matrix"
    );
    crate::paranoid::check_finite("pivoted_cholesky", "A", a.as_slice());
    crate::paranoid::check_finite_scalar("pivoted_cholesky", "tol", tol);
    // Work on a full copy with explicit permutation bookkeeping.
    let mut w = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let init_max = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)]));
    let thresh = tol * init_max.max(f64::MIN_POSITIVE);

    let mut rank = n;
    for k in 0..n {
        // Select the largest remaining diagonal entry.
        let mut p = k;
        for i in k + 1..n {
            if w[(i, i)] > w[(p, p)] {
                p = i;
            }
        }
        if w[(p, p)] <= thresh {
            rank = k;
            break;
        }
        if p != k {
            swap_sym(&mut w, k, p);
            perm.swap(k, p);
        }
        let d = w[(k, k)].sqrt();
        w[(k, k)] = d;
        for i in k + 1..n {
            w[(i, k)] /= d;
        }
        for j in k + 1..n {
            for i in j..n {
                let delta = w[(i, k)] * w[(j, k)];
                w[(i, j)] -= delta;
            }
        }
    }

    let mut l = Matrix::zeros(n, rank);
    for j in 0..rank {
        for i in j..n {
            l[(i, j)] = w[(i, j)];
        }
    }
    PivotedCholesky { l, perm, rank }
}

/// Symmetric row+column swap touching only the lower triangle.
fn swap_sym(w: &mut Matrix, k: usize, p: usize) {
    debug_assert!(k < p);
    let n = w.rows();
    // diagonal
    let tmp = w[(k, k)];
    w[(k, k)] = w[(p, p)];
    w[(p, p)] = tmp;
    // columns below both
    for i in p + 1..n {
        let t = w[(i, k)];
        w[(i, k)] = w[(i, p)];
        w[(i, p)] = t;
    }
    // the segment between k and p: w[(i,k)] <-> w[(p,i)] for k<i<p
    for i in k + 1..p {
        let t = w[(i, k)];
        w[(i, k)] = w[(p, i)];
        w[(p, i)] = t;
    }
    // leading rows: w[(k,j)] <-> w[(p,j)] for j<k
    for j in 0..k {
        let t = w[(k, j)];
        w[(k, j)] = w[(p, j)];
        w[(p, j)] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, syrk, Trans};
    use rand::SeedableRng;

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = Matrix::gaussian(n + 5, n, &mut rng);
        syrk(&g, 1.0)
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(8, 1);
        let l = cholesky(&a).unwrap();
        let llt = gemm(Trans::No, &l, Trans::Yes, &l, 1.0);
        assert!(llt.max_abs_diff(&a) < 1e-10 * (1.0 + a.max_abs()));
        for j in 0..8 {
            for i in 0..j {
                assert_eq!(l[(i, j)], 0.0);
            }
            assert!(l[(j, j)] > 0.0);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_row_major(2, 2, &[1., 2., 2., 1.]);
        match cholesky(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn pivoted_full_rank_reconstructs() {
        let a = spd(7, 2);
        let pc = pivoted_cholesky(&a, 1e-14);
        assert_eq!(pc.rank, 7);
        let m = pc.factor_unpivoted();
        let mmt = gemm(Trans::No, &m, Trans::Yes, &m, 1.0);
        assert!(mmt.max_abs_diff(&a) < 1e-9 * (1.0 + a.max_abs()));
    }

    #[test]
    fn pivoted_detects_low_rank() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let b = Matrix::gaussian(10, 3, &mut rng);
        let a = gemm(Trans::No, &b, Trans::Yes, &b, 1.0); // rank 3 PSD, 10x10
        let pc = pivoted_cholesky(&a, 1e-10);
        assert_eq!(pc.rank, 3, "rank detection");
        let m = pc.factor_unpivoted();
        let mmt = gemm(Trans::No, &m, Trans::Yes, &m, 1.0);
        assert!(mmt.max_abs_diff(&a) < 1e-9 * (1.0 + a.max_abs()));
    }

    #[test]
    fn pivoted_sharp_truncation_below_tolerance() {
        // Diagonal PSD matrix with a tiny tail: pivoted Cholesky with loose
        // tolerance must cut it (the §III-B1 limitation).
        let d = [1.0, 0.5, 1e-9];
        let a = Matrix::from_fn(3, 3, |i, j| if i == j { d[i] } else { 0.0 });
        let pc = pivoted_cholesky(&a, 1e-6);
        assert_eq!(pc.rank, 2);
    }

    #[test]
    fn pivoted_zero_matrix() {
        let a = Matrix::zeros(4, 4);
        let pc = pivoted_cholesky(&a, 1e-12);
        assert_eq!(pc.rank, 0);
        assert_eq!(pc.l.shape(), (4, 0));
    }
}
