//! Golub–Kahan SVD: Householder bidiagonalization followed by an SVD of
//! the small bidiagonal core.
//!
//! This is the structure of the LAPACK-`dgesvd` algorithm the paper's
//! software stack (OpenBLAS/LAPACK) uses for its truncated SVDs: reduce the
//! `m × n` matrix to an `n × n` bidiagonal with two-sided Householder
//! reflections (`O(mn²)` — the dominant saving on tall matrices), then
//! diagonalize the bidiagonal. For the final diagonalization we reuse the
//! one-sided Jacobi kernel of [`crate::svd`] rather than a bulge-chasing QR
//! iteration — on the small post-reduction core the asymptotics match, and
//! Jacobi is unconditionally robust. The two SVD backends cross-validate
//! each other in the test suite, and either can back the rounding kernels.

use crate::matrix::Matrix;
use crate::svd::Svd;
use crate::Result;

/// Computes the thin SVD of `a` via Golub–Kahan bidiagonalization followed
/// by diagonalization of the bidiagonal core. Singular values are returned
/// descending with orthonormal `U` (`m × k`) and `V` (`n × k`),
/// `k = min(m, n)`.
pub fn golub_kahan_svd(a: &Matrix) -> Result<Svd> {
    crate::paranoid::check_finite("golub_kahan_svd", "A", a.as_slice());
    let (m, n) = a.shape();
    if m < n {
        // Work on the transpose and swap factors.
        let t = golub_kahan_svd(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        });
    }
    if n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            singular_values: vec![],
            v: Matrix::zeros(0, 0),
        });
    }

    // ---- Householder bidiagonalization: A = U_b B V_bᵀ. ----
    let mut work = a.clone();
    let mut d = vec![0.0; n]; // diagonal of B
    let mut e = vec![0.0; n]; // superdiagonal of B (e[0] unused)
                              // Accumulated transforms, applied to identity during the reduction.
    let mut u = Matrix::zeros(m, n);
    for j in 0..n {
        u[(j, j)] = 1.0;
    }
    let mut v = Matrix::identity(n);

    // Store reflectors in-place; accumulate U and V afterwards (backward).
    let mut tau_left = vec![0.0; n];
    let mut tau_right = vec![0.0; n];
    for k in 0..n {
        // Left reflector annihilating work[k+1.., k].
        let (tl, beta) = make_reflector_col(&mut work, k);
        tau_left[k] = tl;
        d[k] = beta;
        if tl != 0.0 {
            apply_reflector_col_left(&mut work, k, tl);
        }
        if k + 1 < n {
            // Right reflector annihilating work[k, k+2..].
            let (tr, beta_r) = make_reflector_row(&mut work, k);
            tau_right[k] = tr;
            e[k + 1] = beta_r;
            if tr != 0.0 {
                apply_reflector_row_right(&mut work, k, tr);
            }
        }
    }

    // Accumulate U (m × n): apply left reflectors backward to the identity
    // columns.
    for k in (0..n).rev() {
        let t = tau_left[k];
        if t != 0.0 {
            apply_stored_col_reflector(&work, k, t, &mut u);
        }
    }
    // Accumulate V (n × n): right reflectors act on rows k, columns k+1..;
    // vᵀ stored in work[k, k+2..].
    for k in (0..n.saturating_sub(1)).rev() {
        let t = tau_right[k];
        if t != 0.0 {
            apply_stored_row_reflector(&work, k, t, &mut v);
        }
    }

    // ---- SVD of the small bidiagonal core B (n × n). ----
    let mut b = Matrix::zeros(n, n);
    for k in 0..n {
        b[(k, k)] = d[k];
        if k + 1 < n {
            b[(k, k + 1)] = e[k + 1];
        }
    }
    let core = crate::svd::jacobi_svd(&b);

    // Compose: A = (U·U_b) Σ (V·V_b)ᵀ.
    let su = crate::gemm::gemm(
        crate::gemm::Trans::No,
        &u,
        crate::gemm::Trans::No,
        &core.u,
        1.0,
    );
    let sv = crate::gemm::gemm(
        crate::gemm::Trans::No,
        &v,
        crate::gemm::Trans::No,
        &core.v,
        1.0,
    );
    Ok(Svd {
        u: su,
        singular_values: core.singular_values,
        v: sv,
    })
}

/// Householder reflector for column `k` below the diagonal.
fn make_reflector_col(w: &mut Matrix, k: usize) -> (f64, f64) {
    let m = w.rows();
    let alpha = w[(k, k)];
    let mut xnorm2 = 0.0;
    for i in k + 1..m {
        xnorm2 += w[(i, k)] * w[(i, k)];
    }
    if xnorm2 == 0.0 {
        return (0.0, alpha);
    }
    let norm = (alpha * alpha + xnorm2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for i in k + 1..m {
        w[(i, k)] *= scale;
    }
    (tau, beta)
}

/// Applies the column-`k` reflector to columns `k+1..` of `w`.
fn apply_reflector_col_left(w: &mut Matrix, k: usize, tau: f64) {
    let (m, n) = w.shape();
    for c in k + 1..n {
        let mut s = w[(k, c)];
        for i in k + 1..m {
            s += w[(i, k)] * w[(i, c)];
        }
        let ts = tau * s;
        w[(k, c)] -= ts;
        for i in k + 1..m {
            let vik = w[(i, k)];
            w[(i, c)] -= ts * vik;
        }
    }
}

/// Householder reflector for row `k`, columns `k+2..` (bidiagonal shape).
fn make_reflector_row(w: &mut Matrix, k: usize) -> (f64, f64) {
    let n = w.cols();
    let alpha = w[(k, k + 1)];
    let mut xnorm2 = 0.0;
    for j in k + 2..n {
        xnorm2 += w[(k, j)] * w[(k, j)];
    }
    if xnorm2 == 0.0 {
        return (0.0, alpha);
    }
    let norm = (alpha * alpha + xnorm2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for j in k + 2..n {
        w[(k, j)] *= scale;
    }
    (tau, beta)
}

/// Applies the row-`k` reflector to rows `k+1..` of `w`.
fn apply_reflector_row_right(w: &mut Matrix, k: usize, tau: f64) {
    let (m, n) = w.shape();
    for i in k + 1..m {
        let mut s = w[(i, k + 1)];
        for j in k + 2..n {
            s += w[(k, j)] * w[(i, j)];
        }
        let ts = tau * s;
        w[(i, k + 1)] -= ts;
        for j in k + 2..n {
            let vkj = w[(k, j)];
            w[(i, j)] -= ts * vkj;
        }
    }
}

/// Applies a stored column reflector to every column of `u`.
fn apply_stored_col_reflector(w: &Matrix, k: usize, tau: f64, u: &mut Matrix) {
    let m = w.rows();
    for c in 0..u.cols() {
        let col = u.col_mut(c);
        let mut s = col[k];
        for i in k + 1..m {
            s += w[(i, k)] * col[i];
        }
        let ts = tau * s;
        col[k] -= ts;
        for i in k + 1..m {
            col[i] -= ts * w[(i, k)];
        }
    }
}

/// Applies a stored row reflector (vᵀ in `w[k, k+2..]`, pivot at `k+1`) to
/// every column of `v`.
fn apply_stored_row_reflector(w: &Matrix, k: usize, tau: f64, v: &mut Matrix) {
    let n = v.rows();
    for c in 0..v.cols() {
        let col = v.col_mut(c);
        let mut s = col[k + 1];
        for j in k + 2..n {
            s += w[(k, j)] * col[j];
        }
        let ts = tau * s;
        col[k + 1] -= ts;
        for j in k + 2..n {
            col[j] -= ts * w[(k, j)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};
    use rand::SeedableRng;

    fn check(m: usize, n: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::gaussian(m, n, &mut rng);
        let s = golub_kahan_svd(&a).unwrap();
        let k = m.min(n);
        let mut us = s.u.clone();
        for (j, &sv) in s.singular_values.iter().enumerate() {
            us.scale_col(j, sv);
        }
        let back = gemm(Trans::No, &us, Trans::Yes, &s.v, 1.0);
        assert!(
            back.max_abs_diff(&a) < 1e-10 * (1.0 + a.max_abs()),
            "reconstruct {m}x{n}"
        );
        let utu = gemm(Trans::Yes, &s.u, Trans::No, &s.u, 1.0);
        assert!(
            utu.max_abs_diff(&Matrix::identity(k)) < 1e-10,
            "U orth {m}x{n}"
        );
        let vtv = gemm(Trans::Yes, &s.v, Trans::No, &s.v, 1.0);
        assert!(
            vtv.max_abs_diff(&Matrix::identity(k)) < 1e-10,
            "V orth {m}x{n}"
        );
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn gk_svd_tall() {
        check(30, 6, 1);
    }

    #[test]
    fn gk_svd_square() {
        check(10, 10, 2);
    }

    #[test]
    fn gk_svd_wide() {
        check(5, 14, 3);
    }

    #[test]
    fn gk_svd_single_column() {
        check(9, 1, 4);
    }

    #[test]
    fn gk_matches_jacobi() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for &(m, n) in &[(20usize, 8usize), (15, 15), (7, 12)] {
            let a = Matrix::gaussian(m, n, &mut rng);
            let gk = golub_kahan_svd(&a).unwrap();
            let j = crate::svd::jacobi_svd(&a);
            for (x, y) in gk.singular_values.iter().zip(&j.singular_values) {
                assert!((x - y).abs() < 1e-9 * (1.0 + x), "{x} vs {y} ({m}x{n})");
            }
        }
    }

    #[test]
    fn gk_rank_deficient() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let b = Matrix::gaussian(18, 3, &mut rng);
        let c = Matrix::gaussian(3, 7, &mut rng);
        let a = gemm(Trans::No, &b, Trans::No, &c, 1.0);
        let s = golub_kahan_svd(&a).unwrap();
        for &sv in &s.singular_values[3..] {
            assert!(sv < 1e-9 * s.singular_values[0], "tail sv {sv}");
        }
        let mut us = s.u.clone();
        for (j, &sv) in s.singular_values.iter().enumerate() {
            us.scale_col(j, sv);
        }
        let back = gemm(Trans::No, &us, Trans::Yes, &s.v, 1.0);
        assert!(back.max_abs_diff(&a) < 1e-10 * (1.0 + a.max_abs()));
    }

    #[test]
    fn gk_zero_matrix() {
        let a = Matrix::zeros(6, 4);
        let s = golub_kahan_svd(&a).unwrap();
        assert!(s.singular_values.iter().all(|&x| x == 0.0));
    }
}
