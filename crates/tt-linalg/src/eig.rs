//! Symmetric eigendecomposition.
//!
//! The Gram-SVD rounding algorithms need eigendecompositions of the small
//! symmetric positive semi-definite Gram matrices `G_n^L`, `G_n^R`
//! (Algs. 4–6, lines `EIG(G)`), for which we implement the classic dense
//! symmetric solver: Householder tridiagonalization (`tred2`) followed by
//! the implicit-shift QL iteration (`tql2`), both EISPACK-lineage
//! algorithms. Eigenvalues are returned in ascending order with an
//! orthonormal eigenvector matrix.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Eigendecomposition `A = Z Λ Zᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors (column `j` pairs with `values[j]`).
    pub vectors: Matrix,
}

impl EigH {
    /// Eigenvalues in *descending* order together with the reordered
    /// eigenvector matrix (the ordering used by the rounding algorithms,
    /// which truncate the leading spectrum).
    pub fn descending(mut self) -> EigH {
        let n = self.values.len();
        self.values.reverse();
        let mut vecs = Matrix::zeros(n, n);
        for j in 0..n {
            vecs.col_mut(j).copy_from_slice(self.vectors.col(n - 1 - j));
        }
        self.vectors = vecs;
        self
    }
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Only the lower triangle of `a` is referenced. Returns
/// [`LinalgError::NoConvergence`] if the QL iteration fails (essentially
/// impossible for finite input; the LAPACK `dsteqr` budget of `30·n` total
/// iterations is used).
pub fn eigh(a: &Matrix) -> Result<EigH> {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "eigh requires a square matrix");
    crate::paranoid::check_finite("eigh", "A", a.as_slice());
    if n == 0 {
        return Ok(EigH {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }

    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut d, &mut e, &mut z)?;
    Ok(EigH {
        values: d,
        vectors: z,
    })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transformation in `z` (EISPACK `tred2`).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 0 {
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    let v = z[(i, k)] / scale;
                    z[(i, k)] = v;
                    h += v * v;
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut ff = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in j + 1..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    ff += e[j] * z[(i, j)];
                }
                let hh = ff / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        let l = i;
        if d[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0;
                for k in 0..l {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..l {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..l {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix with
/// eigenvector accumulation (EISPACK `tql2`). Sorts ascending on exit.
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<()> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    // LAPACK-style *total* iteration budget (dsteqr uses 30·n): individual
    // eigenvalues in roundoff-level clusters can need many sweeps over long
    // unsplit segments, so a small per-eigenvalue cap is too strict.
    let max_total_iter = 30 * n;
    let mut total_iter = 0;
    for l in 0..n {
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd + f64::MIN_POSITIVE {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            total_iter += 1;
            if total_iter > max_total_iter {
                return Err(LinalgError::NoConvergence {
                    iterations: max_total_iter,
                });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow_break = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Off-diagonal underflow: deflate and restart this l.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow_break = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow_break {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort eigenvalues (and vectors) ascending: selection sort, n is small.
    for i in 0..n - 1 {
        let mut k = i;
        for j in i + 1..n {
            if d[j] < d[k] {
                k = j;
            }
        }
        if k != i {
            d.swap(i, k);
            for row in 0..n {
                let tmp = z[(row, i)];
                z[(row, i)] = z[(row, k)];
                z[(row, k)] = tmp;
            }
        }
    }
    Ok(())
}

fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, syrk, Trans};
    use rand::SeedableRng;

    fn check_eig(a: &Matrix, tol: f64) {
        let n = a.rows();
        let EigH { values, vectors } = eigh(a).unwrap();
        // ascending order
        for w in values.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
        // orthogonality
        let ztz = gemm(Trans::Yes, &vectors, Trans::No, &vectors, 1.0);
        assert!(
            ztz.max_abs_diff(&Matrix::identity(n)) < tol,
            "Z not orthogonal"
        );
        // reconstruction A Z = Z Λ
        let az = gemm(Trans::No, a, Trans::No, &vectors, 1.0);
        let mut zl = vectors.clone();
        for (j, &lam) in values.iter().enumerate() {
            zl.scale_col(j, lam);
        }
        assert!(
            az.max_abs_diff(&zl) < tol * (1.0 + a.max_abs()),
            "A Z != Z Lambda"
        );
    }

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = Matrix::gaussian(n, n, &mut rng);
        let mut s = g.clone();
        let gt = g.transpose();
        s.axpy(1.0, &gt);
        s
    }

    #[test]
    fn eig_small_sizes() {
        for n in [1usize, 2, 3, 5, 10, 25] {
            check_eig(&random_symmetric(n, n as u64), 1e-11);
        }
    }

    #[test]
    fn eig_known_2x2() {
        let a = Matrix::from_row_major(2, 2, &[2., 1., 1., 2.]);
        let e = eigh(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-14);
        assert!((e.values[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn eig_diagonal() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let e = eigh(&a).unwrap();
        for i in 0..4 {
            assert!((e.values[i] - (i + 1) as f64).abs() < 1e-14);
        }
    }

    #[test]
    fn eig_psd_gram_has_nonnegative_spectrum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a = Matrix::gaussian(40, 8, &mut rng);
        let g = syrk(&a, 1.0);
        let e = eigh(&g).unwrap();
        for &lam in &e.values {
            assert!(lam > -1e-10, "negative eigenvalue {lam} of a Gram matrix");
        }
        check_eig(&g, 1e-9);
    }

    #[test]
    fn eig_repeated_eigenvalues() {
        // 3x identity plus rank-1: eigenvalues {1, 1, 1 + 3}.
        let mut a = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] += 1.0;
            }
        }
        let e = eigh(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-13);
        assert!((e.values[1] - 1.0).abs() < 1e-13);
        assert!((e.values[2] - 4.0).abs() < 1e-13);
        check_eig(&a, 1e-12);
    }

    #[test]
    fn descending_reorders() {
        let a = random_symmetric(6, 42);
        let e = eigh(&a).unwrap().descending();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-14);
        }
        let za = gemm(Trans::No, &a, Trans::No, &e.vectors, 1.0);
        let mut zl = e.vectors.clone();
        for (j, &lam) in e.values.iter().enumerate() {
            zl.scale_col(j, lam);
        }
        assert!(za.max_abs_diff(&zl) < 1e-10 * (1.0 + a.max_abs()));
    }

    #[test]
    fn eig_matches_svd_for_gram() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = Matrix::gaussian(30, 6, &mut rng);
        let g = syrk(&a, 1.0);
        let e = eigh(&g).unwrap().descending();
        let s = crate::svd::jacobi_svd(&a);
        for j in 0..6 {
            let sv2 = s.singular_values[j] * s.singular_values[j];
            assert!(
                (e.values[j] - sv2).abs() < 1e-9 * (1.0 + sv2),
                "eig {} vs sv^2 {}",
                e.values[j],
                sv2
            );
        }
    }
}
