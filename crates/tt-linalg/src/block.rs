//! Packed, cache-blocked GEMM/SYRK engine.
//!
//! The paper's efficiency argument (§IV-E, and Röhrig-Zöllner et al. for the
//! tall-skinny case) assumes the Gram-path `gemm`/`syrk` calls run near the
//! hardware roofline. The straightforward column loops in
//! [`crate::reference`] re-stream the whole `A` operand from memory once per
//! output column; this module replaces them on the hot path with the
//! classical three-level blocking scheme (Goto/BLIS):
//!
//! * **Register tile** — an `MR × NR` accumulator block held entirely in
//!   registers while streaming one `KC`-deep sliver of packed `A` and `B`;
//! * **Cache blocks** — `MC × KC` panels of `op(A)` packed into an
//!   `MR`-row-slab layout (L2-resident) and `KC × NC` panels of `op(B)`
//!   packed into an `NR`-column-slab layout (L1-streamed), so the microkernel
//!   only ever touches unit-stride, aligned, zero-padded buffers;
//! * **Transpose handling** — all four `op` combinations are absorbed by the
//!   packing routines, so callers ([`crate::gemm::gemm_v`] and friends) are
//!   untouched and pay zero per-element dispatch cost.
//!
//! Everything is safe Rust: the microkernel uses `as_chunks` fixed-size
//! array views so bounds checks vanish and the compiler can keep the
//! accumulator tile in vector registers.
//!
//! [`syrk`] specializes the same machinery for `C = alpha·AᵀA` /
//! `C = alpha·A Aᵀ`: the `B` panel is packed once per `KC` slice and only
//! register tiles intersecting the upper triangle are computed, halving the
//! arithmetic; the strict lower triangle is mirrored at the end.

use crate::gemm::Trans;
use crate::matrix::Matrix;
use crate::par;
use crate::view::{MatMut, MatRef};

/// Microkernel tile rows. Two 4-wide f64 vectors per accumulator column.
pub const MR: usize = 8;
/// Microkernel tile columns. `MR × NR` accumulators fill 8 vector registers.
pub const NR: usize = 4;
/// Row cache-block: `MC × KC` packed `A` panel stays L2-resident (256 KiB).
const MC: usize = 128;
/// Depth cache-block: one packed sliver pass amortizes the pack traffic.
const KC: usize = 256;
/// Column cache-block: bounds the packed `B` panel (`KC × NC`).
const NC: usize = 2048;

/// Packs the `mc × kc` block of `op(A)` starting at `(i0, k0)` into
/// `MR`-row slabs: `buf[slab * MR * kc + step * MR + r]` holds
/// `op(A)[i0 + slab*MR + r, k0 + step]`, with rows beyond `mc` zero-padded
/// so the microkernel never needs an edge case.
fn pack_a(ta: Trans, a: &MatRef<'_>, i0: usize, mc: usize, k0: usize, kc: usize, buf: &mut [f64]) {
    let slabs = mc.div_ceil(MR);
    debug_assert!(buf.len() >= slabs * MR * kc);
    for slab in 0..slabs {
        let base = slab * MR * kc;
        let rows = MR.min(mc - slab * MR);
        match ta {
            Trans::No => {
                // Contiguous column reads from A.
                for step in 0..kc {
                    let col = a.col(k0 + step);
                    let dst = &mut buf[base + step * MR..base + step * MR + MR];
                    let src_base = i0 + slab * MR;
                    dst[..rows].copy_from_slice(&col[src_base..src_base + rows]);
                    for d in dst.iter_mut().skip(rows) {
                        *d = 0.0;
                    }
                }
            }
            Trans::Yes => {
                // op(A)[i, k] = A[k, i]: contiguous column reads per tile row.
                for r in 0..rows {
                    let col = a.col(i0 + slab * MR + r);
                    for step in 0..kc {
                        buf[base + step * MR + r] = col[k0 + step];
                    }
                }
                for r in rows..MR {
                    for step in 0..kc {
                        buf[base + step * MR + r] = 0.0;
                    }
                }
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` starting at `(k0, j0)` into
/// `NR`-column slabs: `buf[slab * NR * kc + step * NR + q]` holds
/// `op(B)[k0 + step, j0 + slab*NR + q]`, columns beyond `nc` zero-padded.
fn pack_b(tb: Trans, b: &MatRef<'_>, k0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f64]) {
    let slabs = nc.div_ceil(NR);
    debug_assert!(buf.len() >= slabs * NR * kc);
    match tb {
        Trans::No => {
            for slab in 0..slabs {
                let base = slab * NR * kc;
                let cols = NR.min(nc - slab * NR);
                for q in 0..cols {
                    let col = b.col(j0 + slab * NR + q);
                    for step in 0..kc {
                        buf[base + step * NR + q] = col[k0 + step];
                    }
                }
                for q in cols..NR {
                    for step in 0..kc {
                        buf[base + step * NR + q] = 0.0;
                    }
                }
            }
        }
        Trans::Yes => {
            // op(B)[k, j] = B[j, k]: stream each B column (contiguous in j).
            for step in 0..kc {
                let col = b.col(k0 + step);
                for slab in 0..slabs {
                    let base = slab * NR * kc;
                    let cols = NR.min(nc - slab * NR);
                    let src_base = j0 + slab * NR;
                    for q in 0..cols {
                        buf[base + step * NR + q] = col[src_base + q];
                    }
                    for q in cols..NR {
                        buf[base + step * NR + q] = 0.0;
                    }
                }
            }
        }
    }
}

/// The register microkernel: `acc[q][r] += sum_step pa[step][r] * pb[step][q]`
/// over one `KC`-deep sliver of packed panels. `pa` is `kc × MR`, `pb` is
/// `kc × NR`, both step-major; the fixed-size array views let the whole
/// accumulator tile live in registers.
#[inline]
fn microkernel(pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
    let (a_steps, _) = pa.as_chunks::<MR>();
    let (b_steps, _) = pb.as_chunks::<NR>();
    debug_assert_eq!(a_steps.len(), b_steps.len());
    for (ar, br) in a_steps.iter().zip(b_steps.iter()) {
        for q in 0..NR {
            let bq = br[q];
            let accq = &mut acc[q];
            for r in 0..MR {
                accq[r] += ar[r] * bq;
            }
        }
    }
}

/// Writes `c[i0.., j0..] += alpha * acc` for the valid `mr × nr` corner of a
/// register tile.
#[inline]
fn writeback(
    acc: &[[f64; MR]; NR],
    alpha: f64,
    c: &mut MatMut<'_>,
    i0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
) {
    for (q, accq) in acc.iter().enumerate().take(nr) {
        let col = &mut c.col_mut(j0 + q)[i0..i0 + mr];
        for (r, cij) in col.iter_mut().enumerate() {
            *cij += alpha * accq[r];
        }
    }
}

/// Blocked `C += alpha * op(A) * op(B)`.
///
/// Shapes must already agree and `alpha`, `m`, `n`, `k` must be nonzero /
/// nondegenerate — the dispatcher in [`crate::gemm::gemm_v`] guarantees both
/// and handles the `beta` scaling of `C` beforehand.
///
/// Above [`par::PAR_FLOP_THRESHOLD`] the output columns are partitioned into
/// `NR`-aligned contiguous ranges and each range is swept by its own scoped
/// worker thread. Each worker packs its own panels from the shared operands
/// and owns a disjoint column slice of `C`, so no synchronization is needed
/// beyond the final join — and because the `k` reduction is never split, each
/// output element sees exactly the sequential accumulation order and the
/// result is **bitwise identical** for every thread count.
pub fn gemm_accumulate(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
) {
    let (m, k) = ta.dims(&a);
    let (_, n) = tb.dims(&b);
    debug_assert!(m > 0 && n > 0 && k > 0 && alpha != 0.0);

    let region = par::region(crate::gemm::gemm_flops(m, n, k));
    let threads = region.threads().min(n.div_ceil(NR));
    if threads <= 1 {
        gemm_sweep(ta, a, tb, b, alpha, &mut c.reborrow(), 0);
        return;
    }

    let ranges = par::split_even(n, threads, NR);
    let mut jobs = Vec::with_capacity(ranges.len());
    let mut rest = c.reborrow();
    let mut offset = 0usize;
    for (lo, hi) in ranges {
        let (chunk, tail) = rest.split_cols_at(hi - offset);
        rest = tail;
        offset = hi;
        jobs.push(move || {
            let mut chunk = chunk;
            // analyze::allow(alloc_hot_path): each worker packs into
            // thread-private buffers allocated once per kernel invocation
            // and amortized over its whole blocked sweep; sharing one
            // buffer across concurrent workers would race.
            gemm_sweep(ta, a, tb, b, alpha, &mut chunk, lo);
        });
    }
    par::join_all(jobs);
}

/// The full cache-blocked loop nest over one contiguous column range of the
/// output. `c` holds the local columns (`c.cols()` of them) and `col_off` is
/// the global index of its first column, used only to address `op(B)` in the
/// packing — so a worker sweeping columns `[col_off, col_off + c.cols())`
/// performs precisely the instructions the sequential sweep performs for
/// those columns.
fn gemm_sweep(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
    col_off: usize,
) {
    let (m, k) = ta.dims(&a);
    let n = c.cols();

    let mut pa = vec![0.0; m.min(MC).div_ceil(MR) * MR * k.min(KC)];
    let mut pb = vec![0.0; n.min(NC).div_ceil(NR) * NR * k.min(KC)];

    for j0 in (0..n).step_by(NC) {
        let nc = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            pack_b(tb, &b, k0, kc, col_off + j0, nc, &mut pb);
            for i0 in (0..m).step_by(MC) {
                let mc = MC.min(m - i0);
                pack_a(ta, &a, i0, mc, k0, kc, &mut pa);
                multiply_panels(&pa, &pb, mc, nc, kc, alpha, c, i0, j0, 0, false);
            }
        }
    }
}

/// Inner tile sweep over one packed `A` panel (`mc × kc`) and one packed `B`
/// panel (`nc × kc`), writing `c[i0.., j0..] += alpha * Ã B̃`.
///
/// `j0` indexes `c`'s *local* columns; `col_off` is the global index of
/// `c`'s first column (0 when `c` is the whole output). The distinction only
/// matters for `triangle_only`, the SYRK triangle cut: a register tile lying
/// entirely in the strict lower triangle of the *global* matrix (every global
/// column index below every row index) is skipped — the mirror pass fills it.
#[allow(clippy::too_many_arguments)]
fn multiply_panels(
    pa: &[f64],
    pb: &[f64],
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    c: &mut MatMut<'_>,
    i0: usize,
    j0: usize,
    col_off: usize,
    triangle_only: bool,
) {
    let a_slabs = mc.div_ceil(MR);
    let b_slabs = nc.div_ceil(NR);
    for bs in 0..b_slabs {
        let nr = NR.min(nc - bs * NR);
        let jl = j0 + bs * NR; // local first column of this tile
        let pb_slab = &pb[bs * NR * kc..(bs * NR * kc) + NR * kc];
        for as_ in 0..a_slabs {
            let mr = MR.min(mc - as_ * MR);
            let ig = i0 + as_ * MR; // global first row of this tile
            if triangle_only && col_off + jl + nr <= ig {
                continue;
            }
            let mut acc = [[0.0; MR]; NR];
            microkernel(
                &pa[as_ * MR * kc..(as_ * MR * kc) + MR * kc],
                pb_slab,
                &mut acc,
            );
            writeback(&acc, alpha, c, ig, mr, jl, nr);
        }
    }
}

/// Which contraction a blocked SYRK performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyrkShape {
    /// `C = alpha * Aᵀ A` (`n × n`, contraction over rows).
    TransposeA,
    /// `C = alpha * A Aᵀ` (`m × m`, contraction over columns).
    TransposeB,
}

/// Blocked symmetric rank-k update, computing only register tiles that
/// intersect the upper triangle and mirroring the rest.
///
/// The `B`-side panel is packed **once** per `KC` slice and reused by every
/// row block — with `op(A)` and `op(B)` drawn from the same operand this is
/// the "pack once" saving on top of the triangle cut.
///
/// Parallel dispatch partitions the output columns with
/// [`par::split_triangle`] (triangle-area-balanced, since column `j` of the
/// upper triangle carries `j + 1` entries); each worker runs the sequential
/// sweep over its own disjoint column slice with global triangle geometry, so
/// the result is bitwise identical at every thread count. The `O(n²)` mirror
/// pass stays sequential.
pub fn syrk(a: MatRef<'_>, alpha: f64, shape: SyrkShape) -> Matrix {
    let (ta, tb) = match shape {
        SyrkShape::TransposeA => (Trans::Yes, Trans::No),
        SyrkShape::TransposeB => (Trans::No, Trans::Yes),
    };
    let (n, k) = ta.dims(&a);
    let mut c = Matrix::zeros(n, n);
    if n == 0 {
        return c;
    }
    if k == 0 || alpha == 0.0 {
        return c;
    }

    {
        // Half a gemm's arithmetic: only the (block) triangle is computed.
        let region = par::region(crate::gemm::gemm_flops(n, n, k) / 2.0);
        let threads = region.threads().min(n.div_ceil(NR));
        let mut cv = c.view_mut();
        if threads <= 1 {
            syrk_sweep(ta, a, tb, alpha, &mut cv, 0);
        } else {
            let ranges = par::split_triangle(n, threads, NR);
            let mut jobs = Vec::with_capacity(ranges.len());
            let mut rest = cv;
            let mut offset = 0usize;
            for (lo, hi) in ranges {
                let (chunk, tail) = rest.split_cols_at(hi - offset);
                rest = tail;
                offset = hi;
                jobs.push(move || {
                    let mut chunk = chunk;
                    // analyze::allow(alloc_hot_path): thread-private packing
                    // buffers, one allocation per worker per invocation,
                    // amortized over the whole triangle sweep.
                    syrk_sweep(ta, a, tb, alpha, &mut chunk, lo);
                });
            }
            par::join_all(jobs);
        }
    }
    // Mirror the upper triangle into the strict lower triangle. Boundary
    // tiles computed a few strictly-lower entries already; overwriting them
    // with the mirrored value keeps C exactly symmetric.
    for j in 0..n {
        for i in j + 1..n {
            c[(i, j)] = c[(j, i)];
        }
    }
    c
}

/// Sequential SYRK sweep over one contiguous column range of the output.
/// `c` holds the local columns; `col_off` is the global index of its first
/// column, threaded through to the packing and the triangle cuts so the
/// per-tile work (and therefore the bits produced) is independent of how the
/// columns were partitioned.
fn syrk_sweep(ta: Trans, a: MatRef<'_>, tb: Trans, alpha: f64, c: &mut MatMut<'_>, col_off: usize) {
    let (n, k) = ta.dims(&a);
    let ncols = c.cols();

    let mut pa = vec![0.0; n.min(MC).div_ceil(MR) * MR * k.min(KC)];
    let mut pb = vec![0.0; ncols.min(NC).div_ceil(NR) * NR * k.min(KC)];

    for j0 in (0..ncols).step_by(NC) {
        let nc = NC.min(ncols - j0);
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            pack_b(tb, &a, k0, kc, col_off + j0, nc, &mut pb);
            for i0 in (0..n).step_by(MC) {
                // Row blocks entirely below this column block contribute
                // only strictly-lower tiles; skip them wholesale.
                if i0 > col_off + j0 + nc {
                    continue;
                }
                let mc = MC.min(n - i0);
                pack_a(ta, &a, i0, mc, k0, kc, &mut pa);
                multiply_panels(&pa, &pb, mc, nc, kc, alpha, c, i0, j0, col_off, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::SeedableRng;

    fn check_gemm(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, alpha: f64, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = match ta {
            Trans::No => Matrix::gaussian(m, k, &mut rng),
            Trans::Yes => Matrix::gaussian(k, m, &mut rng),
        };
        let b = match tb {
            Trans::No => Matrix::gaussian(k, n, &mut rng),
            Trans::Yes => Matrix::gaussian(n, k, &mut rng),
        };
        let mut c = Matrix::zeros(m, n);
        gemm_accumulate(ta, a.view(), tb, b.view(), alpha, &mut c.view_mut());
        let mut expect = Matrix::zeros(m, n);
        reference::gemm_v(ta, a.view(), tb, b.view(), alpha, 0.0, expect.view_mut());
        let tol = 1e-12 * (k as f64 + 1.0) * alpha.abs().max(1.0);
        assert!(
            c.max_abs_diff(&expect) < tol,
            "({m},{n},{k}) {ta:?} {tb:?} alpha={alpha}"
        );
    }

    #[test]
    fn blocked_matches_reference_across_blocking_edges() {
        let mut seed = 0u64;
        // Sizes straddling every blocking boundary: sub-tile, tile-exact,
        // one-past-tile, and multi-cache-block.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 2, 5),
            (MR, NR, 7),
            (MR + 1, NR + 1, KC + 3),
            (MC + 5, NR * 3 + 1, KC + 1),
            (2 * MC + 3, 2 * NR + 3, 2 * KC + 5),
            (300, 17, 40),
            (5, 300, 300),
        ] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    seed += 1;
                    check_gemm(m, n, k, ta, tb, 1.0, seed);
                }
            }
        }
    }

    #[test]
    fn blocked_respects_alpha() {
        check_gemm(33, 29, 300, Trans::No, Trans::No, -2.5, 99);
        check_gemm(33, 29, 300, Trans::Yes, Trans::Yes, 0.125, 100);
    }

    #[test]
    fn blocked_accumulates_into_c() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::gaussian(20, 30, &mut rng);
        let b = Matrix::gaussian(30, 10, &mut rng);
        let mut c = Matrix::gaussian(20, 10, &mut rng);
        let mut expect = c.clone();
        gemm_accumulate(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            1.5,
            &mut c.view_mut(),
        );
        reference::gemm_v(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            1.5,
            1.0,
            expect.view_mut(),
        );
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn syrk_matches_reference_both_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for &(rows, cols) in &[
            (350usize, 40usize),
            (40, 17),
            (MC + 9, MC + 9),
            (1, 5),
            (5, 1),
        ] {
            let a = Matrix::gaussian(rows, cols, &mut rng);
            let tn = syrk(a.view(), 1.5, SyrkShape::TransposeA);
            let tn_ref = reference::syrk_v(a.view(), 1.5);
            assert!(tn.max_abs_diff(&tn_ref) < 1e-10, "TN {rows}x{cols}");
            let nt = syrk(a.view(), -0.5, SyrkShape::TransposeB);
            let nt_ref = reference::syrk_nt_v(a.view(), -0.5);
            assert!(nt.max_abs_diff(&nt_ref) < 1e-10, "NT {rows}x{cols}");
            for i in 0..tn.rows() {
                for j in 0..tn.cols() {
                    assert_eq!(tn[(i, j)], tn[(j, i)], "exact symmetry");
                }
            }
        }
    }

    #[test]
    fn empty_operands_yield_zero_result() {
        let a = Matrix::zeros(0, 4);
        let s = syrk(a.view(), 1.0, SyrkShape::TransposeA);
        assert_eq!(s.shape(), (4, 4));
        assert_eq!(s.max_abs(), 0.0);
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn parallel_gemm_bitwise_equals_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        // Edge slabs, multi-cache-block, and narrower-than-one-chunk shapes.
        for &(m, n, k) in &[
            (64usize, 130usize, 70usize),
            (MC + 5, 2 * NR + 3, KC + 1),
            (33, 3, 50),
        ] {
            let a = Matrix::gaussian(m, k, &mut rng);
            let b = Matrix::gaussian(k, n, &mut rng);
            let mut c1 = Matrix::gaussian(m, n, &mut rng);
            let c0 = c1.clone();
            crate::par::with_threads(1, || {
                gemm_accumulate(
                    Trans::No,
                    a.view(),
                    Trans::No,
                    b.view(),
                    1.5,
                    &mut c1.view_mut(),
                );
            });
            for t in [2usize, 3, 4, 7] {
                let mut ct = c0.clone();
                crate::par::with_threads(t, || {
                    gemm_accumulate(
                        Trans::No,
                        a.view(),
                        Trans::No,
                        b.view(),
                        1.5,
                        &mut ct.view_mut(),
                    );
                });
                assert_bits_eq(&c1, &ct, "gemm 1t vs Nt");
            }
        }
    }

    #[test]
    fn parallel_syrk_bitwise_equals_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for &(rows, cols) in &[(300usize, 41usize), (40, MC + 9), (KC + 3, 2 * NR + 1)] {
            let a = Matrix::gaussian(rows, cols, &mut rng);
            for shape in [SyrkShape::TransposeA, SyrkShape::TransposeB] {
                let s1 = crate::par::with_threads(1, || syrk(a.view(), 1.25, shape));
                for t in [2usize, 4, 5] {
                    let st = crate::par::with_threads(t, || syrk(a.view(), 1.25, shape));
                    assert_bits_eq(&s1, &st, "syrk 1t vs Nt");
                }
            }
        }
    }
}
