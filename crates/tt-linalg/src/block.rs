//! Packed, cache-blocked GEMM/SYRK engine.
//!
//! The paper's efficiency argument (§IV-E, and Röhrig-Zöllner et al. for the
//! tall-skinny case) assumes the Gram-path `gemm`/`syrk` calls run near the
//! hardware roofline. The straightforward column loops in
//! [`crate::reference`] re-stream the whole `A` operand from memory once per
//! output column; this module replaces them on the hot path with the
//! classical three-level blocking scheme (Goto/BLIS):
//!
//! * **Register tile** — an `MR × NR` accumulator block held entirely in
//!   registers while streaming one `KC`-deep sliver of packed `A` and `B`;
//! * **Cache blocks** — `MC × KC` panels of `op(A)` packed into an
//!   `MR`-row-slab layout (L2-resident) and `KC × NC` panels of `op(B)`
//!   packed into an `NR`-column-slab layout (L1-streamed), so the microkernel
//!   only ever touches unit-stride, aligned, zero-padded buffers. The
//!   `MC`/`KC`/`NC` values are autotuned once per process from the probed
//!   cache hierarchy ([`crate::tune`]) instead of hardcoded;
//! * **Transpose handling** — all four `op` combinations are absorbed by the
//!   packing routines, so callers ([`crate::gemm::gemm_v`] and friends) are
//!   untouched and pay zero per-element dispatch cost.
//!
//! Everything is safe Rust. The register microkernel has two
//! implementations selected at compile time: a scalar one using
//! `as_chunks` fixed-size array views (bounds checks vanish, the compiler
//! keeps the tile in vector registers) and, behind the `simd` cargo
//! feature, an explicit `std::simd` one holding the tile in `f64x4`
//! vectors with fused multiply-add when the build enables the `fma`
//! target feature. Both accumulate each output element in the identical
//! `k` order, and [`crate::reference`] remains the conformance oracle for
//! either; results are bitwise reproducible per (feature, thread-count)
//! configuration (DESIGN.md §11).
//!
//! [`syrk`] specializes the same machinery for `C = alpha·AᵀA` /
//! `C = alpha·A Aᵀ`: the `B` panel is packed once per `KC` slice and only
//! register tiles intersecting the upper triangle are computed, halving the
//! arithmetic; the strict lower triangle is mirrored at the end.
//!
//! # Parallel packing discipline
//!
//! When a kernel fans out, the packed `op(A)` buffer is built **once** in a
//! parallel pre-pack phase (disjoint `KC`-slice segments of one shared
//! buffer) and every compute worker reads it as a shared slice; only the
//! `op(B)` panels — disjoint by construction, since workers own disjoint
//! output column ranges — are packed per worker. The earlier scheme, where
//! every worker re-packed the whole shared `A` panel, multiplied the pack
//! traffic by the thread count and made 4-thread SYRK measurably *slower*
//! than 1-thread on deep Gram shapes. Packing is pure data movement, so the
//! shared buffer is byte-identical to what per-worker packing produced and
//! the bitwise determinism contract (DESIGN.md §9) is unaffected.

use crate::gemm::Trans;
use crate::matrix::Matrix;
use crate::par;
use crate::tune;
use crate::view::{MatMut, MatRef};

/// Microkernel tile rows. Two 4-wide f64 vectors per accumulator column.
pub const MR: usize = 8;
/// Microkernel tile columns. `MR × NR` accumulators fill 8 vector registers.
pub const NR: usize = 4;

/// Ceiling on the shared pre-packed `op(A)` buffer (bytes). Operands whose
/// full packed panel would exceed it fall back to per-worker block packing
/// — correctness is identical, only the pack traffic differs.
const SHARED_PACK_MAX_BYTES: usize = 256 << 20;

/// Packs the `mc × kc` block of `op(A)` starting at `(i0, k0)` into
/// `MR`-row slabs: `buf[slab * MR * kc + step * MR + r]` holds
/// `op(A)[i0 + slab*MR + r, k0 + step]`, with rows beyond `mc` zero-padded
/// so the microkernel never needs an edge case.
fn pack_a(ta: Trans, a: &MatRef<'_>, i0: usize, mc: usize, k0: usize, kc: usize, buf: &mut [f64]) {
    let slabs = mc.div_ceil(MR);
    debug_assert!(buf.len() >= slabs * MR * kc);
    for slab in 0..slabs {
        let base = slab * MR * kc;
        let rows = MR.min(mc - slab * MR);
        match ta {
            Trans::No => {
                // Contiguous column reads from A.
                for step in 0..kc {
                    let col = a.col(k0 + step);
                    let dst = &mut buf[base + step * MR..base + step * MR + MR];
                    let src_base = i0 + slab * MR;
                    dst[..rows].copy_from_slice(&col[src_base..src_base + rows]);
                    for d in dst.iter_mut().skip(rows) {
                        *d = 0.0;
                    }
                }
            }
            Trans::Yes => {
                // op(A)[i, k] = A[k, i]: contiguous column reads per tile row.
                for r in 0..rows {
                    let col = a.col(i0 + slab * MR + r);
                    for step in 0..kc {
                        buf[base + step * MR + r] = col[k0 + step];
                    }
                }
                for r in rows..MR {
                    for step in 0..kc {
                        buf[base + step * MR + r] = 0.0;
                    }
                }
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` starting at `(k0, j0)` into
/// `NR`-column slabs: `buf[slab * NR * kc + step * NR + q]` holds
/// `op(B)[k0 + step, j0 + slab*NR + q]`, columns beyond `nc` zero-padded.
fn pack_b(tb: Trans, b: &MatRef<'_>, k0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f64]) {
    let slabs = nc.div_ceil(NR);
    debug_assert!(buf.len() >= slabs * NR * kc);
    match tb {
        Trans::No => {
            for slab in 0..slabs {
                let base = slab * NR * kc;
                let cols = NR.min(nc - slab * NR);
                for q in 0..cols {
                    let col = b.col(j0 + slab * NR + q);
                    for step in 0..kc {
                        buf[base + step * NR + q] = col[k0 + step];
                    }
                }
                for q in cols..NR {
                    for step in 0..kc {
                        buf[base + step * NR + q] = 0.0;
                    }
                }
            }
        }
        Trans::Yes => {
            // op(B)[k, j] = B[j, k]: stream each B column (contiguous in j).
            for step in 0..kc {
                let col = b.col(k0 + step);
                for slab in 0..slabs {
                    let base = slab * NR * kc;
                    let cols = NR.min(nc - slab * NR);
                    let src_base = j0 + slab * NR;
                    for q in 0..cols {
                        buf[base + step * NR + q] = col[src_base + q];
                    }
                    for q in cols..NR {
                        buf[base + step * NR + q] = 0.0;
                    }
                }
            }
        }
    }
}

/// The scalar register microkernel:
/// `acc[q][r] += sum_step pa[step][r] * pb[step][q]` over one `KC`-deep
/// sliver of packed panels. `pa` is `kc × MR`, `pb` is `kc × NR`, both
/// step-major; the fixed-size array views let the whole accumulator tile
/// live in registers. Kept unconditionally as the fallback for builds
/// without the `simd` feature and as a cross-check oracle in tests.
#[cfg_attr(feature = "simd", allow(dead_code))]
#[inline]
fn microkernel_scalar(pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
    let (a_steps, _) = pa.as_chunks::<MR>();
    let (b_steps, _) = pb.as_chunks::<NR>();
    debug_assert_eq!(a_steps.len(), b_steps.len());
    for (ar, br) in a_steps.iter().zip(b_steps.iter()) {
        for q in 0..NR {
            let bq = br[q];
            let accq = &mut acc[q];
            for r in 0..MR {
                accq[r] += ar[r] * bq;
            }
        }
    }
}

/// Explicit-SIMD register microkernel: the `MR × NR` tile lives in eight
/// `f64x4` vectors; each packed step issues one splat of `pb` and, with
/// the `fma` target feature, eight fused multiply-adds. Lane `r` of
/// column `q` accumulates exactly the scalar kernel's `k` order, so the
/// only numerical difference from [`microkernel_scalar`] is the single
/// rounding of each fused `a·b + acc` (none at all when `fma` is off —
/// then the results are bitwise identical to scalar).
#[cfg(feature = "simd")]
#[inline]
fn microkernel_simd(pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
    use std::simd::{f64x4, StdFloat};

    // FMA only when the build guarantees the hardware instruction: a
    // `mul_add` without the `fma` target feature lowers to a libm call
    // per lane, which is catastrophically slow, not just unfused.
    #[inline(always)]
    fn fmadd(a: f64x4, b: f64x4, c: f64x4) -> f64x4 {
        if cfg!(target_feature = "fma") {
            a.mul_add(b, c)
        } else {
            a * b + c
        }
    }

    let (a_steps, _) = pa.as_chunks::<MR>();
    let (b_steps, _) = pb.as_chunks::<NR>();
    debug_assert_eq!(a_steps.len(), b_steps.len());
    let mut v = [[f64x4::splat(0.0); 2]; NR];
    for (q, vq) in v.iter_mut().enumerate() {
        vq[0] = f64x4::from_slice(&acc[q][0..4]);
        vq[1] = f64x4::from_slice(&acc[q][4..8]);
    }
    for (ar, br) in a_steps.iter().zip(b_steps.iter()) {
        let a0 = f64x4::from_slice(&ar[0..4]);
        let a1 = f64x4::from_slice(&ar[4..8]);
        for (q, vq) in v.iter_mut().enumerate() {
            let bq = f64x4::splat(br[q]);
            vq[0] = fmadd(a0, bq, vq[0]);
            vq[1] = fmadd(a1, bq, vq[1]);
        }
    }
    for (q, vq) in v.iter().enumerate() {
        vq[0].copy_to_slice(&mut acc[q][0..4]);
        vq[1].copy_to_slice(&mut acc[q][4..8]);
    }
}

/// The active register microkernel for this build configuration.
#[inline]
fn microkernel(pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
    #[cfg(feature = "simd")]
    microkernel_simd(pa, pb, acc);
    #[cfg(not(feature = "simd"))]
    microkernel_scalar(pa, pb, acc);
}

/// Writes `c[i0.., j0..] += alpha * acc` for the valid `mr × nr` corner of a
/// register tile.
#[inline]
fn writeback(
    acc: &[[f64; MR]; NR],
    alpha: f64,
    c: &mut MatMut<'_>,
    i0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
) {
    for (q, accq) in acc.iter().enumerate().take(nr) {
        let col = &mut c.col_mut(j0 + q)[i0..i0 + mr];
        for (r, cij) in col.iter_mut().enumerate() {
            *cij += alpha * accq[r];
        }
    }
}

/// Blocked `C += alpha * op(A) * op(B)`.
///
/// Shapes must already agree and `alpha`, `m`, `n`, `k` must be nonzero /
/// nondegenerate — the dispatcher in [`crate::gemm::gemm_v`] guarantees both
/// and handles the `beta` scaling of `C` beforehand.
///
/// When the [`par`] dispatch gates admit the work profile, the output
/// columns are partitioned into `NR`-aligned contiguous ranges, the packed
/// `op(A)` buffer is built once in a parallel pre-pack phase, and each
/// range is swept by its own scoped worker thread reading the shared
/// buffer while packing only its own `op(B)` panels. Each worker owns a
/// disjoint column slice of `C`, so no synchronization is needed beyond
/// the phase joins — and because the `k` reduction is never split, each
/// output element sees exactly the sequential accumulation order and the
/// result is **bitwise identical** for every thread count.
pub fn gemm_accumulate(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
) {
    let (m, k) = ta.dims(&a);
    let (_, n) = tb.dims(&b);
    debug_assert!(m > 0 && n > 0 && k > 0 && alpha != 0.0);

    let region = par::region(par::Work::gemm(m, n, k));
    let threads = region.threads().min(n.div_ceil(NR));
    if threads <= 1 {
        gemm_sweep(ta, a, tb, b, alpha, &mut c.reborrow(), 0);
        return;
    }
    let shared = m.div_ceil(MR) * MR * k * 8 <= SHARED_PACK_MAX_BYTES;
    gemm_parallel(ta, a, tb, b, alpha, c, threads, shared);
}

/// The fan-out body of [`gemm_accumulate`], with the shared-pre-pack
/// decision explicit so tests can pin both packing schemes against each
/// other bitwise.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
    threads: usize,
    shared_pack: bool,
) {
    let (m, k) = ta.dims(&a);
    let n = c.cols();
    let ranges = par::split_even(n, threads, NR);
    let pa_full = if shared_pack {
        Some(pack_a_full(ta, &a, m, k, threads))
    } else {
        None
    };
    let pa_shared = pa_full.as_deref();
    let mut jobs = Vec::with_capacity(ranges.len());
    let mut rest = c.reborrow();
    let mut offset = 0usize;
    for (lo, hi) in ranges {
        let (chunk, tail) = rest.split_cols_at(hi - offset);
        rest = tail;
        offset = hi;
        jobs.push(move || {
            let mut chunk = chunk;
            match pa_shared {
                // analyze::allow(alloc_hot_path): each worker packs B into
                // a thread-private buffer allocated once per kernel
                // invocation and amortized over its whole blocked sweep;
                // sharing one buffer across concurrent workers would race.
                Some(pa) => sweep_prepacked(pa, m, k, tb, b, alpha, &mut chunk, lo, false),
                // analyze::allow(alloc_hot_path): per-worker fallback when
                // the shared pre-pack is too large — each worker packs into
                // thread-private buffers allocated once per invocation.
                None => gemm_sweep(ta, a, tb, b, alpha, &mut chunk, lo),
            }
        });
    }
    par::join_all(jobs);
}

/// Packs the whole `m × k` operand `op(A)` into a `KC`-slice-major shared
/// buffer: the slice starting at depth `k0` occupies
/// `buf[slabs·MR·k0 ..][.. slabs·MR·kc]` and holds exactly the `MR`-row
/// slab panel [`pack_a`] produces for `(i0 = 0, mc = m)`. The pre-pack is
/// itself parallelized over disjoint slice segments. Because packing is
/// pure data movement, the shared buffer is byte-identical to what
/// per-block packing produces — compute workers reading it emit exactly
/// the sequential instruction stream, preserving bitwise determinism.
fn pack_a_full(ta: Trans, a: &MatRef<'_>, m: usize, k: usize, threads: usize) -> Vec<f64> {
    let t = tune::tuning();
    let slabs = m.div_ceil(MR);
    let mut buf = vec![0.0; slabs * MR * k];
    let slice_ranges = par::split_even(k.div_ceil(t.kc), threads, 1);
    let mut jobs = Vec::with_capacity(slice_ranges.len());
    let mut rest: &mut [f64] = &mut buf;
    for (slo, shi) in slice_ranges {
        let (k_lo, k_hi) = ((slo * t.kc).min(k), (shi * t.kc).min(k));
        let (seg, tail) = rest.split_at_mut(slabs * MR * (k_hi - k_lo));
        rest = tail;
        jobs.push(move || {
            let mut off = 0usize;
            for k0 in (k_lo..k_hi).step_by(t.kc) {
                let kc = t.kc.min(k_hi - k0);
                pack_a(ta, a, 0, m, k0, kc, &mut seg[off..off + slabs * MR * kc]);
                off += slabs * MR * kc;
            }
        });
    }
    par::join_all(jobs);
    buf
}

/// The full cache-blocked loop nest over one contiguous column range of the
/// output. `c` holds the local columns (`c.cols()` of them) and `col_off` is
/// the global index of its first column, used only to address `op(B)` in the
/// packing — so a worker sweeping columns `[col_off, col_off + c.cols())`
/// performs precisely the instructions the sequential sweep performs for
/// those columns.
fn gemm_sweep(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
    col_off: usize,
) {
    let t = tune::tuning();
    let (m, k) = ta.dims(&a);
    let n = c.cols();

    let mut pa = vec![0.0; m.min(t.mc).div_ceil(MR) * MR * k.min(t.kc)];
    let mut pb = vec![0.0; n.min(t.nc).div_ceil(NR) * NR * k.min(t.kc)];

    for j0 in (0..n).step_by(t.nc) {
        let nc = t.nc.min(n - j0);
        for k0 in (0..k).step_by(t.kc) {
            let kc = t.kc.min(k - k0);
            pack_b(tb, &b, k0, kc, col_off + j0, nc, &mut pb);
            for i0 in (0..m).step_by(t.mc) {
                let mc = t.mc.min(m - i0);
                pack_a(ta, &a, i0, mc, k0, kc, &mut pa);
                multiply_panels(&pa, &pb, mc, nc, kc, alpha, c, i0, j0, 0, false);
            }
        }
    }
}

/// The cache-blocked loop nest over one contiguous column range, reading
/// the shared pre-packed `op(A)` buffer ([`pack_a_full`] layout) instead
/// of packing per row block. With `triangle_only` it performs the SYRK
/// sweep (triangle cuts against *global* column indices via `col_off`);
/// otherwise the plain GEMM sweep. Tile visit order and per-tile inputs
/// are identical to [`gemm_sweep`] / [`syrk_sweep`], so the output bits
/// are too.
#[allow(clippy::too_many_arguments)]
fn sweep_prepacked(
    pa_full: &[f64],
    m: usize,
    k: usize,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
    col_off: usize,
    triangle_only: bool,
) {
    let t = tune::tuning();
    let n = c.cols();
    let slabs = m.div_ceil(MR);
    debug_assert_eq!(pa_full.len(), slabs * MR * k);
    debug_assert_eq!(t.mc % MR, 0);

    let mut pb = vec![0.0; n.min(t.nc).div_ceil(NR) * NR * k.min(t.kc)];

    for j0 in (0..n).step_by(t.nc) {
        let nc = t.nc.min(n - j0);
        for k0 in (0..k).step_by(t.kc) {
            let kc = t.kc.min(k - k0);
            pack_b(tb, &b, k0, kc, col_off + j0, nc, &mut pb);
            let slice_base = slabs * MR * k0;
            for i0 in (0..m).step_by(t.mc) {
                // Row blocks entirely below this column block contribute
                // only strictly-lower tiles; skip them wholesale.
                if triangle_only && i0 > col_off + j0 + nc {
                    continue;
                }
                let mc = t.mc.min(m - i0);
                let a_off = slice_base + (i0 / MR) * MR * kc;
                let a_len = mc.div_ceil(MR) * MR * kc;
                multiply_panels(
                    &pa_full[a_off..a_off + a_len],
                    &pb,
                    mc,
                    nc,
                    kc,
                    alpha,
                    c,
                    i0,
                    j0,
                    col_off,
                    triangle_only,
                );
            }
        }
    }
}

/// Inner tile sweep over one packed `A` panel (`mc × kc`) and one packed `B`
/// panel (`nc × kc`), writing `c[i0.., j0..] += alpha * Ã B̃`.
///
/// `j0` indexes `c`'s *local* columns; `col_off` is the global index of
/// `c`'s first column (0 when `c` is the whole output). The distinction only
/// matters for `triangle_only`, the SYRK triangle cut: a register tile lying
/// entirely in the strict lower triangle of the *global* matrix (every global
/// column index below every row index) is skipped — the mirror pass fills it.
#[allow(clippy::too_many_arguments)]
fn multiply_panels(
    pa: &[f64],
    pb: &[f64],
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    c: &mut MatMut<'_>,
    i0: usize,
    j0: usize,
    col_off: usize,
    triangle_only: bool,
) {
    let a_slabs = mc.div_ceil(MR);
    let b_slabs = nc.div_ceil(NR);
    for bs in 0..b_slabs {
        let nr = NR.min(nc - bs * NR);
        let jl = j0 + bs * NR; // local first column of this tile
        let pb_slab = &pb[bs * NR * kc..(bs * NR * kc) + NR * kc];
        for as_ in 0..a_slabs {
            let mr = MR.min(mc - as_ * MR);
            let ig = i0 + as_ * MR; // global first row of this tile
            if triangle_only && col_off + jl + nr <= ig {
                continue;
            }
            let mut acc = [[0.0; MR]; NR];
            microkernel(
                &pa[as_ * MR * kc..(as_ * MR * kc) + MR * kc],
                pb_slab,
                &mut acc,
            );
            writeback(&acc, alpha, c, ig, mr, jl, nr);
        }
    }
}

/// Which contraction a blocked SYRK performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyrkShape {
    /// `C = alpha * Aᵀ A` (`n × n`, contraction over rows).
    TransposeA,
    /// `C = alpha * A Aᵀ` (`m × m`, contraction over columns).
    TransposeB,
}

/// Blocked symmetric rank-k update, computing only register tiles that
/// intersect the upper triangle and mirroring the rest.
///
/// The `B`-side panel is packed **once** per `KC` slice and reused by every
/// row block — with `op(A)` and `op(B)` drawn from the same operand this is
/// the "pack once" saving on top of the triangle cut.
///
/// Parallel dispatch partitions the output columns with
/// [`par::split_triangle`] (triangle-area-balanced, since column `j` of the
/// upper triangle carries `j + 1` entries). The packed `op(A)` buffer —
/// which every worker needs in full, because each owns a column stripe of
/// the triangle spanning all row blocks — is built once in a parallel
/// pre-pack phase and shared read-only; each worker packs only its own
/// `op(B)` column panels and runs the sequential sweep over its disjoint
/// column slice with global triangle geometry, so the result is bitwise
/// identical at every thread count. The `O(n²)` mirror pass stays
/// sequential.
pub fn syrk(a: MatRef<'_>, alpha: f64, shape: SyrkShape) -> Matrix {
    let (ta, tb) = match shape {
        SyrkShape::TransposeA => (Trans::Yes, Trans::No),
        SyrkShape::TransposeB => (Trans::No, Trans::Yes),
    };
    let (n, k) = ta.dims(&a);
    let mut c = Matrix::zeros(n, n);
    if n == 0 {
        return c;
    }
    if k == 0 || alpha == 0.0 {
        return c;
    }

    {
        let region = par::region(par::Work::syrk(n, k));
        let threads = region.threads().min(n.div_ceil(NR));
        let mut cv = c.view_mut();
        if threads <= 1 {
            syrk_sweep(ta, a, tb, alpha, &mut cv, 0);
        } else {
            let shared = n.div_ceil(MR) * MR * k * 8 <= SHARED_PACK_MAX_BYTES;
            syrk_parallel(ta, a, tb, alpha, &mut cv, threads, shared);
        }
    }
    // Mirror the upper triangle into the strict lower triangle. Boundary
    // tiles computed a few strictly-lower entries already; overwriting them
    // with the mirrored value keeps C exactly symmetric.
    for j in 0..n {
        for i in j + 1..n {
            c[(i, j)] = c[(j, i)];
        }
    }
    c
}

/// The fan-out body of [`syrk`], with the shared-pre-pack decision
/// explicit so tests can pin both packing schemes against each other
/// bitwise.
fn syrk_parallel(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    alpha: f64,
    cv: &mut MatMut<'_>,
    threads: usize,
    shared_pack: bool,
) {
    let (n, k) = ta.dims(&a);
    let ranges = par::split_triangle(n, threads, NR);
    let pa_full = if shared_pack {
        Some(pack_a_full(ta, &a, n, k, threads))
    } else {
        None
    };
    let pa_shared = pa_full.as_deref();
    let mut jobs = Vec::with_capacity(ranges.len());
    let mut rest = cv.reborrow();
    let mut offset = 0usize;
    for (lo, hi) in ranges {
        let (chunk, tail) = rest.split_cols_at(hi - offset);
        rest = tail;
        offset = hi;
        jobs.push(move || {
            let mut chunk = chunk;
            match pa_shared {
                // analyze::allow(alloc_hot_path): thread-private B packing
                // buffer, one allocation per worker per invocation,
                // amortized over the whole triangle sweep.
                Some(pa) => sweep_prepacked(pa, n, k, tb, a, alpha, &mut chunk, lo, true),
                // analyze::allow(alloc_hot_path): per-worker fallback when
                // the shared pre-pack is too large — each worker packs into
                // thread-private buffers allocated once per invocation.
                None => syrk_sweep(ta, a, tb, alpha, &mut chunk, lo),
            }
        });
    }
    par::join_all(jobs);
}

/// Sequential SYRK sweep over one contiguous column range of the output.
/// `c` holds the local columns; `col_off` is the global index of its first
/// column, threaded through to the packing and the triangle cuts so the
/// per-tile work (and therefore the bits produced) is independent of how the
/// columns were partitioned.
fn syrk_sweep(ta: Trans, a: MatRef<'_>, tb: Trans, alpha: f64, c: &mut MatMut<'_>, col_off: usize) {
    let t = tune::tuning();
    let (n, k) = ta.dims(&a);
    let ncols = c.cols();

    let mut pa = vec![0.0; n.min(t.mc).div_ceil(MR) * MR * k.min(t.kc)];
    let mut pb = vec![0.0; ncols.min(t.nc).div_ceil(NR) * NR * k.min(t.kc)];

    for j0 in (0..ncols).step_by(t.nc) {
        let nc = t.nc.min(ncols - j0);
        for k0 in (0..k).step_by(t.kc) {
            let kc = t.kc.min(k - k0);
            pack_b(tb, &a, k0, kc, col_off + j0, nc, &mut pb);
            for i0 in (0..n).step_by(t.mc) {
                // Row blocks entirely below this column block contribute
                // only strictly-lower tiles; skip them wholesale.
                if i0 > col_off + j0 + nc {
                    continue;
                }
                let mc = t.mc.min(n - i0);
                pack_a(ta, &a, i0, mc, k0, kc, &mut pa);
                multiply_panels(&pa, &pb, mc, nc, kc, alpha, c, i0, j0, col_off, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::SeedableRng;

    fn check_gemm(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, alpha: f64, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = match ta {
            Trans::No => Matrix::gaussian(m, k, &mut rng),
            Trans::Yes => Matrix::gaussian(k, m, &mut rng),
        };
        let b = match tb {
            Trans::No => Matrix::gaussian(k, n, &mut rng),
            Trans::Yes => Matrix::gaussian(n, k, &mut rng),
        };
        let mut c = Matrix::zeros(m, n);
        gemm_accumulate(ta, a.view(), tb, b.view(), alpha, &mut c.view_mut());
        let mut expect = Matrix::zeros(m, n);
        reference::gemm_v(ta, a.view(), tb, b.view(), alpha, 0.0, expect.view_mut());
        let tol = 1e-12 * (k as f64 + 1.0) * alpha.abs().max(1.0);
        assert!(
            c.max_abs_diff(&expect) < tol,
            "({m},{n},{k}) {ta:?} {tb:?} alpha={alpha}"
        );
    }

    #[test]
    fn blocked_matches_reference_across_blocking_edges() {
        let t = tune::tuning();
        let (mc, kc) = (t.mc, t.kc);
        let mut seed = 0u64;
        // Sizes straddling every blocking boundary: sub-tile, tile-exact,
        // one-past-tile, and multi-cache-block (against the autotuned
        // blocking actually in use).
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 2, 5),
            (MR, NR, 7),
            (MR + 1, NR + 1, kc + 3),
            (mc + 5, NR * 3 + 1, kc + 1),
            (mc + 3, 2 * NR + 3, 2 * kc + 5),
            (300, 17, 40),
            (5, 300, 300),
        ] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    seed += 1;
                    check_gemm(m, n, k, ta, tb, 1.0, seed);
                }
            }
        }
    }

    #[test]
    fn blocked_respects_alpha() {
        check_gemm(33, 29, 300, Trans::No, Trans::No, -2.5, 99);
        check_gemm(33, 29, 300, Trans::Yes, Trans::Yes, 0.125, 100);
    }

    #[test]
    fn blocked_accumulates_into_c() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::gaussian(20, 30, &mut rng);
        let b = Matrix::gaussian(30, 10, &mut rng);
        let mut c = Matrix::gaussian(20, 10, &mut rng);
        let mut expect = c.clone();
        gemm_accumulate(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            1.5,
            &mut c.view_mut(),
        );
        reference::gemm_v(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            1.5,
            1.0,
            expect.view_mut(),
        );
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn syrk_matches_reference_both_shapes() {
        let t = tune::tuning();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for &(rows, cols) in &[
            (350usize, 40usize),
            (40, 17),
            (t.mc + 9, t.mc + 9),
            (1, 5),
            (5, 1),
        ] {
            let a = Matrix::gaussian(rows, cols, &mut rng);
            let tn = syrk(a.view(), 1.5, SyrkShape::TransposeA);
            let tn_ref = reference::syrk_v(a.view(), 1.5);
            assert!(tn.max_abs_diff(&tn_ref) < 1e-9, "TN {rows}x{cols}");
            let nt = syrk(a.view(), -0.5, SyrkShape::TransposeB);
            let nt_ref = reference::syrk_nt_v(a.view(), -0.5);
            assert!(nt.max_abs_diff(&nt_ref) < 1e-9, "NT {rows}x{cols}");
            for i in 0..tn.rows() {
                for j in 0..tn.cols() {
                    assert_eq!(tn[(i, j)], tn[(j, i)], "exact symmetry");
                }
            }
        }
    }

    #[test]
    fn empty_operands_yield_zero_result() {
        let a = Matrix::zeros(0, 4);
        let s = syrk(a.view(), 1.0, SyrkShape::TransposeA);
        assert_eq!(s.shape(), (4, 4));
        assert_eq!(s.max_abs(), 0.0);
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn pack_a_full_matches_per_block_packing() {
        let t = tune::tuning();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        // Edge slabs in both directions plus a multi-slice depth.
        for &(m, k) in &[(3usize, 5usize), (MR * 3 + 2, t.kc + 7), (2 * MR, 2 * t.kc)] {
            for &ta in &[Trans::No, Trans::Yes] {
                let (rows, cols) = match ta {
                    Trans::No => (m, k),
                    Trans::Yes => (k, m),
                };
                let a = Matrix::gaussian(rows, cols, &mut rng);
                let slabs = m.div_ceil(MR);
                for threads in [1usize, 2, 3] {
                    let full = pack_a_full(ta, &a.view(), m, k, threads);
                    assert_eq!(full.len(), slabs * MR * k);
                    let mut buf = vec![0.0; slabs * MR * t.kc.min(k)];
                    for k0 in (0..k).step_by(t.kc) {
                        let kc = t.kc.min(k - k0);
                        for i0 in (0..m).step_by(t.mc) {
                            let mc = t.mc.min(m - i0);
                            let len = mc.div_ceil(MR) * MR * kc;
                            pack_a(ta, &a.view(), i0, mc, k0, kc, &mut buf[..len]);
                            let off = slabs * MR * k0 + (i0 / MR) * MR * kc;
                            for (x, y) in buf[..len].iter().zip(&full[off..off + len]) {
                                assert_eq!(x.to_bits(), y.to_bits(), "{ta:?} m={m} k={k}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_gemm_bitwise_equals_serial() {
        let t = tune::tuning();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        // Edge slabs, multi-cache-block, and narrower-than-one-chunk shapes.
        for &(m, n, k) in &[
            (64usize, 130usize, 70usize),
            (t.mc + 5, 2 * NR + 3, t.kc + 1),
            (33, 3, 50),
        ] {
            let a = Matrix::gaussian(m, k, &mut rng);
            let b = Matrix::gaussian(k, n, &mut rng);
            let mut c1 = Matrix::gaussian(m, n, &mut rng);
            let c0 = c1.clone();
            crate::par::with_threads(1, || {
                gemm_accumulate(
                    Trans::No,
                    a.view(),
                    Trans::No,
                    b.view(),
                    1.5,
                    &mut c1.view_mut(),
                );
            });
            for t in [2usize, 3, 4, 7] {
                let mut ct = c0.clone();
                crate::par::with_threads(t, || {
                    gemm_accumulate(
                        Trans::No,
                        a.view(),
                        Trans::No,
                        b.view(),
                        1.5,
                        &mut ct.view_mut(),
                    );
                });
                assert_bits_eq(&c1, &ct, "gemm 1t vs Nt");
            }
        }
    }

    #[test]
    fn shared_and_per_worker_packing_agree_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let t = tune::tuning();
        let (m, n, k) = (t.mc + 13, 3 * NR + 2, t.kc + 9);
        let a = Matrix::gaussian(m, k, &mut rng);
        let b = Matrix::gaussian(k, n, &mut rng);
        let mut c_shared = Matrix::gaussian(m, n, &mut rng);
        let mut c_private = c_shared.clone();
        for threads in [2usize, 3] {
            gemm_parallel(
                Trans::No,
                a.view(),
                Trans::No,
                b.view(),
                1.25,
                &mut c_shared.view_mut(),
                threads,
                true,
            );
            gemm_parallel(
                Trans::No,
                a.view(),
                Trans::No,
                b.view(),
                1.25,
                &mut c_private.view_mut(),
                threads,
                false,
            );
            assert_bits_eq(&c_shared, &c_private, "gemm shared vs private pack");
        }
        // And the SYRK fan-out body under both packing schemes.
        let g = Matrix::gaussian(t.kc + 3, 3 * NR + 1, &mut rng);
        for threads in [2usize, 4] {
            let mut s_shared = Matrix::zeros(g.cols(), g.cols());
            let mut s_private = Matrix::zeros(g.cols(), g.cols());
            syrk_parallel(
                Trans::Yes,
                g.view(),
                Trans::No,
                1.5,
                &mut s_shared.view_mut(),
                threads,
                true,
            );
            syrk_parallel(
                Trans::Yes,
                g.view(),
                Trans::No,
                1.5,
                &mut s_private.view_mut(),
                threads,
                false,
            );
            assert_bits_eq(&s_shared, &s_private, "syrk shared vs private pack");
        }
    }

    #[test]
    fn parallel_syrk_bitwise_equals_serial() {
        let tn = tune::tuning();
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for &(rows, cols) in &[
            (300usize, 41usize),
            (40, tn.mc + 9),
            (tn.kc + 3, 2 * NR + 1),
        ] {
            let a = Matrix::gaussian(rows, cols, &mut rng);
            for shape in [SyrkShape::TransposeA, SyrkShape::TransposeB] {
                let s1 = crate::par::with_threads(1, || syrk(a.view(), 1.25, shape));
                for t in [2usize, 4, 5] {
                    let st = crate::par::with_threads(t, || syrk(a.view(), 1.25, shape));
                    assert_bits_eq(&s1, &st, "syrk 1t vs Nt");
                }
            }
        }
    }

    /// With `simd` the microkernel may fuse multiply-adds; against the
    /// scalar kernel the per-step error is one rounding of each product,
    /// so the accumulated componentwise gap is bounded by `kc`·ε·scale.
    #[cfg(feature = "simd")]
    #[test]
    fn simd_microkernel_matches_scalar_within_fma_rounding() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for kc in [1usize, 2, 7, 64, 300] {
            let pa = Matrix::gaussian(MR * kc, 1, &mut rng);
            let pb = Matrix::gaussian(NR * kc, 1, &mut rng);
            let mut acc_simd = [[0.0; MR]; NR];
            let mut acc_scalar = [[0.0; MR]; NR];
            microkernel_simd(pa.as_slice(), pb.as_slice(), &mut acc_simd);
            microkernel_scalar(pa.as_slice(), pb.as_slice(), &mut acc_scalar);
            let tol = (kc as f64 + 1.0) * f64::EPSILON * 64.0;
            for q in 0..NR {
                for r in 0..MR {
                    let d = (acc_simd[q][r] - acc_scalar[q][r]).abs();
                    let scale = acc_scalar[q][r].abs().max(kc as f64);
                    assert!(d <= tol * scale, "kc={kc} q={q} r={r}: {d:e}");
                }
            }
        }
    }
}
