//! One-shot runtime autotune for the packed kernel engine.
//!
//! The blocked GEMM/SYRK engine in [`crate::block`] needs three cache
//! blocking parameters (`MC`, `KC`, `NC`) and the parallel layer in
//! [`crate::par`] needs two dispatch thresholds (a flop floor and an
//! arithmetic-intensity floor). Hardcoding them for one machine — as the
//! original `128 / 256 / 2048` constants did — leaves the macro-kernel
//! memory-bound on larger caches and lets the dispatcher fan out shapes
//! whose flops/byte ratio cannot amortize thread spawns. This module
//! probes the cache hierarchy **once per process** at first kernel use and
//! derives all five values with the classical Goto sizing rules.
//!
//! # Probe protocol
//!
//! At first call of [`tuning`] (a `OnceLock`), the probe reads the Linux
//! sysfs cache topology (`/sys/devices/system/cpu/cpu0/cache/index*/
//! {level,type,size}`). When any level is missing or the platform has no
//! sysfs, a conservative fallback hierarchy (48 KiB / 512 KiB / 16 MiB) is
//! used — chosen so the derived blocking reproduces the engine's original
//! constants exactly. Every derived value can be pinned via environment
//! variables (`TT_BLOCK_MC`, `TT_BLOCK_KC`, `TT_BLOCK_NC`, `TT_PAR_FLOPS`,
//! `TT_PAR_INTENSITY`) for experiments and cross-machine reproduction.
//!
//! # Determinism contract (DESIGN.md §11)
//!
//! The probe runs exactly once per process and its result never changes
//! afterwards, so within a process every kernel call sees one fixed
//! configuration. Of the derived values only `KC` influences result bits
//! (it sets the `k`-reduction grouping: each `KC`-deep sliver is summed in
//! registers before being accumulated into `C`); `MC`/`NC` partition
//! output blocks and the par thresholds partition workers, which the
//! output-block contract (DESIGN.md §9) makes value-neutral. Results are
//! therefore bitwise reproducible per (machine, environment, feature)
//! configuration — the same contract the paper's OpenBLAS baseline offers.
//!
//! The probe functions are named `tune_probe_*`: `cargo xtask analyze`
//! sanctions that prefix in its determinism pass because the one-shot
//! cached reads cannot make a hot-path function nondeterministic within a
//! process (see `xtask/src/callgraph.rs`).

use std::sync::OnceLock;

use crate::block::{MR, NR};

/// Default flop floor below which a multiply never fans out: under ~96³
/// the fork/join overhead (tens of microseconds per worker) is comparable
/// to the multiply itself.
pub const DEFAULT_PAR_FLOP_FLOOR: f64 = 2.0 * 96.0 * 96.0 * 96.0;

/// Default arithmetic-intensity floor (flops per byte of operand/output
/// traffic) below which a multiply never fans out: memory-bound shapes
/// only add contention when threaded. 4 flops/byte keeps square
/// cache-friendly GEMMs and deep Gram SYRKs parallel while tall-skinny
/// TSQR leaves and narrow QR trailing updates stay sequential.
pub const DEFAULT_PAR_INTENSITY_FLOOR: f64 = 4.0;

/// Fallback cache hierarchy when sysfs probing is unavailable. These
/// reproduce the engine's original hardcoded blocking (MC=128, KC=256,
/// NC=2048) through [`derive_blocking`].
pub const FALLBACK_L1D: usize = 48 * 1024;
/// See [`FALLBACK_L1D`].
pub const FALLBACK_L2: usize = 512 * 1024;
/// See [`FALLBACK_L1D`].
pub const FALLBACK_L3: usize = 16 * 1024 * 1024;

/// The blocking and dispatch parameters selected for this process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// Probed (or fallback) per-core L1 data cache size in bytes.
    pub l1d: usize,
    /// Probed (or fallback) per-core L2 cache size in bytes.
    pub l2: usize,
    /// Probed (or fallback) shared L3 cache size in bytes.
    pub l3: usize,
    /// Row cache-block: the `MC × KC` packed `A` panel stays L2-resident.
    pub mc: usize,
    /// Depth cache-block: one `MR×KC` A-sliver plus one `KC×NR` B-sliver
    /// fit in half the L1d, so the microkernel streams from L1.
    pub kc: usize,
    /// Column cache-block: bounds the packed `B` panel (`KC × NC`) to a
    /// quarter of the L3.
    pub nc: usize,
    /// Flop count below which kernels never fan out.
    pub par_flop_floor: f64,
    /// Arithmetic intensity (flops/byte) below which kernels never fan
    /// out, regardless of flop volume.
    pub par_intensity_floor: f64,
}

/// Round `v` down to a positive multiple of `unit`, clamped to
/// `[lo, hi]` (both expected to be multiples of `unit`).
fn round_to(v: usize, unit: usize, lo: usize, hi: usize) -> usize {
    let down = (v / unit) * unit;
    down.clamp(lo, hi)
}

/// Goto sizing rules: derive `(mc, kc, nc)` from a cache hierarchy.
///
/// * `KC`: one `MR×KC` packed A-sliver plus one `KC×NR` packed B-sliver
///   occupy at most half the L1d (the other half absorbs the output tile
///   and stream buffers); multiple of 64, in `[64, 512]`.
/// * `MC`: the `MC×KC` packed A panel occupies at most half the L2;
///   multiple of `MR`, in `[MR·4, 1024]`.
/// * `NC`: the `KC×NC` packed B panel occupies at most a quarter of the
///   L3 (shared with other cores and the output stream); multiple of
///   `NR`, in `[NR·32, 8192]`.
pub fn derive_blocking(l1d: usize, l2: usize, l3: usize) -> (usize, usize, usize) {
    let kc = round_to(l1d / 2 / (8 * (MR + NR)), 64, 64, 512);
    let mc = round_to(l2 / 2 / (8 * kc), MR, MR * 4, 1024);
    let nc = round_to(l3 / 4 / (8 * kc), NR, NR * 32, 8192);
    (mc, kc, nc)
}

/// Parses a sysfs cache size string (`"48K"`, `"2048K"`, `"1M"`, plain
/// byte counts) into bytes.
pub fn parse_cache_size(s: &str) -> Option<usize> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    let (digits, mult) = match t.as_bytes()[t.len() - 1] {
        b'K' | b'k' => (&t[..t.len() - 1], 1024usize),
        b'M' | b'm' => (&t[..t.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&t[..t.len() - 1], 1024 * 1024 * 1024),
        _ => (t, 1),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|v| v.checked_mul(mult))
}

/// One-shot sysfs probe of the cpu0 cache hierarchy. Returns
/// `(l1d, l2, l3)` with any unprobeable level filled from the fallback
/// hierarchy. Sanctioned one-shot read: called only from the [`tuning`]
/// `OnceLock` initializer, so the filesystem is consulted once per
/// process and the result is fixed thereafter.
fn tune_probe_cache_sizes() -> (usize, usize, usize) {
    let mut l1d = None;
    let mut l2 = None;
    let mut l3 = None;
    for index in 0..8u32 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
        let read = |leaf: &str| std::fs::read_to_string(format!("{dir}/{leaf}")).ok();
        let Some(level) = read("level").and_then(|s| s.trim().parse::<u32>().ok()) else {
            continue;
        };
        let ty = read("type").unwrap_or_default();
        let ty = ty.trim();
        let Some(size) = read("size").and_then(|s| parse_cache_size(&s)) else {
            continue;
        };
        match (level, ty) {
            (1, "Data" | "Unified") => l1d = l1d.or(Some(size)),
            (2, _) => l2 = l2.or(Some(size)),
            (3, _) => l3 = l3.or(Some(size)),
            _ => {}
        }
    }
    (
        l1d.unwrap_or(FALLBACK_L1D),
        l2.unwrap_or(FALLBACK_L2),
        l3.unwrap_or(FALLBACK_L3),
    )
}

/// One-shot environment override read (`usize`). Sanctioned: called only
/// from the [`tuning`] initializer; the environment is read once per
/// process, so the selected configuration is fixed for the process
/// lifetime (per-configuration determinism, DESIGN.md §11).
fn tune_probe_env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
}

/// One-shot environment override read (`f64`). Same sanction rationale as
/// [`tune_probe_env_usize`].
fn tune_probe_env_f64(name: &str) -> Option<f64> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
}

/// Builds the process-wide tuning from probed cache sizes plus
/// environment overrides.
fn tune_probe_all() -> Tuning {
    let (l1d, l2, l3) = tune_probe_cache_sizes();
    let (mc, kc, nc) = derive_blocking(l1d, l2, l3);
    let clamp_block = |v: usize, unit: usize| (v.max(unit) / unit) * unit;
    let mc = tune_probe_env_usize("TT_BLOCK_MC").map_or(mc, |v| clamp_block(v, MR));
    let kc = tune_probe_env_usize("TT_BLOCK_KC").map_or(kc, |v| v.clamp(8, 4096));
    let nc = tune_probe_env_usize("TT_BLOCK_NC").map_or(nc, |v| clamp_block(v, NR));
    let par_flop_floor = tune_probe_env_f64("TT_PAR_FLOPS").unwrap_or(DEFAULT_PAR_FLOP_FLOOR);
    let par_intensity_floor =
        tune_probe_env_f64("TT_PAR_INTENSITY").unwrap_or(DEFAULT_PAR_INTENSITY_FLOOR);
    Tuning {
        l1d,
        l2,
        l3,
        mc,
        kc,
        nc,
        par_flop_floor,
        par_intensity_floor,
    }
}

/// The process-wide kernel tuning, probed on first use and fixed
/// thereafter.
pub fn tuning() -> &'static Tuning {
    static TUNING: OnceLock<Tuning> = OnceLock::new();
    TUNING.get_or_init(tune_probe_all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_hierarchy_reproduces_legacy_blocking() {
        let (mc, kc, nc) = derive_blocking(FALLBACK_L1D, FALLBACK_L2, FALLBACK_L3);
        assert_eq!((mc, kc, nc), (128, 256, 2048));
    }

    #[test]
    fn derived_blocking_is_aligned_and_bounded() {
        // A spread of plausible hierarchies, including degenerate ones.
        for &(l1, l2, l3) in &[
            (16 * 1024usize, 128 * 1024usize, 1024 * 1024usize),
            (32 * 1024, 256 * 1024, 8 * 1024 * 1024),
            (48 * 1024, 2 * 1024 * 1024, 105 * 1024 * 1024),
            (64 * 1024, 4 * 1024 * 1024, 256 * 1024 * 1024),
            (0, 0, 0),
            (usize::MAX / 16, usize::MAX / 16, usize::MAX / 16),
        ] {
            let (mc, kc, nc) = derive_blocking(l1, l2, l3);
            assert_eq!(mc % MR, 0, "MC must be an MR multiple");
            assert_eq!(nc % NR, 0, "NC must be an NR multiple");
            assert!((64..=512).contains(&kc) && kc % 64 == 0);
            assert!((MR * 4..=1024).contains(&mc));
            assert!((NR * 32..=8192).contains(&nc));
            // The panels actually fit the budgets they were sized for
            // (when the cache is not degenerate-small).
            if l2 >= 2 * 8 * kc * MR * 4 {
                assert!(mc * kc * 8 <= l2 / 2 || mc == MR * 4);
            }
        }
    }

    #[test]
    fn bigger_caches_never_shrink_blocks() {
        let small = derive_blocking(32 * 1024, 256 * 1024, 4 * 1024 * 1024);
        let big = derive_blocking(48 * 1024, 2 * 1024 * 1024, 64 * 1024 * 1024);
        assert!(big.0 >= small.0 && big.1 >= small.1 && big.2 >= small.2);
    }

    #[test]
    fn parse_cache_size_handles_sysfs_forms() {
        assert_eq!(parse_cache_size("48K"), Some(48 * 1024));
        assert_eq!(parse_cache_size("2048K\n"), Some(2048 * 1024));
        assert_eq!(parse_cache_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_cache_size("  512  "), Some(512));
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("abc"), None);
        assert_eq!(parse_cache_size("12Q"), None);
    }

    #[test]
    fn process_tuning_is_stable_and_sane() {
        let t1 = tuning();
        let t2 = tuning();
        assert!(std::ptr::eq(t1, t2), "one-shot probe must cache");
        assert!(t1.mc.is_multiple_of(MR) && t1.mc >= MR);
        assert!(t1.nc.is_multiple_of(NR) && t1.nc >= NR);
        assert!(t1.kc >= 8);
        assert!(t1.par_flop_floor >= 0.0 && t1.par_intensity_floor >= 0.0);
    }
}
