//! Column-major dense matrix type.
//!
//! Column-major layout is chosen deliberately: a TT core stored contiguously
//! is *simultaneously* its vertical unfolding (as an `R₀I × R₁` column-major
//! matrix) and a column-permuted horizontal unfolding (as an `R₀ × IR₁`
//! column-major matrix), so the TT kernels never copy or permute core data.

use std::ops::{Index, IndexMut};

/// A dense, column-major, `f64` matrix.
///
/// Element `(i, j)` lives at linear index `i + j * rows`. The backing storage
/// is exposed ([`Matrix::as_slice`]) so callers can reinterpret the same
/// buffer under different shapes (the unfolding trick above).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing column-major buffer. Panics if the length is wrong.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds from row-major data (convenient in tests and examples).
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix::from_fn(rows, cols, |i, j| data[i * cols + j])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the column-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the column-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reinterprets the same buffer under a new shape with equal element
    /// count. This is the zero-copy unfolding switch used by the TT kernels.
    pub fn reshaped(self, rows: usize, cols: usize) -> Self {
        assert_eq!(
            self.rows * self.cols,
            rows * cols,
            "reshape must preserve element count"
        );
        Matrix {
            rows,
            cols,
            data: self.data,
        }
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Two distinct mutable columns (for rotation kernels). Panics if equal.
    pub fn cols_mut_pair(&mut self, j: usize, k: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(j, k, "columns must be distinct");
        let r = self.rows;
        let (lo, hi) = if j < k { (j, k) } else { (k, j) };
        let (left, right) = self.data.split_at_mut(hi * r);
        let a = &mut left[lo * r..(lo + 1) * r];
        let b = &mut right[..r];
        if j < k {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Explicit transpose (allocates).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copies the leading `rows × cols` block.
    pub fn sub_matrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols);
        Matrix::from_fn(rows, cols, |i, j| self[(row0 + i, col0 + j)])
    }

    /// Keeps only the first `k` columns (no copy of retained data beyond
    /// truncating the buffer).
    pub fn truncate_cols(mut self, k: usize) -> Matrix {
        assert!(k <= self.cols);
        self.data.truncate(self.rows * k);
        self.cols = k;
        self
    }

    /// Stacks `self` on top of `other` (matching column counts).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let rows = self.rows + other.rows;
        let mut out = Matrix::zeros(rows, self.cols);
        for j in 0..self.cols {
            out.col_mut(j)[..self.rows].copy_from_slice(self.col(j));
            out.col_mut(j)[self.rows..].copy_from_slice(other.col(j));
        }
        out
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// `self += alpha * other` (matching shapes).
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy requires equal shapes");
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += alpha * y;
        }
    }

    /// Scales column `j` by `alpha`.
    pub fn scale_col(&mut self, j: usize, alpha: f64) {
        for x in self.col_mut(j) {
            *x *= alpha;
        }
    }

    /// Fills the matrix with i.i.d. standard-normal entries from `rng`.
    pub fn fill_gaussian(&mut self, rng: &mut impl rand::Rng) {
        crate::rng::fill_standard_normal(&mut self.data, rng);
    }

    /// Convenience constructor of a Gaussian random matrix.
    pub fn gaussian(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        m.fill_gaussian(rng);
        m
    }

    /// Maximum absolute entrywise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_column_major() {
        let m = Matrix::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.);
        assert_eq!(m[(1, 0)], 2.);
        assert_eq!(m[(0, 1)], 3.);
        assert_eq!(m[(1, 2)], 6.);
    }

    #[test]
    fn from_row_major_round_trips() {
        let m = Matrix::from_row_major(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 1)], 2.);
        assert_eq!(m[(1, 0)], 4.);
        assert_eq!(m.transpose()[(0, 1)], 4.);
    }

    #[test]
    fn reshape_preserves_buffer() {
        let m = Matrix::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let r = m.clone().reshaped(3, 2);
        assert_eq!(r.as_slice(), m.as_slice());
        assert_eq!(r[(2, 0)], 3.);
        assert_eq!(r[(0, 1)], 4.);
    }

    #[test]
    fn vstack_stacks_rows() {
        let a = Matrix::from_row_major(1, 2, &[1., 2.]);
        let b = Matrix::from_row_major(2, 2, &[3., 4., 5., 6.]);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s[(0, 0)], 1.);
        assert_eq!(s[(1, 0)], 3.);
        assert_eq!(s[(2, 1)], 6.);
    }

    #[test]
    fn cols_mut_pair_disjoint() {
        let mut m = Matrix::zeros(3, 4);
        let (a, b) = m.cols_mut_pair(3, 1);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(m[(0, 3)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn truncate_cols_keeps_leading_block() {
        let m = Matrix::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.truncate_cols(2);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.as_slice(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_col_major(1, 2, vec![3., 4.]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    #[should_panic]
    fn bad_buffer_panics() {
        let _ = Matrix::from_col_major(2, 2, vec![1., 2., 3.]);
    }
}
