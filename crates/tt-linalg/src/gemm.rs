//! General and symmetric matrix multiplication kernels.
//!
//! These are the workhorses of the Gram-SVD rounding path — the paper's core
//! observation is that casting all heavy work as `gemm`/`syrk` both reduces
//! flops and runs at higher machine efficiency than Householder-based
//! orthogonalization. The kernels here are straightforward cache-aware
//! column-major loops; per-case loop orders are chosen so the innermost loop
//! always streams down columns (unit stride) and autovectorizes.
//!
//! The primary entry points ([`gemm_v`], [`syrk_v`]) take borrowed
//! [`MatRef`]/[`MatMut`] views so TT-core buffers can be multiplied under
//! either unfolding without copying; [`gemm`]/[`gemm_into`]/[`syrk`] are the
//! owned-[`Matrix`] conveniences.

use crate::matrix::Matrix;
use crate::view::{MatMut, MatRef};

/// Transposition flag for [`gemm`] operands, mirroring BLAS conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    fn dims(self, m: &MatRef<'_>) -> (usize, usize) {
        match self {
            Trans::No => (m.rows(), m.cols()),
            Trans::Yes => (m.cols(), m.rows()),
        }
    }
}

/// `C = alpha * op(A) * op(B)`, allocating the result.
pub fn gemm(ta: Trans, a: &Matrix, tb: Trans, b: &Matrix, alpha: f64) -> Matrix {
    gemm_alloc(ta, a.view(), tb, b.view(), alpha)
}

/// View-based variant of [`gemm`], allocating the result.
pub fn gemm_alloc(ta: Trans, a: MatRef<'_>, tb: Trans, b: MatRef<'_>, alpha: f64) -> Matrix {
    let (m, _) = ta.dims(&a);
    let (_, n) = tb.dims(&b);
    let mut c = Matrix::zeros(m, n);
    gemm_v(ta, a, tb, b, alpha, 0.0, c.view_mut());
    c
}

/// `C = alpha * op(A) * op(B) + beta * C`, writing into `c`.
pub fn gemm_into(
    ta: Trans,
    a: &Matrix,
    tb: Trans,
    b: &Matrix,
    alpha: f64,
    beta: f64,
    c: &mut Matrix,
) {
    gemm_v(ta, a.view(), tb, b.view(), alpha, beta, c.view_mut());
}

/// The core kernel: `C = alpha * op(A) * op(B) + beta * C` on views.
///
/// Panics on dimension mismatch (these are internal kernels; shape errors
/// are programming bugs, not recoverable conditions).
pub fn gemm_v(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(&a);
    let (kb, n) = tb.dims(&b);
    assert_eq!(ka, kb, "gemm inner dimensions must agree ({ka} vs {kb})");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    crate::paranoid::check_finite("gemm", "A", a.as_slice());
    crate::paranoid::check_finite("gemm", "B", b.as_slice());
    crate::paranoid::check_finite_scalar("gemm", "alpha", alpha);
    crate::paranoid::check_finite_scalar("gemm", "beta", beta);
    let k = ka;

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Trans::No, Trans::No) => {
            // C[:, j] += alpha * sum_k A[:, k] * B[k, j]  (jki: axpy kernel)
            for j in 0..n {
                let ccol = c.col_mut(j);
                let bcol = b.col(j);
                for (l, &b_lj) in bcol.iter().enumerate().take(k) {
                    let s = alpha * b_lj;
                    if s != 0.0 {
                        axpy(s, a.col(l), ccol);
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C[i, j] += alpha * dot(A[:, i], B[:, j])  (dot kernel)
            for j in 0..n {
                let bcol = b.col(j);
                let ccol = c.col_mut(j);
                for (i, cij) in ccol.iter_mut().enumerate() {
                    *cij += alpha * dot(a.col(i), bcol);
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C[:, j] += alpha * sum_k A[:, k] * B[j, k]  (axpy over B rows)
            for j in 0..n {
                let ccol = c.col_mut(j);
                for l in 0..k {
                    let s = alpha * b.at(j, l);
                    if s != 0.0 {
                        axpy(s, a.col(l), ccol);
                    }
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // C[i, j] += alpha * sum_k A[k, i] * B[j, k] — rare; simple loops.
            for j in 0..n {
                let ccol = c.col_mut(j);
                for (i, cij) in ccol.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a.at(l, i) * b.at(j, l);
                    }
                    *cij += alpha * s;
                }
            }
        }
    }
}

/// Symmetric rank-k update `C = alpha * Aᵀ A` (full symmetric result).
pub fn syrk(a: &Matrix, alpha: f64) -> Matrix {
    syrk_v(a.view(), alpha)
}

/// View-based symmetric rank-k update `C = alpha * Aᵀ A`.
///
/// Exploits symmetry: only the upper triangle is computed with dot products,
/// then mirrored, halving the arithmetic versus [`gemm`] — the saving the
/// paper's §IV-B "symmetric approach" discussion refers to.
pub fn syrk_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    crate::paranoid::check_finite("syrk", "A", a.as_slice());
    crate::paranoid::check_finite_scalar("syrk", "alpha", alpha);
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    for j in 0..n {
        let bcol = a.col(j);
        for i in 0..=j {
            let v = alpha * dot(a.col(i), bcol);
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }
    c
}

/// View-based symmetric rank-k update in the other orientation:
/// `C = alpha * A Aᵀ` (full symmetric result).
///
/// Used by the *symmetric* structured-Gram-sweep variant of §IV-B, where
/// `A` is a horizontal unfolding and the contraction runs over its columns.
pub fn syrk_nt_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    crate::paranoid::check_finite("syrk_nt", "A", a.as_slice());
    crate::paranoid::check_finite_scalar("syrk_nt", "alpha", alpha);
    let m = a.rows();
    let mut c = Matrix::zeros(m, m);
    // Accumulate outer products column by column, upper triangle only.
    for l in 0..a.cols() {
        let col = a.col(l);
        for j in 0..m {
            let s = alpha * col[j];
            if s == 0.0 {
                continue;
            }
            for i in 0..=j {
                c[(i, j)] += s * col[i];
            }
        }
    }
    for j in 0..m {
        for i in 0..j {
            c[(j, i)] = c[(i, j)];
        }
    }
    c
}

/// Flop count of a `gemm` with these dimensions (2·m·n·k), used by the
/// performance-model instrumentation.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[inline]
fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[inline]
fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // Four-way unrolled accumulation: better ILP and (slightly) better
    // rounding behavior than a single serial accumulator.
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = 4 * c;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    for i in 4 * chunks..x.len() {
        s0 += x[i] * y[i];
    }
    (s0 + s1) + (s2 + s3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn naive(ta: Trans, a: &Matrix, tb: Trans, b: &Matrix) -> Matrix {
        let at = match ta {
            Trans::No => a.clone(),
            Trans::Yes => a.transpose(),
        };
        let bt = match tb {
            Trans::No => b.clone(),
            Trans::Yes => b.transpose(),
        };
        let (m, k) = at.shape();
        let n = bt.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|l| at[(i, l)] * bt[(l, j)]).sum())
    }

    #[test]
    fn matches_naive_all_transpose_combos() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for &(m, n, k) in &[(3usize, 4usize, 5usize), (7, 2, 9), (1, 1, 1), (6, 6, 6)] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    let a = match ta {
                        Trans::No => Matrix::gaussian(m, k, &mut rng),
                        Trans::Yes => Matrix::gaussian(k, m, &mut rng),
                    };
                    let b = match tb {
                        Trans::No => Matrix::gaussian(k, n, &mut rng),
                        Trans::Yes => Matrix::gaussian(n, k, &mut rng),
                    };
                    let c = gemm(ta, &a, tb, &b, 1.0);
                    let r = naive(ta, &a, tb, &b);
                    assert!(c.max_abs_diff(&r) < 1e-12, "({m},{n},{k}) {ta:?} {tb:?}");
                }
            }
        }
    }

    #[test]
    fn beta_accumulates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Matrix::gaussian(4, 3, &mut rng);
        let b = Matrix::gaussian(3, 5, &mut rng);
        let mut c = Matrix::gaussian(4, 5, &mut rng);
        let c0 = c.clone();
        gemm_into(Trans::No, &a, Trans::No, &b, 2.0, 0.5, &mut c);
        let mut expect = naive(Trans::No, &a, Trans::No, &b);
        expect.scale(2.0);
        expect.axpy(0.5, &c0);
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn syrk_matches_gemm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Matrix::gaussian(20, 6, &mut rng);
        let s = syrk(&a, 1.5);
        let g = gemm(Trans::Yes, &a, Trans::No, &a, 1.5);
        assert!(s.max_abs_diff(&g) < 1e-12);
        // exact symmetry by construction
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }

    #[test]
    fn syrk_nt_matches_gemm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let a = Matrix::gaussian(5, 17, &mut rng);
        let s = syrk_nt_v(a.view(), 2.0);
        let g = gemm(Trans::No, &a, Trans::Yes, &a, 2.0);
        assert!(s.max_abs_diff(&g) < 1e-12);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }

    #[test]
    fn view_gemm_reinterprets_buffers() {
        // Multiply the same buffer as 2x6 and as 4x3 without copying.
        let m = Matrix::from_col_major(4, 3, (1..=12).map(f64::from).collect());
        let h = m.view_as(2, 6); // zero-copy "horizontal unfolding"
        let hh = gemm_alloc(Trans::No, h, Trans::Yes, h, 1.0);
        let explicit = h.to_matrix();
        let expect = naive(Trans::No, &explicit, Trans::Yes, &explicit);
        assert!(hh.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        gemm_into(Trans::No, &a, Trans::No, &b, 0.0, 3.0, &mut c);
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn empty_dims_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = gemm(Trans::No, &a, Trans::No, &b, 1.0);
        assert_eq!(c.shape(), (0, 2));
    }
}
