//! General and symmetric matrix multiplication kernels.
//!
//! These are the workhorses of the Gram-SVD rounding path — the paper's core
//! observation is that casting all heavy work as `gemm`/`syrk` both reduces
//! flops and runs at higher machine efficiency than Householder-based
//! orthogonalization. This module is the *dispatcher*: it validates shapes,
//! applies `beta`, and routes each call to one of two engines:
//!
//! * [`crate::block`] — the packed, cache-blocked, register-tiled engine
//!   (Goto/BLIS-style `MC`/`KC`/`NC` blocking over an `MR × NR` microkernel),
//!   used whenever the problem is large enough to amortize packing;
//! * [`crate::reference`] — the original straightforward column-major loops,
//!   used below the blocking threshold and kept as the conformance oracle.
//!
//! Under the `paranoid` feature (or any debug build) the dispatcher
//! spot-checks sampled entries of every blocked result against dot products
//! computed directly from the unpacked operands, so a packing or tiling bug
//! is caught at the call site that triggered it.
//!
//! The primary entry points ([`gemm_v`], [`syrk_v`]) take borrowed
//! [`MatRef`]/[`MatMut`] views so TT-core buffers can be multiplied under
//! either unfolding without copying; [`gemm`]/[`gemm_into`]/[`syrk`] are the
//! owned-[`Matrix`] conveniences.

use crate::block;
use crate::matrix::Matrix;
use crate::reference;
use crate::view::{MatMut, MatRef};

/// Transposition flag for [`gemm`] operands, mirroring BLAS conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    pub(crate) fn dims(self, m: &MatRef<'_>) -> (usize, usize) {
        match self {
            Trans::No => (m.rows(), m.cols()),
            Trans::Yes => (m.cols(), m.rows()),
        }
    }
}

/// Which multiplication engine a problem size routes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Naive column-major loops ([`crate::reference`]).
    Reference,
    /// Packed blocked engine ([`crate::block`]).
    Blocked,
}

/// Flop threshold (2·m·n·k) above which packing pays for itself.
///
/// Below ~32³ the packed panels cost as much to fill as the multiply; the
/// rounding algorithms' small `R × R` bond updates stay on the reference
/// loops while every unfolding contraction (tall-skinny `R₀I × R₁`) and the
/// γ-calibration GEMM route to the blocked engine.
const BLOCK_FLOP_THRESHOLD: f64 = 2.0 * 32.0 * 32.0 * 32.0;

/// Selects the engine for a `m × n × k` multiply. Single source of truth:
/// the dispatcher itself, the γ-calibration pin test, and the benches all
/// consult this.
pub fn kernel_choice(m: usize, n: usize, k: usize) -> Kernel {
    if gemm_flops(m, n, k) >= BLOCK_FLOP_THRESHOLD && k >= 2 {
        Kernel::Blocked
    } else {
        Kernel::Reference
    }
}

/// Worker-thread count a `m × n × k` multiply would be granted right now:
/// 1 below the autotuned flop floor (fork/join overhead never touches
/// small bond-update GEMMs) or the arithmetic-intensity floor
/// (memory-bound shapes only add contention when threaded), otherwise the
/// `TT_NUM_THREADS` configuration capped by the machine share (see
/// [`crate::par`] and [`crate::tune`]). The companion to [`kernel_choice`]
/// for the parallel dispatch decision; the blocked engine applies the same
/// policy internally.
pub fn parallel_threads(m: usize, n: usize, k: usize) -> usize {
    crate::par::planned_threads(crate::par::Work::gemm(m, n, k))
}

/// `C = alpha * op(A) * op(B)`, allocating the result.
pub fn gemm(ta: Trans, a: &Matrix, tb: Trans, b: &Matrix, alpha: f64) -> Matrix {
    gemm_alloc(ta, a.view(), tb, b.view(), alpha)
}

/// View-based variant of [`gemm`], allocating the result.
pub fn gemm_alloc(ta: Trans, a: MatRef<'_>, tb: Trans, b: MatRef<'_>, alpha: f64) -> Matrix {
    let (m, _) = ta.dims(&a);
    let (_, n) = tb.dims(&b);
    let mut c = Matrix::zeros(m, n);
    gemm_v(ta, a, tb, b, alpha, 0.0, c.view_mut());
    c
}

/// `C = alpha * op(A) * op(B) + beta * C`, writing into `c`.
pub fn gemm_into(
    ta: Trans,
    a: &Matrix,
    tb: Trans,
    b: &Matrix,
    alpha: f64,
    beta: f64,
    c: &mut Matrix,
) {
    gemm_v(ta, a.view(), tb, b.view(), alpha, beta, c.view_mut());
}

/// The core entry point: `C = alpha * op(A) * op(B) + beta * C` on views.
///
/// Panics on dimension mismatch (these are internal kernels; shape errors
/// are programming bugs, not recoverable conditions).
pub fn gemm_v(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(&a);
    let (kb, n) = tb.dims(&b);
    assert_eq!(ka, kb, "gemm inner dimensions must agree ({ka} vs {kb})");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    crate::paranoid::check_finite("gemm", "A", a.as_slice());
    crate::paranoid::check_finite("gemm", "B", b.as_slice());
    crate::paranoid::check_finite_scalar("gemm", "alpha", alpha);
    crate::paranoid::check_finite_scalar("gemm", "beta", beta);
    let k = ka;

    match kernel_choice(m, n, k) {
        Kernel::Reference => reference::gemm_v(ta, a, tb, b, alpha, beta, c),
        Kernel::Blocked => {
            let samples = sample_entries_before(m, n, beta, &c);
            if beta == 0.0 {
                c.fill(0.0);
            } else if beta != 1.0 {
                c.scale(beta);
            }
            if alpha != 0.0 {
                block::gemm_accumulate(ta, a, tb, b, alpha, &mut c);
            }
            verify_samples(ta, a, tb, b, alpha, beta, &c, k, &samples);
        }
    }
}

/// Symmetric rank-k update `C = alpha * Aᵀ A` (full symmetric result).
pub fn syrk(a: &Matrix, alpha: f64) -> Matrix {
    syrk_v(a.view(), alpha)
}

/// View-based symmetric rank-k update `C = alpha * Aᵀ A`.
///
/// Exploits symmetry: only the (block) upper triangle is computed, then
/// mirrored, halving the arithmetic versus [`gemm`] — the saving the paper's
/// §IV-B "symmetric approach" discussion refers to.
pub fn syrk_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    crate::paranoid::check_finite("syrk", "A", a.as_slice());
    crate::paranoid::check_finite_scalar("syrk", "alpha", alpha);
    let (k, n) = a.shape();
    match kernel_choice(n, n, k) {
        Kernel::Reference => reference::syrk_v(a, alpha),
        Kernel::Blocked => {
            let c = block::syrk(a, alpha, block::SyrkShape::TransposeA);
            verify_syrk_samples("syrk", &c, |i, j| {
                alpha * reference::dot(a.col(i), a.col(j))
            });
            c
        }
    }
}

/// View-based symmetric rank-k update in the other orientation:
/// `C = alpha * A Aᵀ` (full symmetric result).
///
/// Used by the *symmetric* structured-Gram-sweep variant of §IV-B, where
/// `A` is a horizontal unfolding and the contraction runs over its columns.
pub fn syrk_nt_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    crate::paranoid::check_finite("syrk_nt", "A", a.as_slice());
    crate::paranoid::check_finite_scalar("syrk_nt", "alpha", alpha);
    let (m, k) = a.shape();
    match kernel_choice(m, m, k) {
        Kernel::Reference => reference::syrk_nt_v(a, alpha),
        Kernel::Blocked => {
            let c = block::syrk(a, alpha, block::SyrkShape::TransposeB);
            verify_syrk_samples("syrk_nt", &c, |i, j| {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.at(i, l) * a.at(j, l);
                }
                alpha * s
            });
            c
        }
    }
}

/// `C = alpha * op(A) * op(B) + beta * C` with the multiply accumulated in
/// **f32** (see [`crate::block32`]). Same dispatcher policy as [`gemm_v`]:
/// sub-threshold problems run the naive f32 loops, larger ones the blocked
/// f32 engine; paranoid sampling verifies against f64 dot products with
/// f32-epsilon-scaled tolerances. Opt-in via the rounding options — the
/// accuracy floor is `sqrt(eps_f32) ≈ 3.4e-4` relative.
pub fn gemm_f32_v(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(&a);
    let (kb, n) = tb.dims(&b);
    assert_eq!(
        ka, kb,
        "gemm_f32 inner dimensions must agree ({ka} vs {kb})"
    );
    assert_eq!(c.shape(), (m, n), "gemm_f32 output shape mismatch");
    crate::paranoid::check_finite("gemm_f32", "A", a.as_slice());
    crate::paranoid::check_finite("gemm_f32", "B", b.as_slice());
    crate::paranoid::check_finite_scalar("gemm_f32", "alpha", alpha);
    crate::paranoid::check_finite_scalar("gemm_f32", "beta", beta);
    let k = ka;

    let samples = sample_entries_before(m, n, beta, &c);
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if alpha != 0.0 && m > 0 && n > 0 && k > 0 {
        match kernel_choice(m, n, k) {
            Kernel::Reference => crate::block32::gemm_ref_f32(ta, a, tb, b, alpha, &mut c),
            Kernel::Blocked => crate::block32::gemm_accumulate_f32(ta, a, tb, b, alpha, &mut c),
        }
    }
    verify_samples_eps(ta, a, tb, b, alpha, beta, &c, k, &samples, F32_ACC_EPS);
}

/// View-based symmetric rank-k update `C = alpha * Aᵀ A` accumulated in
/// **f32** — the reduced-precision twin of [`syrk_v`] for the Gram path.
pub fn syrk_f32_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    crate::paranoid::check_finite("syrk_f32", "A", a.as_slice());
    crate::paranoid::check_finite_scalar("syrk_f32", "alpha", alpha);
    let (k, _n) = a.shape();
    let c = crate::block32::syrk_f32(a, alpha, block::SyrkShape::TransposeA);
    verify_syrk_samples_eps(
        "syrk_f32",
        &c,
        |i, j| alpha * reference::dot(a.col(i), a.col(j)),
        (k as f64 + 8.0) * F32_ACC_EPS,
    );
    c
}

/// View-based `C = alpha * A Aᵀ` accumulated in **f32** — the
/// reduced-precision twin of [`syrk_nt_v`] for the symmetric Gram sweep.
pub fn syrk_nt_f32_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    crate::paranoid::check_finite("syrk_nt_f32", "A", a.as_slice());
    crate::paranoid::check_finite_scalar("syrk_nt_f32", "alpha", alpha);
    let (_m, k) = a.shape();
    let c = crate::block32::syrk_f32(a, alpha, block::SyrkShape::TransposeB);
    verify_syrk_samples_eps(
        "syrk_nt_f32",
        &c,
        |i, j| {
            let mut s = 0.0;
            for l in 0..k {
                s += a.at(i, l) * a.at(j, l);
            }
            alpha * s
        },
        (k as f64 + 8.0) * F32_ACC_EPS,
    );
    c
}

/// Flop count of a `gemm` with these dimensions (2·m·n·k), used by the
/// performance-model instrumentation and the γ calibration. By construction
/// this is the flop count of the *blocked* kernel [`kernel_choice`] selects
/// at calibration sizes (the engine performs exactly 2·m·n·k flops plus
/// packing data movement; padding lanes multiply zeros and are not counted).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// How many output entries the paranoid cross-check verifies per call.
const PARANOID_SAMPLES: usize = 16;

/// Records `(i, j, previous C value)` for a deterministic spread of entries,
/// so the blocked result can be verified after the update. Empty when
/// paranoid checks are compiled out or `beta` needs no history (`beta = 0`
/// still records the positions, with zeros).
fn sample_entries_before(
    m: usize,
    n: usize,
    beta: f64,
    c: &MatMut<'_>,
) -> Vec<(usize, usize, f64)> {
    if !crate::paranoid::enabled() || m == 0 || n == 0 {
        return Vec::new();
    }
    let total = m * n;
    let count = PARANOID_SAMPLES.min(total);
    let stride = total / count;
    (0..count)
        .map(|s| {
            let flat = s * stride;
            let (i, j) = (flat % m, flat / m);
            let c0 = if beta == 0.0 {
                0.0
            } else {
                c.as_ref().at(i, j)
            };
            (i, j, c0)
        })
        .collect()
}

/// The unit roundoff the paranoid checks assume for the f32-accumulation
/// path: every partial sum lives in `f32`, so its epsilon bounds the
/// componentwise error, not `f64`'s.
const F32_ACC_EPS: f64 = f32::EPSILON as f64;

/// Verifies the sampled entries of a blocked GEMM against dot products
/// computed directly from the unpacked operands — the reference oracle at
/// O(samples·k) cost. Panics with a kernel-naming diagnostic on mismatch.
#[allow(clippy::too_many_arguments)]
fn verify_samples(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    beta: f64,
    c: &MatMut<'_>,
    k: usize,
    samples: &[(usize, usize, f64)],
) {
    verify_samples_eps(ta, a, tb, b, alpha, beta, c, k, samples, crate::EPS);
}

/// [`verify_samples`] parameterized by the accumulation unit roundoff, so
/// the same oracle covers the f64 and f32 engines.
#[allow(clippy::too_many_arguments)]
fn verify_samples_eps(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    beta: f64,
    c: &MatMut<'_>,
    k: usize,
    samples: &[(usize, usize, f64)],
    eps: f64,
) {
    if samples.is_empty() {
        return;
    }
    for &(i, j, c0) in samples {
        let mut s = 0.0;
        let mut abs = 0.0;
        for l in 0..k {
            let al = match ta {
                Trans::No => a.at(i, l),
                Trans::Yes => a.at(l, i),
            };
            let bl = match tb {
                Trans::No => b.at(l, j),
                Trans::Yes => b.at(j, l),
            };
            s += al * bl;
            abs += (al * bl).abs();
        }
        let expect = alpha * s + beta * c0;
        let scale = alpha.abs() * abs + (beta * c0).abs() + 1.0;
        let tol = (k as f64 + 8.0) * 8.0 * eps * scale;
        let got = c.as_ref().at(i, j);
        if (got - expect).abs() > tol {
            // analyze::allow(panic_surface): paranoid-mode oracle check — a wrong kernel result must abort, continuing would corrupt every downstream factorization
            panic!(
                "gemm: paranoid check failed: blocked kernel disagrees with the \
                 reference oracle at C[{i},{j}]: blocked {got} vs reference \
                 {expect} (tol {tol}) — packing/tiling bug in tt-linalg::block"
            );
        }
    }
}

/// SYRK analogue of [`verify_samples`]: checks diagonal-adjacent samples of
/// the symmetric result against directly computed entries.
fn verify_syrk_samples(kernel: &str, c: &Matrix, entry: impl Fn(usize, usize) -> f64) {
    verify_syrk_samples_eps(kernel, c, entry, 1e-10);
}

/// [`verify_syrk_samples`] parameterized by the relative tolerance, so the
/// same oracle covers the f64 (1e-10) and f32-accumulation (k·eps_f32)
/// engines.
fn verify_syrk_samples_eps(
    kernel: &str,
    c: &Matrix,
    entry: impl Fn(usize, usize) -> f64,
    rel: f64,
) {
    if !crate::paranoid::enabled() {
        return;
    }
    let n = c.rows();
    if n == 0 {
        return;
    }
    let count = PARANOID_SAMPLES.min(n * n);
    let stride = (n * n) / count;
    for s in 0..count {
        let flat = s * stride;
        let (i, j) = (flat % n, flat / n);
        let expect = entry(i, j);
        let tol = rel * (1.0 + expect.abs()) + 1e-12;
        let got = c[(i, j)];
        if (got - expect).abs() > tol {
            // analyze::allow(panic_surface): paranoid-mode oracle check — a wrong kernel result must abort, continuing would corrupt every downstream factorization
            panic!(
                "{kernel}: paranoid check failed: blocked kernel disagrees with \
                 the reference oracle at C[{i},{j}]: blocked {got} vs reference \
                 {expect} — packing/tiling bug in tt-linalg::block"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn naive(ta: Trans, a: &Matrix, tb: Trans, b: &Matrix) -> Matrix {
        let at = match ta {
            Trans::No => a.clone(),
            Trans::Yes => a.transpose(),
        };
        let bt = match tb {
            Trans::No => b.clone(),
            Trans::Yes => b.transpose(),
        };
        let (m, k) = at.shape();
        let n = bt.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|l| at[(i, l)] * bt[(l, j)]).sum())
    }

    #[test]
    fn matches_naive_all_transpose_combos() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Sizes on both sides of the dispatch threshold.
        for &(m, n, k) in &[
            (3usize, 4usize, 5usize),
            (7, 2, 9),
            (1, 1, 1),
            (6, 6, 6),
            (40, 40, 40),
            (130, 9, 70),
        ] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    let a = match ta {
                        Trans::No => Matrix::gaussian(m, k, &mut rng),
                        Trans::Yes => Matrix::gaussian(k, m, &mut rng),
                    };
                    let b = match tb {
                        Trans::No => Matrix::gaussian(k, n, &mut rng),
                        Trans::Yes => Matrix::gaussian(n, k, &mut rng),
                    };
                    let c = gemm(ta, &a, tb, &b, 1.0);
                    let r = naive(ta, &a, tb, &b);
                    assert!(c.max_abs_diff(&r) < 1e-11, "({m},{n},{k}) {ta:?} {tb:?}");
                }
            }
        }
    }

    #[test]
    fn beta_accumulates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for (m, n, k) in [(4usize, 5usize, 3usize), (50, 50, 50)] {
            let a = Matrix::gaussian(m, k, &mut rng);
            let b = Matrix::gaussian(k, n, &mut rng);
            let mut c = Matrix::gaussian(m, n, &mut rng);
            let c0 = c.clone();
            gemm_into(Trans::No, &a, Trans::No, &b, 2.0, 0.5, &mut c);
            let mut expect = naive(Trans::No, &a, Trans::No, &b);
            expect.scale(2.0);
            expect.axpy(0.5, &c0);
            assert!(c.max_abs_diff(&expect) < 1e-11, "({m},{n},{k})");
        }
    }

    #[test]
    fn syrk_matches_gemm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // 20×6 stays on the reference path, 200×40 routes to the blocked one.
        for (rows, cols) in [(20usize, 6usize), (200, 40)] {
            let a = Matrix::gaussian(rows, cols, &mut rng);
            let s = syrk(&a, 1.5);
            let g = gemm(Trans::Yes, &a, Trans::No, &a, 1.5);
            assert!(s.max_abs_diff(&g) < 1e-10, "{rows}x{cols}");
            // exact symmetry by construction
            for i in 0..cols {
                for j in 0..cols {
                    assert_eq!(s[(i, j)], s[(j, i)]);
                }
            }
        }
    }

    #[test]
    fn syrk_nt_matches_gemm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for (rows, cols) in [(5usize, 17usize), (40, 300)] {
            let a = Matrix::gaussian(rows, cols, &mut rng);
            let s = syrk_nt_v(a.view(), 2.0);
            let g = gemm(Trans::No, &a, Trans::Yes, &a, 2.0);
            assert!(s.max_abs_diff(&g) < 1e-10, "{rows}x{cols}");
            for i in 0..rows {
                for j in 0..rows {
                    assert_eq!(s[(i, j)], s[(j, i)]);
                }
            }
        }
    }

    #[test]
    fn view_gemm_reinterprets_buffers() {
        // Multiply the same buffer as 2x6 and as 4x3 without copying.
        let m = Matrix::from_col_major(4, 3, (1..=12).map(f64::from).collect());
        let h = m.view_as(2, 6); // zero-copy "horizontal unfolding"
        let hh = gemm_alloc(Trans::No, h, Trans::Yes, h, 1.0);
        let explicit = h.to_matrix();
        let expect = naive(Trans::No, &explicit, Trans::Yes, &explicit);
        assert!(hh.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        gemm_into(Trans::No, &a, Trans::No, &b, 0.0, 3.0, &mut c);
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn zero_alpha_only_scales_c_blocked_sizes() {
        let a = Matrix::identity(64);
        let b = Matrix::identity(64);
        let mut c = Matrix::identity(64);
        gemm_into(Trans::No, &a, Trans::No, &b, 0.0, 3.0, &mut c);
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn empty_dims_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = gemm(Trans::No, &a, Trans::No, &b, 1.0);
        assert_eq!(c.shape(), (0, 2));
    }

    #[test]
    fn parallel_dispatch_respects_threshold_and_override() {
        // Small bond-update GEMMs never fan out…
        assert_eq!(parallel_threads(32, 32, 32), 1);
        // …and an explicit override forces the count regardless of size.
        assert_eq!(crate::par::with_threads(4, || parallel_threads(8, 8, 8)), 4);
        // Without an override, big multiplies are capped by configuration.
        assert!(parallel_threads(512, 512, 512) <= crate::par::configured_threads());
    }

    #[test]
    fn dispatch_routes_by_size() {
        // Degenerate and tiny problems stay on the reference loops…
        assert_eq!(kernel_choice(0, 5, 5), Kernel::Reference);
        assert_eq!(kernel_choice(8, 8, 8), Kernel::Reference);
        assert_eq!(kernel_choice(1000, 1000, 1), Kernel::Reference);
        // …while calibration-sized and tall-skinny unfolding GEMMs block.
        assert_eq!(kernel_choice(256, 256, 256), Kernel::Blocked);
        assert_eq!(kernel_choice(40_000, 20, 20), Kernel::Blocked);
    }
}
