//! Triangular matrix kernels: multiply, solve, invert.
//!
//! Used by the Cholesky-QR variant of §III-B1 (`R⁻¹` application), by the
//! symmetric Gram-sweep variant of §IV-B (`trmm` by a Cholesky factor), and
//! by the mean preconditioner's banded solves.

use crate::matrix::Matrix;

/// Solves `L x = b` in place for lower-triangular `L`, column by column.
pub fn solve_lower(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "solve_lower: L must be square");
    assert_eq!(b.rows(), n, "solve_lower: dimension mismatch");
    for j in 0..b.cols() {
        let col = b.col_mut(j);
        for i in 0..n {
            let mut s = col[i];
            for k in 0..i {
                s -= l[(i, k)] * col[k];
            }
            col[i] = s / l[(i, i)];
        }
    }
}

/// Solves `U x = b` in place for upper-triangular `U`, column by column.
pub fn solve_upper(u: &Matrix, b: &mut Matrix) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "solve_upper: U must be square");
    assert_eq!(b.rows(), n, "solve_upper: dimension mismatch");
    for j in 0..b.cols() {
        let col = b.col_mut(j);
        for i in (0..n).rev() {
            let mut s = col[i];
            for k in i + 1..n {
                s -= u[(i, k)] * col[k];
            }
            col[i] = s / u[(i, i)];
        }
    }
}

/// `B := U B` in place for upper-triangular `U` (BLAS `trmm`, left, upper).
///
/// Exploits the triangular structure to halve the arithmetic of a general
/// multiply — the `trmm` the paper benchmarks against `gemm` in §IV-B.
pub fn trmm_upper_left(u: &Matrix, b: &mut Matrix) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "trmm: U must be square");
    assert_eq!(b.rows(), n, "trmm: dimension mismatch");
    for j in 0..b.cols() {
        let col = b.col_mut(j);
        for i in 0..n {
            let mut s = 0.0;
            for k in i..n {
                s += u[(i, k)] * col[k];
            }
            col[i] = s;
        }
    }
}

/// `B := B L` in place for lower-triangular `L` (BLAS `trmm`, right, lower).
///
/// Exploits the triangular structure to halve the arithmetic — this is the
/// core-times-Cholesky-factor step of the symmetric Gram-sweep variant
/// (§IV-B).
pub fn trmm_right_lower(b: &mut crate::matrix::Matrix, l: &Matrix) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "trmm: L must be square");
    assert_eq!(b.cols(), n, "trmm: dimension mismatch");
    let m = b.rows();
    // Column j of the result depends on columns j..n of B (L lower
    // triangular: (B L)[:, j] = Σ_{k ≥ j} B[:, k] L[k, j]); sweep left to
    // right so each source column is still unmodified when read... note
    // column j of the result only reads columns ≥ j, so in-place left-to-
    // right is safe.
    for j in 0..n {
        // Start with the diagonal term.
        let ljj = l[(j, j)];
        for i in 0..m {
            b[(i, j)] *= ljj;
        }
        for k in j + 1..n {
            let lkj = l[(k, j)];
            if lkj == 0.0 {
                continue;
            }
            for i in 0..m {
                let add = lkj * b[(i, k)];
                b[(i, j)] += add;
            }
        }
    }
}

/// Explicit inverse of an upper-triangular matrix (back substitution on the
/// identity). `R` is small (TT-rank sized) wherever this is used.
pub fn tri_invert_upper(u: &Matrix) -> Matrix {
    let n = u.rows();
    let mut inv = Matrix::identity(n);
    solve_upper(u, &mut inv);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};
    use rand::SeedableRng;

    fn random_upper(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut u = Matrix::gaussian(n, n, &mut rng);
        for j in 0..n {
            for i in j + 1..n {
                u[(i, j)] = 0.0;
            }
            // keep it well-conditioned
            u[(j, j)] = 2.0 + u[(j, j)].abs();
        }
        u
    }

    #[test]
    fn solve_upper_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let u = random_upper(6, 2);
        let x = Matrix::gaussian(6, 3, &mut rng);
        let mut b = gemm(Trans::No, &u, Trans::No, &x, 1.0);
        solve_upper(&u, &mut b);
        assert!(b.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn solve_lower_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let l = random_upper(5, 4).transpose();
        let x = Matrix::gaussian(5, 2, &mut rng);
        let mut b = gemm(Trans::No, &l, Trans::No, &x, 1.0);
        solve_lower(&l, &mut b);
        assert!(b.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn trmm_matches_gemm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let u = random_upper(7, 6);
        let b0 = Matrix::gaussian(7, 4, &mut rng);
        let mut b = b0.clone();
        trmm_upper_left(&u, &mut b);
        let expect = gemm(Trans::No, &u, Trans::No, &b0, 1.0);
        assert!(b.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn trmm_right_lower_matches_gemm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let l = random_upper(6, 8).transpose();
        let b0 = Matrix::gaussian(9, 6, &mut rng);
        let mut b = b0.clone();
        trmm_right_lower(&mut b, &l);
        let expect = gemm(Trans::No, &b0, Trans::No, &l, 1.0);
        assert!(b.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn invert_upper() {
        let u = random_upper(8, 7);
        let inv = tri_invert_upper(&u);
        let prod = gemm(Trans::No, &u, Trans::No, &inv, 1.0);
        assert!(prod.max_abs_diff(&Matrix::identity(8)) < 1e-11);
    }
}
