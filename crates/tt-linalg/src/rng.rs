//! Minimal random-variate helpers.
//!
//! The reproduction only needs uniform and standard-normal `f64` draws, so we
//! generate normals with Box–Muller on top of `rand`'s uniform source instead
//! of pulling in a distributions crate.

use rand::Rng;

/// Fills `out` with i.i.d. standard-normal samples via Box–Muller.
pub fn fill_standard_normal(out: &mut [f64], rng: &mut impl Rng) {
    let mut i = 0;
    while i < out.len() {
        let (z0, z1) = box_muller_pair(rng);
        out[i] = z0;
        if i + 1 < out.len() {
            out[i + 1] = z1;
        }
        i += 2;
    }
}

/// One standard-normal sample.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    box_muller_pair(rng).0
}

fn box_muller_pair(rng: &mut impl Rng) -> (f64, f64) {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn moments_are_roughly_standard_normal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut buf = vec![0.0; 100_000];
        fill_standard_normal(&mut buf, &mut rng);
        let n = buf.len() as f64;
        let mean = buf.iter().sum::<f64>() / n;
        let var = buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn all_finite() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut buf = vec![0.0; 1001];
        fill_standard_normal(&mut buf, &mut rng);
        assert!(buf.iter().all(|x| x.is_finite()));
    }
}
