//! Reduced-precision (`f32`-accumulation) blocked kernels for the Gram
//! path.
//!
//! The Gram-SVD rounding variants square the conditioning: singular values
//! below `sqrt(eps)·‖X‖` are unrecoverable from the Gram matrix no matter
//! how precisely it is accumulated (§III-B discussion). That concession
//! makes reduced-precision accumulation nearly free for loose-tolerance
//! rounding: packing the operands to `f32` halves the memory traffic of
//! the memory-bound Gram sweeps and doubles the SIMD lane count, while the
//! accuracy floor moves from `sqrt(eps_f64) ≈ 1.5e-8` to
//! `sqrt(eps_f32) ≈ 3.4e-4` — irrelevant whenever the requested tolerance
//! is looser than that. The path is strictly **opt-in** via
//! `RoundingOptions` in `tt-core`; nothing routes here by default.
//!
//! Structure mirrors [`crate::block`]: the same `MR × NR` register tile,
//! the same autotuned `MC/KC/NC` loop nest (block byte budgets assume f64,
//! so the f32 panels simply enjoy extra headroom), the same zero-padded
//! packing, and a scalar/`std::simd` microkernel pair behind the `simd`
//! feature — `f32x8` holds a whole tile column per vector, twice the lane
//! width of the f64 kernel. Inputs and outputs stay `f64` ([`Matrix`]);
//! only packing and accumulation are demoted. Kernels here are sequential:
//! the f32 Gram products sit inside rounding sweeps whose parallelism (and
//! its determinism contract) lives at the [`crate::par`] layer above, and
//! the halved traffic is exactly the regime where extra threads pay least.

use crate::block::{SyrkShape, MR, NR};
use crate::gemm::Trans;
use crate::matrix::Matrix;
use crate::tune;
use crate::view::{MatMut, MatRef};

/// The one demotion point for the whole module.
#[inline(always)]
fn demote(x: f64) -> f32 {
    // analyze::allow(narrow_cast): deliberate precision reduction — the
    // f32 Gram path's entire contract is accumulating in reduced
    // precision; the sqrt(eps_f32) accuracy floor is documented and
    // tested against the f64 oracle.
    x as f32
}

/// `f32` analogue of [`crate::block`]'s `pack_a`: packs the `mc × kc`
/// block of `op(A)` at `(i0, k0)` into `MR`-row slabs, demoting each
/// element, rows beyond `mc` zero-padded.
fn pack_a32(
    ta: Trans,
    a: &MatRef<'_>,
    i0: usize,
    mc: usize,
    k0: usize,
    kc: usize,
    buf: &mut [f32],
) {
    let slabs = mc.div_ceil(MR);
    debug_assert!(buf.len() >= slabs * MR * kc);
    for slab in 0..slabs {
        let base = slab * MR * kc;
        let rows = MR.min(mc - slab * MR);
        match ta {
            Trans::No => {
                for step in 0..kc {
                    let col = a.col(k0 + step);
                    let dst = &mut buf[base + step * MR..base + step * MR + MR];
                    let src_base = i0 + slab * MR;
                    for (d, s) in dst[..rows].iter_mut().zip(&col[src_base..src_base + rows]) {
                        *d = demote(*s);
                    }
                    for d in dst.iter_mut().skip(rows) {
                        *d = 0.0;
                    }
                }
            }
            Trans::Yes => {
                for r in 0..rows {
                    let col = a.col(i0 + slab * MR + r);
                    for step in 0..kc {
                        buf[base + step * MR + r] = demote(col[k0 + step]);
                    }
                }
                for r in rows..MR {
                    for step in 0..kc {
                        buf[base + step * MR + r] = 0.0;
                    }
                }
            }
        }
    }
}

/// `f32` analogue of [`crate::block`]'s `pack_b`: packs the `kc × nc`
/// block of `op(B)` at `(k0, j0)` into `NR`-column slabs, demoting each
/// element, columns beyond `nc` zero-padded.
fn pack_b32(
    tb: Trans,
    b: &MatRef<'_>,
    k0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    buf: &mut [f32],
) {
    let slabs = nc.div_ceil(NR);
    debug_assert!(buf.len() >= slabs * NR * kc);
    match tb {
        Trans::No => {
            for slab in 0..slabs {
                let base = slab * NR * kc;
                let cols = NR.min(nc - slab * NR);
                for q in 0..cols {
                    let col = b.col(j0 + slab * NR + q);
                    for step in 0..kc {
                        buf[base + step * NR + q] = demote(col[k0 + step]);
                    }
                }
                for q in cols..NR {
                    for step in 0..kc {
                        buf[base + step * NR + q] = 0.0;
                    }
                }
            }
        }
        Trans::Yes => {
            for step in 0..kc {
                let col = b.col(k0 + step);
                for slab in 0..slabs {
                    let base = slab * NR * kc;
                    let cols = NR.min(nc - slab * NR);
                    let src_base = j0 + slab * NR;
                    for q in 0..cols {
                        buf[base + step * NR + q] = demote(col[src_base + q]);
                    }
                    for q in cols..NR {
                        buf[base + step * NR + q] = 0.0;
                    }
                }
            }
        }
    }
}

/// Scalar `f32` register microkernel; same step-major contract as the f64
/// kernel, accumulating entirely in `f32`.
#[cfg_attr(feature = "simd", allow(dead_code))]
#[inline]
fn microkernel32_scalar(pa: &[f32], pb: &[f32], acc: &mut [[f32; MR]; NR]) {
    let (a_steps, _) = pa.as_chunks::<MR>();
    let (b_steps, _) = pb.as_chunks::<NR>();
    debug_assert_eq!(a_steps.len(), b_steps.len());
    for (ar, br) in a_steps.iter().zip(b_steps.iter()) {
        for q in 0..NR {
            let bq = br[q];
            let accq = &mut acc[q];
            for r in 0..MR {
                accq[r] += ar[r] * bq;
            }
        }
    }
}

/// Explicit-SIMD `f32` microkernel: one `f32x8` vector holds an entire
/// tile column, so the tile is four vectors and each packed step is one
/// load, four splats, and four (fused, with the `fma` target feature)
/// multiply-adds.
#[cfg(feature = "simd")]
#[inline]
fn microkernel32_simd(pa: &[f32], pb: &[f32], acc: &mut [[f32; MR]; NR]) {
    use std::simd::{f32x8, StdFloat};

    // See the f64 kernel: `mul_add` without hardware FMA is a libm call
    // per lane, so fuse only when the target feature guarantees it.
    #[inline(always)]
    fn fmadd(a: f32x8, b: f32x8, c: f32x8) -> f32x8 {
        if cfg!(target_feature = "fma") {
            a.mul_add(b, c)
        } else {
            a * b + c
        }
    }

    let (a_steps, _) = pa.as_chunks::<MR>();
    let (b_steps, _) = pb.as_chunks::<NR>();
    debug_assert_eq!(a_steps.len(), b_steps.len());
    let mut v = [f32x8::splat(0.0); NR];
    for (q, vq) in v.iter_mut().enumerate() {
        *vq = f32x8::from_slice(&acc[q]);
    }
    for (ar, br) in a_steps.iter().zip(b_steps.iter()) {
        let a = f32x8::from_slice(ar);
        for (q, vq) in v.iter_mut().enumerate() {
            *vq = fmadd(a, f32x8::splat(br[q]), *vq);
        }
    }
    for (q, vq) in v.iter().enumerate() {
        vq.copy_to_slice(&mut acc[q]);
    }
}

/// The active `f32` register microkernel for this build configuration.
#[inline]
fn microkernel32(pa: &[f32], pb: &[f32], acc: &mut [[f32; MR]; NR]) {
    #[cfg(feature = "simd")]
    microkernel32_simd(pa, pb, acc);
    #[cfg(not(feature = "simd"))]
    microkernel32_scalar(pa, pb, acc);
}

/// Writes `c[i0.., j0..] += alpha * acc` (promoting each accumulator entry
/// back to `f64`) for the valid `mr × nr` corner of a register tile.
#[inline]
fn writeback32(
    acc: &[[f32; MR]; NR],
    alpha: f64,
    c: &mut MatMut<'_>,
    i0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
) {
    for (q, accq) in acc.iter().enumerate().take(nr) {
        let col = &mut c.col_mut(j0 + q)[i0..i0 + mr];
        for (r, cij) in col.iter_mut().enumerate() {
            *cij += alpha * f64::from(accq[r]);
        }
    }
}

/// Tile sweep over one packed panel pair; `f32` twin of the f64 engine's
/// `multiply_panels`, with the same global-triangle cut for SYRK.
#[allow(clippy::too_many_arguments)]
fn multiply_panels32(
    pa: &[f32],
    pb: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    c: &mut MatMut<'_>,
    i0: usize,
    j0: usize,
    triangle_only: bool,
) {
    let a_slabs = mc.div_ceil(MR);
    let b_slabs = nc.div_ceil(NR);
    for bs in 0..b_slabs {
        let nr = NR.min(nc - bs * NR);
        let jl = j0 + bs * NR;
        let pb_slab = &pb[bs * NR * kc..(bs * NR * kc) + NR * kc];
        for as_ in 0..a_slabs {
            let mr = MR.min(mc - as_ * MR);
            let ig = i0 + as_ * MR;
            if triangle_only && jl + nr <= ig {
                continue;
            }
            let mut acc = [[0.0f32; MR]; NR];
            microkernel32(
                &pa[as_ * MR * kc..(as_ * MR * kc) + MR * kc],
                pb_slab,
                &mut acc,
            );
            writeback32(&acc, alpha, c, ig, mr, jl, nr);
        }
    }
}

/// Blocked `C += alpha * op(A) * op(B)` with the multiply accumulated in
/// `f32` (inputs demoted at packing, each `KC`-sliver tile summed in f32
/// registers, promoted once at writeback). Caller handles `beta` and
/// degenerate shapes, exactly as for the f64 engine.
pub fn gemm_accumulate_f32(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
) {
    let t = tune::tuning();
    let (m, k) = ta.dims(&a);
    let n = c.cols();
    debug_assert!(m > 0 && n > 0 && k > 0 && alpha != 0.0);

    let mut pa = vec![0.0f32; m.min(t.mc).div_ceil(MR) * MR * k.min(t.kc)];
    let mut pb = vec![0.0f32; n.min(t.nc).div_ceil(NR) * NR * k.min(t.kc)];

    for j0 in (0..n).step_by(t.nc) {
        let nc = t.nc.min(n - j0);
        for k0 in (0..k).step_by(t.kc) {
            let kc = t.kc.min(k - k0);
            pack_b32(tb, &b, k0, kc, j0, nc, &mut pb);
            for i0 in (0..m).step_by(t.mc) {
                let mc = t.mc.min(m - i0);
                pack_a32(ta, &a, i0, mc, k0, kc, &mut pa);
                multiply_panels32(&pa, &pb, mc, nc, kc, alpha, c, i0, j0, false);
            }
        }
    }
}

/// Naive `f32`-accumulation GEMM for sub-blocking sizes: the dispatch twin
/// of [`crate::reference`] for the reduced-precision path (each output
/// entry is one f32 dot product of the demoted operands).
pub fn gemm_ref_f32(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    c: &mut MatMut<'_>,
) {
    let (m, k) = ta.dims(&a);
    let n = c.cols();
    for j in 0..n {
        let col = c.col_mut(j);
        for (i, cij) in col.iter_mut().enumerate().take(m) {
            let mut s = 0.0f32;
            for l in 0..k {
                let al = match ta {
                    Trans::No => a.at(i, l),
                    Trans::Yes => a.at(l, i),
                };
                let bl = match tb {
                    Trans::No => b.at(l, j),
                    Trans::Yes => b.at(j, l),
                };
                s += demote(al) * demote(bl);
            }
            *cij += alpha * f64::from(s);
        }
    }
}

/// Blocked symmetric rank-k update with `f32` accumulation:
/// `C = alpha·AᵀA` ([`SyrkShape::TransposeA`]) or `C = alpha·A Aᵀ`
/// ([`SyrkShape::TransposeB`]), computing only upper-triangle tiles and
/// mirroring — the reduced-precision twin of [`crate::block::syrk`].
pub fn syrk_f32(a: MatRef<'_>, alpha: f64, shape: SyrkShape) -> Matrix {
    let t = tune::tuning();
    let (ta, tb) = match shape {
        SyrkShape::TransposeA => (Trans::Yes, Trans::No),
        SyrkShape::TransposeB => (Trans::No, Trans::Yes),
    };
    let (n, k) = ta.dims(&a);
    let mut c = Matrix::zeros(n, n);
    if n == 0 || k == 0 || alpha == 0.0 {
        return c;
    }

    {
        let mut cv = c.view_mut();
        let mut pa = vec![0.0f32; n.min(t.mc).div_ceil(MR) * MR * k.min(t.kc)];
        let mut pb = vec![0.0f32; n.min(t.nc).div_ceil(NR) * NR * k.min(t.kc)];
        for j0 in (0..n).step_by(t.nc) {
            let nc = t.nc.min(n - j0);
            for k0 in (0..k).step_by(t.kc) {
                let kc = t.kc.min(k - k0);
                pack_b32(tb, &a, k0, kc, j0, nc, &mut pb);
                for i0 in (0..n).step_by(t.mc) {
                    if i0 > j0 + nc {
                        continue;
                    }
                    let mc = t.mc.min(n - i0);
                    pack_a32(ta, &a, i0, mc, k0, kc, &mut pa);
                    multiply_panels32(&pa, &pb, mc, nc, kc, alpha, &mut cv, i0, j0, true);
                }
            }
        }
    }
    for j in 0..n {
        for i in j + 1..n {
            c[(i, j)] = c[(j, i)];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::SeedableRng;

    /// Componentwise bound for an f32-accumulated k-term product sum:
    /// demotion contributes one half-ulp per operand, accumulation `k`
    /// roundings — all at f32 epsilon, against the absolute-value sum.
    fn f32_tol(k: usize, scale: f64) -> f64 {
        (k as f64 + 4.0) * f64::from(f32::EPSILON) * scale.max(1.0)
    }

    fn check_gemm32(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, alpha: f64, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = match ta {
            Trans::No => Matrix::gaussian(m, k, &mut rng),
            Trans::Yes => Matrix::gaussian(k, m, &mut rng),
        };
        let b = match tb {
            Trans::No => Matrix::gaussian(k, n, &mut rng),
            Trans::Yes => Matrix::gaussian(n, k, &mut rng),
        };
        let mut c = Matrix::zeros(m, n);
        gemm_accumulate_f32(ta, a.view(), tb, b.view(), alpha, &mut c.view_mut());
        let mut oracle = Matrix::zeros(m, n);
        reference::gemm_v(ta, a.view(), tb, b.view(), alpha, 0.0, oracle.view_mut());
        let scale = alpha.abs() * (k as f64).sqrt() * 4.0;
        let tol = f32_tol(k, scale);
        assert!(
            c.max_abs_diff(&oracle) < tol,
            "({m},{n},{k}) {ta:?} {tb:?}: {} vs tol {tol}",
            c.max_abs_diff(&oracle)
        );
    }

    #[test]
    fn f32_blocked_tracks_f64_oracle_all_transpose_combos() {
        let t = tune::tuning();
        let mut seed = 500u64;
        for &(m, n, k) in &[
            (3usize, 2usize, 5usize),
            (MR + 1, NR + 1, t.kc + 3),
            (65, 33, 129),
            (5, 80, 300),
        ] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    seed += 1;
                    check_gemm32(m, n, k, ta, tb, 1.0, seed);
                }
            }
        }
        check_gemm32(33, 29, 300, Trans::No, Trans::Yes, -2.5, 999);
    }

    #[test]
    fn f32_ref_and_blocked_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let (m, n, k) = (21, 13, 40);
        let a = Matrix::gaussian(m, k, &mut rng);
        let b = Matrix::gaussian(k, n, &mut rng);
        let mut c_blk = Matrix::zeros(m, n);
        let mut c_ref = Matrix::zeros(m, n);
        gemm_accumulate_f32(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            1.0,
            &mut c_blk.view_mut(),
        );
        gemm_ref_f32(
            Trans::No,
            a.view(),
            Trans::No,
            b.view(),
            1.0,
            &mut c_ref.view_mut(),
        );
        // Both accumulate in f32 over the same k order grouping-free vs
        // KC-grouped: equal to f32 accuracy.
        assert!(c_blk.max_abs_diff(&c_ref) < f32_tol(k, 8.0));
    }

    #[test]
    fn f32_syrk_tracks_f64_oracle_and_stays_symmetric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        for &(rows, cols) in &[(200usize, 40usize), (40, 17), (1, 5)] {
            let a = Matrix::gaussian(rows, cols, &mut rng);
            let tn = syrk_f32(a.view(), 1.5, SyrkShape::TransposeA);
            let tn_ref = reference::syrk_v(a.view(), 1.5);
            let tol = f32_tol(rows, 1.5 * (rows as f64).sqrt() * 4.0);
            assert!(
                tn.max_abs_diff(&tn_ref) < tol,
                "TN {rows}x{cols}: {}",
                tn.max_abs_diff(&tn_ref)
            );
            let nt = syrk_f32(a.view(), -0.5, SyrkShape::TransposeB);
            let nt_ref = reference::syrk_nt_v(a.view(), -0.5);
            let tol = f32_tol(cols, 0.5 * (cols as f64).sqrt() * 4.0);
            assert!(nt.max_abs_diff(&nt_ref) < tol, "NT {rows}x{cols}");
            for i in 0..tn.rows() {
                for j in 0..tn.cols() {
                    assert_eq!(tn[(i, j)], tn[(j, i)], "exact symmetry");
                }
            }
        }
    }

    #[test]
    fn empty_operands_yield_zero() {
        let a = Matrix::zeros(0, 4);
        let s = syrk_f32(a.view(), 1.0, SyrkShape::TransposeA);
        assert_eq!(s.shape(), (4, 4));
        assert_eq!(s.max_abs(), 0.0);
    }
}
