//! Reference (naive-loop) multiplication kernels: the conformance oracle.
//!
//! These are the original straightforward cache-aware column-major loops that
//! used to back [`crate::gemm`]. They are retained verbatim behind this
//! module for three jobs:
//!
//! 1. **Conformance oracle** — the blocked engine in [`crate::block`] is
//!    property-tested against these loops over random shapes and all
//!    transpose combinations (`tests/conformance.rs`);
//! 2. **Paranoid cross-check** — under the `paranoid` feature the dispatcher
//!    in [`crate::gemm`] spot-verifies sampled output entries of the blocked
//!    kernels against directly computed dot products;
//! 3. **Small-size fast path** — below the blocking threshold the packing
//!    overhead of the blocked engine does not pay and the dispatcher routes
//!    here.
//!
//! Per-case loop orders are chosen so the innermost loop always streams down
//! columns (unit stride) and autovectorizes.

use crate::gemm::Trans;
use crate::matrix::Matrix;
use crate::view::{MatMut, MatRef};

/// Reference `C = alpha * op(A) * op(B) + beta * C` on views.
///
/// Semantics are identical to [`crate::gemm::gemm_v`]; shapes must already
/// agree (the public dispatcher validates them).
pub fn gemm_v(
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    alpha: f64,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, k) = ta.dims(&a);
    let (_, n) = tb.dims(&b);

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Trans::No, Trans::No) => {
            // C[:, j] += alpha * sum_k A[:, k] * B[k, j]  (jki: axpy kernel)
            for j in 0..n {
                let ccol = c.col_mut(j);
                let bcol = b.col(j);
                for (l, &b_lj) in bcol.iter().enumerate().take(k) {
                    let s = alpha * b_lj;
                    if s != 0.0 {
                        axpy(s, a.col(l), ccol);
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C[i, j] += alpha * dot(A[:, i], B[:, j])  (dot kernel)
            for j in 0..n {
                let bcol = b.col(j);
                let ccol = c.col_mut(j);
                for (i, cij) in ccol.iter_mut().enumerate() {
                    *cij += alpha * dot(a.col(i), bcol);
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C[:, j] += alpha * sum_k A[:, k] * B[j, k]  (axpy over B rows)
            for j in 0..n {
                let ccol = c.col_mut(j);
                for l in 0..k {
                    let s = alpha * b.at(j, l);
                    if s != 0.0 {
                        axpy(s, a.col(l), ccol);
                    }
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // C[i, j] += alpha * sum_k A[k, i] * B[j, k] — rare; simple loops.
            for j in 0..n {
                let ccol = c.col_mut(j);
                for (i, cij) in ccol.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a.at(l, i) * b.at(j, l);
                    }
                    *cij += alpha * s;
                }
            }
        }
    }
}

/// Reference symmetric rank-k update `C = alpha * Aᵀ A` (full symmetric
/// result): upper triangle via dot products, then mirrored.
pub fn syrk_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    for j in 0..n {
        let bcol = a.col(j);
        for i in 0..=j {
            let v = alpha * dot(a.col(i), bcol);
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }
    c
}

/// Reference symmetric rank-k update in the other orientation:
/// `C = alpha * A Aᵀ` (full symmetric result), accumulated column by column.
pub fn syrk_nt_v(a: MatRef<'_>, alpha: f64) -> Matrix {
    let m = a.rows();
    let mut c = Matrix::zeros(m, m);
    // Accumulate outer products column by column, upper triangle only.
    for l in 0..a.cols() {
        let col = a.col(l);
        for j in 0..m {
            let s = alpha * col[j];
            if s == 0.0 {
                continue;
            }
            for i in 0..=j {
                c[(i, j)] += s * col[i];
            }
        }
    }
    for j in 0..m {
        for i in 0..j {
            c[(j, i)] = c[(i, j)];
        }
    }
    c
}

/// `y += alpha * x` over matching slices.
#[inline]
pub(crate) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Four-way unrolled dot product: better ILP and (slightly) better rounding
/// behavior than a single serial accumulator.
#[inline]
pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = 4 * c;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    for i in 4 * chunks..x.len() {
        s0 += x[i] * y[i];
    }
    (s0 + s1) + (s2 + s3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn naive(ta: Trans, a: &Matrix, tb: Trans, b: &Matrix) -> Matrix {
        let at = match ta {
            Trans::No => a.clone(),
            Trans::Yes => a.transpose(),
        };
        let bt = match tb {
            Trans::No => b.clone(),
            Trans::Yes => b.transpose(),
        };
        let (m, k) = at.shape();
        let n = bt.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|l| at[(i, l)] * bt[(l, j)]).sum())
    }

    #[test]
    fn reference_matches_triple_loop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for &(m, n, k) in &[(3usize, 4usize, 5usize), (7, 2, 9), (1, 1, 1)] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    let a = match ta {
                        Trans::No => Matrix::gaussian(m, k, &mut rng),
                        Trans::Yes => Matrix::gaussian(k, m, &mut rng),
                    };
                    let b = match tb {
                        Trans::No => Matrix::gaussian(k, n, &mut rng),
                        Trans::Yes => Matrix::gaussian(n, k, &mut rng),
                    };
                    let mut c = Matrix::zeros(m, n);
                    gemm_v(ta, a.view(), tb, b.view(), 1.0, 0.0, c.view_mut());
                    assert!(c.max_abs_diff(&naive(ta, &a, tb, &b)) < 1e-12);
                }
            }
        }
    }

    #[test]
    fn reference_syrk_is_symmetric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Matrix::gaussian(9, 4, &mut rng);
        let s = syrk_v(a.view(), 2.0);
        let g = naive(Trans::Yes, &a, Trans::No, &a);
        for i in 0..4 {
            for j in 0..4 {
                assert!((s[(i, j)] - 2.0 * g[(i, j)]).abs() < 1e-12);
                assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }
}
