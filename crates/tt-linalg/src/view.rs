//! Borrowed column-major matrix views.
//!
//! A TT core stored contiguously is *simultaneously* its vertical unfolding
//! (an `R₀I × R₁` column-major matrix) and a column-permuted horizontal
//! unfolding (an `R₀ × IR₁` column-major matrix). [`MatRef`]/[`MatMut`] let
//! the TT kernels hand the same buffer to the multiplication kernels under
//! either shape without copying — the zero-copy layout trick the paper's
//! MPI_ATTAC substrate relies on.

use crate::matrix::Matrix;

/// Immutable column-major view over a borrowed buffer.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatRef<'a> {
    /// Wraps a column-major buffer. Panics if the length is wrong.
    pub fn new(rows: usize, cols: usize, data: &'a [f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "view length must be rows*cols");
        MatRef { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Owned copy.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_col_major(self.rows, self.cols, self.data.to_vec())
    }

    /// Owned transpose.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Mutable column-major view over a borrowed buffer.
pub struct MatMut<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f64],
}

impl<'a> MatMut<'a> {
    /// Wraps a column-major buffer mutably. Panics if the length is wrong.
    pub fn new(rows: usize, cols: usize, data: &'a mut [f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "view length must be rows*cols");
        MatMut { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Immutable re-borrow.
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            data: self.data,
        }
    }

    /// Mutable re-borrow with a shorter lifetime, so a view can be split
    /// repeatedly without consuming the original.
    pub fn reborrow(&mut self) -> MatMut<'_> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            data: self.data,
        }
    }

    /// Splits the view at column `j` into `(cols 0..j, cols j..)`.
    ///
    /// Column-major storage makes both halves contiguous, which is what lets
    /// the parallel kernel layer hand disjoint column ranges of one output
    /// to different worker threads without any `unsafe`.
    pub fn split_cols_at(self, j: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(
            j <= self.cols,
            "split column {j} out of range {}",
            self.cols
        );
        let (left, right) = self.data.split_at_mut(j * self.rows);
        (
            MatMut {
                rows: self.rows,
                cols: j,
                data: left,
            },
            MatMut {
                rows: self.rows,
                cols: self.cols - j,
                data: right,
            },
        )
    }

    /// Fills with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Scales every entry.
    pub fn scale(&mut self, alpha: f64) {
        for x in self.data.iter_mut() {
            *x *= alpha;
        }
    }
}

impl Matrix {
    /// Immutable view of the whole matrix.
    pub fn view(&self) -> MatRef<'_> {
        MatRef::new(self.rows(), self.cols(), self.as_slice())
    }

    /// Zero-copy reinterpretation of the buffer under a different shape
    /// (must preserve the element count).
    pub fn view_as(&self, rows: usize, cols: usize) -> MatRef<'_> {
        MatRef::new(rows, cols, self.as_slice())
    }

    /// Mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> MatMut<'_> {
        let (r, c) = self.shape();
        MatMut::new(r, c, self.as_mut_slice())
    }

    /// Mutable zero-copy reinterpretation under a different shape.
    pub fn view_mut_as(&mut self, rows: usize, cols: usize) -> MatMut<'_> {
        MatMut::new(rows, cols, self.as_mut_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_reinterprets_shape() {
        let m = Matrix::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let v = m.view_as(3, 2);
        assert_eq!(v.at(0, 0), 1.);
        assert_eq!(v.at(2, 0), 3.);
        assert_eq!(v.at(0, 1), 4.);
        assert_eq!(v.col(1), &[4., 5., 6.]);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        {
            let mut v = m.view_mut_as(4, 1);
            v.col_mut(0)[3] = 7.0;
        }
        assert_eq!(m[(1, 1)], 7.0);
    }

    #[test]
    fn transposed_view() {
        let m = Matrix::from_row_major(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let t = m.view().transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(1, 0)], 2.);
        assert_eq!(t[(0, 1)], 4.);
    }

    #[test]
    #[should_panic]
    fn bad_view_shape_panics() {
        let m = Matrix::zeros(2, 3);
        let _ = m.view_as(4, 2);
    }

    #[test]
    fn split_cols_partitions_contiguously() {
        let mut m = Matrix::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        {
            let v = m.view_mut();
            let (mut left, mut right) = v.split_cols_at(1);
            assert_eq!(left.shape(), (2, 1));
            assert_eq!(right.shape(), (2, 2));
            left.col_mut(0)[0] = -1.0;
            right.col_mut(1)[1] = -6.0;
        }
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(1, 2)], -6.0);
    }

    #[test]
    fn split_cols_degenerate_edges() {
        let mut m = Matrix::zeros(3, 2);
        let v = m.view_mut();
        let (left, right) = v.split_cols_at(0);
        assert_eq!(left.cols(), 0);
        assert_eq!(right.cols(), 2);
        let (left, right) = right.split_cols_at(2);
        assert_eq!(left.cols(), 2);
        assert_eq!(right.cols(), 0);
    }

    #[test]
    fn reborrow_allows_repeated_splits() {
        let mut m = Matrix::zeros(2, 4);
        let mut v = m.view_mut();
        for j in 0..4 {
            let (mut chunk, _) = v.reborrow().split_cols_at(j + 1);
            let (_, mut chunk) = chunk.reborrow().split_cols_at(j);
            chunk.col_mut(0)[0] = j as f64 + 1.0;
        }
        for j in 0..4 {
            assert_eq!(m[(0, j)], j as f64 + 1.0);
        }
    }
}
