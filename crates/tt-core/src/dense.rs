//! Explicit (dense) tensors — test oracle and TT-SVD input.
//!
//! Dense tensors are only viable for tiny problems (their size is the
//! *product* of the mode dimensions — the curse of dimensionality the TT
//! format exists to beat), so this type is used as the ground truth in
//! tests and as the input to [`crate::tt_svd`].

/// A dense tensor stored column-major (first index fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// An all-zero tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let n: usize = dims.iter().product();
        DenseTensor {
            dims: dims.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Wraps an existing column-major buffer.
    pub fn from_data(dims: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            dims.iter().product::<usize>(),
            "buffer length mismatch"
        );
        DenseTensor {
            dims: dims.to_vec(),
            data,
        }
    }

    /// Builds from a function of the multi-index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = DenseTensor::zeros(dims);
        let mut idx = vec![0usize; dims.len()];
        for k in 0..t.data.len() {
            t.data[k] = f(&idx);
            // column-major odometer
            for (d, i) in idx.iter_mut().enumerate() {
                *i += 1;
                if *i < dims[d] {
                    break;
                }
                *i = 0;
            }
            let _ = k;
        }
        t
    }

    /// Mode dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-entry tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The column-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes into the column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Linear (column-major) offset of a multi-index.
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut off = 0;
        let mut stride = 1;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.dims[d]);
            off += i * stride;
            stride *= self.dims[d];
        }
        off
    }

    /// Entry at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Mutable entry at a multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f64 {
        let o = self.offset(idx);
        &mut self.data[o]
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Frobenius norm of the difference with another tensor.
    pub fn fro_dist(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Mode-`n` unfolding `X_(n) ∈ R^{I_n × Π_{k≠n} I_k}` (mode-`n` fibers
    /// as columns, remaining indices in increasing mode order — the
    /// Kolda–Bader convention). Dense oracle for the TT kernels' unfolding
    /// algebra.
    pub fn mode_unfold(&self, n: usize) -> tt_linalg::Matrix {
        assert!(n < self.dims.len());
        let rows = self.dims[n];
        let cols = self.data.len() / rows;
        let mut m = tt_linalg::Matrix::zeros(rows, cols);
        let mut idx = vec![0usize; self.dims.len()];
        for (flat, &v) in self.data.iter().enumerate() {
            // decode column-major multi-index
            let mut rem = flat;
            for (d, i) in idx.iter_mut().enumerate() {
                *i = rem % self.dims[d];
                rem /= self.dims[d];
            }
            // column index: remaining modes, increasing order, col-major
            let mut col = 0;
            let mut stride = 1;
            for (d, &i) in idx.iter().enumerate() {
                if d == n {
                    continue;
                }
                col += i * stride;
                stride *= self.dims[d];
            }
            m[(idx[n], col)] = v;
        }
        m
    }

    /// Tensor-times-matrix in mode `n`: `Y = X ×_n M`, i.e.
    /// `Y_(n) = M · X_(n)` (the paper's §II-A definition). Dense oracle for
    /// [`crate::TtTensor::apply_mode`].
    pub fn ttm(&self, n: usize, m: &tt_linalg::Matrix) -> DenseTensor {
        assert!(n < self.dims.len());
        assert_eq!(m.cols(), self.dims[n], "ttm: dimension mismatch");
        let unf = self.mode_unfold(n);
        let prod = tt_linalg::gemm(tt_linalg::Trans::No, m, tt_linalg::Trans::No, &unf, 1.0);
        // refold
        let mut new_dims = self.dims.clone();
        new_dims[n] = m.rows();
        let mut out = DenseTensor::zeros(&new_dims);
        let mut idx = vec![0usize; new_dims.len()];
        let total: usize = new_dims.iter().product();
        for flat in 0..total {
            let mut rem = flat;
            for (d, i) in idx.iter_mut().enumerate() {
                *i = rem % new_dims[d];
                rem /= new_dims[d];
            }
            let mut col = 0;
            let mut stride = 1;
            for (d, &i) in idx.iter().enumerate() {
                if d == n {
                    continue;
                }
                col += i * stride;
                stride *= new_dims[d];
            }
            out.data[flat] = prod[(idx[n], col)];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_column_major() {
        let t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[1, 0, 0]), 1);
        assert_eq!(t.offset(&[0, 1, 0]), 2);
        assert_eq!(t.offset(&[0, 0, 1]), 6);
        assert_eq!(t.offset(&[1, 2, 3]), 1 + 4 + 18);
    }

    #[test]
    fn from_fn_visits_every_index_once() {
        let t = DenseTensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 0]), 10.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 2]), 12.0);
    }

    #[test]
    fn norms() {
        let t = DenseTensor::from_data(&[2, 1], vec![3.0, 4.0]);
        assert!((t.fro_norm() - 5.0).abs() < 1e-15);
        let z = DenseTensor::zeros(&[2, 1]);
        assert!((t.fro_dist(&z) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn mode_unfold_shapes_and_fibers() {
        let t = DenseTensor::from_fn(&[2, 3, 4], |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64
        });
        let m1 = t.mode_unfold(1);
        assert_eq!(m1.shape(), (3, 8));
        // Fiber (i0=1, :, i2=2) must appear as a column.
        let expect: Vec<f64> = (0..3).map(|j| (100 + j * 10 + 2) as f64).collect();
        let mut found = false;
        for c in 0..8 {
            if (0..3).all(|r| m1[(r, c)] == expect[r]) {
                found = true;
            }
        }
        assert!(found, "fiber missing from unfolding");
    }

    #[test]
    fn ttm_matches_tt_apply_mode() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = crate::TtTensor::random(&[3, 4, 2], &[2, 2], &mut rng);
        let m = tt_linalg::Matrix::gaussian(5, 4, &mut rng);
        // TT route
        let mut y_tt = x.clone();
        y_tt.apply_mode(1, |unf| {
            tt_linalg::gemm(tt_linalg::Trans::No, &m, tt_linalg::Trans::No, unf, 1.0)
        });
        // Dense oracle route
        let y_dense = x.to_dense().ttm(1, &m);
        assert_eq!(y_tt.dims(), vec![3, 5, 2]);
        assert!(y_tt.to_dense().fro_dist(&y_dense) < 1e-10 * (1.0 + y_dense.fro_norm()));
    }

    #[test]
    fn ttm_identity_is_noop() {
        let t = DenseTensor::from_fn(&[2, 3], |idx| (idx[0] + 10 * idx[1]) as f64);
        let id = tt_linalg::Matrix::identity(3);
        assert_eq!(t.ttm(1, &id), t);
    }
}
