//! Standalone TT orthogonalization passes.
//!
//! Left- and right-orthogonalization are the phase-1 building block of the
//! baseline rounding algorithm (Alg. 2 lines 3–6) and standard utilities of
//! every TT toolbox: after [`orthogonalize_left`], every core but the last
//! has orthonormal vertical-unfolding columns and the whole tensor's norm is
//! concentrated in the last core (dually for [`orthogonalize_right`]).
//! Parallelized with TSQR exactly like the rounding baseline.

use crate::core::TtCore;
use crate::round::gram::{postmult_v, premult_h};
use crate::round::tsqr::tsqr;
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::Matrix;

/// Left-orthogonalizes (QR sweep left → right): cores `0..N-1` end with
/// orthonormal `V` columns; the norm moves into core `N-1`.
///
/// Assumes a chain-feasible rank profile (`R_{k+1} ≤ R_k·I_k` for every
/// core, true of every tensor produced by rounding or TT-SVD): the TSQR
/// keeps all `R_{k+1}` columns, so a core *wider than tall* cannot be made
/// orthonormal. Round first if the tensor may be overranked.
pub fn orthogonalize_left(comm: &impl Communicator, x: &TtTensor) -> TtTensor {
    let n = x.order();
    let mut y = x.clone();
    for k in 0..n - 1 {
        let core = y.core(k);
        let (r0, i, r1) = (core.r0(), core.mode_dim(), core.r1());
        let (q, r) = tsqr(comm, &core.v_matrix());
        *y.core_mut(k) = TtCore::from_v(q, r0, i, r1);
        *y.core_mut(k + 1) = premult_h(y.core(k + 1), &r);
    }
    y
}

/// Right-orthogonalizes (LQ sweep right → left): cores `1..N` end with
/// orthonormal `H` rows; the norm moves into core `0`.
pub fn orthogonalize_right(comm: &impl Communicator, x: &TtTensor) -> TtTensor {
    let n = x.order();
    let mut y = x.clone();
    for k in (1..n).rev() {
        let core = y.core(k);
        let (r0, i, r1) = (core.r0(), core.mode_dim(), core.r1());
        // LQ of H via QR of Hᵀ (local transpose copy, TSQR over slices).
        let ht = core.h().transposed();
        let (q, r) = tsqr(comm, &ht);
        // H = Rᵀ Qᵀ: new core has H = Qᵀ (orthonormal rows), and Rᵀ is
        // absorbed into the left neighbor's V.
        *y.core_mut(k) = TtCore::from_h(q.transpose(), r0, i, r1);
        *y.core_mut(k - 1) = postmult_v(y.core(k - 1), &r.transpose());
    }
    y
}

/// The norm of a left-orthogonalized tensor, read off the last core
/// (‖X‖ = ‖T_N‖_F once all other cores are orthonormal).
pub fn norm_from_last_core(comm: &impl Communicator, x: &TtTensor) -> f64 {
    let last = x.core(x.order() - 1);
    let mut n2 = [last.fro_norm().powi(2)];
    comm.allreduce_sum(&mut n2);
    n2[0].max(0.0).sqrt()
}

/// Checks the left-orthogonality invariant: `V(T_k)ᵀV(T_k) = I` for all
/// `k < N-1` (diagnostic; returns the largest deviation).
pub fn left_orthogonality_defect(comm: &impl Communicator, x: &TtTensor) -> f64 {
    let n = x.order();
    let mut worst = 0.0f64;
    for k in 0..n.saturating_sub(1) {
        let mut g = tt_linalg::syrk_v(x.core(k).v(), 1.0);
        comm.allreduce_sum(g.as_mut_slice());
        let d = g.max_abs_diff(&Matrix::identity(g.rows()));
        worst = worst.max(d);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_comm::SelfComm;
    use tt_linalg::{gemm_alloc, Trans};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    #[test]
    fn left_orthogonalization_invariants() {
        let mut r = rng(1);
        let x = TtTensor::random(&[6, 5, 7, 4], &[3, 4, 2], &mut r);
        let comm = SelfComm::new();
        let y = orthogonalize_left(&comm, &x);
        // Same represented tensor.
        assert!(y.to_dense().fro_dist(&x.to_dense()) < 1e-10 * (1.0 + x.norm()));
        // Orthonormal leading cores.
        assert!(left_orthogonality_defect(&comm, &y) < 1e-12);
        // Norm concentrated in the last core.
        let nx = x.to_dense().fro_norm();
        assert!((norm_from_last_core(&comm, &y) - nx).abs() < 1e-10 * (1.0 + nx));
    }

    #[test]
    fn right_orthogonalization_invariants() {
        let mut r = rng(2);
        let x = TtTensor::random(&[5, 6, 4, 5], &[2, 4, 3], &mut r);
        let comm = SelfComm::new();
        let y = orthogonalize_right(&comm, &x);
        assert!(y.to_dense().fro_dist(&x.to_dense()) < 1e-10 * (1.0 + x.norm()));
        // H rows orthonormal for cores 1..N.
        for k in 1..y.order() {
            let h = y.core(k).h();
            let g = gemm_alloc(Trans::No, h, Trans::Yes, h, 1.0);
            assert!(
                g.max_abs_diff(&Matrix::identity(g.rows())) < 1e-12,
                "core {k} rows not orthonormal"
            );
        }
        // Norm in core 0.
        let nx = x.to_dense().fro_norm();
        assert!((y.core(0).fro_norm() - nx).abs() < 1e-10 * (1.0 + nx));
    }

    #[test]
    fn distributed_orthogonalization_matches_sequential() {
        let mut r = rng(3);
        let x = TtTensor::random(&[8, 6, 9], &[3, 4], &mut r);
        let comm = SelfComm::new();
        let seq = orthogonalize_left(&comm, &x);
        let dims = x.dims();
        for p in [2usize, 3] {
            let xs = x.clone();
            let dims2 = dims.clone();
            let results = tt_comm::run_verified(p, |comm| {
                let local = crate::dist::scatter_tensor(&xs, &comm);
                let y = orthogonalize_left(&comm, &local);
                let defect = left_orthogonality_defect(&comm, &y);
                (crate::dist::gather_tensor(&y, &dims2, &comm), defect)
            });
            for (g, defect) in results {
                assert!(defect < 1e-12, "p={p}: defect {defect}");
                let gap = g.to_dense().fro_dist(&seq.to_dense());
                assert!(gap < 1e-9 * (1.0 + seq.norm()), "p={p}: gap {gap}");
            }
        }
    }

    #[test]
    fn orthogonalization_preserves_ranks() {
        let mut r = rng(4);
        let x = TtTensor::random(&[7, 5, 6], &[4, 3], &mut r);
        let comm = SelfComm::new();
        assert_eq!(orthogonalize_left(&comm, &x).ranks(), x.ranks());
        assert_eq!(orthogonalize_right(&comm, &x).ranks(), x.ranks());
    }
}
