//! Tensor-Train format and rounding algorithms.
//!
//! This crate is the reproduction of the paper's primary contribution:
//! TT-Rounding via Gram SVD (Algorithms 4–6), together with the
//! orthogonalization-based baseline it is compared against (Algorithm 2,
//! Al Daas–Ballard–Benner), the §III matrix-product truncation kernels, TT
//! arithmetic, and the 1-D-distributed parallel versions of all of it.
//!
//! # Layout invariant
//!
//! A TT core `T ∈ R^{R₀ × I × R₁}` is stored as one contiguous column-major
//! buffer with element `(a, i, b)` at `a + i·R₀ + b·R₀I`. That buffer *is*
//! the vertical unfolding `V(T) ∈ R^{R₀I × R₁}` and is simultaneously a
//! column-permuted horizontal unfolding `H(T) ∈ R^{R₀ × IR₁}`. Every
//! H-operation the algorithms perform (`G·H(T)`, `H(C)·H(X)ᵀ`) is invariant
//! under column permutation, so no element is ever moved to switch
//! unfoldings (see [`TtCore::h`]/[`TtCore::v`]).
//!
//! # Sequential ≡ distributed
//!
//! Each rounding algorithm is implemented once, generic over
//! [`tt_comm::Communicator`], operating on the *local* tensor (the slices of
//! every core this rank owns under the 1-D distribution of
//! [`dist::block_range`]). Run with [`tt_comm::SelfComm`] the local tensor
//! is the whole tensor and the collectives vanish — that is the sequential
//! algorithm. The convenience wrappers in [`round`] do exactly this.

#![forbid(unsafe_code)]

pub mod core;
pub mod dense;
pub mod dist;
pub mod matprod;
pub mod orthogonalize;
pub mod round;
pub mod synthetic;
pub mod tensor;
pub mod ttmatrix;
pub mod ttsvd;

pub use crate::core::TtCore;
pub use dense::DenseTensor;
pub use dist::{block_range, gather_tensor, scatter_tensor};
pub use orthogonalize::{orthogonalize_left, orthogonalize_right};
pub use round::{
    round_gram_lrl, round_gram_rlr, round_gram_simultaneous, round_qr, GramOrder, RoundReport,
    RoundingOptions,
};
pub use tensor::TtTensor;
pub use ttmatrix::{TtMatrix, TtMatrixCore};
pub use ttsvd::tt_svd;
