//! The TT tensor type and formal TT arithmetic.
//!
//! Formal arithmetic (addition, Hadamard products, operator application)
//! grows the TT ranks — addition sums them, Hadamard multiplies them — which
//! is exactly why TT-Rounding (see [`crate::round`]) is the key operation of
//! any TT-based solver.

use crate::core::TtCore;
use crate::dense::DenseTensor;
use tt_linalg::{gemm_alloc, Matrix, Trans};

/// A tensor in Tensor-Train format: a chain of 3-way cores
/// `T_k ∈ R^{R_k × I_k × R_{k+1}}` with `R_0 = R_N = 1`.
///
/// The same type represents both a full TT tensor and one rank's *local*
/// block under the 1-D slice distribution (the mode dimensions are then the
/// local slice counts; boundary ranks of 1 are still enforced).
#[derive(Debug, Clone, PartialEq)]
pub struct TtTensor {
    cores: Vec<TtCore>,
}

impl TtTensor {
    /// Builds a TT tensor from cores, validating the rank chain.
    pub fn new(cores: Vec<TtCore>) -> Self {
        assert!(!cores.is_empty(), "a TT tensor needs at least one core");
        assert_eq!(cores[0].r0(), 1, "first TT rank must be 1");
        assert_eq!(cores[cores.len() - 1].r1(), 1, "last TT rank must be 1");
        for w in cores.windows(2) {
            assert_eq!(
                w[0].r1(),
                w[1].r0(),
                "neighboring TT ranks must match ({} vs {})",
                w[0].r1(),
                w[1].r0()
            );
        }
        TtTensor { cores }
    }

    /// A TT tensor with i.i.d. standard-normal cores.
    ///
    /// `ranks` lists the interior ranks `R_1, …, R_{N-1}` (length
    /// `dims.len() - 1`).
    pub fn random(dims: &[usize], ranks: &[usize], rng: &mut impl rand::Rng) -> Self {
        assert_eq!(
            ranks.len() + 1,
            dims.len(),
            "need one interior rank per bond"
        );
        let n = dims.len();
        let full_ranks: Vec<usize> = std::iter::once(1)
            .chain(ranks.iter().copied())
            .chain(std::iter::once(1))
            .collect();
        let cores = (0..n)
            .map(|k| TtCore::gaussian(full_ranks[k], dims[k], full_ranks[k + 1], rng))
            .collect();
        TtTensor::new(cores)
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.cores.len()
    }

    /// Mode dimensions `I_1, …, I_N`.
    pub fn dims(&self) -> Vec<usize> {
        self.cores.iter().map(|c| c.mode_dim()).collect()
    }

    /// The full rank chain `R_0, …, R_N` (length `order + 1`).
    pub fn ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.cores.iter().map(|c| c.r0()).collect();
        r.push(1);
        r
    }

    /// Largest TT rank.
    pub fn max_rank(&self) -> usize {
        // ranks() always includes the boundary ranks (= 1), so the fold's
        // identity is never the result.
        self.ranks().into_iter().fold(0, usize::max)
    }

    /// Core `k` (0-based).
    pub fn core(&self, k: usize) -> &TtCore {
        &self.cores[k]
    }

    /// Mutable core `k`.
    pub fn core_mut(&mut self, k: usize) -> &mut TtCore {
        &mut self.cores[k]
    }

    /// All cores.
    pub fn cores(&self) -> &[TtCore] {
        &self.cores
    }

    /// Replaces core `k`, revalidating the rank chain.
    pub fn set_core(&mut self, k: usize, core: TtCore) {
        self.cores[k] = core;
        let cores = std::mem::take(&mut self.cores);
        *self = TtTensor::new(cores);
    }

    /// Number of stored parameters (the TT memory footprint in entries).
    pub fn storage_len(&self) -> usize {
        self.cores.iter().map(|c| c.len()).sum()
    }

    /// Number of entries of the represented (explicit) tensor.
    pub fn dense_len(&self) -> f64 {
        self.dims().iter().map(|&d| d as f64).product()
    }

    /// Evaluates one entry as the product of core slices.
    pub fn eval(&self, idx: &[usize]) -> f64 {
        assert_eq!(idx.len(), self.order(), "index arity mismatch");
        // Carry a row vector of length R_k through the chain.
        let mut v = vec![1.0];
        for (k, &i) in idx.iter().enumerate() {
            let c = &self.cores[k];
            let mut next = vec![0.0; c.r1()];
            for (b, nb) in next.iter_mut().enumerate() {
                let mut s = 0.0;
                for (a, va) in v.iter().enumerate() {
                    s += va * c.at(a, i, b);
                }
                *nb = s;
            }
            v = next;
        }
        debug_assert_eq!(v.len(), 1);
        v[0]
    }

    /// Materializes the explicit tensor (tiny problems / tests only).
    ///
    /// Works by chained unfolding products, exploiting the fact that the
    /// column-permuted horizontal unfolding product lands directly in
    /// column-major dense order.
    pub fn to_dense(&self) -> DenseTensor {
        let mut m = Matrix::identity(1);
        for c in &self.cores {
            // (P × r0) · (r0 × i·r1), then reinterpret as (P·i × r1):
            // both steps are pure column-major buffer reshapes.
            let p = m.rows();
            let z = gemm_alloc(Trans::No, m.view(), Trans::No, c.h(), 1.0);
            m = z.reshaped(p * c.mode_dim(), c.r1());
        }
        DenseTensor::from_data(&self.dims(), m.into_vec())
    }

    /// Scales the tensor by `alpha` (absorbed into the first core).
    pub fn scale(&mut self, alpha: f64) {
        let v = self.cores[0].v_matrix();
        let mut v = v;
        v.scale(alpha);
        let (r0, i, r1) = (
            self.cores[0].r0(),
            self.cores[0].mode_dim(),
            self.cores[0].r1(),
        );
        self.cores[0] = TtCore::from_v(v, r0, i, r1);
    }

    /// Formal TT sum `self + other`: ranks add bond-wise, no truncation.
    pub fn add(&self, other: &TtTensor) -> TtTensor {
        assert_eq!(
            self.dims(),
            other.dims(),
            "TT addition requires equal dimensions"
        );
        let n = self.order();
        if n == 1 {
            // Single-mode tensor: cores are 1 × I × 1 vectors; just add.
            let mut v = self.cores[0].v_matrix();
            v.axpy(1.0, &other.cores[0].v_matrix());
            let i = self.cores[0].mode_dim();
            return TtTensor::new(vec![TtCore::from_v(v, 1, i, 1)]);
        }
        let mut cores = Vec::with_capacity(n);
        for k in 0..n {
            let (a, b) = (&self.cores[k], &other.cores[k]);
            let i = a.mode_dim();
            let (r0, r1) = if k == 0 {
                (1, a.r1() + b.r1())
            } else if k == n - 1 {
                (a.r0() + b.r0(), 1)
            } else {
                (a.r0() + b.r0(), a.r1() + b.r1())
            };
            let mut c = TtCore::zeros(r0, i, r1);
            // Block placement per slice: [A 0; 0 B] (degenerating to
            // horizontal/vertical concatenation at the boundary cores).
            for ii in 0..i {
                for aa in 0..a.r0() {
                    for bb in 0..a.r1() {
                        *c.at_mut(aa, ii, bb) = a.at(aa, ii, bb);
                    }
                }
                let (off0, off1) = if k == 0 {
                    (0, a.r1())
                } else {
                    (a.r0(), a.r1())
                };
                let (off0, off1) = if k == n - 1 { (off0, 0) } else { (off0, off1) };
                for aa in 0..b.r0() {
                    for bb in 0..b.r1() {
                        *c.at_mut(off0 + aa, ii, bb + off1) = b.at(aa, ii, bb);
                    }
                }
            }
            cores.push(c);
        }
        TtTensor::new(cores)
    }

    /// `self - other` (formal sum with the negation).
    pub fn sub(&self, other: &TtTensor) -> TtTensor {
        let mut neg = other.clone();
        neg.scale(-1.0);
        self.add(&neg)
    }

    /// Formal elementwise (Hadamard) product: ranks multiply bond-wise.
    pub fn hadamard(&self, other: &TtTensor) -> TtTensor {
        assert_eq!(
            self.dims(),
            other.dims(),
            "Hadamard requires equal dimensions"
        );
        let cores = self
            .cores
            .iter()
            .zip(&other.cores)
            .map(|(a, b)| {
                let (r0, i, r1) = (a.r0() * b.r0(), a.mode_dim(), a.r1() * b.r1());
                let mut c = TtCore::zeros(r0, i, r1);
                // Slice-wise Kronecker product A(:,i,:) ⊗ B(:,i,:).
                for ii in 0..i {
                    for aa in 0..a.r0() {
                        for ab in 0..b.r0() {
                            for ba in 0..a.r1() {
                                for bb in 0..b.r1() {
                                    *c.at_mut(aa * b.r0() + ab, ii, ba * b.r1() + bb) =
                                        a.at(aa, ii, ba) * b.at(ab, ii, bb);
                                }
                            }
                        }
                    }
                }
                c
            })
            .collect();
        TtTensor::new(cores)
    }

    /// Sequential inner product `⟨self, other⟩` (distributed version in
    /// [`crate::dist`]).
    pub fn inner(&self, other: &TtTensor) -> f64 {
        crate::dist::inner_local(&tt_comm::SelfComm::new(), self, other)
    }

    /// Frobenius norm `‖self‖`.
    pub fn norm(&self) -> f64 {
        self.inner(self).max(0.0).sqrt()
    }

    /// Applies a physical-mode operator to mode `k`: the closure receives
    /// the mode-2 unfolding (`I_k × R_k R_{k+1}`) and returns the transformed
    /// unfolding (`J × R_k R_{k+1}`, a possibly different mode dimension).
    /// This is how sparse/diagonal operator factors act on a TT vector.
    pub fn apply_mode(&mut self, k: usize, f: impl FnOnce(&Matrix) -> Matrix) {
        let c = &self.cores[k];
        let (r0, r1) = (c.r0(), c.r1());
        let unf = c.mode_unfold();
        let out = f(&unf);
        assert_eq!(
            out.cols(),
            r0 * r1,
            "mode operator must preserve the rank columns"
        );
        self.cores[k] = TtCore::from_mode_unfold(&out, r0, r1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    #[test]
    fn eval_matches_to_dense() {
        let mut r = rng(1);
        let t = TtTensor::random(&[3, 4, 2, 5], &[2, 3, 2], &mut r);
        let d = t.to_dense();
        for idx in [[0, 0, 0, 0], [2, 3, 1, 4], [1, 2, 0, 3]] {
            assert!((t.eval(&idx) - d.at(&idx)).abs() < 1e-12);
        }
    }

    #[test]
    fn ranks_and_dims() {
        let mut r = rng(2);
        let t = TtTensor::random(&[4, 5, 6], &[2, 3], &mut r);
        assert_eq!(t.dims(), vec![4, 5, 6]);
        assert_eq!(t.ranks(), vec![1, 2, 3, 1]);
        assert_eq!(t.max_rank(), 3);
        assert_eq!(t.storage_len(), 4 * 2 + 2 * 5 * 3 + 3 * 6);
    }

    #[test]
    fn add_is_elementwise() {
        let mut r = rng(3);
        let a = TtTensor::random(&[3, 2, 4], &[2, 2], &mut r);
        let b = TtTensor::random(&[3, 2, 4], &[3, 1], &mut r);
        let s = a.add(&b);
        assert_eq!(s.ranks(), vec![1, 5, 3, 1]);
        let (da, db, ds) = (a.to_dense(), b.to_dense(), s.to_dense());
        for k in 0..da.len() {
            assert!((ds.as_slice()[k] - da.as_slice()[k] - db.as_slice()[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn add_two_modes() {
        let mut r = rng(4);
        let a = TtTensor::random(&[3, 4], &[2], &mut r);
        let b = TtTensor::random(&[3, 4], &[3], &mut r);
        let s = a.add(&b);
        assert_eq!(s.ranks(), vec![1, 5, 1]);
        let (da, db, ds) = (a.to_dense(), b.to_dense(), s.to_dense());
        for k in 0..da.len() {
            assert!((ds.as_slice()[k] - da.as_slice()[k] - db.as_slice()[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_and_sub() {
        let mut r = rng(5);
        let a = TtTensor::random(&[2, 3, 2], &[2, 2], &mut r);
        let mut a2 = a.clone();
        a2.scale(2.0);
        let diff = a2.sub(&a); // == a
        let (da, dd) = (a.to_dense(), diff.to_dense());
        for k in 0..da.len() {
            assert!((dd.as_slice()[k] - da.as_slice()[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn hadamard_is_elementwise_product() {
        let mut r = rng(6);
        let a = TtTensor::random(&[2, 3, 2], &[2, 2], &mut r);
        let b = TtTensor::random(&[2, 3, 2], &[2, 3], &mut r);
        let h = a.hadamard(&b);
        assert_eq!(h.ranks(), vec![1, 4, 6, 1]);
        let (da, db, dh) = (a.to_dense(), b.to_dense(), h.to_dense());
        for k in 0..da.len() {
            assert!((dh.as_slice()[k] - da.as_slice()[k] * db.as_slice()[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_matches_dense() {
        let mut r = rng(7);
        let a = TtTensor::random(&[3, 2, 4], &[2, 3], &mut r);
        let b = TtTensor::random(&[3, 2, 4], &[1, 2], &mut r);
        let (da, db) = (a.to_dense(), b.to_dense());
        let expect: f64 = da
            .as_slice()
            .iter()
            .zip(db.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        assert!((a.inner(&b) - expect).abs() < 1e-10 * (1.0 + expect.abs()));
        assert!((a.norm() - da.fro_norm()).abs() < 1e-10 * (1.0 + da.fro_norm()));
    }

    #[test]
    fn apply_mode_identity_is_noop() {
        let mut r = rng(8);
        let mut t = TtTensor::random(&[3, 4, 2], &[2, 2], &mut r);
        let before = t.to_dense();
        t.apply_mode(1, |m| m.clone());
        assert_eq!(t.to_dense(), before);
    }

    #[test]
    fn apply_mode_scaling_scales_entries() {
        let mut r = rng(9);
        let mut t = TtTensor::random(&[3, 4, 2], &[2, 2], &mut r);
        let before = t.to_dense();
        // Diagonal operator on mode 1: multiply slice i by (i+1).
        t.apply_mode(1, |m| {
            let mut out = m.clone();
            for c in 0..out.cols() {
                for i in 0..out.rows() {
                    out[(i, c)] *= (i + 1) as f64;
                }
            }
            out
        });
        let after = t.to_dense();
        for i0 in 0..3 {
            for i1 in 0..4 {
                for i2 in 0..2 {
                    let idx = [i0, i1, i2];
                    assert!((after.at(&idx) - (i1 + 1) as f64 * before.at(&idx)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_ranks_rejected() {
        let c0 = TtCore::zeros(1, 3, 2);
        let c1 = TtCore::zeros(3, 3, 1); // 2 != 3
        let _ = TtTensor::new(vec![c0, c1]);
    }
}
