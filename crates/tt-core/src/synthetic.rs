//! Synthetic TT models — Table I of the paper.
//!
//! Four models, all with formal ranks 20 that TT-Rounding cuts to 10:
//!
//! | Model | Modes | Dimensions                         | Memory |
//! |-------|-------|------------------------------------|--------|
//! | 1     | 50    | 2K × … × 2K                        | 77 MB  |
//! | 2     | 16    | 100M × 50K × … × 50K × 1M          | 8 GB   |
//! | 3     | 30    | 2M × … × 2M                        | 45 GB  |
//! | 4     | 10    | 10K × 20 × … × 20                  | 930 KB |
//!
//! Models 1–3 mimic Gaussian-random-field / UQ problems [27]; model 4 has
//! the shape of the cookies problem solved in §V-D. The redundant-rank
//! construction (`X + X`, formal ranks doubled) is the standard way to
//! produce a tensor whose rounding is exact and predictable.

use crate::tensor::TtTensor;

/// The formal TT rank of the Table I models before rounding.
pub const TABLE1_RANK: usize = 20;

/// The TT rank after rounding.
pub const TABLE1_TARGET_RANK: usize = 10;

/// A synthetic model specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Table I model number (1–4), or 0 for custom.
    pub id: usize,
    /// Mode dimensions.
    pub dims: Vec<usize>,
    /// Formal TT rank (before rounding).
    pub rank: usize,
    /// Rank after rounding.
    pub target_rank: usize,
}

impl ModelSpec {
    /// The Table I model with the paper's full dimensions.
    pub fn table1(id: usize) -> ModelSpec {
        let dims = match id {
            1 => vec![2_000; 50],
            2 => {
                let mut d = vec![50_000; 16];
                d[0] = 100_000_000;
                d[15] = 1_000_000;
                d
            }
            3 => vec![2_000_000; 30],
            4 => {
                let mut d = vec![20; 10];
                d[0] = 10_000;
                d
            }
            // analyze::allow(panic_surface): constructor precondition on the paper's fixed model table; a Result would only move the abort to every caller
            _ => panic!("Table I defines models 1–4"),
        };
        ModelSpec {
            id,
            dims,
            rank: TABLE1_RANK,
            target_rank: TABLE1_TARGET_RANK,
        }
    }

    /// Shrinks every mode dimension by `factor` (flooring at 4), for runs on
    /// machines smaller than a 704-node cluster. Rank structure is kept.
    pub fn scaled(&self, factor: f64) -> ModelSpec {
        assert!(factor > 0.0 && factor <= 1.0);
        let dims = self
            .dims
            .iter()
            // analyze::allow(narrow_cast): deliberate dimension scaling; factor is in (0, 1] so round() stays within usize and the .max(4) floor handles degenerate results
            .map(|&d| (((d as f64) * factor).round() as usize).max(4))
            .collect();
        ModelSpec {
            id: self.id,
            dims,
            rank: self.rank,
            target_rank: self.target_rank,
        }
    }

    /// TT memory footprint in bytes at the given rank (boundary cores have
    /// one rank equal to 1).
    pub fn memory_bytes(&self, rank: usize) -> f64 {
        let n = self.dims.len();
        let mut entries = 0.0;
        for (k, &d) in self.dims.iter().enumerate() {
            let r0 = if k == 0 { 1 } else { rank };
            let r1 = if k == n - 1 { 1 } else { rank };
            entries += (r0 * d * r1) as f64;
        }
        entries * 8.0
    }

    /// The local mode dimensions of one rank in a `p`-rank run.
    pub fn local_dims(&self, p: usize, rank: usize) -> Vec<usize> {
        self.dims
            .iter()
            .map(|&d| crate::dist::block_range(d, p, rank).len())
            .collect()
    }
}

/// Generates a tensor with redundant formal ranks: a random base tensor of
/// rank `rank_half` formally added to itself, so the result has exact ranks
/// `2·rank_half` but true ranks `rank_half` — rounding provably halves the
/// ranks, as Table I prescribes.
pub fn generate_redundant(dims: &[usize], rank_half: usize, rng: &mut impl rand::Rng) -> TtTensor {
    let interior = vec![rank_half; dims.len().saturating_sub(1)];
    let base = TtTensor::random(dims, &interior, rng);
    base.add(&base)
}

/// Same, but normalized so `‖X‖ = 1` (useful for tolerance studies where
/// absolute thresholds should be comparable across sizes).
pub fn generate_redundant_normalized(
    dims: &[usize],
    rank_half: usize,
    rng: &mut impl rand::Rng,
) -> TtTensor {
    let mut x = generate_redundant(dims, rank_half, rng);
    let n = x.norm();
    if n > 0.0 {
        x.scale(1.0 / n);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table1_shapes_match_paper() {
        let m1 = ModelSpec::table1(1);
        assert_eq!(m1.dims.len(), 50);
        assert!(m1.dims.iter().all(|&d| d == 2000));
        let m2 = ModelSpec::table1(2);
        assert_eq!(m2.dims[0], 100_000_000);
        assert_eq!(m2.dims[15], 1_000_000);
        assert_eq!(m2.dims[7], 50_000);
        let m4 = ModelSpec::table1(4);
        assert_eq!(m4.dims, {
            let mut d = vec![20; 10];
            d[0] = 10_000;
            d
        });
    }

    #[test]
    fn table1_memory_footprints_are_papers() {
        // Paper Table I memory column (at the rounded rank 10): model 1
        // ≈ 77 MB, model 4 ≈ 930 KB.
        let m1 = ModelSpec::table1(1);
        let mb = m1.memory_bytes(TABLE1_TARGET_RANK) / 1e6;
        assert!((mb - 77.0).abs() < 5.0, "model 1: {mb} MB");
        let m4 = ModelSpec::table1(4);
        let kb = m4.memory_bytes(TABLE1_TARGET_RANK) / 1e3;
        assert!((kb - 930.0).abs() < 100.0, "model 4: {kb} KB");
    }

    #[test]
    fn scaling_respects_floor() {
        let m = ModelSpec::table1(4).scaled(0.001);
        assert_eq!(m.dims[0], 10); // 10K * 0.001
        assert!(m.dims[1..].iter().all(|&d| d == 4)); // floored
    }

    #[test]
    fn redundant_tensor_has_doubled_ranks_and_halvable_content() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = generate_redundant(&[6, 5, 4, 6], 3, &mut rng);
        assert_eq!(x.ranks(), vec![1, 6, 6, 6, 1]);
        let y = crate::round::round_gram_rlr(&x, 1e-10);
        assert_eq!(y.ranks(), vec![1, 3, 3, 3, 1]);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = generate_redundant_normalized(&[5, 4, 5], 2, &mut rng);
        assert!((x.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn local_dims_partition_global() {
        let m = ModelSpec::table1(1).scaled(0.01);
        let p = 4;
        let mut totals = vec![0usize; m.dims.len()];
        for r in 0..p {
            for (k, d) in m.local_dims(p, r).into_iter().enumerate() {
                totals[k] += d;
            }
        }
        assert_eq!(totals, m.dims);
    }
}
