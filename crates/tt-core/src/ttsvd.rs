//! TT-SVD: compression of an explicit tensor into TT format.
//!
//! The classical construction of Oseledets [4]: successive reshapes and
//! ε-truncated SVDs. Used as the ground-truth compressor in tests (rounding
//! is quasi-optimal relative to the ranks TT-SVD finds) and to build TT
//! representations of explicitly given small tensors.

use crate::core::TtCore;
use crate::dense::DenseTensor;
use crate::tensor::TtTensor;
use tt_linalg::{tsvd, Matrix};

/// Compresses a dense tensor into TT format with relative accuracy
/// `tolerance`: `‖X − TT(X)‖ ≤ tolerance·‖X‖`.
///
/// Optionally caps every rank at `max_rank`.
pub fn tt_svd(x: &DenseTensor, tolerance: f64, max_rank: Option<usize>) -> TtTensor {
    let dims = x.dims().to_vec();
    let n = dims.len();
    assert!(n >= 1);
    let norm = x.fro_norm();
    let eps0 = if n > 1 {
        norm * tolerance / ((n - 1) as f64).sqrt()
    } else {
        0.0
    };

    if n == 1 {
        let v = Matrix::from_col_major(dims[0], 1, x.as_slice().to_vec());
        return TtTensor::new(vec![TtCore::from_v(v, 1, dims[0], 1)]);
    }

    let mut cores = Vec::with_capacity(n);
    // W starts as the (R_0·I_1) × (rest) unfolding with R_0 = 1.
    let total: usize = dims.iter().product();
    let mut w = Matrix::from_col_major(dims[0], total / dims[0], x.as_slice().to_vec());
    let mut r_prev = 1usize;

    for (k, &dim) in dims.iter().enumerate().take(n - 1) {
        // W is (r_prev·I_k) × (remaining): truncate its SVD.
        let mut t = tsvd(&w, eps0);
        if let Some(cap) = max_rank {
            if t.rank() > cap {
                t.u = t.u.truncate_cols(cap);
                t.v = t.v.truncate_cols(cap);
                t.singular_values.truncate(cap);
            }
        }
        let r_new = t.rank();
        cores.push(TtCore::from_v(t.u.clone(), r_prev, dim, r_new));
        // Next W = Σ Vᵀ reshaped to (r_new · I_{k+1}) × (rest).
        let mut sv = t.v.clone(); // (rest) × r_new
        for (j, &s) in t.singular_values.iter().enumerate() {
            sv.scale_col(j, s);
        }
        let svt = sv.transpose(); // r_new × rest
        let rest = svt.cols();
        let next_dim = dims[k + 1];
        assert_eq!(rest % next_dim, 0);
        w = svt.reshaped(r_new * next_dim, rest / next_dim);
        r_prev = r_new;
    }
    // Last core: W itself is (r_prev·I_N) × 1.
    cores.push(TtCore::from_v(w, r_prev, dims[n - 1], 1));
    TtTensor::new(cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    #[test]
    fn exact_recovery_of_tt_structured_data() {
        let mut r = rng(1);
        let t = TtTensor::random(&[4, 3, 5, 2], &[2, 3, 2], &mut r);
        let d = t.to_dense();
        let c = tt_svd(&d, 1e-12, None);
        // Ranks must not exceed the generating ranks.
        let ranks = c.ranks();
        assert!(ranks[1] <= 2 && ranks[2] <= 3 && ranks[3] <= 2, "{ranks:?}");
        let err = c.to_dense().fro_dist(&d);
        assert!(err < 1e-9 * (1.0 + d.fro_norm()));
    }

    #[test]
    fn tolerance_controls_error() {
        let mut r = rng(2);
        let d = DenseTensor::from_data(
            &[5, 4, 6],
            (0..120)
                .map(|_| tt_linalg::rng::standard_normal(&mut r))
                .collect(),
        );
        let norm = d.fro_norm();
        for tol in [0.5, 0.1, 1e-3] {
            let c = tt_svd(&d, tol, None);
            let err = c.to_dense().fro_dist(&d);
            assert!(
                err <= tol * norm * 1.5,
                "tol {tol}: err {err} vs {}",
                tol * norm
            );
        }
    }

    #[test]
    fn max_rank_caps() {
        let mut r = rng(3);
        let d = DenseTensor::from_data(
            &[6, 6, 6],
            (0..216)
                .map(|_| tt_linalg::rng::standard_normal(&mut r))
                .collect(),
        );
        let c = tt_svd(&d, 1e-14, Some(2));
        assert!(c.max_rank() <= 2);
    }

    #[test]
    fn rank_one_tensor_compresses_to_rank_one() {
        // X(i,j,k) = u_i v_j w_k
        let u = [1.0, 2.0, -1.0];
        let v = [0.5, 1.5];
        let w = [2.0, -3.0, 1.0, 4.0];
        let d = DenseTensor::from_fn(&[3, 2, 4], |idx| u[idx[0]] * v[idx[1]] * w[idx[2]]);
        let c = tt_svd(&d, 1e-12, None);
        assert_eq!(c.ranks(), vec![1, 1, 1, 1]);
        assert!(c.to_dense().fro_dist(&d) < 1e-10 * d.fro_norm());
    }

    #[test]
    fn two_mode_tensor_is_matrix_svd() {
        let mut r = rng(4);
        let d = DenseTensor::from_data(
            &[7, 5],
            (0..35)
                .map(|_| tt_linalg::rng::standard_normal(&mut r))
                .collect(),
        );
        let c = tt_svd(&d, 1e-12, None);
        assert_eq!(c.order(), 2);
        assert!(c.to_dense().fro_dist(&d) < 1e-10 * (1.0 + d.fro_norm()));
    }
}
