//! TT-matrix (matrix product operator) representation.
//!
//! A linear operator `G : ⊗ R^{J_k} → ⊗ R^{I_k}` in TT form is a chain of
//! 4-way cores `A_k ∈ R^{S_k × I_k × J_k × S_{k+1}}` with operator ranks
//! `S_0 = S_N = 1`:
//!
//! ```text
//!   G[(i_1..i_N), (j_1..j_N)] = A_1(i_1, j_1, :) ⋅ A_2(:, i_2, j_2, :) ⋯
//! ```
//!
//! Applying a TT-matrix to a TT vector multiplies every bond rank by the
//! corresponding operator rank — the rank growth that makes TT-Rounding the
//! key operation of TT solvers (§I, §II-C). The Kronecker-sum operators of
//! the cookies problem are the special case where every core slice is
//! block-diagonal with identity/diagonal/sparse blocks; [`TtMatrix`] is the
//! general dense-core form.

use crate::core::TtCore;
use crate::tensor::TtTensor;
use tt_linalg::Matrix;

/// One 4-way TT-matrix core, stored as a [`TtCore`] whose "mode" index is
/// the pair `(i, j)` linearized as `i + j·I` (column-major over out/in).
#[derive(Debug, Clone, PartialEq)]
pub struct TtMatrixCore {
    /// Output (row) dimension `I_k`.
    pub rows: usize,
    /// Input (column) dimension `J_k`.
    pub cols: usize,
    core: TtCore,
}

impl TtMatrixCore {
    /// Builds from an underlying 3-way core with mode dimension `rows·cols`.
    pub fn new(core: TtCore, rows: usize, cols: usize) -> Self {
        assert_eq!(
            core.mode_dim(),
            rows * cols,
            "mode dimension must be rows·cols"
        );
        TtMatrixCore { rows, cols, core }
    }

    /// Gaussian random operator core.
    pub fn gaussian(
        s0: usize,
        rows: usize,
        cols: usize,
        s1: usize,
        rng: &mut impl rand::Rng,
    ) -> Self {
        TtMatrixCore {
            rows,
            cols,
            core: TtCore::gaussian(s0, rows * cols, s1, rng),
        }
    }

    /// An operator core representing `I` (identity on this mode) with
    /// operator ranks 1.
    pub fn identity(dim: usize) -> Self {
        let mut core = TtCore::zeros(1, dim * dim, 1);
        for i in 0..dim {
            *core.at_mut(0, i + i * dim, 0) = 1.0;
        }
        TtMatrixCore {
            rows: dim,
            cols: dim,
            core,
        }
    }

    /// Left operator rank `S_k`.
    pub fn s0(&self) -> usize {
        self.core.r0()
    }

    /// Right operator rank `S_{k+1}`.
    pub fn s1(&self) -> usize {
        self.core.r1()
    }

    /// Entry `A(a, i, j, b)`.
    pub fn at(&self, a: usize, i: usize, j: usize, b: usize) -> f64 {
        self.core.at(a, i + j * self.rows, b)
    }

    /// Mutable entry access.
    pub fn at_mut(&mut self, a: usize, i: usize, j: usize, b: usize) -> &mut f64 {
        self.core.at_mut(a, i + j * self.rows, b)
    }
}

/// A linear operator in TT (matrix-product-operator) form.
#[derive(Debug, Clone, PartialEq)]
pub struct TtMatrix {
    cores: Vec<TtMatrixCore>,
}

impl TtMatrix {
    /// Builds from operator cores, validating the rank chain.
    pub fn new(cores: Vec<TtMatrixCore>) -> Self {
        assert!(!cores.is_empty());
        assert_eq!(cores[0].s0(), 1, "first operator rank must be 1");
        assert_eq!(
            cores[cores.len() - 1].s1(),
            1,
            "last operator rank must be 1"
        );
        for w in cores.windows(2) {
            assert_eq!(
                w[0].s1(),
                w[1].s0(),
                "neighboring operator ranks must match"
            );
        }
        TtMatrix { cores }
    }

    /// Random TT-matrix with uniform operator rank.
    pub fn random(
        row_dims: &[usize],
        col_dims: &[usize],
        op_rank: usize,
        rng: &mut impl rand::Rng,
    ) -> Self {
        assert_eq!(row_dims.len(), col_dims.len());
        let n = row_dims.len();
        let cores = (0..n)
            .map(|k| {
                let s0 = if k == 0 { 1 } else { op_rank };
                let s1 = if k == n - 1 { 1 } else { op_rank };
                TtMatrixCore::gaussian(s0, row_dims[k], col_dims[k], s1, rng)
            })
            .collect();
        TtMatrix::new(cores)
    }

    /// The identity operator on the given mode dimensions.
    pub fn identity(dims: &[usize]) -> Self {
        TtMatrix::new(dims.iter().map(|&d| TtMatrixCore::identity(d)).collect())
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.cores.len()
    }

    /// Output dimensions.
    pub fn row_dims(&self) -> Vec<usize> {
        self.cores.iter().map(|c| c.rows).collect()
    }

    /// Input dimensions.
    pub fn col_dims(&self) -> Vec<usize> {
        self.cores.iter().map(|c| c.cols).collect()
    }

    /// Operator rank chain `S_0 … S_N`.
    pub fn op_ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.cores.iter().map(|c| c.s0()).collect();
        r.push(1);
        r
    }

    /// Core `k`.
    pub fn core(&self, k: usize) -> &TtMatrixCore {
        &self.cores[k]
    }

    /// Applies the operator to a TT vector: the result's bond ranks are the
    /// products `S_{k}·R_{k}` (formal growth; round afterwards).
    ///
    /// Per mode, the contraction
    /// `Y_k((a,c), i, (b,d)) = Σ_j A_k(a, i, j, b) · X_k(c, j, d)`
    /// is evaluated slice-wise.
    pub fn apply(&self, x: &TtTensor) -> TtTensor {
        assert_eq!(
            self.col_dims(),
            x.dims(),
            "operator input dims must match the vector"
        );
        let cores = self
            .cores
            .iter()
            .zip(x.cores())
            .map(|(a, xc)| {
                let (s0, s1) = (a.s0(), a.s1());
                let (r0, r1) = (xc.r0(), xc.r1());
                let mut out = TtCore::zeros(s0 * r0, a.rows, s1 * r1);
                for i in 0..a.rows {
                    // out(:, i, :) = Σ_j A(:, i, j, :) ⊗ X(:, j, :)
                    for j in 0..a.cols {
                        for aa in 0..s0 {
                            for bb in 0..s1 {
                                let aval = a.at(aa, i, j, bb);
                                // analyze::allow(float_cmp): sparsity skip — only exactly zero entries may be dropped; a tolerance would silently truncate the operator
                                if aval == 0.0 {
                                    continue;
                                }
                                for cc in 0..r0 {
                                    for dd in 0..r1 {
                                        *out.at_mut(aa * r0 + cc, i, bb * r1 + dd) +=
                                            aval * xc.at(cc, j, dd);
                                    }
                                }
                            }
                        }
                    }
                }
                out
            })
            .collect();
        TtTensor::new(cores)
    }

    /// Materializes the operator as a dense matrix (tiny problems only).
    pub fn to_dense(&self) -> Matrix {
        let rows: usize = self.row_dims().iter().product();
        let cols: usize = self.col_dims().iter().product();
        let mut m = Matrix::zeros(rows, cols);
        // Evaluate entrywise via core-chain products.
        let n = self.order();
        let rd = self.row_dims();
        let cd = self.col_dims();
        let mut ridx = vec![0usize; n];
        let mut cidx = vec![0usize; n];
        for r in 0..rows {
            // decode row multi-index (column-major)
            let mut rem = r;
            for (k, ri) in ridx.iter_mut().enumerate() {
                *ri = rem % rd[k];
                rem /= rd[k];
            }
            for c in 0..cols {
                let mut rem = c;
                for (k, ci) in cidx.iter_mut().enumerate() {
                    *ci = rem % cd[k];
                    rem /= cd[k];
                }
                // chain product
                let mut v = vec![1.0];
                for k in 0..n {
                    let core = &self.cores[k];
                    let mut next = vec![0.0; core.s1()];
                    for (b, nb) in next.iter_mut().enumerate() {
                        let mut s = 0.0;
                        for (a, va) in v.iter().enumerate() {
                            s += va * core.at(a, ridx[k], cidx[k], b);
                        }
                        *nb = s;
                    }
                    v = next;
                }
                m[(r, c)] = v[0];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_linalg::{gemm, Trans};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    #[test]
    fn identity_applies_as_noop() {
        let mut r = rng(1);
        let x = TtTensor::random(&[4, 3, 5], &[2, 3], &mut r);
        let id = TtMatrix::identity(&[4, 3, 5]);
        let y = id.apply(&x);
        // ranks unchanged (operator rank 1)
        assert_eq!(y.ranks(), x.ranks());
        assert!(y.to_dense().fro_dist(&x.to_dense()) < 1e-12);
    }

    #[test]
    fn apply_matches_dense_matvec() {
        let mut r = rng(2);
        let g = TtMatrix::random(&[3, 4, 2], &[3, 4, 2], 2, &mut r);
        let x = TtTensor::random(&[3, 4, 2], &[2, 2], &mut r);
        let y = g.apply(&x);
        assert_eq!(y.ranks(), vec![1, 4, 4, 1], "ranks multiply by op rank");

        let gd = g.to_dense();
        let xd = Matrix::from_col_major(24, 1, x.to_dense().into_vec());
        let expect = gemm(Trans::No, &gd, Trans::No, &xd, 1.0);
        let got = y.to_dense();
        for (k, &e) in expect.as_slice().iter().enumerate() {
            assert!(
                (got.as_slice()[k] - e).abs() < 1e-10 * (1.0 + e.abs()),
                "entry {k}"
            );
        }
    }

    #[test]
    fn rectangular_operator_changes_dims() {
        let mut r = rng(3);
        let g = TtMatrix::random(&[5, 2], &[3, 4], 2, &mut r);
        let x = TtTensor::random(&[3, 4], &[2], &mut r);
        let y = g.apply(&x);
        assert_eq!(y.dims(), vec![5, 2]);
        let gd = g.to_dense();
        assert_eq!(gd.shape(), (10, 12));
        let xd = Matrix::from_col_major(12, 1, x.to_dense().into_vec());
        let expect = gemm(Trans::No, &gd, Trans::No, &xd, 1.0);
        let got = y.to_dense();
        for (k, &e) in expect.as_slice().iter().enumerate() {
            assert!((got.as_slice()[k] - e).abs() < 1e-10 * (1.0 + e.abs()));
        }
    }

    #[test]
    fn apply_then_round_controls_growth() {
        let mut r = rng(4);
        let g = TtMatrix::random(&[4, 4, 4], &[4, 4, 4], 3, &mut r);
        let x = TtTensor::random(&[4, 4, 4], &[2, 2], &mut r);
        let y = g.apply(&x);
        assert_eq!(y.max_rank(), 6);
        let z = crate::round::round_gram_lrl(&y, 1e-12);
        // Exact value preserved.
        assert!(z.to_dense().fro_dist(&y.to_dense()) < 1e-8 * (1.0 + y.norm()));
        assert!(z.max_rank() <= 6);
    }

    #[test]
    fn identity_dense_is_identity() {
        let id = TtMatrix::identity(&[2, 3]);
        let d = id.to_dense();
        assert!(d.max_abs_diff(&Matrix::identity(6)) < 1e-15);
    }

    #[test]
    #[should_panic]
    fn dim_mismatch_rejected() {
        let mut r = rng(5);
        let g = TtMatrix::random(&[3, 3], &[3, 3], 2, &mut r);
        let x = TtTensor::random(&[3, 4], &[2], &mut r);
        let _ = g.apply(&x);
    }
}
