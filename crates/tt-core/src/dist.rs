//! 1-D distribution of TT tensors and distributed primitives.
//!
//! Following the paper (§II-D, [25]), every TT core is distributed across
//! all `P` ranks along its physical mode: rank `p` owns the slice block
//! [`block_range`]`(I_k, P, p)` of core `k`. Core-times-small-matrix
//! operations are then embarrassingly parallel, and core–core contractions
//! are local `gemm`s followed by one allreduce — the communication pattern
//! the whole paper is built on.

use crate::core::TtCore;
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{gemm_alloc, gemm_v, Matrix, Trans};

/// The contiguous block of `0..n` owned by rank `r` of `p` (even split,
/// remainder spread over the leading ranks).
pub fn block_range(n: usize, p: usize, r: usize) -> std::ops::Range<usize> {
    assert!(r < p);
    let lo = (r * n) / p;
    let hi = ((r + 1) * n) / p;
    lo..hi
}

/// Extracts this rank's local block of a (replicated) full tensor.
pub fn scatter_tensor(full: &TtTensor, comm: &impl Communicator) -> TtTensor {
    let p = comm.size();
    let r = comm.rank();
    let cores = full
        .cores()
        .iter()
        .map(|c| {
            let range = block_range(c.mode_dim(), p, r);
            c.mode_block(range.start, range.end)
        })
        .collect();
    TtTensor::new(cores)
}

/// Reassembles the full tensor on every rank from the local blocks
/// (test/diagnostic utility; an allreduce per core).
///
/// The per-core reductions are independent, so each core's allreduce is
/// posted as soon as its zero-padded buffer is packed and the next core
/// packs while it flies; waits run in post order, so every rank consumes
/// identical bytes in identical order.
///
/// `global_dims` are the full mode dimensions.
pub fn gather_tensor(
    local: &TtTensor,
    global_dims: &[usize],
    comm: &impl Communicator,
) -> TtTensor {
    let p = comm.size();
    let r = comm.rank();
    let posted: Vec<_> = local
        .cores()
        .iter()
        .enumerate()
        .map(|(k, c)| {
            let full_i = global_dims[k];
            let range = block_range(full_i, p, r);
            assert_eq!(
                range.len(),
                c.mode_dim(),
                "local block size mismatch on core {k}"
            );
            let mut full = TtCore::zeros(c.r0(), full_i, c.r1());
            for b in 0..c.r1() {
                for (ii, gi) in range.clone().enumerate() {
                    for a in 0..c.r0() {
                        *full.at_mut(a, gi, b) = c.at(a, ii, b);
                    }
                }
            }
            (
                comm.iallreduce_sum(full.into_v().into_vec()),
                c.r0(),
                full_i,
                c.r1(),
            )
        })
        .collect();
    let cores = posted
        .into_iter()
        .map(|(req, r0, full_i, r1)| {
            TtCore::from_v(
                Matrix::from_col_major(r0 * full_i, r1, req.wait()),
                r0,
                full_i,
                r1,
            )
        })
        .collect();
    TtTensor::new(cores)
}

/// Allreduce-sum of a whole matrix buffer.
pub fn allreduce_matrix(comm: &impl Communicator, m: &mut Matrix) {
    comm.allreduce_sum(m.as_mut_slice());
}

/// Distributed inner product of two TT tensors given their local blocks.
///
/// One local `gemm` pair plus one allreduce per mode; every rank returns the
/// same global value. This chain is strictly serial — mode `k+1`'s `gemm`
/// consumes the reduced `w_k` — so there is no independent local work to
/// hide an allreduce behind and the waits stay at their post sites.
pub fn inner_local(comm: &impl Communicator, x: &TtTensor, y: &TtTensor) -> f64 {
    assert_eq!(
        x.dims(),
        y.dims(),
        "inner product requires equal (local) dimensions"
    );
    let n = x.order();
    // w_k ∈ R^{R^x_k × R^y_k}, starting from the 1×1 identity.
    let mut w = Matrix::identity(1);
    for k in 0..n {
        let (cx, cy) = (x.core(k), y.core(k));
        // E = w · H(Y_k): (R^x_{k-1} × I·R^y_k); the buffer of E is exactly
        // the vertical unfolding of a (R^x_{k-1}, I, R^y_k) core.
        let e = gemm_alloc(Trans::No, w.view(), Trans::No, cy.h(), 1.0);
        let ev = e.view_as(cx.r0() * cx.mode_dim(), cy.r1());
        let mut w_next = Matrix::zeros(cx.r1(), cy.r1());
        gemm_v(
            Trans::Yes,
            cx.v(),
            Trans::No,
            ev,
            1.0,
            0.0,
            w_next.view_mut(),
        );
        allreduce_matrix(comm, &mut w_next);
        w = w_next;
    }
    debug_assert_eq!(w.shape(), (1, 1));
    w[(0, 0)]
}

/// Distributed Frobenius norm from a local block.
pub fn norm_local(comm: &impl Communicator, x: &TtTensor) -> f64 {
    inner_local(comm, x, x).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tt_comm::SelfComm;

    #[test]
    fn block_ranges_partition() {
        for (n, p) in [(10usize, 3usize), (7, 4), (4, 8), (100, 7)] {
            let mut covered = vec![false; n];
            for r in 0..p {
                for i in block_range(n, p, r) {
                    assert!(!covered[i], "overlap at {i}");
                    covered[i] = true;
                }
            }
            assert!(covered.into_iter().all(|c| c), "gap for n={n} p={p}");
        }
    }

    #[test]
    fn scatter_gather_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let full = TtTensor::random(&[6, 5, 8], &[3, 2], &mut rng);
        for p in [1usize, 2, 3, 4] {
            let f = full.clone();
            let gathered = tt_comm::run_verified(p, |comm| {
                let local = scatter_tensor(&f, &comm);
                gather_tensor(&local, &[6, 5, 8], &comm)
            });
            for g in gathered {
                assert_eq!(g, full, "p={p}");
            }
        }
    }

    #[test]
    fn distributed_inner_matches_sequential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = TtTensor::random(&[6, 4, 8, 5], &[3, 2, 4], &mut rng);
        let y = TtTensor::random(&[6, 4, 8, 5], &[2, 3, 2], &mut rng);
        let seq = inner_local(&SelfComm::new(), &x, &y);
        for p in [2usize, 3, 5] {
            let (x, y) = (x.clone(), y.clone());
            let vals = tt_comm::run_verified(p, |comm| {
                let xl = scatter_tensor(&x, &comm);
                let yl = scatter_tensor(&y, &comm);
                inner_local(&comm, &xl, &yl)
            });
            for v in vals {
                assert!(
                    (v - seq).abs() < 1e-10 * (1.0 + seq.abs()),
                    "p={p}: {v} vs {seq}"
                );
            }
        }
    }

    #[test]
    fn distributed_norm_matches_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = TtTensor::random(&[5, 6, 4], &[2, 3], &mut rng);
        let dense_norm = x.to_dense().fro_norm();
        let xc = x.clone();
        let vals = tt_comm::run_verified(3, |comm| {
            let xl = scatter_tensor(&xc, &comm);
            norm_local(&comm, &xl)
        });
        for v in vals {
            assert!((v - dense_norm).abs() < 1e-9 * (1.0 + dense_norm));
        }
    }

    #[test]
    fn more_ranks_than_slices_is_fine() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = TtTensor::random(&[2, 3, 2], &[2, 2], &mut rng);
        let seq = inner_local(&SelfComm::new(), &x, &x);
        let xc = x.clone();
        let vals = tt_comm::run_verified(5, |comm| {
            let xl = scatter_tensor(&xc, &comm);
            inner_local(&comm, &xl, &xl)
        });
        for v in vals {
            assert!((v - seq).abs() < 1e-10 * (1.0 + seq.abs()));
        }
    }
}
