//! Truncation of a low-rank matrix product `X = A Bᵀ` — §III of the paper.
//!
//! This is the degenerate 2-mode TT case that motivates the Gram-SVD
//! rounding idea. Three methods are provided:
//!
//! * [`mat_rounding_qr`] — Algorithm 3: QR-orthogonalize both factors, SVD
//!   the small `R_A R_Bᵀ` (numerically accurate, the baseline);
//! * [`tsvd_abt_gram`] — Algorithm 4: Gram matrices + EVDs + small SVD
//!   (the paper's method — cheaper, all `gemm`, accuracy limited to `√ε`);
//! * [`tsvd_abt_cholqr`] — the §III-B1 pivoted-Cholesky-QR variant, which
//!   truncates *sharply* at `√ε` per factor (the robustness limitation the
//!   Gram-SVD route avoids).

use crate::round::truncate::{gram_truncate, SingularSide};
use tt_linalg::{gemm, pivoted_cholesky, syrk, tri_invert_upper, tsvd, Matrix, Trans};

/// A truncated factorization `X ≈ Â B̂ᵀ` with diagnostics.
#[derive(Debug, Clone)]
pub struct ProductTruncation {
    /// Left factor, `m × L`.
    pub a_hat: Matrix,
    /// Right factor, `k × L`.
    pub b_hat: Matrix,
    /// Retained rank `L`.
    pub rank: usize,
    /// Tail energy discarded by the inner TSVD.
    pub discarded: f64,
}

/// Algorithm 3: rounding of `A Bᵀ` via QR of both factors.
///
/// The singular values are split evenly between the factors
/// (`Â = Q_A Û Σ̂^{1/2}`, `B̂ = Q_B V̂ Σ̂^{1/2}`).
pub fn mat_rounding_qr(a: &Matrix, b: &Matrix, threshold: f64) -> ProductTruncation {
    assert_eq!(a.cols(), b.cols(), "A and B must share the rank dimension");
    let fa = tt_linalg::householder_qr(a);
    let fb = tt_linalg::householder_qr(b);
    let (qa, ra) = (fa.thin_q(), fa.r());
    let (qb, rb) = (fb.thin_q(), fb.r());
    let m = gemm(Trans::No, &ra, Trans::Yes, &rb, 1.0);
    let t = tsvd(&m, threshold);
    let l = t.rank();
    let mut us = t.u.clone();
    let mut vs = t.v.clone();
    for (j, &s) in t.singular_values.iter().enumerate() {
        let h = s.sqrt();
        us.scale_col(j, h);
        vs.scale_col(j, h);
    }
    ProductTruncation {
        a_hat: gemm(Trans::No, &qa, Trans::No, &us, 1.0),
        b_hat: gemm(Trans::No, &qb, Trans::No, &vs, 1.0),
        rank: l,
        discarded: t.discarded_norm,
    }
}

/// Algorithm 4: truncated SVD of `A Bᵀ` via Gram SVDs of the factors.
///
/// All heavy operations are `gemm`/`syrk` on the tall factors; only `R × R`
/// eigen/SVD problems are solved.
pub fn tsvd_abt_gram(a: &Matrix, b: &Matrix, threshold: f64) -> ProductTruncation {
    assert_eq!(a.cols(), b.cols(), "A and B must share the rank dimension");
    let ga = syrk(a, 1.0);
    let gb = syrk(b, 1.0);
    let upd = gram_truncate(0, &ga, &gb, threshold, None, SingularSide::Split);
    let l = upd.info.rank_after;
    ProductTruncation {
        a_hat: gemm(Trans::No, a, Trans::No, &upd.w_left, 1.0),
        b_hat: gemm(Trans::No, &upd.w_right, Trans::Yes, b, 1.0).transpose(),
        rank: l,
        discarded: upd.info.discarded,
    }
}

/// §III-B1: rounding of `A Bᵀ` via *pivoted Cholesky QR* of the Gram
/// matrices.
///
/// For numerically low-rank factors this truncates each factor sharply at
/// `√ε` relative magnitude (the first non-positive pivot), which is exactly
/// the failure mode that motivates preferring Gram SVD (§III-B2).
pub fn tsvd_abt_cholqr(a: &Matrix, b: &Matrix, threshold: f64) -> ProductTruncation {
    assert_eq!(a.cols(), b.cols(), "A and B must share the rank dimension");
    let ga = syrk(a, 1.0);
    let gb = syrk(b, 1.0);
    // Pivoted Cholesky of each Gram matrix: Pᵀ G P = L Lᵀ, i.e. the pivoted
    // factor gives A·P = Q (Lᵀ in pivoted order); we work with the
    // unpivoted expansion M with G = M Mᵀ, so A = Q_A M_Aᵀ with
    // Q_A = A·M_A·(M_AᵀM_A)⁻¹ … equivalently use the trapezoidal factor as
    // the "R" of a Cholesky QR: A ≈ Q_A R_A with R_A = M_Aᵀ (rank_A × R).
    let pa = pivoted_cholesky(&ga, f64::EPSILON);
    let pb = pivoted_cholesky(&gb, f64::EPSILON);
    let ma = pa.factor_unpivoted(); // R × rank_A, G_A ≈ M_A M_Aᵀ
    let mb = pb.factor_unpivoted();

    // Q_A = A · M_A⁻ᵀ in the least-squares sense: since M_A has full column
    // rank, M_A⁺ᵀ = M_A (M_AᵀM_A)⁻¹; with the pivoted triangular structure
    // we can solve directly: M_AᵀM_A is rank_A × rank_A SPD.
    let qa = apply_pinv_t(a, &ma);
    let qb = apply_pinv_t(b, &mb);
    // X = Q_A (M_Aᵀ M_B) Q_Bᵀ; TSVD of the small middle matrix.
    let mid = gemm(Trans::Yes, &ma, Trans::No, &mb, 1.0);
    let t = tsvd(&mid, threshold);
    let l = t.rank();
    let mut us = t.u.clone();
    let mut vs = t.v.clone();
    for (j, &s) in t.singular_values.iter().enumerate() {
        let h = s.sqrt();
        us.scale_col(j, h);
        vs.scale_col(j, h);
    }
    ProductTruncation {
        a_hat: gemm(Trans::No, &qa, Trans::No, &us, 1.0),
        b_hat: gemm(Trans::No, &qb, Trans::No, &vs, 1.0),
        rank: l,
        discarded: t.discarded_norm,
    }
}

/// `A · M (MᵀM)⁻¹`: orthonormalizes `A` against the Cholesky factor `M`
/// (`MᵀM` is small SPD; solved via its own Cholesky).
fn apply_pinv_t(a: &Matrix, m: &Matrix) -> Matrix {
    let am = gemm(Trans::No, a, Trans::No, m, 1.0);
    if m.cols() == 0 {
        return am;
    }
    let mtm = syrk(m, 1.0);
    let l = match tt_linalg::cholesky(&mtm) {
        Ok(l) => l,
        // analyze::allow(panic_surface): full-column-rank is an upstream invariant (truncation removes null columns); violation means corrupted state, not a recoverable input
        Err(e) => panic!(
            "apply_pinv_t: Cholesky of MᵀM failed ({e}); M must have full \
             column rank here — the upstream truncation should have removed \
             numerically null columns"
        ),
    };
    // Solve (L Lᵀ) Xᵀ = (A M)ᵀ column-wise: X = A M (L Lᵀ)⁻¹.
    let lt = l.transpose();
    let li = tri_invert_upper(&lt); // Lᵀ⁻¹
                                    // (LLᵀ)⁻¹ = Lᵀ⁻¹ L⁻¹ = li · liᵀ
    let inv = gemm(Trans::No, &li, Trans::Yes, &li, 1.0);
    gemm(Trans::No, &am, Trans::No, &inv, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    fn product(a: &Matrix, b: &Matrix) -> Matrix {
        gemm(Trans::No, a, Trans::Yes, b, 1.0)
    }

    fn check_reconstruction(
        name: &str,
        f: impl Fn(&Matrix, &Matrix, f64) -> ProductTruncation,
        tol: f64,
    ) {
        let mut r = rng(1);
        let a = Matrix::gaussian(40, 8, &mut r);
        let b = Matrix::gaussian(35, 8, &mut r);
        let x = product(&a, &b);
        let t = f(&a, &b, 1e-12 * x.fro_norm());
        assert_eq!(t.rank, 8, "{name}: no truncation expected");
        let x_hat = product(&t.a_hat, &t.b_hat);
        assert!(
            x.max_abs_diff(&x_hat) < tol * (1.0 + x.max_abs()),
            "{name}: reconstruction error {}",
            x.max_abs_diff(&x_hat)
        );
    }

    #[test]
    fn qr_reconstructs() {
        check_reconstruction("qr", mat_rounding_qr, 1e-10);
    }

    #[test]
    fn gram_reconstructs() {
        check_reconstruction("gram", tsvd_abt_gram, 1e-8);
    }

    #[test]
    fn cholqr_reconstructs() {
        check_reconstruction("cholqr", tsvd_abt_cholqr, 1e-8);
    }

    #[test]
    fn all_methods_find_the_same_truncation_rank() {
        let mut r = rng(2);
        // Product with a decaying spectrum: D has singular values 2^{-k}.
        let n = 12;
        let base_a = Matrix::gaussian(50, n, &mut r);
        let base_b = Matrix::gaussian(45, n, &mut r);
        let qa = tt_linalg::householder_qr(&base_a).thin_q();
        let qb = tt_linalg::householder_qr(&base_b).thin_q();
        let mut a = qa.clone();
        for j in 0..n {
            a.scale_col(j, 0.5_f64.powi(j as i32));
        }
        let b = qb.clone();
        let x = product(&a, &b);
        let thr = 1e-2 * x.fro_norm();
        let t_qr = mat_rounding_qr(&a, &b, thr);
        let t_gram = tsvd_abt_gram(&a, &b, thr);
        assert_eq!(
            t_qr.rank, t_gram.rank,
            "qr {} vs gram {}",
            t_qr.rank, t_gram.rank
        );
        // Both reconstruct to the threshold.
        for (name, t) in [("qr", &t_qr), ("gram", &t_gram)] {
            let mut diff = product(&t.a_hat, &t.b_hat);
            diff.axpy(-1.0, &x);
            assert!(diff.fro_norm() <= thr * 1.5, "{name}: {}", diff.fro_norm());
        }
    }

    #[test]
    fn gram_handles_rank_deficient_factors() {
        let mut r = rng(3);
        // A has 3 duplicated columns: numerically rank 5 of 8.
        let core = Matrix::gaussian(30, 5, &mut r);
        let mut a = Matrix::zeros(30, 8);
        for j in 0..5 {
            a.col_mut(j).copy_from_slice(core.col(j));
        }
        for j in 5..8 {
            a.col_mut(j).copy_from_slice(core.col(j - 5));
        }
        let b = Matrix::gaussian(25, 8, &mut r);
        let x = product(&a, &b);
        let t = tsvd_abt_gram(&a, &b, 1e-6 * x.fro_norm());
        assert!(t.rank <= 5, "rank {}", t.rank);
        let x_hat = product(&t.a_hat, &t.b_hat);
        assert!(x.max_abs_diff(&x_hat) < 1e-4 * (1.0 + x.max_abs()));
    }

    #[test]
    fn cholqr_truncates_sharply_where_gram_survives() {
        // The §III-B2 robustness scenario: A has a direction of size ~√ε
        // that B amplifies. Pivoted Cholesky QR cuts it; Gram SVD keeps a
        // (inaccurate but useful) approximation of it.
        let mut r = rng(4);
        let n = 4;
        let qa = tt_linalg::householder_qr(&Matrix::gaussian(40, n, &mut r)).thin_q();
        let qb = tt_linalg::householder_qr(&Matrix::gaussian(40, n, &mut r)).thin_q();
        let mut a = qa;
        let amp = 1e7;
        let small = 1e-8;
        a.scale_col(n - 1, small); // σ_min(A) ≈ 1e-8 ≈ √ε
        let mut b = qb;
        b.scale_col(n - 1, amp); // B amplifies that direction back up
        let x = product(&a, &b);
        let thr = 1e-6 * x.fro_norm();

        let t_chol = tsvd_abt_cholqr(&a, &b, thr);
        let t_gram = tsvd_abt_gram(&a, &b, thr);
        let err_chol = {
            let mut d = product(&t_chol.a_hat, &t_chol.b_hat);
            d.axpy(-1.0, &x);
            d.fro_norm() / x.fro_norm()
        };
        let err_gram = {
            let mut d = product(&t_gram.a_hat, &t_gram.b_hat);
            d.axpy(-1.0, &x);
            d.fro_norm() / x.fro_norm()
        };
        // Gram SVD must capture the amplified direction far better.
        assert!(
            err_gram < err_chol * 1e-2,
            "gram {err_gram} should beat cholqr {err_chol} by ≫ 100×"
        );
    }
}
