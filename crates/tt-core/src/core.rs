//! A single TT core and its zero-copy unfoldings.

use tt_linalg::{MatRef, Matrix};

/// One 3-way TT core `T ∈ R^{r0 × i × r1}`.
///
/// The backing buffer is column-major over `(a, i, b)` (element at
/// `a + i·r0 + b·r0·i`), which makes the vertical unfolding free and the
/// horizontal unfolding free up to an irrelevant column permutation — see
/// the crate-level documentation.
#[derive(Clone, PartialEq)]
pub struct TtCore {
    r0: usize,
    i: usize,
    r1: usize,
    /// Stored under the vertical-unfolding shape `(r0·i) × r1`.
    data: Matrix,
}

impl TtCore {
    /// Builds a core from its vertical unfolding (`(r0·i) × r1`).
    pub fn from_v(v: Matrix, r0: usize, i: usize, r1: usize) -> Self {
        assert_eq!(v.shape(), (r0 * i, r1), "vertical unfolding shape mismatch");
        TtCore { r0, i, r1, data: v }
    }

    /// Builds a core from its (column-permuted) horizontal unfolding
    /// (`r0 × (i·r1)`, column index `i + b·I` — the layout [`TtCore::h`]
    /// produces).
    pub fn from_h(h: Matrix, r0: usize, i: usize, r1: usize) -> Self {
        assert_eq!(
            h.shape(),
            (r0, i * r1),
            "horizontal unfolding shape mismatch"
        );
        TtCore {
            r0,
            i,
            r1,
            data: h.reshaped(r0 * i, r1),
        }
    }

    /// An all-zero core.
    pub fn zeros(r0: usize, i: usize, r1: usize) -> Self {
        TtCore {
            r0,
            i,
            r1,
            data: Matrix::zeros(r0 * i, r1),
        }
    }

    /// A core with i.i.d. standard-normal entries.
    pub fn gaussian(r0: usize, i: usize, r1: usize, rng: &mut impl rand::Rng) -> Self {
        TtCore {
            r0,
            i,
            r1,
            data: Matrix::gaussian(r0 * i, r1, rng),
        }
    }

    /// Left rank `r0`.
    #[inline]
    pub fn r0(&self) -> usize {
        self.r0
    }

    /// Mode (physical) dimension `i`.
    #[inline]
    pub fn mode_dim(&self) -> usize {
        self.i
    }

    /// Right rank `r1`.
    #[inline]
    pub fn r1(&self) -> usize {
        self.r1
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.r0 * self.i * self.r1
    }

    /// True if the core holds no entries (a rank owning zero slices).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vertical unfolding `V(T) ∈ R^{(r0·i) × r1}` — zero-copy.
    #[inline]
    pub fn v(&self) -> MatRef<'_> {
        self.data.view()
    }

    /// Column-permuted horizontal unfolding `H(T) ∈ R^{r0 × (i·r1)}`
    /// (column index `i + b·I`) — zero-copy. Only legitimate for
    /// column-permutation-invariant operations (`W·H`, `H·Hᵀ`).
    #[inline]
    pub fn h(&self) -> MatRef<'_> {
        self.data.view_as(self.r0, self.i * self.r1)
    }

    /// The vertical unfolding as an owned matrix (clones the buffer).
    pub fn v_matrix(&self) -> Matrix {
        self.data.clone()
    }

    /// Entry `(a, i, b)`.
    #[inline]
    pub fn at(&self, a: usize, i: usize, b: usize) -> f64 {
        debug_assert!(a < self.r0 && i < self.i && b < self.r1);
        self.data[(a + i * self.r0, b)]
    }

    /// Mutable entry `(a, i, b)`.
    #[inline]
    pub fn at_mut(&mut self, a: usize, i: usize, b: usize) -> &mut f64 {
        debug_assert!(a < self.r0 && i < self.i && b < self.r1);
        &mut self.data[(a + i * self.r0, b)]
    }

    /// Slice `T(:, i, :)` as an owned `r0 × r1` matrix.
    pub fn slice(&self, i: usize) -> Matrix {
        assert!(i < self.i);
        Matrix::from_fn(self.r0, self.r1, |a, b| self.at(a, i, b))
    }

    /// Keeps only the mode indices in `lo..hi` (the 1-D distribution cut).
    pub fn mode_block(&self, lo: usize, hi: usize) -> TtCore {
        assert!(lo <= hi && hi <= self.i);
        let n = hi - lo;
        let mut out = TtCore::zeros(self.r0, n, self.r1);
        for b in 0..self.r1 {
            for i in 0..n {
                for a in 0..self.r0 {
                    *out.at_mut(a, i, b) = self.at(a, lo + i, b);
                }
            }
        }
        out
    }

    /// Mode-2 unfolding `i × (r0·r1)` (column index `a + b·r0`) — this one
    /// needs a copy; it is only used to apply a physical-mode operator
    /// (`core ×₂ A`).
    pub fn mode_unfold(&self) -> Matrix {
        Matrix::from_fn(self.i, self.r0 * self.r1, |i, c| {
            let a = c % self.r0;
            let b = c / self.r0;
            self.at(a, i, b)
        })
    }

    /// Inverse of [`TtCore::mode_unfold`]: rebuilds a core from a mode-2
    /// unfolding with a (possibly new) mode dimension.
    pub fn from_mode_unfold(m: &Matrix, r0: usize, r1: usize) -> TtCore {
        assert_eq!(m.cols(), r0 * r1, "mode unfolding width mismatch");
        let i = m.rows();
        let mut out = TtCore::zeros(r0, i, r1);
        for c in 0..r0 * r1 {
            let a = c % r0;
            let b = c / r0;
            for ii in 0..i {
                *out.at_mut(a, ii, b) = m[(ii, c)];
            }
        }
        out
    }

    /// Frobenius norm of the core.
    pub fn fro_norm(&self) -> f64 {
        self.data.fro_norm()
    }

    /// Consumes the core, returning the vertical-unfolding matrix.
    pub fn into_v(self) -> Matrix {
        self.data
    }
}

impl std::fmt::Debug for TtCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TtCore({}×{}×{})", self.r0, self.i, self.r1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn layout_round_trips() {
        let mut c = TtCore::zeros(2, 3, 4);
        *c.at_mut(1, 2, 3) = 7.0;
        assert_eq!(c.at(1, 2, 3), 7.0);
        // buffer position: a + i*r0 + b*r0*i = 1 + 2*2 + 3*6 = 23
        assert_eq!(c.v().as_slice()[23], 7.0);
        // V view: row a + i*r0 = 5, col b = 3
        assert_eq!(c.v().at(5, 3), 7.0);
        // H view: row a = 1, col i + b*I = 2 + 3*3 = 11
        assert_eq!(c.h().at(1, 11), 7.0);
    }

    #[test]
    fn slice_extracts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let c = TtCore::gaussian(3, 4, 2, &mut rng);
        let s = c.slice(2);
        for a in 0..3 {
            for b in 0..2 {
                assert_eq!(s[(a, b)], c.at(a, 2, b));
            }
        }
    }

    #[test]
    fn mode_block_takes_slices() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let c = TtCore::gaussian(2, 10, 3, &mut rng);
        let b = c.mode_block(3, 7);
        assert_eq!(b.mode_dim(), 4);
        for i in 0..4 {
            assert_eq!(b.slice(i), c.slice(3 + i));
        }
    }

    #[test]
    fn mode_unfold_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let c = TtCore::gaussian(2, 5, 3, &mut rng);
        let m = c.mode_unfold();
        assert_eq!(m.shape(), (5, 6));
        let back = TtCore::from_mode_unfold(&m, 2, 3);
        assert_eq!(back, c);
    }

    #[test]
    fn from_h_matches_layout() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let c = TtCore::gaussian(3, 4, 2, &mut rng);
        let h_owned = c.h().to_matrix();
        let back = TtCore::from_h(h_owned, 3, 4, 2);
        assert_eq!(back, c);
    }

    #[test]
    fn empty_core_is_empty() {
        let c = TtCore::zeros(3, 0, 2);
        assert!(c.is_empty());
        assert_eq!(c.v().shape(), (0, 2));
    }
}
