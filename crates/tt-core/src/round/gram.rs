//! TT-Rounding via Gram SVD — Algorithms 5 and 6 of the paper.
//!
//! The structured Gram computation of §IV-B is the heart of the method: one
//! pass over the TT chain yields *every* bond's Gram matrix as a by-product
//! of computing the last one, each step being a core-times-matrix (local)
//! followed by a two-mode core contraction (local `gemm` + one allreduce).
//! The non-symmetric update (`gemm` + `gemm`) is used, as the paper chooses
//! empirically; see `bench/gram_sweep` for the symmetric-variant ablation.
//!
//! Every Gram contraction dispatches on
//! [`RoundingOptions::gram_precision`](crate::round::RoundingOptions): the
//! default accumulates in `f64`, while [`GramPrecision::F32`] routes the same
//! products through the `f32` blocked kernels (`tt_linalg::block32`) — the
//! Gram floor moves from `sqrt(eps_f64)` to `sqrt(eps_f32)`, which is free
//! whenever the requested tolerance is looser than `~1e-3`. Cores, truncation
//! factors, and core updates always stay `f64`.

use crate::core::TtCore;
use crate::round::truncate::{gram_truncate, SingularSide};
use crate::round::{GramOrder, GramPrecision, RoundReport, RoundingOptions};
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{
    gemm_alloc, gemm_f32_v, gemm_v, syrk_f32_v, syrk_v, MatMut, MatRef, Matrix, Trans,
};

/// Per-sweep buffer pool for the rounding hot path.
///
/// Every core visit in a Gram sweep or truncation pass produces a temporary
/// the size of a core unfolding (and a small Gram matrix); without reuse the
/// sequence variant performs `O(N)` fresh heap allocations *per bond* and a
/// full-train clone up front. The pool recycles retired buffers (contracted
/// temporaries, replaced cores, consumed Gram matrices) into subsequent
/// [`SweepScratch::take`] requests, best-fit by capacity. The counters make
/// the saving observable in tests.
///
/// Numerics are untouched: a recycled buffer is fully overwritten (`gemm`
/// with `beta = 0` clears it first), so results are bitwise identical to the
/// allocate-fresh path.
pub(crate) struct SweepScratch {
    free: Vec<Vec<f64>>,
    /// `take` calls that had to allocate a fresh buffer.
    pub(crate) fresh: usize,
    /// `take` calls served from the recycle pool.
    pub(crate) reuses: usize,
}

impl SweepScratch {
    pub(crate) fn new() -> Self {
        SweepScratch {
            free: Vec::new(),
            fresh: 0,
            reuses: 0,
        }
    }

    /// A `rows × cols` matrix backed by a recycled buffer when one fits
    /// (smallest adequate capacity wins, so a big retired core buffer is not
    /// burned on a tiny Gram output), freshly allocated otherwise. Contents
    /// are zeroed either way.
    pub(crate) fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        let mut best: Option<(usize, usize)> = None;
        for (pos, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= need && best.is_none_or(|(_, c)| cap < c) {
                best = Some((pos, cap));
            }
        }
        match best {
            Some((pos, _)) => {
                let mut buf = self.free.swap_remove(pos);
                buf.clear();
                buf.resize(need, 0.0);
                self.reuses += 1;
                Matrix::from_col_major(rows, cols, buf)
            }
            None => {
                self.fresh += 1;
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Returns a retired matrix's buffer to the pool.
    pub(crate) fn recycle(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Returns a retired core's buffer to the pool.
    pub(crate) fn recycle_core(&mut self, c: TtCore) {
        self.recycle(c.into_v());
    }
}

/// `H(T) ← W · H(T)`: pre-multiplies the horizontal unfolding by a small
/// replicated matrix. Communication-free under the 1-D distribution.
pub(crate) fn premult_h(core: &TtCore, w: &Matrix) -> TtCore {
    assert_eq!(w.cols(), core.r0(), "premult_h: dimension mismatch");
    let out = gemm_alloc(Trans::No, w.view(), Trans::No, core.h(), 1.0);
    TtCore::from_h(out, w.rows(), core.mode_dim(), core.r1())
}

/// [`premult_h`] writing into a scratch-pool buffer.
pub(crate) fn premult_h_s(core: &TtCore, w: &Matrix, s: &mut SweepScratch) -> TtCore {
    assert_eq!(w.cols(), core.r0(), "premult_h: dimension mismatch");
    let mut out = s.take(w.rows(), core.mode_dim() * core.r1());
    gemm_v(
        Trans::No,
        w.view(),
        Trans::No,
        core.h(),
        1.0,
        0.0,
        out.view_mut(),
    );
    TtCore::from_h(out, w.rows(), core.mode_dim(), core.r1())
}

/// `V(T) ← V(T) · W`: post-multiplies the vertical unfolding by a small
/// replicated matrix. Communication-free under the 1-D distribution.
pub(crate) fn postmult_v(core: &TtCore, w: &Matrix) -> TtCore {
    assert_eq!(w.rows(), core.r1(), "postmult_v: dimension mismatch");
    let out = gemm_alloc(Trans::No, core.v(), Trans::No, w.view(), 1.0);
    TtCore::from_v(out, core.r0(), core.mode_dim(), w.cols())
}

/// [`postmult_v`] writing into a scratch-pool buffer.
pub(crate) fn postmult_v_s(core: &TtCore, w: &Matrix, s: &mut SweepScratch) -> TtCore {
    assert_eq!(w.rows(), core.r1(), "postmult_v: dimension mismatch");
    let mut out = s.take(core.r0() * core.mode_dim(), w.cols());
    gemm_v(
        Trans::No,
        core.v(),
        Trans::No,
        w.view(),
        1.0,
        0.0,
        out.view_mut(),
    );
    TtCore::from_v(out, core.r0(), core.mode_dim(), w.cols())
}

/// Gram-product `gemm`, dispatched on the accumulation precision
/// ([`RoundingOptions::gram_precision`]). Only the *Gram* contractions run
/// through here — core updates (`premult_h`/`postmult_v`) always stay `f64`,
/// since the cores themselves are never demoted.
fn gram_gemm_v(
    p: GramPrecision,
    ta: Trans,
    a: MatRef<'_>,
    tb: Trans,
    b: MatRef<'_>,
    c: MatMut<'_>,
) {
    match p {
        GramPrecision::F64 => gemm_v(ta, a, tb, b, 1.0, 0.0, c),
        GramPrecision::F32 => gemm_f32_v(ta, a, tb, b, 1.0, 0.0, c),
    }
}

/// Gram-product `syrk` (`AᵀA`), dispatched on the accumulation precision.
fn gram_syrk_v(p: GramPrecision, a: MatRef<'_>, alpha: f64) -> Matrix {
    match p {
        GramPrecision::F64 => syrk_v(a, alpha),
        GramPrecision::F32 => syrk_f32_v(a, alpha),
    }
}

/// Two-mode contraction `H(A)·H(B)ᵀ` (local part) + allreduce.
fn contract_h(
    comm: &impl Communicator,
    a: &TtCore,
    b: &TtCore,
    s: &mut SweepScratch,
    p: GramPrecision,
) -> Matrix {
    let mut g = s.take(a.r0(), b.r0());
    gram_gemm_v(p, Trans::No, a.h(), Trans::Yes, b.h(), g.view_mut());
    comm.allreduce_sum(g.as_mut_slice());
    g
}

/// Two-mode contraction `V(A)ᵀ·V(B)` (local part) + allreduce.
fn contract_v(
    comm: &impl Communicator,
    a: &TtCore,
    b: &TtCore,
    s: &mut SweepScratch,
    p: GramPrecision,
) -> Matrix {
    let mut g = s.take(a.r1(), b.r1());
    gram_gemm_v(p, Trans::Yes, a.v(), Trans::No, b.v(), g.view_mut());
    comm.allreduce_sum(g.as_mut_slice());
    g
}

/// A bond Gram matrix whose allreduce may still be in flight.
///
/// The pipelined truncation loops post each bond's reduction as soon as the
/// contributing core reaches its final local value, keep computing the
/// current bond's independent core updates, and rebuild the reduced matrix
/// only when the next truncation decision needs it. With `overlap` off the
/// post site waits immediately, which is the serial-wait schedule — both
/// consume identical bytes in identical order, so they are bitwise equal.
enum PostedGram<'a> {
    InFlight {
        req: tt_comm::Request<'a>,
        rows: usize,
        cols: usize,
    },
    Done(Matrix),
    /// Placeholder left behind by [`take_wait`](Self::take_wait); every
    /// loop iteration repopulates the slot before the next wait reads it.
    Taken,
}

impl PostedGram<'_> {
    fn wait(self) -> Matrix {
        match self {
            PostedGram::InFlight { req, rows, cols } => {
                Matrix::from_col_major(rows, cols, req.wait())
            }
            PostedGram::Done(m) => m,
            PostedGram::Taken => unreachable!("PostedGram waited twice"),
        }
    }

    /// [`wait`](Self::wait) through a `&mut` binding (for loop-carried
    /// posts), leaving the non-allocating placeholder behind.
    fn take_wait(&mut self) -> Matrix {
        std::mem::replace(self, PostedGram::Taken).wait()
    }
}

/// Local SYRK `V(A)ᵀ·V(A)` + posted allreduce (left Gram of a bond).
fn post_gram_syrk<'a>(
    comm: &'a impl Communicator,
    core: &TtCore,
    p: GramPrecision,
    overlap: bool,
) -> PostedGram<'a> {
    let g = gram_syrk_v(p, core.v(), 1.0);
    let (rows, cols) = (g.rows(), g.cols());
    let posted = PostedGram::InFlight {
        req: comm.iallreduce_sum(g.into_vec()),
        rows,
        cols,
    };
    if overlap {
        posted
    } else {
        PostedGram::Done(posted.wait())
    }
}

/// Local `H(A)·H(B)ᵀ` + posted allreduce ([`contract_h`], deferred wait).
fn post_contract_h<'a>(
    comm: &'a impl Communicator,
    a: &TtCore,
    b: &TtCore,
    s: &mut SweepScratch,
    p: GramPrecision,
    overlap: bool,
) -> PostedGram<'a> {
    let mut g = s.take(a.r0(), b.r0());
    gram_gemm_v(p, Trans::No, a.h(), Trans::Yes, b.h(), g.view_mut());
    let (rows, cols) = (g.rows(), g.cols());
    let posted = PostedGram::InFlight {
        req: comm.iallreduce_sum(g.into_vec()),
        rows,
        cols,
    };
    if overlap {
        posted
    } else {
        PostedGram::Done(posted.wait())
    }
}

/// Local `V(A)ᵀ·V(B)` + posted allreduce ([`contract_v`], deferred wait).
fn post_contract_v<'a>(
    comm: &'a impl Communicator,
    a: &TtCore,
    b: &TtCore,
    s: &mut SweepScratch,
    p: GramPrecision,
    overlap: bool,
) -> PostedGram<'a> {
    let mut g = s.take(a.r1(), b.r1());
    gram_gemm_v(p, Trans::Yes, a.v(), Trans::No, b.v(), g.view_mut());
    let (rows, cols) = (g.rows(), g.cols());
    let posted = PostedGram::InFlight {
        req: comm.iallreduce_sum(g.into_vec()),
        rows,
        cols,
    };
    if overlap {
        posted
    } else {
        PostedGram::Done(posted.wait())
    }
}

/// Both Gram sweeps, ping-ponged so each chain's allreduce is in flight
/// while the *other* chain runs its local contraction (Alg. 5's two sweeps
/// are mutually independent). Produces exactly the matrices of
/// [`gram_sweep_left_s`] and [`gram_sweep_right_s`] — each chain performs
/// the same local ops on the same inputs, only the wait sites move.
fn gram_sweeps_interleaved(
    comm: &impl Communicator,
    x: &TtTensor,
    s: &mut SweepScratch,
    p: GramPrecision,
    overlap: bool,
) -> (Vec<Matrix>, Vec<Matrix>) {
    let n = x.order();
    let mut gl = vec![Matrix::identity(1); n + 1];
    let mut gr = vec![Matrix::identity(1); n];
    let mut posted_r = Some(post_contract_h(
        comm,
        x.core(n - 1),
        x.core(n - 1),
        s,
        p,
        overlap,
    ));
    let mut posted_l = Some(post_gram_syrk(comm, x.core(0), p, overlap));
    let (mut kr, mut kl) = (n - 1, 1);
    while posted_r.is_some() || posted_l.is_some() {
        if let Some(pr) = posted_r.take() {
            gr[kr] = pr.wait();
            if kr > 0 {
                let c = postmult_v_s(x.core(kr - 1), &gr[kr], s);
                posted_r = Some(post_contract_h(comm, &c, x.core(kr - 1), s, p, overlap));
                s.recycle_core(c);
                kr -= 1;
            }
        }
        if let Some(pl) = posted_l.take() {
            gl[kl] = pl.wait();
            if kl < n {
                let e = premult_h_s(x.core(kl), &gl[kl], s);
                posted_l = Some(post_contract_v(comm, x.core(kl), &e, s, p, overlap));
                s.recycle_core(e);
                kl += 1;
            }
        }
    }
    (gl, gr)
}

/// Right-to-left Gram sweep (Alg. 6 lines 2–6 / Alg. 5 lines 7–11).
///
/// Returns `g` with `g[b] = G_b^R` for `0 ≤ b ≤ N-1`; `g[0]` is the `1×1`
/// matrix `‖X‖²`.
pub fn gram_sweep_right(comm: &impl Communicator, x: &TtTensor) -> Vec<Matrix> {
    gram_sweep_right_s(comm, x, &mut SweepScratch::new(), GramPrecision::F64)
}

fn gram_sweep_right_s(
    comm: &impl Communicator,
    x: &TtTensor,
    s: &mut SweepScratch,
    p: GramPrecision,
) -> Vec<Matrix> {
    let n = x.order();
    let mut g = vec![Matrix::identity(1); n];
    g[n - 1] = contract_h(comm, x.core(n - 1), x.core(n - 1), s, p);
    for k in (0..n - 1).rev() {
        let c = postmult_v_s(x.core(k), &g[k + 1], s);
        g[k] = contract_h(comm, &c, x.core(k), s, p);
        s.recycle_core(c);
    }
    g
}

/// Left-to-right Gram sweep (Alg. 5 lines 2–6, extended one step to obtain
/// the norm).
///
/// Returns `g` with `g[b] = G_b^L` for `1 ≤ b ≤ N`; `g[N]` is the `1×1`
/// matrix `‖X‖²`. (`g[0]` is unused and left as the `1×1` identity.)
pub fn gram_sweep_left(comm: &impl Communicator, x: &TtTensor) -> Vec<Matrix> {
    gram_sweep_left_s(comm, x, &mut SweepScratch::new(), GramPrecision::F64)
}

fn gram_sweep_left_s(
    comm: &impl Communicator,
    x: &TtTensor,
    s: &mut SweepScratch,
    p: GramPrecision,
) -> Vec<Matrix> {
    let n = x.order();
    let mut g = vec![Matrix::identity(1); n + 1];
    let mut g1 = gram_syrk_v(p, x.core(0).v(), 1.0);
    comm.allreduce_sum(g1.as_mut_slice());
    g[1] = g1;
    for k in 1..n {
        let e = premult_h_s(x.core(k), &g[k], s);
        g[k + 1] = contract_v(comm, x.core(k), &e, s, p);
        s.recycle_core(e);
    }
    g
}

/// Right-to-left Gram sweep, *symmetric* variant (§IV-B): each step
/// Cholesky-factors the previous Gram matrix (`G = L Lᵀ`), contracts the
/// core with the triangular factor (`trmm`, half the flops of `gemm`), and
/// forms the next Gram matrix with a symmetric rank-k update (`syrk`,
/// again half the flops) — producing an exactly symmetric result.
///
/// The paper measures this variant *slower in practice* despite the halved
/// arithmetic (gemm beats trmm+syrk per flop on their platform) and uses
/// the non-symmetric [`gram_sweep_right`]; the `gram_sweep` bench reproduces
/// that ablation.
pub fn gram_sweep_right_symmetric(comm: &impl Communicator, x: &TtTensor) -> Vec<Matrix> {
    let n = x.order();
    let mut g = vec![Matrix::identity(1); n];
    {
        let mut gn = tt_linalg::syrk_nt_v(x.core(n - 1).h(), 1.0);
        comm.allreduce_sum(gn.as_mut_slice());
        g[n - 1] = gn;
    }
    for k in (0..n - 1).rev() {
        let core = x.core(k);
        // Factor G_{k+1} = L Lᵀ; a Gram matrix can be numerically
        // semi-definite, so fall back to the pivoted factor when the
        // unpivoted Cholesky hits a non-positive pivot.
        let prev = &g[k + 1];
        let d_core = match tt_linalg::cholesky(prev) {
            Ok(l) => {
                let mut v = core.v_matrix();
                tt_linalg::trmm_right_lower(&mut v, &l);
                TtCore::from_v(v, core.r0(), core.mode_dim(), core.r1())
            }
            Err(_) => {
                let pc = tt_linalg::pivoted_cholesky(prev, f64::EPSILON);
                let m = pc.factor_unpivoted(); // r1 × rank
                postmult_v(core, &m)
            }
        };
        let mut gk = tt_linalg::syrk_nt_v(d_core.h(), 1.0);
        comm.allreduce_sum(gk.as_mut_slice());
        g[k] = gk;
    }
    g
}

fn epsilon0(norm: f64, tolerance: f64, n_modes: usize) -> f64 {
    if n_modes <= 1 {
        0.0
    } else {
        norm * tolerance / ((n_modes - 1) as f64).sqrt()
    }
}

/// TT-Rounding via Gram SVD, *sequence* variant (Alg. 6), distributed.
///
/// `x` is this rank's local block (the full tensor under
/// [`tt_comm::SelfComm`]). `order` selects the RLR (as printed in the paper)
/// or LRL sweep ordering.
pub fn round_gram_seq_dist(
    comm: &impl Communicator,
    x: &TtTensor,
    opts: &RoundingOptions,
    order: GramOrder,
) -> (TtTensor, RoundReport) {
    round_gram_seq_dist_owned(comm, x.clone(), opts, order)
}

/// By-value variant of [`round_gram_seq_dist`]: rounds the train **in
/// place** instead of cloning it, and recycles retired core buffers through
/// a per-sweep [`SweepScratch`] pool. The numerical result is identical;
/// callers that discard their input (the solver inner loops) save the full
/// train copy plus `O(order)` temporary allocations per sweep.
pub fn round_gram_seq_dist_owned(
    comm: &impl Communicator,
    x: TtTensor,
    opts: &RoundingOptions,
    order: GramOrder,
) -> (TtTensor, RoundReport) {
    let mut scratch = SweepScratch::new();
    round_gram_seq_scratch(comm, x, opts, order, &mut scratch)
}

pub(crate) fn round_gram_seq_scratch(
    comm: &impl Communicator,
    mut y: TtTensor,
    opts: &RoundingOptions,
    order: GramOrder,
    scratch: &mut SweepScratch,
) -> (TtTensor, RoundReport) {
    let n = y.order();
    let ranks_before = y.ranks();
    if n == 1 {
        let norm = crate::dist::norm_local(comm, &y);
        return (
            y,
            RoundReport {
                norm,
                ranks_before: ranks_before.clone(),
                ranks_after: ranks_before,
                truncations: vec![],
            },
        );
    }

    let mut truncations = Vec::with_capacity(n - 1);

    let norm = match order {
        GramOrder::Rlr => {
            let gr = gram_sweep_right_s(comm, &y, scratch, opts.gram_precision);
            let norm = gr[0][(0, 0)].max(0.0).sqrt();
            let eps0 = epsilon0(norm, opts.tolerance, n);
            // Left-to-right truncation; left cores stay orthonormal, the
            // singular values ride on the right factor. Bond b+1's left
            // Gram reads core b after its premult update but never the
            // postmultiplied core b-1, so the allreduce is posted right
            // after the premult and the postmult runs in its shadow.
            let mut posted = post_gram_syrk(comm, y.core(0), opts.gram_precision, opts.overlap);
            for (b, gr_b) in gr.iter().enumerate().take(n).skip(1) {
                let gl = posted.take_wait();
                let upd = gram_truncate(b, &gl, gr_b, eps0, opts.max_rank, SingularSide::Right);
                scratch.recycle(gl);
                let right = premult_h_s(y.core(b), &upd.w_right, scratch);
                let retired = std::mem::replace(y.core_mut(b), right);
                if b + 1 < n {
                    posted = post_gram_syrk(comm, y.core(b), opts.gram_precision, opts.overlap);
                }
                let left = postmult_v_s(y.core(b - 1), &upd.w_left, scratch);
                scratch.recycle_core(std::mem::replace(y.core_mut(b - 1), left));
                scratch.recycle_core(retired);
                truncations.push(upd.info);
            }
            for g in gr {
                scratch.recycle(g);
            }
            norm
        }
        GramOrder::Lrl => {
            let gl = gram_sweep_left_s(comm, &y, scratch, opts.gram_precision);
            let norm = gl[n][(0, 0)].max(0.0).sqrt();
            let eps0 = epsilon0(norm, opts.tolerance, n);
            // Right-to-left truncation; right cores stay orthonormal, the
            // singular values ride on the left factor. Bond b-1's right
            // Gram reads core b-1 after its postmult update but never the
            // premultiplied core b, so the allreduce is posted right after
            // the postmult and the premult runs in its shadow.
            let mut posted = post_contract_h(
                comm,
                y.core(n - 1),
                y.core(n - 1),
                scratch,
                opts.gram_precision,
                opts.overlap,
            );
            for b in (1..n).rev() {
                let gr = posted.take_wait();
                let upd = gram_truncate(b, &gl[b], &gr, eps0, opts.max_rank, SingularSide::Left);
                scratch.recycle(gr);
                let left = postmult_v_s(y.core(b - 1), &upd.w_left, scratch);
                let retired = std::mem::replace(y.core_mut(b - 1), left);
                if b > 1 {
                    posted = post_contract_h(
                        comm,
                        y.core(b - 1),
                        y.core(b - 1),
                        scratch,
                        opts.gram_precision,
                        opts.overlap,
                    );
                }
                let right = premult_h_s(y.core(b), &upd.w_right, scratch);
                scratch.recycle_core(std::mem::replace(y.core_mut(b), right));
                scratch.recycle_core(retired);
                truncations.push(upd.info);
            }
            for g in gl {
                scratch.recycle(g);
            }
            norm
        }
    };

    let ranks_after = y.ranks();
    (
        y,
        RoundReport {
            norm,
            ranks_before,
            ranks_after,
            truncations,
        },
    )
}

/// TT-Rounding via Gram SVD, *simultaneous* variant (Alg. 5), distributed.
///
/// Both Gram sweeps are precomputed from the original cores; every bond is
/// then truncated independently with the singular values split evenly
/// between the adjacent cores.
pub fn round_gram_sim_dist(
    comm: &impl Communicator,
    x: &TtTensor,
    opts: &RoundingOptions,
) -> (TtTensor, RoundReport) {
    round_gram_sim_dist_owned(comm, x.clone(), opts)
}

/// By-value variant of [`round_gram_sim_dist`]: truncates the train in
/// place, with retired buffers recycled through a per-sweep pool (see
/// [`round_gram_seq_dist_owned`]).
pub fn round_gram_sim_dist_owned(
    comm: &impl Communicator,
    mut y: TtTensor,
    opts: &RoundingOptions,
) -> (TtTensor, RoundReport) {
    let n = y.order();
    let ranks_before = y.ranks();
    if n == 1 {
        let norm = crate::dist::norm_local(comm, &y);
        return (
            y,
            RoundReport {
                norm,
                ranks_before: ranks_before.clone(),
                ranks_after: ranks_before,
                truncations: vec![],
            },
        );
    }

    let mut scratch = SweepScratch::new();
    // The two sweeps are mutually independent chains: ping-pong them so one
    // chain's allreduce flies while the other runs its local contraction.
    let (gl, gr) =
        gram_sweeps_interleaved(comm, &y, &mut scratch, opts.gram_precision, opts.overlap);
    let norm = gr[0][(0, 0)].max(0.0).sqrt();
    let eps0 = epsilon0(norm, opts.tolerance, n);

    let mut truncations = Vec::with_capacity(n - 1);
    for b in 1..n {
        let upd = gram_truncate(b, &gl[b], &gr[b], eps0, opts.max_rank, SingularSide::Split);
        let left = postmult_v_s(y.core(b - 1), &upd.w_left, &mut scratch);
        let right = premult_h_s(y.core(b), &upd.w_right, &mut scratch);
        scratch.recycle_core(std::mem::replace(y.core_mut(b - 1), left));
        scratch.recycle_core(std::mem::replace(y.core_mut(b), right));
        truncations.push(upd.info);
    }

    let ranks_after = y.ranks();
    (
        y,
        RoundReport {
            norm,
            ranks_before,
            ranks_after,
            truncations,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::{round_gram_lrl, round_gram_rlr, round_gram_simultaneous};
    use tt_comm::SelfComm;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    /// A tensor whose TT ranks are formally doubled (X + X = 2X).
    fn redundant(dims: &[usize], ranks: &[usize], seed: u64) -> (TtTensor, TtTensor) {
        let mut r = rng(seed);
        let base = TtTensor::random(dims, ranks, &mut r);
        let doubled = base.add(&base);
        (base, doubled)
    }

    #[test]
    fn gram_sweeps_match_explicit_unfolding_grams() {
        let mut r = rng(1);
        let x = TtTensor::random(&[4, 3, 5, 2], &[3, 4, 2], &mut r);
        let comm = SelfComm::new();
        let gl = gram_sweep_left(&comm, &x);
        let gr = gram_sweep_right(&comm, &x);
        let d = x.to_dense();
        let norm2 = d.fro_norm() * d.fro_norm();
        assert!((gl[4][(0, 0)] - norm2).abs() < 1e-9 * (1.0 + norm2));
        assert!((gr[0][(0, 0)] - norm2).abs() < 1e-9 * (1.0 + norm2));
        // Check G_b^L = unfolding-gram at bond b against the dense tensor:
        // X_(1:b) is (prod dims[..b]) × (prod dims[b..]); G^L = AᵀA with
        // A = X_(1:b)... but A here includes the bond index: A is the
        // (prod dims[..b]) × R_b matrix Q·V; instead verify the invariant
        // trace(G_b^L · G_b^R) = ‖X‖² which couples both sweeps.
        for b in 1..4 {
            let mut tr = 0.0;
            for i in 0..gl[b].rows() {
                for j in 0..gl[b].cols() {
                    tr += gl[b][(i, j)] * gr[b][(j, i)];
                }
            }
            assert!(
                (tr - norm2).abs() < 1e-8 * (1.0 + norm2),
                "bond {b}: trace {tr} vs norm² {norm2}"
            );
        }
    }

    #[test]
    fn symmetric_sweep_matches_nonsymmetric() {
        let mut r = rng(21);
        let x = TtTensor::random(&[5, 4, 6, 3], &[4, 5, 3], &mut r);
        let comm = SelfComm::new();
        let g_ns = gram_sweep_right(&comm, &x);
        let g_sym = gram_sweep_right_symmetric(&comm, &x);
        for b in 0..x.order() {
            let scale = 1.0 + g_ns[b].max_abs();
            assert!(
                g_ns[b].max_abs_diff(&g_sym[b]) < 1e-9 * scale,
                "bond {b} mismatch"
            );
            // The symmetric variant is exactly symmetric by construction.
            for i in 0..g_sym[b].rows() {
                for j in 0..g_sym[b].cols() {
                    assert_eq!(g_sym[b][(i, j)], g_sym[b][(j, i)]);
                }
            }
        }
    }

    #[test]
    fn symmetric_sweep_survives_rank_deficiency() {
        // A redundant tensor has singular Gram matrices: the pivoted
        // fallback must engage without panicking.
        let (_, doubled) = {
            let mut r = rng(22);
            let base = TtTensor::random(&[4, 5, 4], &[2, 2], &mut r);
            (base.clone(), base.add(&base))
        };
        let comm = SelfComm::new();
        let g_ns = gram_sweep_right(&comm, &doubled);
        let g_sym = gram_sweep_right_symmetric(&comm, &doubled);
        for b in 0..doubled.order() {
            let scale = 1.0 + g_ns[b].max_abs();
            assert!(g_ns[b].max_abs_diff(&g_sym[b]) < 1e-8 * scale, "bond {b}");
        }
    }

    #[test]
    fn rlr_recovers_redundant_ranks() {
        let (base, doubled) = redundant(&[5, 4, 6, 5], &[3, 2, 4], 2);
        assert_eq!(doubled.ranks(), vec![1, 6, 4, 8, 1]);
        let rounded = round_gram_rlr(&doubled, 1e-10);
        assert_eq!(
            rounded.ranks(),
            vec![1, 3, 2, 4, 1],
            "ranks must be recovered"
        );
        // and the value is 2·base
        let mut expect = base.clone();
        expect.scale(2.0);
        let err = rounded.sub(&expect).norm();
        assert!(err < 1e-8 * (1.0 + expect.norm()), "err {err}");
    }

    #[test]
    fn lrl_recovers_redundant_ranks() {
        let (base, doubled) = redundant(&[4, 6, 3, 5], &[2, 3, 2], 3);
        let rounded = round_gram_lrl(&doubled, 1e-10);
        assert_eq!(rounded.ranks(), vec![1, 2, 3, 2, 1]);
        let mut expect = base.clone();
        expect.scale(2.0);
        let err = rounded.sub(&expect).norm();
        assert!(err < 1e-8 * (1.0 + expect.norm()));
    }

    #[test]
    fn simultaneous_recovers_redundant_ranks() {
        let (base, doubled) = redundant(&[5, 3, 4], &[3, 2], 4);
        let rounded = round_gram_simultaneous(&doubled, 1e-10);
        assert_eq!(rounded.ranks(), vec![1, 3, 2, 1]);
        let mut expect = base.clone();
        expect.scale(2.0);
        let err = rounded.sub(&expect).norm();
        // The attainable accuracy of Gram-based truncation is ~√ε‖X‖: the
        // singular values pass through the squared Gram spectrum, so half
        // the digits are lost (the paper's stated trade-off). At ‖X‖ ≈ 35
        // a 1e-8 relative margin sits exactly on that floor and misses by
        // ~1.3× for some random instances; 5e-8 clears the floor while
        // still asserting far more accuracy than the 1e-10 request alone.
        assert!(err < 5e-8 * (1.0 + expect.norm()), "err={err:e}");
    }

    #[test]
    fn error_respects_tolerance() {
        let mut r = rng(5);
        let x = TtTensor::random(&[6, 5, 4, 5], &[8, 9, 7], &mut r);
        let xnorm = x.norm();
        for tol in [1e-1, 1e-2, 1e-4] {
            for (name, y) in [
                ("rlr", round_gram_rlr(&x, tol)),
                ("lrl", round_gram_lrl(&x, tol)),
                ("sim", round_gram_simultaneous(&x, tol)),
            ] {
                let err = y.sub(&x).norm();
                assert!(
                    err <= tol * xnorm * 1.5 + 1e-12,
                    "{name} tol={tol}: err {err} vs bound {}",
                    tol * xnorm
                );
            }
        }
    }

    #[test]
    fn rounding_orthonormal_invariants() {
        // After RLR rounding, left cores are orthonormal (V-gram = I);
        // after LRL, right cores are row-orthonormal (H-gram = I).
        let (_, doubled) = redundant(&[4, 5, 4, 3], &[3, 3, 2], 6);
        let comm = SelfComm::new();
        let (y, _) = round_gram_seq_dist(
            &comm,
            &doubled,
            &RoundingOptions::with_tolerance(1e-10),
            GramOrder::Rlr,
        );
        for k in 0..y.order() - 1 {
            let g = tt_linalg::syrk_v(y.core(k).v(), 1.0);
            let id = Matrix::identity(g.rows());
            assert!(
                g.max_abs_diff(&id) < 1e-7,
                "core {k} not orthonormal after RLR"
            );
        }
        let (y, _) = round_gram_seq_dist(
            &comm,
            &doubled,
            &RoundingOptions::with_tolerance(1e-10),
            GramOrder::Lrl,
        );
        for k in 1..y.order() {
            // Same symmetric H·Hᵀ kernel the production sweep uses.
            let g = tt_linalg::syrk_nt_v(y.core(k).h(), 1.0);
            let id = Matrix::identity(g.rows());
            assert!(
                g.max_abs_diff(&id) < 1e-7,
                "core {k} not row-orthonormal after LRL"
            );
        }
    }

    #[test]
    fn max_rank_cap_is_enforced() {
        let mut r = rng(7);
        let x = TtTensor::random(&[5, 6, 5], &[7, 8], &mut r);
        let comm = SelfComm::new();
        let opts = RoundingOptions::with_tolerance(1e-14).max_rank(3);
        let (y, report) = round_gram_seq_dist(&comm, &x, &opts, GramOrder::Rlr);
        assert!(y.max_rank() <= 3);
        assert_eq!(report.ranks_after, vec![1, 3, 3, 1]);
    }

    #[test]
    fn report_norm_matches_tensor_norm() {
        let mut r = rng(8);
        let x = TtTensor::random(&[6, 4, 5], &[3, 4], &mut r);
        let comm = SelfComm::new();
        let (_, report) = round_gram_seq_dist(
            &comm,
            &x,
            &RoundingOptions::with_tolerance(1e-8),
            GramOrder::Rlr,
        );
        let expect = x.norm();
        assert!((report.norm - expect).abs() < 1e-9 * (1.0 + expect));
        assert_eq!(report.ranks_before, vec![1, 3, 4, 1]);
    }

    #[test]
    fn idempotent_on_already_rounded() {
        let (_, doubled) = redundant(&[5, 4, 5], &[3, 3], 9);
        let once = round_gram_rlr(&doubled, 1e-9);
        let twice = round_gram_rlr(&once, 1e-9);
        assert_eq!(once.ranks(), twice.ranks());
        let err = twice.sub(&once).norm();
        assert!(err < 1e-8 * (1.0 + once.norm()));
    }

    #[test]
    fn single_mode_tensor_is_untouched() {
        let mut r = rng(10);
        let x = TtTensor::random(&[7], &[], &mut r);
        let y = round_gram_rlr(&x, 1e-3);
        assert_eq!(x, y);
    }

    #[test]
    fn owned_variants_match_borrowed_bitwise() {
        let (_, doubled) = redundant(&[5, 4, 6, 5], &[3, 2, 4], 31);
        let comm = SelfComm::new();
        let opts = RoundingOptions::with_tolerance(1e-9);
        for order in [GramOrder::Rlr, GramOrder::Lrl] {
            let (a, ra) = round_gram_seq_dist(&comm, &doubled, &opts, order);
            let (b, rb) = round_gram_seq_dist_owned(&comm, doubled.clone(), &opts, order);
            assert_eq!(a, b, "owned seq ({order:?}) must match borrowed exactly");
            assert_eq!(ra.ranks_after, rb.ranks_after);
        }
        let (a, _) = round_gram_sim_dist(&comm, &doubled, &opts);
        let (b, _) = round_gram_sim_dist_owned(&comm, doubled.clone(), &opts);
        assert_eq!(a, b, "owned sim must match borrowed exactly");
    }

    #[test]
    fn scratch_pool_recycles_most_buffers() {
        let (_, doubled) = redundant(&[6, 5, 6, 5, 4], &[4, 3, 4, 3], 32);
        let comm = SelfComm::new();
        let opts = RoundingOptions::with_tolerance(1e-9);
        let mut scratch = SweepScratch::new();
        let (_, report) =
            round_gram_seq_scratch(&comm, doubled, &opts, GramOrder::Rlr, &mut scratch);
        assert_eq!(report.truncations.len(), 4);
        let total = scratch.fresh + scratch.reuses;
        // Every `take` would have been a heap allocation before the pool;
        // with recycling the fresh count collapses to the pool warm-up.
        assert!(
            scratch.reuses * 2 > total,
            "expected most takes recycled: fresh={} reuses={}",
            scratch.fresh,
            scratch.reuses
        );
    }

    #[test]
    fn f32_gram_rounding_recovers_ranks_at_loose_tolerance() {
        // With f32 Gram accumulation the attainable floor is
        // sqrt(eps_f32) ≈ 3.4e-4; at a 3e-3 tolerance the redundant ranks
        // must still be recovered exactly and the value reproduced within
        // the requested bound.
        let (base, doubled) = redundant(&[5, 4, 6, 5], &[3, 2, 4], 40);
        let mut expect = base.clone();
        expect.scale(2.0);
        let comm = SelfComm::new();
        let tol = 3e-3;
        let opts = RoundingOptions::with_tolerance(tol).gram_f32();
        let seq = |order| round_gram_seq_dist(&comm, &doubled, &opts, order);
        for (name, (y, report)) in [
            ("rlr", seq(GramOrder::Rlr)),
            ("lrl", seq(GramOrder::Lrl)),
            ("sim", round_gram_sim_dist(&comm, &doubled, &opts)),
        ] {
            assert_eq!(y.ranks(), vec![1, 3, 2, 4, 1], "{name}: ranks");
            let err = y.sub(&expect).norm();
            assert!(
                err <= tol * expect.norm() * 1.5 + 1e-12,
                "{name}: err {err:e} vs tol {tol:e}"
            );
            // The norm estimate comes out of the f32 Gram sweep; it must
            // still agree with the true norm to f32 accuracy.
            let nrm = doubled.norm();
            assert!(
                (report.norm - nrm).abs() < 1e-5 * (1.0 + nrm),
                "{name}: norm {} vs {}",
                report.norm,
                nrm
            );
        }
    }

    #[test]
    fn f32_gram_error_scales_with_sqrt_eps_f32() {
        // Componentwise agreement with the f64 oracle at a tolerance well
        // above both floors: the two precisions must produce the same rank
        // decisions and tensors within a sqrt(eps_f32)-scaled bound.
        let (_, doubled) = redundant(&[4, 6, 3, 5], &[2, 3, 2], 41);
        let comm = SelfComm::new();
        let tol = 1e-2;
        let opts64 = RoundingOptions::with_tolerance(tol);
        let opts32 = RoundingOptions::with_tolerance(tol).gram_f32();
        let floor = (f32::EPSILON as f64).sqrt(); // ≈ 3.4e-4
        for order in [GramOrder::Rlr, GramOrder::Lrl] {
            let (y64, _) = round_gram_seq_dist(&comm, &doubled, &opts64, order);
            let (y32, _) = round_gram_seq_dist(&comm, &doubled, &opts32, order);
            assert_eq!(y64.ranks(), y32.ranks(), "{order:?}: rank decisions");
            let err = y32.sub(&y64).norm();
            assert!(
                err < 8.0 * floor * (1.0 + y64.norm()),
                "{order:?}: f32-vs-f64 err {err:e} above sqrt(eps_f32) scale"
            );
        }
    }

    #[test]
    fn zero_tensor_rounds_without_nans() {
        let cores = vec![
            crate::core::TtCore::zeros(1, 4, 3),
            crate::core::TtCore::zeros(3, 5, 2),
            crate::core::TtCore::zeros(2, 3, 1),
        ];
        let x = TtTensor::new(cores);
        for y in [
            round_gram_rlr(&x, 1e-8),
            round_gram_lrl(&x, 1e-8),
            round_gram_simultaneous(&x, 1e-8),
        ] {
            assert!(y.to_dense().as_slice().iter().all(|v| v.is_finite()));
            assert!(y.norm() < 1e-12);
        }
    }
}
