//! Two-sided sketching (generalized Nyström / streaming TT approximation,
//! arXiv 2110.04393 §3.4).
//!
//! Draws *two* independent random TT sketch tensors — a right sketch of
//! ranks `ℓ_b = min(target_b, R_b)` and a wider left sketch of ranks
//! `m_b = min(ℓ_b + oversampling, R_b)` — and contracts each against `X`
//! once (a right-to-left and a left-to-right structured sweep, one allreduce
//! per mode each). No orthogonalization pass touches `X` at all; the rounded
//! cores come out of the small replicated cross matrices:
//!
//! ```text
//!   Y_0     = X_0 · W_1
//!   Y_k     = Ψ_k⁺ · U_k · X_k · W_{k+1}      (0 < k < N-1)
//!   Y_{N-1} = Ψ_{N-1}⁺ · U_{N-1} · X_{N-1}
//! ```
//!
//! with `W_b` the right-sketch contraction (`R_b × ℓ_b`), `U_b` the
//! left-sketch contraction (`m_b × R_b`), and `Ψ_b = U_b W_b` (`m_b × ℓ_b`)
//! pseudo-inverted redundantly on every rank. This is the streaming-friendly
//! member of the family: both sweeps read `X` exactly once and are
//! independent, at the price of a pseudo-inverse conditioning factor in the
//! error (no orthonormal cores, no error estimate).

use super::sketch::{gaussian_tt_sketch, TAG_TWO_SIDED_LEFT, TAG_TWO_SIDED_RIGHT};
use super::{BondSketch, RandomizedOptions, RandomizedReport, RandomizedVariant};
use crate::core::TtCore;
use crate::round::gram::{postmult_v_s, premult_h_s, SweepScratch};
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{gemm_alloc, Matrix, Trans};

/// Relative singular-value cutoff for the `Ψ⁺` pseudo-inverses. Gaussian
/// cross matrices are well conditioned when the sketch captures the true
/// rank; directions below the cutoff are pure sketch noise on rank-deficient
/// inputs (σ ≈ ε·σ_max) and inverting them would amplify rounding error
/// catastrophically.
const PINV_RCUT: f64 = 1e-9;

/// Moore–Penrose pseudo-inverse of a small replicated matrix, with singular
/// values below `PINV_RCUT · σ_max` treated as zero.
fn pinv(a: &Matrix) -> Matrix {
    let svd = tt_linalg::jacobi_svd(a);
    let smax = svd.singular_values.first().copied().unwrap_or(0.0);
    let cut = smax * PINV_RCUT;
    // pinv = V Σ⁺ Uᵀ, built as (U Σ⁺ᵀ)(Vᵀ)ᵀ → gemm(V·scaled-Uᵀ).
    let mut u_scaled = svd.u;
    for (j, &s) in svd.singular_values.iter().enumerate() {
        let inv = if s > cut { 1.0 / s } else { 0.0 };
        u_scaled.scale_col(j, inv);
    }
    gemm_alloc(Trans::No, svd.v.view(), Trans::Yes, u_scaled.view(), 1.0)
}

pub(super) fn run(
    comm: &impl Communicator,
    x: &TtTensor,
    global_dims: &[usize],
    opts: &RandomizedOptions,
) -> (TtTensor, RandomizedReport) {
    let n = x.order();
    let p = comm.size();
    let rank = comm.rank();
    let mut report = RandomizedReport::new(RandomizedVariant::TwoSided, x.ranks());
    let mut scratch = SweepScratch::new();

    let ranks_x = x.ranks();
    let right_ranks: Vec<usize> = (0..n - 1)
        .map(|b| opts.target_ranks[b].min(ranks_x[b + 1]))
        .collect();
    let left_ranks: Vec<usize> = (0..n - 1)
        .map(|b| (right_ranks[b] + opts.oversampling).min(ranks_x[b + 1]))
        .collect();

    let right = gaussian_tt_sketch(
        global_dims,
        &right_ranks,
        p,
        rank,
        opts.seed,
        comm.is_model(),
        TAG_TWO_SIDED_RIGHT,
    );
    let left = gaussian_tt_sketch(
        global_dims,
        &left_ranks,
        p,
        rank,
        opts.seed,
        comm.is_model(),
        TAG_TWO_SIDED_LEFT,
    );

    // ---- Right-to-left sweep: W_b = (cores b.. of X)·(cores b.. of right),
    // W_b ∈ R^{R_b × ℓ_b}; one allreduce per mode. ----
    let mut w: Vec<Matrix> = vec![Matrix::identity(1); n];
    {
        let (cx, cr) = (x.core(n - 1), right.core(n - 1));
        let mut m = gemm_alloc(Trans::No, cx.h(), Trans::Yes, cr.h(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        w[n - 1] = m;
    }
    for k in (1..n - 1).rev() {
        let (cx, cr) = (x.core(k), right.core(k));
        let e = postmult_v_s(cx, &w[k + 1], &mut scratch);
        let mut m = gemm_alloc(Trans::No, e.h(), Trans::Yes, cr.h(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        scratch.recycle_core(e);
        w[k] = m;
    }

    // ---- Left-to-right sweep: U_b = (cores ..b of left)ᵀ·(cores ..b of X),
    // U_b ∈ R^{m_b × R_b}; one allreduce per mode. ----
    let mut u: Vec<Matrix> = vec![Matrix::identity(1); n];
    {
        let (cl, cx) = (left.core(0), x.core(0));
        let mut m = gemm_alloc(Trans::Yes, cl.v(), Trans::No, cx.v(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        u[1] = m;
    }
    for k in 1..n - 1 {
        // E = U_k · H(X_k): a (m_k, I, R_{k+1}) core; then contract with the
        // left-sketch core over (left-rank, mode).
        let e = premult_h_s(x.core(k), &u[k], &mut scratch);
        let mut m = gemm_alloc(Trans::Yes, left.core(k).v(), Trans::No, e.v(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        scratch.recycle_core(e);
        u[k + 1] = m;
    }

    // ---- Core recovery: everything below is replicated small algebra plus
    // communication-free local core updates. ----
    let mut cores_out: Vec<TtCore> = Vec::with_capacity(n);
    cores_out.push(postmult_v_s(x.core(0), &w[1], &mut scratch));
    for k in 1..n {
        // pre_k = Ψ_k⁺ U_k : ℓ_k × R_k (replicated).
        let psi = gemm_alloc(Trans::No, u[k].view(), Trans::No, w[k].view(), 1.0);
        let pre = gemm_alloc(Trans::No, pinv(&psi).view(), Trans::No, u[k].view(), 1.0);
        let core = if k < n - 1 {
            let z = postmult_v_s(x.core(k), &w[k + 1], &mut scratch);
            let out = premult_h_s(&z, &pre, &mut scratch);
            scratch.recycle_core(z);
            out
        } else {
            premult_h_s(x.core(k), &pre, &mut scratch)
        };
        report.bonds.push(BondSketch {
            bond: k,
            sketch_cols: left_ranks[k - 1],
            rank: right_ranks[k - 1],
            error2: None,
        });
        cores_out.push(core);
        scratch.recycle(psi);
    }
    let y = TtTensor::new(cores_out);
    report.ranks_after = y.ranks();
    (y, report)
}
