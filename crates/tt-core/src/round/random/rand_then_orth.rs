//! Randomize-then-orthogonalize (SISC 2023 / arXiv 2110.04393 Alg. 3.3).
//!
//! Sketch the unfolding at every bond with a random TT tensor of the target
//! ranks, then make one left-to-right pass that orthogonalizes the *small*
//! sketched matrices only. Compared to Alg. 2 it performs no large QRs;
//! compared to Algs. 5/6 it needs only one structured-contraction sweep. The
//! price is a fixed *a-priori* target rank (plus oversampling) instead of an
//! ε guarantee.
//!
//! Communication structure matches the Gram variants: one allreduce per mode
//! in the sketch sweep and one per mode in the truncation sweep, small QRs
//! done redundantly — so it parallelizes exactly like Alg. 6.

use super::sketch::{gaussian_tt_sketch, TAG_TT_SKETCH};
use super::{BondSketch, RandomizedOptions, RandomizedReport, RandomizedVariant};
use crate::core::TtCore;
use crate::round::gram::{postmult_v, premult_h};
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{gemm_alloc, gemm_v, Matrix, Trans};

pub(super) fn run(
    comm: &impl Communicator,
    x: &TtTensor,
    global_dims: &[usize],
    opts: &RandomizedOptions,
) -> (TtTensor, RandomizedReport) {
    let n = x.order();
    let p = comm.size();
    let rank = comm.rank();
    let mut report = RandomizedReport::new(RandomizedVariant::RandThenOrth, x.ranks());

    // Sketch ranks: target + oversampling, capped by the bond dimensions of
    // x (sketching wider than the bond is wasted work).
    let ranks_x = x.ranks();
    let sketch_ranks: Vec<usize> = (0..n - 1)
        .map(|b| (opts.target_ranks[b] + opts.oversampling).min(ranks_x[b + 1]))
        .collect();

    // Build this rank's local block of the (conceptually global) random
    // sketch tensor: slice i of sketch core k is seeded by (seed, k, i_glob),
    // so every rank generates identical slices for the indices it owns.
    let sketch = gaussian_tt_sketch(
        global_dims,
        &sketch_ranks,
        p,
        rank,
        opts.seed,
        comm.is_model(),
        TAG_TT_SKETCH,
    );

    // ---- Right-to-left sketch sweep: W_b = (cores b.. of X) ⋅ (cores b..
    // of R), contracting all physical modes; W_b ∈ R^{R_b × ℓ_b}. ----
    // Same structure as the inner-product sweep, one allreduce per mode.
    let mut w: Vec<Matrix> = vec![Matrix::identity(1); n];
    // w[n-1] corresponds to the contraction of the last cores.
    {
        let (cx, cr) = (x.core(n - 1), sketch.core(n - 1));
        let mut m = gemm_alloc(Trans::No, cx.h(), Trans::Yes, cr.h(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        w[n - 1] = m;
    }
    for k in (1..n - 1).rev() {
        // E = X_k ×₃ w[k+1]ᵀ : post-multiply V(X_k) by w (R_{k+1} × ℓ_{k+1}).
        let (cx, cr) = (x.core(k), sketch.core(k));
        let e = postmult_v(cx, &w[k + 1]);
        // Contract E with R_k over (mode, right-rank): H(E)·H(R_k)ᵀ.
        let mut m = gemm_alloc(Trans::No, e.h(), Trans::Yes, cr.h(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        w[k] = m;
    }

    // ---- Left-to-right orthogonalization pass on sketched cores. ----
    let mut cores_out: Vec<TtCore> = Vec::with_capacity(n);
    let mut cur = x.core(0).clone();
    for k in 0..n - 1 {
        // Z = V(cur)·W_{k+1}: (r0·I_k) × ℓ — the sketched unfolding.
        let z = gemm_alloc(Trans::No, cur.v(), Trans::No, w[k + 1].view(), 1.0);
        // Thin Q via TSQR (small: ℓ columns), then cut the oversampled
        // sketch down to the target rank through the ℓ×ℓ R factor's SVD
        // (plain column truncation of Q would pick an arbitrary subspace —
        // Q's columns are not importance-ordered).
        let (q, r) = crate::round::tsqr::tsqr(comm, &z);
        let l_rank = q.cols().min(opts.target_ranks[k].min(z.cols()));
        let q = if l_rank < q.cols() {
            let svd = tt_linalg::jacobi_svd(&r);
            let u_lead = svd.u.truncate_cols(l_rank);
            gemm_alloc(Trans::No, q.view(), Trans::No, u_lead.view(), 1.0)
        } else {
            q
        };
        let y_core = TtCore::from_v(q, cur.r0(), cur.mode_dim(), l_rank);
        // M = Y_kᵀ ⋅ cur (contract left rank + mode): ℓ × R_{k+1};
        // local gemm + allreduce.
        let mut m = Matrix::zeros(l_rank, cur.r1());
        gemm_v(
            Trans::Yes,
            y_core.v(),
            Trans::No,
            cur.v(),
            1.0,
            0.0,
            m.view_mut(),
        );
        comm.allreduce_sum(m.as_mut_slice());
        report.bonds.push(BondSketch {
            bond: k + 1,
            sketch_cols: sketch_ranks[k],
            rank: l_rank,
            error2: None,
        });
        // Push the remainder into the next core.
        cur = premult_h(x.core(k + 1), &m);
        cores_out.push(y_core);
    }
    cores_out.push(cur);
    let y = TtTensor::new(cores_out);
    report.ranks_after = y.ranks();
    (y, report)
}
