//! Randomized TT-Rounding — the paper's stated future-work direction
//! (§VI: "we plan in the future to study randomized methods to perform
//! rounding procedures ... they reduce arithmetic further and also rely on
//! matrix multiplication"), grown into the published successor family:
//!
//! * [`RandomizedVariant::RandThenOrth`] — *randomize-then-orthogonalize*
//!   (Al Daas, Ballard, Cazeaux, Hallman, et al., "Randomized algorithms
//!   for rounding in the tensor-train format", SISC 2023 / arXiv
//!   2110.04393 Alg. 3.3): sketch every unfolding with a random TT tensor,
//!   then one left-to-right pass orthogonalizing the small sketched
//!   matrices. Cheapest; no error estimate.
//! * [`RandomizedVariant::OrthThenRand`] — *orthogonalize-then-randomize*
//!   (arXiv 2110.04393 Alg. 3.2): right-orthogonalize first, then sketch
//!   with small replicated Gaussians. One extra TSQR sweep buys a
//!   *computable* per-bond error bound ([`RandomizedReport::certified_error`])
//!   because the trailing cores stay row-orthonormal while truncating.
//! * [`RandomizedVariant::TwoSided`] — *two-sided sketching* (the
//!   generalized-Nyström / streaming-TT-approximation scheme of arXiv
//!   2110.04393 §3.4): independent left and right random TT sketches, no
//!   orthogonalization pass at all; cores are recovered through pseudo-
//!   inverses of the small cross matrices `Ψ_b = U_b W_b`.
//! * [`RandomizedVariant::AdaptiveKr`] — *adaptive Khatri–Rao rounding*
//!   (arXiv 2511.03598): Khatri–Rao-structured sketch matrices whose column
//!   count grows geometrically until a posterior ε estimate certifies
//!   `‖X − Y‖ ≤ ε‖X‖`, removing the fixed-target-rank limitation of the
//!   other three. Selected by the [`RandomizedOptions::epsilon`] builder.
//!
//! Every variant is written once against [`tt_comm::Communicator`] and
//! parallelizes exactly like the Gram variants: replicated seeded sketches,
//! local `gemm`s, one allreduce per mode per sweep, small factorizations
//! done redundantly — so all rank decisions are taken identically on every
//! rank from replicated (already-allreduced) quantities.

mod adaptive;
mod orth_then_rand;
mod rand_then_orth;
pub(crate) mod sketch;
mod two_sided;

use crate::tensor::TtTensor;
use tt_comm::Communicator;

/// Which member of the randomized-rounding family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RandomizedVariant {
    /// Randomize-then-orthogonalize (SISC 2023 Alg. 3.3) — the default.
    #[default]
    RandThenOrth,
    /// Orthogonalize-then-randomize (Alg. 3.2); computable error bound.
    OrthThenRand,
    /// Two-sided sketching (generalized Nyström, §3.4); no orthogonalization.
    TwoSided,
    /// Adaptive Khatri–Rao sketching with an ε certificate (arXiv
    /// 2511.03598); ignores the target ranks.
    AdaptiveKr,
}

/// Options for randomized rounding.
#[derive(Debug, Clone)]
pub struct RandomizedOptions {
    /// Target ranks after rounding (one per interior bond, or a single value
    /// broadcast to all bonds via [`RandomizedOptions::uniform`]). Ignored by
    /// [`RandomizedVariant::AdaptiveKr`], which derives ranks from `epsilon`.
    pub target_ranks: Vec<usize>,
    /// Oversampling added to every sketch rank (standard randomized-LA
    /// practice; 5–10 gives high success probability). The adaptive variant
    /// uses it as the initial Khatri–Rao column count.
    pub oversampling: usize,
    /// Seed for the sketch tensor (deterministic given the seed, and — in a
    /// distributed run — must be identical on all ranks so the replicated
    /// sketch cores agree).
    pub seed: u64,
    /// Which algorithm of the family to run.
    pub variant: RandomizedVariant,
    /// Relative accuracy target for [`RandomizedVariant::AdaptiveKr`]
    /// (`‖X − Y‖ ≤ ε‖X‖`); `None` for the fixed-rank variants.
    pub epsilon: Option<f64>,
}

impl RandomizedOptions {
    /// Explicit per-bond target ranks, default everything else.
    pub fn with_ranks(target_ranks: Vec<usize>) -> Self {
        RandomizedOptions {
            target_ranks,
            oversampling: 8,
            seed: 0x5eed,
            variant: RandomizedVariant::RandThenOrth,
            epsilon: None,
        }
    }

    /// Uniform target rank at every bond.
    pub fn uniform(rank: usize, n_modes: usize) -> Self {
        Self::with_ranks(vec![rank; n_modes.saturating_sub(1)])
    }

    /// Adaptive (ε-certified) rounding: no target ranks needed.
    pub fn adaptive(epsilon: f64) -> Self {
        Self::with_ranks(Vec::new()).epsilon(epsilon)
    }

    /// Sets the oversampling parameter.
    pub fn oversample(mut self, p: usize) -> Self {
        self.oversampling = p;
        self
    }

    /// Sets the sketch seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Selects a family member explicitly.
    pub fn variant(mut self, v: RandomizedVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the relative accuracy target **and** selects the adaptive
    /// Khatri–Rao variant (the only one that can honor it).
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.epsilon = Some(eps);
        self.variant = RandomizedVariant::AdaptiveKr;
        self
    }
}

/// Per-bond record of one randomized truncation.
#[derive(Debug, Clone)]
pub struct BondSketch {
    /// Bond index `b` (between cores `b-1` and `b`).
    pub bond: usize,
    /// Sketch columns spent at this bond (final count, after any adaptive
    /// growth).
    pub sketch_cols: usize,
    /// Retained rank.
    pub rank: usize,
    /// Certified squared truncation error at this bond, measured in the
    /// tensor metric — only for the variants that can compute it
    /// (orthogonalize-then-randomize and adaptive).
    pub error2: Option<f64>,
}

/// Diagnostics of one randomized rounding call.
#[derive(Debug, Clone)]
pub struct RandomizedReport {
    /// Which variant produced the result.
    pub variant: RandomizedVariant,
    /// `‖X‖` where the algorithm computes it as a by-product
    /// (orthogonalize-then-randomize: from the right-orthogonalized first
    /// core; adaptive: from the Gram sweep). `None` for the sketch-only
    /// variants, which never see the norm.
    pub norm: Option<f64>,
    /// Rank chain before rounding.
    pub ranks_before: Vec<usize>,
    /// Rank chain after rounding.
    pub ranks_after: Vec<usize>,
    /// Per-bond sketch records, in processing order.
    pub bonds: Vec<BondSketch>,
    /// A-priori certified *relative* error bound `√(Σ_b err_b²)/‖X‖`
    /// (valid because the certifying variants measure every bond error in
    /// the exact tensor metric while the committed cores stay orthonormal).
    pub certified_error: Option<f64>,
    /// Exact posterior relative error `‖X − Y‖/‖X‖` evaluated through TT
    /// inner products (adaptive variant only; costs one extra sweep).
    pub posterior_error: Option<f64>,
}

impl RandomizedReport {
    pub(crate) fn new(variant: RandomizedVariant, ranks_before: Vec<usize>) -> Self {
        RandomizedReport {
            variant,
            norm: None,
            ranks_before,
            ranks_after: Vec::new(),
            bonds: Vec::new(),
            certified_error: None,
            posterior_error: None,
        }
    }
}

/// Randomized TT-Rounding, distributed, with diagnostics.
///
/// `x` is this rank's local block. All sketches are replicated by seeding
/// (see [`sketch`]), so the result is deterministic given `opts.seed` and
/// every rank takes identical rank decisions.
pub fn round_randomized_dist_report(
    comm: &impl Communicator,
    x: &TtTensor,
    global_dims: &[usize],
    opts: &RandomizedOptions,
) -> (TtTensor, RandomizedReport) {
    let n = x.order();
    assert_eq!(global_dims.len(), n, "global dimension arity mismatch");
    if opts.variant != RandomizedVariant::AdaptiveKr {
        assert_eq!(
            opts.target_ranks.len(),
            n - 1,
            "need one target rank per bond"
        );
    }
    if n == 1 {
        let mut report = RandomizedReport::new(opts.variant, x.ranks());
        report.ranks_after = x.ranks();
        return (x.clone(), report);
    }
    match opts.variant {
        RandomizedVariant::RandThenOrth => rand_then_orth::run(comm, x, global_dims, opts),
        RandomizedVariant::OrthThenRand => orth_then_rand::run(comm, x, global_dims, opts),
        RandomizedVariant::TwoSided => two_sided::run(comm, x, global_dims, opts),
        RandomizedVariant::AdaptiveKr => adaptive::run(comm, x, global_dims, opts),
    }
}

/// Randomized TT-Rounding, distributed. See
/// [`round_randomized_dist_report`] for the report-returning form.
pub fn round_randomized_dist(
    comm: &impl Communicator,
    x: &TtTensor,
    global_dims: &[usize],
    opts: &RandomizedOptions,
) -> TtTensor {
    round_randomized_dist_report(comm, x, global_dims, opts).0
}

/// Sequential convenience wrapper with diagnostics.
pub fn round_randomized_report(
    x: &TtTensor,
    opts: &RandomizedOptions,
) -> (TtTensor, RandomizedReport) {
    let dims = x.dims();
    round_randomized_dist_report(&tt_comm::SelfComm::new(), x, &dims, opts)
}

/// Sequential convenience wrapper.
pub fn round_randomized(x: &TtTensor, opts: &RandomizedOptions) -> TtTensor {
    round_randomized_report(x, opts).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    /// The fixed-rank variants, for matrix-style tests.
    pub(super) const FIXED_RANK: [RandomizedVariant; 3] = [
        RandomizedVariant::RandThenOrth,
        RandomizedVariant::OrthThenRand,
        RandomizedVariant::TwoSided,
    ];

    #[test]
    fn recovers_redundant_ranks_exactly_all_variants() {
        let mut r = rng(1);
        let base = TtTensor::random(&[10, 8, 9, 7], &[3, 4, 3], &mut r);
        let doubled = base.add(&base);
        let mut expect = base.clone();
        expect.scale(2.0);
        for variant in FIXED_RANK {
            let opts = RandomizedOptions::with_ranks(vec![3, 4, 3])
                .oversample(4)
                .seed(99)
                .variant(variant);
            let y = round_randomized(&doubled, &opts);
            assert_eq!(y.ranks(), vec![1, 3, 4, 3, 1], "{variant:?}");
            let err = y.to_dense().fro_dist(&expect.to_dense());
            assert!(err < 1e-8 * (1.0 + expect.norm()), "{variant:?}: err {err}");
        }
    }

    #[test]
    fn uniform_target_rank_caps() {
        let mut r = rng(2);
        let x = TtTensor::random(&[8, 8, 8], &[6, 6], &mut r);
        for variant in FIXED_RANK {
            let y = round_randomized(&x, &RandomizedOptions::uniform(3, 3).variant(variant));
            assert_eq!(y.ranks(), vec![1, 3, 3, 1], "{variant:?}");
        }
    }

    #[test]
    fn near_low_rank_tensor_approximated_well() {
        // base (rank 3) + tiny noise (rank 2): rounding to rank 3 captures
        // the dominant part, for every fixed-rank variant.
        let mut r = rng(3);
        let base = TtTensor::random(&[12, 10, 11], &[3, 3], &mut r);
        let mut noise = TtTensor::random(&[12, 10, 11], &[2, 2], &mut r);
        let scale = 1e-6 * base.norm() / noise.norm();
        noise.scale(scale);
        let x = base.add(&noise);
        for variant in FIXED_RANK {
            let opts = RandomizedOptions::uniform(3, 3)
                .oversample(5)
                .variant(variant);
            let y = round_randomized(&x, &opts);
            let err = y.to_dense().fro_dist(&x.to_dense()) / x.norm();
            // Two-sided pays an extra pseudo-inverse conditioning factor on
            // top of the sketch constant; the one-sided variants don't.
            let bound = match variant {
                RandomizedVariant::TwoSided => 1e-3,
                _ => 1e-4,
            };
            assert!(err < bound, "{variant:?}: err {err}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r = rng(4);
        let x = TtTensor::random(&[7, 6, 8], &[5, 4], &mut r);
        for variant in FIXED_RANK {
            let opts = RandomizedOptions::uniform(3, 3).seed(1234).variant(variant);
            let a = round_randomized(&x, &opts);
            let b = round_randomized(&x, &opts);
            assert_eq!(a, b, "{variant:?}");
        }
        let opts = RandomizedOptions::adaptive(1e-6).seed(1234);
        let a = round_randomized(&x, &opts);
        let b = round_randomized(&x, &opts);
        assert_eq!(a, b, "adaptive");
    }

    #[test]
    fn distributed_matches_sequential() {
        let mut r = rng(5);
        let base = TtTensor::random(&[9, 8, 10], &[3, 2], &mut r);
        let x = base.add(&base);
        let dims = x.dims();
        let mut all: Vec<RandomizedOptions> = FIXED_RANK
            .iter()
            .map(|&v| {
                RandomizedOptions::with_ranks(vec![3, 2])
                    .oversample(4)
                    .seed(7)
                    .variant(v)
            })
            .collect();
        all.push(RandomizedOptions::adaptive(1e-7).seed(7));
        for opts in all {
            let seq = round_randomized(&x, &opts);
            for p in [2usize, 3] {
                let xs = x.clone();
                let dims2 = dims.clone();
                let opts2 = opts.clone();
                let gathered = tt_comm::run_verified(p, |comm| {
                    let local = crate::dist::scatter_tensor(&xs, &comm);
                    let y = round_randomized_dist(&comm, &local, &dims2, &opts2);
                    crate::dist::gather_tensor(&y, &dims2, &comm)
                });
                for g in &gathered {
                    assert_eq!(g.ranks(), seq.ranks(), "{:?} p={p}", opts.variant);
                    let gap = g.to_dense().fro_dist(&seq.to_dense());
                    assert!(
                        gap < 1e-8 * (1.0 + seq.norm()),
                        "{:?} p={p}: {gap}",
                        opts.variant
                    );
                }
            }
        }
    }

    #[test]
    fn sketch_ranks_capped_by_bond() {
        // target + oversampling larger than the formal rank: capped, and the
        // value is preserved exactly (no actual truncation happens).
        let mut r = rng(6);
        let x = TtTensor::random(&[6, 6, 6], &[3, 3], &mut r);
        for variant in FIXED_RANK {
            let y = round_randomized(&x, &RandomizedOptions::uniform(10, 3).variant(variant));
            assert!(y.max_rank() <= 3, "{variant:?}");
            let err = y.to_dense().fro_dist(&x.to_dense());
            assert!(err < 1e-8 * (1.0 + x.norm()), "{variant:?}: err {err}");
        }
    }

    #[test]
    fn orth_then_rand_certificate_dominates_true_error() {
        let mut r = rng(7);
        let base = TtTensor::random(&[9, 7, 8, 6], &[3, 3, 2], &mut r);
        let mut noise = TtTensor::random(&[9, 7, 8, 6], &[2, 2, 2], &mut r);
        noise.scale(1e-3 * base.norm() / noise.norm());
        let x = base.add(&noise);
        let opts = RandomizedOptions::uniform(3, 4)
            .oversample(6)
            .variant(RandomizedVariant::OrthThenRand);
        let (y, report) = round_randomized_report(&x, &opts);
        let norm = report.norm.expect("orth-then-rand computes the norm");
        assert!((norm - x.norm()).abs() < 1e-9 * (1.0 + x.norm()));
        let certified = report.certified_error.expect("certificate expected");
        let true_err = y.to_dense().fro_dist(&x.to_dense()) / x.norm();
        // The certificate is an upper bound on the true error (up to the
        // sqrt(eps)-scale floor of finite-precision Gram arithmetic).
        assert!(
            true_err <= certified + 1e-8,
            "true {true_err} vs certified {certified}"
        );
    }

    #[test]
    fn adaptive_certifies_and_meets_epsilon() {
        let mut r = rng(8);
        let base = TtTensor::random(&[8, 9, 7, 8], &[3, 4, 3], &mut r);
        let x = base.add(&base);
        for eps in [1e-2, 1e-4, 1e-6] {
            let (y, report) = round_randomized_report(&x, &RandomizedOptions::adaptive(eps));
            let true_err = y.to_dense().fro_dist(&x.to_dense()) / x.norm();
            assert!(true_err <= eps, "eps={eps}: true error {true_err}");
            let posterior = report.posterior_error.expect("adaptive posterior");
            assert!(posterior <= eps, "eps={eps}: posterior {posterior}");
            // Redundant ranks must be detected: no bond can exceed the base.
            for (ra, rb) in y.ranks().iter().zip(base.ranks().iter()) {
                assert!(ra <= rb, "eps={eps}: ranks {:?}", y.ranks());
            }
        }
    }

    #[test]
    fn adaptive_loose_epsilon_truncates_harder_than_tight() {
        let mut r = rng(9);
        let x = TtTensor::random(&[8, 8, 8, 8], &[6, 6, 6], &mut r);
        let loose = round_randomized(&x, &RandomizedOptions::adaptive(0.5));
        let tight = round_randomized(&x, &RandomizedOptions::adaptive(1e-9));
        assert!(
            loose.max_rank() <= tight.max_rank(),
            "loose {:?} vs tight {:?}",
            loose.ranks(),
            tight.ranks()
        );
    }

    #[test]
    fn report_records_bonds_and_ranks() {
        let mut r = rng(10);
        let x = TtTensor::random(&[7, 6, 5], &[4, 4], &mut r);
        for variant in FIXED_RANK {
            let opts = RandomizedOptions::uniform(2, 3).variant(variant);
            let (y, report) = round_randomized_report(&x, &opts);
            assert_eq!(report.variant, variant);
            assert_eq!(report.ranks_before, vec![1, 4, 4, 1]);
            assert_eq!(report.ranks_after, y.ranks());
            assert_eq!(report.bonds.len(), 2);
            for (b, rec) in report.bonds.iter().enumerate() {
                assert_eq!(rec.bond, b + 1);
                assert_eq!(rec.rank, y.ranks()[b + 1]);
            }
        }
    }
}
