//! Orthogonalize-then-randomize (arXiv 2110.04393 Alg. 3.2).
//!
//! Right-orthogonalize first (a TSQR sweep, exactly like the Alg. 2
//! baseline's phase 1), then sweep left-to-right sketching each unfolding
//! with a *small replicated* Gaussian — the sketch lives entirely in bond
//! space (`R_{k+1} × ℓ`), so no sketch tensor has to be distributed at all.
//!
//! The extra orthogonalization buys the property the cheaper variants lack:
//! while truncating bond `k`, the trailing cores are row-orthonormal and the
//! committed leading cores are orthonormal, so the *local* projection error
//! `‖V(cur) − Q Qᵀ V(cur)‖_F` **is** the tensor-metric error contribution of
//! that bond, and the total satisfies `‖X − Y‖² ≤ Σ_b err_b²` (the classic
//! TT-SVD projection lemma). The per-bond errors are computable from
//! replicated quantities — `‖cur‖² − ‖QᵀV(cur)‖²` — which yields the
//! [`RandomizedReport::certified_error`] bound at the cost of one scalar
//! allreduce per bond.

use super::sketch::{replicated_gaussian, TAG_ORTH_RAND};
use super::{BondSketch, RandomizedOptions, RandomizedReport, RandomizedVariant};
use crate::core::TtCore;
use crate::round::gram::premult_h;
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{gemm_alloc, gemm_v, Matrix, Trans};

pub(super) fn run(
    comm: &impl Communicator,
    x: &TtTensor,
    _global_dims: &[usize],
    opts: &RandomizedOptions,
) -> (TtTensor, RandomizedReport) {
    let n = x.order();
    let mut report = RandomizedReport::new(RandomizedVariant::OrthThenRand, x.ranks());

    // Phase 1: right-orthogonalize (cores 1..N get orthonormal H rows; the
    // whole norm concentrates in core 0, whose mode index is distributed).
    let y = crate::orthogonalize::orthogonalize_right(comm, x);
    let mut norm2 = [y.core(0).fro_norm().powi(2)];
    comm.allreduce_sum(&mut norm2);
    let norm = norm2[0].max(0.0).sqrt();
    report.norm = Some(norm);

    // Phase 2: left-to-right sketch-and-truncate.
    let mut cores_out: Vec<TtCore> = Vec::with_capacity(n);
    let mut certified2 = 0.0f64;
    let mut cur = y.core(0).clone();
    for k in 0..n - 1 {
        let r1 = cur.r1();
        let l_sketch = (opts.target_ranks[k] + opts.oversampling).min(r1);
        // Ω is replicated (bond space), so Z = V(cur)·Ω distributes by rows.
        let omega = replicated_gaussian(r1, l_sketch, opts.seed, TAG_ORTH_RAND, k);
        let z = gemm_alloc(Trans::No, cur.v(), Trans::No, omega.view(), 1.0);
        let (q, r) = crate::round::tsqr::tsqr(comm, &z);
        let l_rank = q.cols().min(opts.target_ranks[k].min(z.cols()));
        let q = if l_rank < q.cols() {
            // Importance-order the oversampled basis through R's SVD before
            // cutting (Q's raw columns are not ordered).
            let svd = tt_linalg::jacobi_svd(&r);
            let u_lead = svd.u.truncate_cols(l_rank);
            gemm_alloc(Trans::No, q.view(), Trans::No, u_lead.view(), 1.0)
        } else {
            q
        };
        let y_core = TtCore::from_v(q, cur.r0(), cur.mode_dim(), l_rank);
        // M = Y_kᵀ ⋅ cur: ℓ × R_{k+1}, local gemm + allreduce.
        let mut m = Matrix::zeros(l_rank, r1);
        gemm_v(
            Trans::Yes,
            y_core.v(),
            Trans::No,
            cur.v(),
            1.0,
            0.0,
            m.view_mut(),
        );
        comm.allreduce_sum(m.as_mut_slice());
        // Tensor-metric bond error: ‖cur − Q M‖² = ‖cur‖² − ‖M‖² (Q has
        // orthonormal columns), valid as a tensor error because the trailing
        // cores are still row-orthonormal.
        let mut cur2 = [cur.fro_norm().powi(2)];
        comm.allreduce_sum(&mut cur2);
        let err2 = (cur2[0] - m.fro_norm().powi(2)).max(0.0);
        certified2 += err2;
        report.bonds.push(BondSketch {
            bond: k + 1,
            sketch_cols: l_sketch,
            rank: l_rank,
            error2: Some(err2),
        });
        cur = premult_h(y.core(k + 1), &m);
        cores_out.push(y_core);
    }
    cores_out.push(cur);
    let out = TtTensor::new(cores_out);
    report.ranks_after = out.ranks();
    report.certified_error = Some(if norm > 0.0 {
        certified2.sqrt() / norm
    } else {
        0.0
    });
    (out, report)
}
