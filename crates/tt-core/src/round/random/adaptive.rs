//! Adaptive Khatri–Rao randomized rounding (arXiv 2511.03598).
//!
//! The fixed-rank family members need a target rank a priori; this variant
//! removes that limitation. At every bond it sketches the current unfolding
//! with an implicit **Khatri–Rao-structured** random matrix — column `c` of
//! the sketch is the suffix-train contraction with independent per-mode
//! Gaussian vectors `ω_{j}^{(c)}`, so a sketch of `s` columns costs one
//! `r0 × s` gemm + allreduce per suffix mode and never materializes a dense
//! `∏I_j × s` Gaussian — and **grows the column count geometrically** until
//! the retained subspace provably captures the bond to within its share of
//! the ε budget.
//!
//! The certificate is exact (not heuristic): one up-front right Gram sweep
//! (the paper's §IV-B machinery, reused verbatim) yields every suffix Gram
//! matrix `G_{k+1}^R = F_{k+1} F_{k+1}ᵀ`, and all bond decisions are taken
//! in the metric induced by `F` — singular values of `M·F` (with
//! `M = QᵀV(cur)`) are singular values of the bond unfolding *in tensor
//! space*, and the uncaptured energy `‖V(cur)F‖² − ‖QᵀV(cur)F‖²` is the
//! exact tensor-norm cost of the sketch's range deficiency. Since committed
//! prefix cores stay orthonormal, the projection errors telescope:
//! `‖X − Y‖² ≤ Σ_b err_b²` (TT-SVD projection lemma), each
//! `err_b² = capture_b² + tail_b²` computable from replicated quantities.
//! A final posterior check evaluates `‖X − Y‖` exactly through TT inner
//! products; on the (probabilistically rare) miss the whole pass retries
//! with a doubled initial sketch and a tighter per-bond budget.
//!
//! Like the Gram-SVD variants, the certificate rides on Gram arithmetic and
//! therefore inherits the `√ε_machine` accuracy floor of §II-B: requesting
//! ε below ~1e-8 degenerates gracefully to near-exact reproduction.

use super::sketch::{fill_kr_weights, local_mode_range};
use super::{BondSketch, RandomizedOptions, RandomizedReport, RandomizedVariant};
use crate::core::TtCore;
use crate::round::gram::{premult_h_s, SweepScratch};
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{gemm_alloc, gemm_v, syrk_v, Matrix, Trans};

/// Full-train retries when the posterior check misses (each retry doubles
/// the initial sketch width and halves the per-bond safety factor).
const MAX_ATTEMPTS: usize = 3;
/// ε when the caller selected the adaptive variant without setting one.
const DEFAULT_EPSILON: f64 = 1e-8;
/// Fraction of the per-bond budget the certificate is allowed to spend
/// (the slack absorbs the Gram-arithmetic floor).
const SAFETY: f64 = 0.9;

pub(super) fn run(
    comm: &impl Communicator,
    x: &TtTensor,
    global_dims: &[usize],
    opts: &RandomizedOptions,
) -> (TtTensor, RandomizedReport) {
    let n = x.order();
    let mut report = RandomizedReport::new(RandomizedVariant::AdaptiveKr, x.ranks());
    let eps = opts.epsilon.unwrap_or(DEFAULT_EPSILON).abs();

    // One structured Gram sweep: every suffix Gram matrix (the exact tensor
    // metric for every bond decision) plus the norm, for one allreduce per
    // mode — the same §IV-B pass the Gram-SVD variants are built on.
    let gr = crate::round::gram::gram_sweep_right(comm, x);
    let norm = gr[0][(0, 0)].max(0.0).sqrt();
    report.norm = Some(norm);
    if norm <= 0.0 {
        // Zero tensor: nothing to certify, nothing to truncate.
        report.ranks_after = x.ranks();
        report.certified_error = Some(0.0);
        report.posterior_error = Some(0.0);
        return (x.clone(), report);
    }
    // f[k] is the Gram factor of G_{k+1}^R: G = F·Fᵀ.
    let f: Vec<Matrix> = (1..n).map(|b| gram_factor(&gr[b], b)).collect();

    let mut attempt = 0;
    loop {
        let s0 = opts.oversampling.max(2) << attempt;
        let safety = SAFETY / (1u64 << attempt) as f64;
        let seed = opts.seed.wrapping_add(attempt as u64);
        let (y, bonds, certified2) =
            // analyze::allow(alloc_hot_path): the retry loop runs at most MAX_ATTEMPTS (=3) times and each pass must build its own output train + bond records — these are the result, not churn
            round_pass(comm, x, global_dims, seed, eps, safety, s0, &gr, &f, norm);
        // Posterior: est² = ‖X‖² + ‖Y‖² − 2⟨X,Y⟩, all through TT sweeps.
        let ip = crate::dist::inner_local(comm, x, &y);
        let ny2 = crate::dist::inner_local(comm, &y, &y);
        let posterior = (norm * norm + ny2 - 2.0 * ip).max(0.0).sqrt() / norm;
        attempt += 1;
        if posterior <= eps || attempt >= MAX_ATTEMPTS {
            report.bonds = bonds;
            report.certified_error = Some(certified2.max(0.0).sqrt() / norm);
            report.posterior_error = Some(posterior);
            report.ranks_after = y.ranks();
            return (y, report);
        }
    }
}

/// One full certify-as-you-go rounding pass.
#[allow(clippy::too_many_arguments)] // internal plumbing of one algorithm
fn round_pass(
    comm: &impl Communicator,
    x: &TtTensor,
    global_dims: &[usize],
    seed: u64,
    eps: f64,
    safety: f64,
    s0: usize,
    gr: &[Matrix],
    f: &[Matrix],
    norm: f64,
) -> (TtTensor, Vec<BondSketch>, f64) {
    let n = x.order();
    let p = comm.size();
    let rank = comm.rank();
    let is_model = comm.is_model();
    let mut scratch = SweepScratch::new();
    // Per-bond squared budget: ε₀² with ε₀ = safety·ε·‖X‖/√(N−1).
    let eps0 = safety * eps * norm / ((n - 1) as f64).sqrt();
    let budget2 = eps0 * eps0;

    let mut bonds = Vec::with_capacity(n - 1);
    let mut certified2 = 0.0f64;
    let mut cores_out: Vec<TtCore> = Vec::with_capacity(n);
    // Hoisted weight buffer for the Khatri–Rao column generator.
    let mut omega: Vec<f64> = Vec::new();
    let mut cur = x.core(0).clone();
    for k in 0..n - 1 {
        let r1 = cur.r1();
        // total2 = ‖V(cur)·F‖² = tr(C·G) with C = V(cur)ᵀV(cur) replicated.
        let mut c = syrk_v(cur.v(), 1.0);
        comm.allreduce_sum(c.as_mut_slice());
        let total2 = frob_inner(&c, &gr[k + 1]);
        scratch.recycle(c);

        let mut s = s0.min(r1).max(1);
        let mut w = kr_columns(
            comm,
            x,
            k,
            0,
            s,
            seed,
            global_dims,
            p,
            rank,
            is_model,
            &mut omega,
            &mut scratch,
        );
        // Grow the sketch until the ε₀ certificate holds (or the sketch
        // saturates the bond, at which point Q spans cur's full range).
        let (q, m, svd, l, err2) = loop {
            let z = gemm_alloc(Trans::No, cur.v(), Trans::No, w.view(), 1.0);
            let (q, _r) = crate::round::tsqr::tsqr(comm, &z);
            scratch.recycle(z);
            let mut m = scratch.take(q.cols(), r1);
            gemm_v(
                Trans::Yes,
                q.view(),
                Trans::No,
                cur.v(),
                1.0,
                0.0,
                m.view_mut(),
            );
            comm.allreduce_sum(m.as_mut_slice());
            // S = M·F: its singular values are the *tensor-space* singular
            // values of the captured part of the bond unfolding.
            let s_mat = gemm_alloc(Trans::No, m.view(), Trans::No, f[k].view(), 1.0);
            let svd = tt_linalg::jacobi_svd(&s_mat);
            scratch.recycle(s_mat);
            let s2: f64 = svd.singular_values.iter().map(|v| v * v).sum();
            let capture2 = (total2 - s2).max(0.0);
            match certify(capture2, &svd.singular_values, budget2) {
                Some((l, err2)) => break (q, m, svd, l, err2),
                None if s >= r1 => {
                    // Sketch saturated: keep the full numeric rank; the
                    // remaining gap is below the Gram floor and is recorded
                    // honestly in the certificate.
                    let smax = svd.singular_values.first().copied().unwrap_or(0.0);
                    let l = svd
                        .singular_values
                        .iter()
                        .filter(|&&v| v > smax * f64::EPSILON)
                        .count()
                        .max(1);
                    let tail2: f64 = svd.singular_values[l.min(svd.singular_values.len())..]
                        .iter()
                        .map(|v| v * v)
                        .sum();
                    break (q, m, svd, l, capture2 + tail2);
                }
                None => {
                    let s_new = (s * 2).min(r1);
                    let fresh = kr_columns(
                        comm,
                        x,
                        k,
                        s,
                        s_new,
                        seed,
                        global_dims,
                        p,
                        rank,
                        is_model,
                        &mut omega,
                        &mut scratch,
                    );
                    w = hstack(&w, &fresh, &mut scratch);
                    scratch.recycle(fresh);
                    scratch.recycle(m);
                    s = s_new;
                }
            }
        };
        scratch.recycle(w);
        // Commit Y_k = Q·U_L (orthonormal columns) and push M_L = U_Lᵀ·M.
        let l = l.min(svd.u.cols());
        let u_l = svd.u.truncate_cols(l);
        let qy = gemm_alloc(Trans::No, q.view(), Trans::No, u_l.view(), 1.0);
        scratch.recycle(q);
        let y_core = TtCore::from_v(qy, cur.r0(), cur.mode_dim(), l);
        let m_next = gemm_alloc(Trans::Yes, u_l.view(), Trans::No, m.view(), 1.0);
        scratch.recycle(m);
        certified2 += err2;
        bonds.push(BondSketch {
            bond: k + 1,
            sketch_cols: s,
            rank: l,
            error2: Some(err2),
        });
        let next = premult_h_s(x.core(k + 1), &m_next, &mut scratch);
        scratch.recycle(m_next);
        scratch.recycle_core(std::mem::replace(&mut cur, next));
        cores_out.push(y_core);
    }
    cores_out.push(cur);
    (TtTensor::new(cores_out), bonds, certified2)
}

/// Minimal rank `L ≥ 1` whose certificate `capture² + Σ_{i≥L} σ_i²` fits the
/// per-bond budget, or `None` if even keeping every direction misses it.
fn certify(capture2: f64, sigma: &[f64], budget2: f64) -> Option<(usize, f64)> {
    if capture2 > budget2 {
        return None;
    }
    // Walk from the full rank downward, accumulating the tail.
    let mut tail2 = 0.0f64;
    let mut best: Option<(usize, f64)> = Some((sigma.len(), capture2));
    for l in (1..=sigma.len()).rev() {
        tail2 += sigma[l - 1] * sigma[l - 1];
        let err2 = capture2 + tail2;
        if err2 <= budget2 && l > 1 {
            best = Some((l - 1, err2));
        } else {
            break;
        }
    }
    // `best` holds the smallest feasible L (at least 1).
    best.map(|(l, e)| (l.max(1), if l == 0 { capture2 } else { e }))
}

/// `tr(A·B)` for two symmetric matrices of equal shape.
fn frob_inner(a: &Matrix, b: &Matrix) -> f64 {
    debug_assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .sum()
}

/// Concatenates two column blocks into a scratch-backed matrix.
fn hstack(a: &Matrix, b: &Matrix, scratch: &mut SweepScratch) -> Matrix {
    debug_assert_eq!(a.rows(), b.rows());
    let mut out = scratch.take(a.rows(), a.cols() + b.cols());
    for j in 0..a.cols() {
        out.col_mut(j).copy_from_slice(a.col(j));
    }
    for j in 0..b.cols() {
        out.col_mut(a.cols() + j).copy_from_slice(b.col(j));
    }
    out
}

/// Columns `lo..hi` of the implicit Khatri–Rao sketch at bond `k`: column
/// `c` is the contraction of suffix cores `k+1..N` with per-mode Gaussian
/// weight vectors seeded by `(seed, k, mode, c)`. One local gemm + allreduce
/// per suffix mode for the whole batch.
#[allow(clippy::too_many_arguments)] // internal plumbing of one algorithm
fn kr_columns(
    comm: &impl Communicator,
    x: &TtTensor,
    k: usize,
    lo: usize,
    hi: usize,
    seed: u64,
    global_dims: &[usize],
    p: usize,
    rank: usize,
    is_model: bool,
    omega: &mut Vec<f64>,
    scratch: &mut SweepScratch,
) -> Matrix {
    let n = x.order();
    let nc = hi - lo;
    // Carry starts as the 1 × nc row of ones (right rank of the last core).
    let mut u = scratch.take(1, nc);
    for v in u.as_mut_slice() {
        *v = 1.0;
    }
    for j in (k + 1..n).rev() {
        let core = x.core(j);
        let (r0, i_loc, r1) = (core.r0(), core.mode_dim(), core.r1());
        let range = local_mode_range(global_dims[j], p, rank, is_model);
        debug_assert_eq!(range.len(), i_loc);
        // Uw over H's column layout (i + b·I): Uw[(i,b),c] = ω_c(i)·U(b,c).
        let mut uw = scratch.take(i_loc * r1, nc);
        for (ci, c) in (lo..hi).enumerate() {
            fill_kr_weights(omega, global_dims[j], seed, k, j, c);
            for b in 0..r1 {
                let ub = u[(b, ci)];
                for ii in 0..i_loc {
                    uw[(ii + b * i_loc, ci)] = omega[range.start + ii] * ub;
                }
            }
        }
        let mut t = scratch.take(r0, nc);
        gemm_v(
            Trans::No,
            core.h(),
            Trans::No,
            uw.view(),
            1.0,
            0.0,
            t.view_mut(),
        );
        comm.allreduce_sum(t.as_mut_slice());
        scratch.recycle(uw);
        scratch.recycle(std::mem::replace(&mut u, t));
    }
    u
}

/// Factor `F` of a Gram matrix `G = F·Fᵀ` via the symmetric EVD, negative
/// eigenvalues (numerical noise) clamped to zero.
fn gram_factor(g: &Matrix, bond: usize) -> Matrix {
    match tt_linalg::eigh(g) {
        Ok(e) => {
            let mut f = e.vectors;
            for (j, &lam) in e.values.iter().enumerate() {
                f.scale_col(j, lam.max(0.0).sqrt());
            }
            f
        }
        // analyze::allow(panic_surface): a Gram matrix is symmetric PSD by construction; EVD failure means memory corruption upstream and the message says how to chase it
        Err(err) => panic!(
            "adaptive rounding bond {bond}: EVD of the suffix Gram failed \
             ({err}). A Gram matrix is symmetric PSD, so this indicates a \
             corrupted buffer upstream — rerun with the `paranoid` feature \
             to catch it at the producing kernel."
        ),
    }
}
