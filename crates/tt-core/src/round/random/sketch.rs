//! Replicated seeded sketch generation.
//!
//! Every random object the family draws is derived from `(seed, tag, …)`
//! coordinates rather than from a shared generator stream, so any rank can
//! (re)generate exactly the values it needs without communication: the
//! distributed sketch is consistent by construction. The `tag` namespaces
//! the per-variant streams so no two variants ever consume the same
//! pseudo-random values.

use crate::core::TtCore;
use crate::tensor::TtTensor;
use rand::SeedableRng;
use tt_linalg::Matrix;

/// Golden-ratio mixing constant (splitmix64 lineage) — per-core coordinate.
const MIX_CORE: u64 = 0x9e3779b97f4a7c15;
/// Per-slice / per-mode coordinate.
const MIX_SLICE: u64 = 0xd1b54a32d192ed03;
/// Per-variant stream tag.
const MIX_TAG: u64 = 0x94d049bb133111eb;
/// Per-column coordinate (Khatri–Rao sketches).
const MIX_COL: u64 = 0xbf58476d1ce4e5b9;

/// Stream namespaces, one per consumer (`tag = 0` reproduces the original
/// randomize-then-orthogonalize sketch bit-for-bit).
pub(crate) const TAG_TT_SKETCH: u64 = 0;
pub(crate) const TAG_ORTH_RAND: u64 = 1;
pub(crate) const TAG_TWO_SIDED_RIGHT: u64 = 2;
pub(crate) const TAG_TWO_SIDED_LEFT: u64 = 3;
pub(crate) const TAG_KHATRI_RAO: u64 = 4;

fn base_seed(seed: u64, tag: u64) -> u64 {
    seed ^ tag.wrapping_mul(MIX_TAG)
}

/// Builds this rank's local block of a global random Gaussian TT tensor
/// with the given bond ranks.
///
/// Slice `i` of core `k` is generated from a generator seeded by
/// `(seed, tag, k, i)`, so any rank owning global slice `i` produces
/// identical values — the distributed sketch is consistent without
/// communication.
pub(crate) fn gaussian_tt_sketch(
    global_dims: &[usize],
    sketch_ranks: &[usize],
    p: usize,
    rank: usize,
    seed: u64,
    is_model: bool,
    tag: u64,
) -> TtTensor {
    let seed = base_seed(seed, tag);
    let n = global_dims.len();
    let full: Vec<usize> = std::iter::once(1)
        .chain(sketch_ranks.iter().copied())
        .chain(std::iter::once(1))
        .collect();
    let cores = (0..n)
        .map(|k| {
            let range = local_mode_range(global_dims[k], p, rank, is_model);
            let mut core = TtCore::zeros(full[k], range.len(), full[k + 1]);
            // One slice buffer per core, reused across rows:
            // `fill_standard_normal` overwrites every entry.
            let mut slice = vec![0.0; full[k] * full[k + 1]];
            for (local_i, glob_i) in range.enumerate() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (k as u64).wrapping_mul(MIX_CORE)
                        ^ (glob_i as u64).wrapping_mul(MIX_SLICE),
                );
                tt_linalg::rng::fill_standard_normal(&mut slice, &mut rng);
                for b in 0..full[k + 1] {
                    for a in 0..full[k] {
                        *core.at_mut(a, local_i, b) = slice[a + b * full[k]];
                    }
                }
            }
            core
        })
        .collect();
    TtTensor::new(cores)
}

/// The global mode-index range this rank owns (model backend: one
/// representative rank's share, `⌈I/P⌉`).
pub(crate) fn local_mode_range(
    global_dim: usize,
    p: usize,
    rank: usize,
    is_model: bool,
) -> std::ops::Range<usize> {
    if is_model {
        0..global_dim.div_ceil(p)
    } else {
        crate::dist::block_range(global_dim, p, rank)
    }
}

/// A small replicated Gaussian matrix — identical on every rank because the
/// generator is seeded purely from `(seed, tag, bond)`.
pub(crate) fn replicated_gaussian(
    rows: usize,
    cols: usize,
    seed: u64,
    tag: u64,
    bond: usize,
) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        base_seed(seed, tag) ^ (bond as u64).wrapping_mul(MIX_CORE),
    );
    Matrix::gaussian(rows, cols, &mut rng)
}

/// Fills `buf` (resized to `len`) with the full *global* Gaussian weight
/// vector `ω` of Khatri–Rao column `col` at `(bond, mode)` — every rank
/// generates the whole vector and reads off the slice it owns, so the
/// implicit Khatri–Rao sketch matrix is replicated without communication.
pub(crate) fn fill_kr_weights(
    buf: &mut Vec<f64>,
    len: usize,
    seed: u64,
    bond: usize,
    mode: usize,
    col: usize,
) {
    buf.clear();
    buf.resize(len, 0.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        base_seed(seed, TAG_KHATRI_RAO)
            ^ (bond as u64 + 1).wrapping_mul(MIX_CORE)
            ^ (mode as u64 + 1).wrapping_mul(MIX_SLICE)
            ^ (col as u64 + 1).wrapping_mul(MIX_COL),
    );
    tt_linalg::rng::fill_standard_normal(buf, &mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tt_sketch_slices_agree_across_distributions() {
        // The union of every rank's local sketch at p = 3 must equal the
        // p = 1 sketch slice-for-slice.
        let dims = [7usize, 5, 6];
        let ranks = [3usize, 2];
        let full = gaussian_tt_sketch(&dims, &ranks, 1, 0, 42, false, TAG_TT_SKETCH);
        for p in [2usize, 3] {
            for r in 0..p {
                let local = gaussian_tt_sketch(&dims, &ranks, p, r, 42, false, TAG_TT_SKETCH);
                for (k, &dim) in dims.iter().enumerate() {
                    let range = crate::dist::block_range(dim, p, r);
                    for (li, gi) in range.enumerate() {
                        for a in 0..local.core(k).r0() {
                            for b in 0..local.core(k).r1() {
                                assert_eq!(
                                    local.core(k).at(a, li, b).to_bits(),
                                    full.core(k).at(a, gi, b).to_bits(),
                                    "p={p} r={r} core {k}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tags_produce_distinct_streams() {
        let dims = [5usize, 4];
        let ranks = [2usize];
        let a = gaussian_tt_sketch(&dims, &ranks, 1, 0, 7, false, TAG_TT_SKETCH);
        let b = gaussian_tt_sketch(&dims, &ranks, 1, 0, 7, false, TAG_TWO_SIDED_RIGHT);
        assert_ne!(a, b, "different tags must not alias");
        let g1 = replicated_gaussian(4, 3, 7, TAG_ORTH_RAND, 0);
        let g2 = replicated_gaussian(4, 3, 7, TAG_ORTH_RAND, 1);
        assert_ne!(g1.as_slice(), g2.as_slice(), "different bonds must differ");
        let g3 = replicated_gaussian(4, 3, 7, TAG_ORTH_RAND, 0);
        assert_eq!(g1.as_slice(), g3.as_slice(), "same coordinates must agree");
    }

    #[test]
    fn kr_weights_deterministic_per_coordinates() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        fill_kr_weights(&mut a, 9, 3, 1, 2, 5);
        fill_kr_weights(&mut b, 9, 3, 1, 2, 5);
        assert_eq!(a, b);
        fill_kr_weights(&mut b, 9, 3, 1, 2, 6);
        assert_ne!(a, b);
    }
}
