//! TT-Rounding via orthogonalization — Algorithm 2, the baseline.
//!
//! The standard two-phase rounding of Oseledets [4] as parallelized by
//! Al Daas–Ballard–Benner [25]: a left-to-right orthogonalization sweep of
//! QR factorizations (TSQR on the row-distributed vertical unfoldings),
//! followed by a right-to-left truncation sweep of QR + truncated SVD on the
//! transposed horizontal unfoldings. This is the algorithm the Gram-SVD
//! variants are measured against throughout §V.

use crate::core::TtCore;
use crate::round::gram::{postmult_v, premult_h};
use crate::round::truncate::BondTruncation;
use crate::round::tsqr::tsqr;
use crate::round::{RoundReport, RoundingOptions};
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{gemm, tsvd, Trans};

/// TT-Rounding via orthogonalization (Alg. 2), distributed.
///
/// `x` is this rank's local block (the full tensor under
/// [`tt_comm::SelfComm`]).
pub fn round_qr_dist(
    comm: &impl Communicator,
    x: &TtTensor,
    opts: &RoundingOptions,
) -> (TtTensor, RoundReport) {
    let n = x.order();
    let ranks_before = x.ranks();
    if n == 1 {
        let norm = crate::dist::norm_local(comm, x);
        return (
            x.clone(),
            RoundReport {
                norm,
                ranks_before: ranks_before.clone(),
                ranks_after: ranks_before,
                truncations: vec![],
            },
        );
    }

    let mut y = x.clone();

    // ---- Phase 1: left-to-right orthogonalization (lines 3–6). ----
    for k in 0..n - 1 {
        let core = y.core(k);
        let (r0, i, r1) = (core.r0(), core.mode_dim(), core.r1());
        // TSQR pads internally, so Q keeps all r1 columns and R is r1×r1:
        // the right rank is unchanged by orthogonalization.
        let (q, r) = tsqr(comm, &core.v_matrix());
        *y.core_mut(k) = TtCore::from_v(q, r0, i, r1);
        *y.core_mut(k + 1) = premult_h(y.core(k + 1), &r);
    }

    // ---- Norm from the orthogonalized last core (line 7). ----
    let last = y.core(n - 1);
    let mut norm2 = [last.fro_norm().powi(2)];
    comm.allreduce_sum(&mut norm2);
    let norm = norm2[0].max(0.0).sqrt();
    let eps0 = norm * opts.tolerance / ((n - 1) as f64).sqrt();

    // ---- Phase 2: right-to-left truncation (lines 8–13). ----
    let mut truncations = Vec::with_capacity(n - 1);
    for k in (1..n).rev() {
        let core = y.core(k);
        let (r0, i, r1) = (core.r0(), core.mode_dim(), core.r1());
        // QR of H(T)ᵀ — the local block is this core's (i·r1) × r0
        // transposed horizontal unfolding.
        let ht = core.h().transposed();
        let (q, r) = tsqr(comm, &ht);
        // TSVD of the replicated small R (line 10), redundantly on every
        // rank; truncation rank L.
        let mut t = tsvd(&r, eps0);
        let mut discarded = t.discarded_norm;
        if let Some(cap) = opts.max_rank {
            if t.rank() > cap {
                let extra: f64 = t.singular_values[cap..].iter().map(|s| s * s).sum();
                discarded = (discarded * discarded + extra).sqrt();
                t.u = t.u.truncate_cols(cap);
                t.v = t.v.truncate_cols(cap);
                t.singular_values.truncate(cap);
            }
        }
        let l = t.rank();
        truncations.push(BondTruncation {
            bond: k,
            rank_before: r0,
            rank_after: l,
            discarded,
            sigma_max: t.singular_values.first().copied().unwrap_or(0.0),
        });

        // Line 11: H(T_Y,k)ᵀ = Q Û — local rows, replicated Û.
        let new_ht = gemm(Trans::No, &q, Trans::No, &t.u, 1.0);
        // Transpose back into the (column-permuted) H layout.
        *y.core_mut(k) = TtCore::from_h(new_ht.transpose(), l, i, r1);

        // Line 12: V(T_Y,k-1) ← V(T_Y,k-1) · V̂ Σ̂ — communication-free.
        // `t.v` is dead after this bond; move it out instead of cloning.
        let mut vs = t.v;
        for (j, &s) in t.singular_values.iter().enumerate() {
            vs.scale_col(j, s);
        }
        *y.core_mut(k - 1) = postmult_v(y.core(k - 1), &vs);
    }

    let ranks_after = y.ranks();
    truncations.reverse();
    (
        y,
        RoundReport {
            norm,
            ranks_before,
            ranks_after,
            truncations,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::round_qr;
    use tt_comm::SelfComm;
    use tt_linalg::syrk_v;
    use tt_linalg::Matrix;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    fn redundant(dims: &[usize], ranks: &[usize], seed: u64) -> (TtTensor, TtTensor) {
        let mut r = rng(seed);
        let base = TtTensor::random(dims, ranks, &mut r);
        let doubled = base.add(&base);
        (base, doubled)
    }

    #[test]
    fn qr_rounding_recovers_redundant_ranks() {
        let (base, doubled) = redundant(&[5, 4, 6, 5], &[3, 2, 4], 1);
        let rounded = round_qr(&doubled, 1e-10);
        assert_eq!(rounded.ranks(), vec![1, 3, 2, 4, 1]);
        let mut expect = base.clone();
        expect.scale(2.0);
        // Compare densely: the TT-inner-product norm of a difference has a
        // cancellation floor of sqrt(eps)*||X||, which would mask the true
        // accuracy of the QR route.
        let err = rounded.to_dense().fro_dist(&expect.to_dense());
        assert!(err < 1e-10 * (1.0 + expect.norm()), "err {err}");
    }

    #[test]
    fn qr_rounding_respects_tolerance() {
        let mut r = rng(2);
        let x = TtTensor::random(&[6, 5, 4, 5], &[8, 9, 7], &mut r);
        let xnorm = x.norm();
        for tol in [1e-1, 1e-2, 1e-4] {
            let y = round_qr(&x, tol);
            let err = y.sub(&x).norm();
            assert!(err <= tol * xnorm * 1.5 + 1e-12, "tol={tol}: err {err}");
        }
    }

    #[test]
    fn qr_rounding_matches_gram_rounding_on_ranks() {
        let (_, doubled) = redundant(&[4, 6, 5, 4], &[3, 4, 2], 3);
        let a = round_qr(&doubled, 1e-9);
        let b = crate::round::round_gram_rlr(&doubled, 1e-9);
        assert_eq!(a.ranks(), b.ranks());
        let err = a.sub(&b).norm();
        assert!(err < 1e-7 * (1.0 + a.norm()));
    }

    #[test]
    fn right_cores_are_row_orthonormal_after_rounding() {
        // Alg. 2 leaves cores 2..N with orthonormal rows (the right factor
        // of each truncated SVD).
        let (_, doubled) = redundant(&[4, 5, 4, 3], &[3, 3, 2], 4);
        let comm = SelfComm::new();
        let (y, _) = round_qr_dist(&comm, &doubled, &RoundingOptions::with_tolerance(1e-10));
        for k in 1..y.order() {
            let h = y.core(k).h();
            let g = tt_linalg::gemm_alloc(Trans::No, h, Trans::Yes, h, 1.0);
            assert!(
                g.max_abs_diff(&Matrix::identity(g.rows())) < 1e-8,
                "core {k} rows not orthonormal"
            );
        }
        // And the first core's V-gram times nothing in particular — it
        // carries the norm: ‖core 0‖_F = ‖X‖.
        let report_norm = doubled.norm();
        assert!((y.core(0).fro_norm() - report_norm).abs() < 1e-7 * (1.0 + report_norm));
    }

    #[test]
    fn report_is_consistent() {
        let mut r = rng(5);
        let x = TtTensor::random(&[5, 6, 4], &[6, 5], &mut r);
        let comm = SelfComm::new();
        let opts = RoundingOptions::with_tolerance(1e-2).max_rank(3);
        let (y, report) = round_qr_dist(&comm, &x, &opts);
        assert_eq!(report.ranks_after, y.ranks());
        assert!(y.max_rank() <= 3);
        assert_eq!(report.truncations.len(), 2);
        assert!((report.norm - x.norm()).abs() < 1e-8 * (1.0 + x.norm()));
    }

    #[test]
    fn orthonormality_invariant_after_phase_one() {
        // Run only on the full sequential path: after rounding, the V-gram
        // of core 0 need not be I, but rounding twice is stable.
        let (_, doubled) = redundant(&[5, 4, 5], &[3, 3], 6);
        let once = round_qr(&doubled, 1e-9);
        let twice = round_qr(&once, 1e-9);
        assert_eq!(once.ranks(), twice.ranks());
        let err = twice.sub(&once).norm();
        // Idempotence holds up to the second pass's discarded tail
        // (≤ 1e-9·‖once‖) plus the accumulated fl error of two
        // orthogonalization sweeps; a 1e-8 relative margin misses that by
        // ~1.2× for some random instances, so allow 5e-8.
        assert!(err < 5e-8 * (1.0 + once.norm()), "err={err:e}");
        // Left-orthonormality of interior cores of `twice` before the last
        // truncation isn't exposed; instead check the Gram identity on the
        // first bond of the rounded tensor: G_1^L from syrk is SPD.
        let g = syrk_v(once.core(0).v(), 1.0);
        assert!(g.rows() == once.ranks()[1]);
    }
}
