//! Randomized TT-Rounding — the paper's stated future-work direction
//! (§VI: "we plan in the future to study randomized methods to perform
//! rounding procedures ... they reduce arithmetic further and also rely on
//! matrix multiplication").
//!
//! This implements the *randomize-then-orthogonalize* scheme the same group
//! later published (Al Daas, Ballard, Cazeaux, Hallman, et al., "Randomized
//! algorithms for rounding in the tensor-train format", SISC 2023): sketch
//! the unfolding at every bond with a random TT tensor of the target ranks,
//! then make one left-to-right pass that orthogonalizes the *small* sketched
//! matrices only. Compared to Alg. 2 it performs no large QRs; compared to
//! Algs. 5/6 it needs only one structured-contraction sweep. The price is a
//! fixed *a-priori* target rank (plus oversampling) instead of an ε
//! guarantee.
//!
//! Communication structure matches the Gram variants: one allreduce per mode
//! in the sketch sweep and one per mode in the truncation sweep, small QRs
//! done redundantly — so it parallelizes exactly like Alg. 6.

use crate::core::TtCore;
use crate::round::gram::{postmult_v, premult_h};
use crate::tensor::TtTensor;
use tt_comm::Communicator;
use tt_linalg::{gemm_alloc, gemm_v, Matrix, Trans};

/// Options for randomized rounding.
#[derive(Debug, Clone)]
pub struct RandomizedOptions {
    /// Target ranks after rounding (one per interior bond, or a single value
    /// broadcast to all bonds via [`RandomizedOptions::uniform`]).
    pub target_ranks: Vec<usize>,
    /// Oversampling added to every sketch rank (standard randomized-LA
    /// practice; 5–10 gives high success probability).
    pub oversampling: usize,
    /// Seed for the sketch tensor (deterministic given the seed, and — in a
    /// distributed run — must be identical on all ranks so the replicated
    /// sketch cores agree).
    pub seed: u64,
}

impl RandomizedOptions {
    /// Uniform target rank at every bond.
    pub fn uniform(rank: usize, n_modes: usize) -> Self {
        RandomizedOptions {
            target_ranks: vec![rank; n_modes.saturating_sub(1)],
            oversampling: 8,
            seed: 0x5eed,
        }
    }

    /// Sets the oversampling parameter.
    pub fn oversample(mut self, p: usize) -> Self {
        self.oversampling = p;
        self
    }

    /// Sets the sketch seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// Randomized TT-Rounding (randomize-then-orthogonalize), distributed.
///
/// `x` is this rank's local block. The sketch tensor's *parameter-mode
/// slices* must agree across ranks, which is arranged by seeding a fresh
/// generator per core slice index; the result is deterministic given
/// `opts.seed` and independent of the distribution.
///
/// Returns a TT tensor with bond ranks `min(target, feasible)`.
pub fn round_randomized_dist(
    comm: &impl Communicator,
    x: &TtTensor,
    global_dims: &[usize],
    opts: &RandomizedOptions,
) -> TtTensor {
    let n = x.order();
    assert_eq!(global_dims.len(), n, "global dimension arity mismatch");
    assert_eq!(
        opts.target_ranks.len(),
        n - 1,
        "need one target rank per bond"
    );
    if n == 1 {
        return x.clone();
    }
    let p = comm.size();
    let rank = comm.rank();

    // Sketch ranks: target + oversampling, capped by the bond dimensions of
    // x (sketching wider than the bond is wasted work).
    let ranks_x = x.ranks();
    let sketch_ranks: Vec<usize> = (0..n - 1)
        .map(|b| (opts.target_ranks[b] + opts.oversampling).min(ranks_x[b + 1]))
        .collect();

    // Build this rank's local block of the (conceptually global) random
    // sketch tensor: slice i of sketch core k is seeded by (seed, k, i_glob),
    // so every rank generates identical slices for the indices it owns.
    let sketch = local_sketch(
        global_dims,
        &sketch_ranks,
        p,
        rank,
        opts.seed,
        comm.is_model(),
    );

    // ---- Right-to-left sketch sweep: W_b = (cores b.. of X) ⋅ (cores b..
    // of R), contracting all physical modes; W_b ∈ R^{R_b × ℓ_b}. ----
    // Same structure as the inner-product sweep, one allreduce per mode.
    let mut w: Vec<Matrix> = vec![Matrix::identity(1); n];
    // w[n-1] corresponds to the contraction of the last cores.
    {
        let (cx, cr) = (x.core(n - 1), sketch.core(n - 1));
        let mut m = gemm_alloc(Trans::No, cx.h(), Trans::Yes, cr.h(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        w[n - 1] = m;
    }
    for k in (1..n - 1).rev() {
        // E = X_k ×₃ w[k+1]ᵀ : post-multiply V(X_k) by w (R_{k+1} × ℓ_{k+1}).
        let (cx, cr) = (x.core(k), sketch.core(k));
        let e = postmult_v(cx, &w[k + 1]);
        // Contract E with R_k over (mode, right-rank): H(E)·H(R_k)ᵀ.
        let mut m = gemm_alloc(Trans::No, e.h(), Trans::Yes, cr.h(), 1.0);
        comm.allreduce_sum(m.as_mut_slice());
        w[k] = m;
    }

    // ---- Left-to-right orthogonalization pass on sketched cores. ----
    let mut cores_out: Vec<TtCore> = Vec::with_capacity(n);
    let mut cur = x.core(0).clone();
    for k in 0..n - 1 {
        // Z = V(cur)·W_{k+1}: (r0·I_k) × ℓ — the sketched unfolding.
        let z = gemm_alloc(Trans::No, cur.v(), Trans::No, w[k + 1].view(), 1.0);
        // Thin Q via TSQR (small: ℓ columns), then cut the oversampled
        // sketch down to the target rank through the ℓ×ℓ R factor's SVD
        // (plain column truncation of Q would pick an arbitrary subspace —
        // Q's columns are not importance-ordered).
        let (q, r) = crate::round::tsqr::tsqr(comm, &z);
        let l_rank = q.cols().min(opts.target_ranks[k].min(z.cols()));
        let q = if l_rank < q.cols() {
            let svd = tt_linalg::jacobi_svd(&r);
            let u_lead = svd.u.truncate_cols(l_rank);
            gemm_alloc(Trans::No, q.view(), Trans::No, u_lead.view(), 1.0)
        } else {
            q
        };
        let y_core = TtCore::from_v(q, cur.r0(), cur.mode_dim(), l_rank);
        // M = Y_kᵀ ⋅ cur (contract left rank + mode): ℓ × R_{k+1};
        // local gemm + allreduce.
        let mut m = Matrix::zeros(l_rank, cur.r1());
        gemm_v(
            Trans::Yes,
            y_core.v(),
            Trans::No,
            cur.v(),
            1.0,
            0.0,
            m.view_mut(),
        );
        comm.allreduce_sum(m.as_mut_slice());
        // Push the remainder into the next core.
        cur = premult_h(x.core(k + 1), &m);
        cores_out.push(y_core);
    }
    cores_out.push(cur);
    TtTensor::new(cores_out)
}

/// Sequential convenience wrapper.
pub fn round_randomized(x: &TtTensor, opts: &RandomizedOptions) -> TtTensor {
    let dims = x.dims();
    round_randomized_dist(&tt_comm::SelfComm::new(), x, &dims, opts)
}

/// Builds this rank's local block of the global random sketch tensor.
///
/// Slice `i` of core `k` is generated from a generator seeded by
/// `(seed, k, i)`, so any rank owning global slice `i` produces identical
/// values — the distributed sketch is consistent without communication.
fn local_sketch(
    global_dims: &[usize],
    sketch_ranks: &[usize],
    p: usize,
    rank: usize,
    seed: u64,
    is_model: bool,
) -> TtTensor {
    use rand::SeedableRng;
    let n = global_dims.len();
    let full: Vec<usize> = std::iter::once(1)
        .chain(sketch_ranks.iter().copied())
        .chain(std::iter::once(1))
        .collect();
    let cores = (0..n)
        .map(|k| {
            let range = if is_model {
                // Model backend: one representative rank's share (⌈I/P⌉).
                0..global_dims[k].div_ceil(p)
            } else {
                crate::dist::block_range(global_dims[k], p, rank)
            };
            let mut core = TtCore::zeros(full[k], range.len(), full[k + 1]);
            // One slice buffer per core, reused across rows:
            // `fill_standard_normal` overwrites every entry.
            let mut slice = vec![0.0; full[k] * full[k + 1]];
            for (local_i, glob_i) in range.enumerate() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (k as u64).wrapping_mul(0x9e3779b97f4a7c15)
                        ^ (glob_i as u64).wrapping_mul(0xd1b54a32d192ed03),
                );
                tt_linalg::rng::fill_standard_normal(&mut slice, &mut rng);
                for b in 0..full[k + 1] {
                    for a in 0..full[k] {
                        *core.at_mut(a, local_i, b) = slice[a + b * full[k]];
                    }
                }
            }
            core
        })
        .collect();
    TtTensor::new(cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    #[test]
    fn recovers_redundant_ranks_exactly() {
        let mut r = rng(1);
        let base = TtTensor::random(&[10, 8, 9, 7], &[3, 4, 3], &mut r);
        let doubled = base.add(&base);
        let opts = RandomizedOptions {
            target_ranks: vec![3, 4, 3],
            oversampling: 4,
            seed: 99,
        };
        let y = round_randomized(&doubled, &opts);
        assert_eq!(y.ranks(), vec![1, 3, 4, 3, 1]);
        let mut expect = base.clone();
        expect.scale(2.0);
        let err = y.to_dense().fro_dist(&expect.to_dense());
        assert!(err < 1e-9 * (1.0 + expect.norm()), "err {err}");
    }

    #[test]
    fn uniform_target_rank_caps() {
        let mut r = rng(2);
        let x = TtTensor::random(&[8, 8, 8], &[6, 6], &mut r);
        let y = round_randomized(&x, &RandomizedOptions::uniform(3, 3));
        assert_eq!(y.ranks(), vec![1, 3, 3, 1]);
    }

    #[test]
    fn near_low_rank_tensor_approximated_well() {
        // base (rank 3) + tiny noise (rank 2): randomized rounding to rank 3
        // captures the dominant part.
        let mut r = rng(3);
        let base = TtTensor::random(&[12, 10, 11], &[3, 3], &mut r);
        let mut noise = TtTensor::random(&[12, 10, 11], &[2, 2], &mut r);
        let scale = 1e-6 * base.norm() / noise.norm();
        noise.scale(scale);
        let x = base.add(&noise);
        let y = round_randomized(&x, &RandomizedOptions::uniform(3, 3).oversample(5));
        let err = y.to_dense().fro_dist(&x.to_dense()) / x.norm();
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r = rng(4);
        let x = TtTensor::random(&[7, 6, 8], &[5, 4], &mut r);
        let opts = RandomizedOptions::uniform(3, 3).seed(1234);
        let a = round_randomized(&x, &opts);
        let b = round_randomized(&x, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn distributed_matches_sequential() {
        let mut r = rng(5);
        let base = TtTensor::random(&[9, 8, 10], &[3, 2], &mut r);
        let x = base.add(&base);
        let dims = x.dims();
        let opts = RandomizedOptions {
            target_ranks: vec![3, 2],
            oversampling: 4,
            seed: 7,
        };
        let seq = round_randomized(&x, &opts);
        for p in [2usize, 3] {
            let xs = x.clone();
            let dims2 = dims.clone();
            let opts2 = opts.clone();
            let gathered = tt_comm::run_verified(p, |comm| {
                let local = crate::dist::scatter_tensor(&xs, &comm);
                let y = round_randomized_dist(&comm, &local, &dims2, &opts2);
                crate::dist::gather_tensor(&y, &dims2, &comm)
            });
            for g in &gathered {
                assert_eq!(g.ranks(), seq.ranks(), "p={p}");
                let gap = g.to_dense().fro_dist(&seq.to_dense());
                assert!(gap < 1e-9 * (1.0 + seq.norm()), "p={p}: {gap}");
            }
        }
    }

    #[test]
    fn sketch_ranks_capped_by_bond() {
        // target + oversampling larger than the formal rank: capped.
        let mut r = rng(6);
        let x = TtTensor::random(&[6, 6, 6], &[3, 3], &mut r);
        let y = round_randomized(&x, &RandomizedOptions::uniform(10, 3));
        assert!(y.max_rank() <= 3);
        // and the value is preserved exactly (no actual truncation).
        let err = y.to_dense().fro_dist(&x.to_dense());
        assert!(err < 1e-9 * (1.0 + x.norm()));
    }
}
