//! The per-bond Gram-SVD truncation step shared by Algorithms 4–6.
//!
//! Given the pair of Gram matrices `G_L = AᵀA` and `G_R = BᵀB` of the
//! implicit factorization `X₍₁:ₙ₎ = A Bᵀ`, computes the update matrices
//! `W_L` (post-multiplies the vertical unfolding of the left core) and
//! `W_R` (pre-multiplies the horizontal unfolding of the right core) that
//! truncate the bond rank to `L`:
//!
//! ```text
//!   [V_L, Λ_L] = EIG(G_L)       [V_R, Λ_R] = EIG(G_R)
//!   [Û, Σ̂, V̂] = TSVD(Λ_L^{1/2} V_Lᵀ V_R Λ_R^{1/2}, ε₀)
//!   W_L = V_L Λ_L^{-1/2} Û · s_L(Σ̂)     W_R = s_R(Σ̂) · V̂ᵀ Λ_R^{-1/2} V_Rᵀ
//! ```
//!
//! where the singular values are distributed to the left factor, the right
//! factor, or split evenly, depending on the algorithm variant
//! ([`SingularSide`]).

use tt_linalg::{eigh, gemm, tsvd, Matrix, Trans};

/// Where the singular values of the bond go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingularSide {
    /// `W_L` absorbs `Σ̂` (used by the LRL sequence variant, which leaves
    /// the *right* cores orthonormal).
    Left,
    /// `W_R` absorbs `Σ̂` (used by the RLR sequence variant, which leaves
    /// the *left* cores orthonormal — Alg. 6 as printed).
    Right,
    /// Both absorb `Σ̂^{1/2}` (the simultaneous variant, Alg. 5).
    Split,
}

/// Record of one bond truncation.
#[derive(Debug, Clone)]
pub struct BondTruncation {
    /// Bond index `n` (between cores `n-1` and `n`, 0-based cores).
    pub bond: usize,
    /// Rank before truncation.
    pub rank_before: usize,
    /// Rank after truncation.
    pub rank_after: usize,
    /// Tail energy discarded at this bond, `√(Σ_{k>L} σ̂_k²)`.
    pub discarded: f64,
    /// Leading singular value estimate of the unfolding at this bond.
    pub sigma_max: f64,
}

/// The update-matrix pair for one bond.
pub struct BondUpdate {
    /// `R × L`: post-multiplies the left core's vertical unfolding.
    pub w_left: Matrix,
    /// `L × R`: pre-multiplies the right core's horizontal unfolding.
    pub w_right: Matrix,
    /// Truncation record.
    pub info: BondTruncation,
}

/// Computes the bond update from the Gram pair.
///
/// `threshold` is the absolute tail-energy budget ε₀; `max_rank` optionally
/// caps the retained rank. Eigenvalues are clamped from below at
/// `λ_max · ε_machine` before the `Λ^{-1/2}` scaling — the Gram route cannot
/// resolve singular values below `√ε` of the largest (§II-B), and the clamp
/// keeps those directions bounded rather than exploding, mirroring the
/// robustness discussion of §III-B2.
pub fn gram_truncate(
    bond: usize,
    g_left: &Matrix,
    g_right: &Matrix,
    threshold: f64,
    max_rank: Option<usize>,
    side: SingularSide,
) -> BondUpdate {
    let r = g_left.rows();
    assert_eq!(g_left.shape(), (r, r), "G_L must be square");
    assert_eq!(
        g_right.shape(),
        (r, r),
        "Gram pair must share the bond dimension"
    );

    tt_linalg::paranoid::check_finite("gram_truncate", "G_L", g_left.as_slice());
    tt_linalg::paranoid::check_finite("gram_truncate", "G_R", g_right.as_slice());
    tt_linalg::paranoid::check_finite_scalar("gram_truncate", "threshold", threshold);

    let eig_or_die = |side: &str, g: &Matrix| match eigh(g) {
        Ok(e) => e.descending(),
        // analyze::allow(panic_surface): a Gram matrix is symmetric PSD by construction; EVD failure means memory corruption upstream and the message says how to chase it
        Err(e) => panic!(
            "gram_truncate bond {bond}: EVD of {side} failed ({e}). A Gram \
             matrix is symmetric PSD, so this indicates a corrupted buffer \
             upstream — rerun with the `paranoid` feature to catch it at the \
             producing kernel."
        ),
    };
    let el = eig_or_die("G_L", g_left);
    let er = eig_or_die("G_R", g_right);
    let (lam_l, vl) = (clamp_spectrum(&el.values), el.vectors);
    let (lam_r, vr) = (clamp_spectrum(&er.values), er.vectors);

    // M = Λ_L^{1/2} V_Lᵀ V_R Λ_R^{1/2}: scale rows and columns of V_LᵀV_R.
    let mut m = gemm(Trans::Yes, &vl, Trans::No, &vr, 1.0);
    for i in 0..r {
        let s = lam_l[i].sqrt();
        for j in 0..r {
            m[(i, j)] *= s;
        }
    }
    for (j, &lr) in lam_r.iter().enumerate() {
        m.scale_col(j, lr.sqrt());
    }

    let mut t = tsvd(&m, threshold);
    let mut discarded = t.discarded_norm;
    if let Some(cap) = max_rank {
        if t.rank() > cap {
            let extra: f64 = t.singular_values[cap..].iter().map(|s| s * s).sum();
            discarded = (discarded * discarded + extra).sqrt();
            t.u = t.u.truncate_cols(cap);
            t.v = t.v.truncate_cols(cap);
            t.singular_values.truncate(cap);
        }
    }
    let l = t.rank();
    let sigma_max = t.singular_values.first().copied().unwrap_or(0.0);

    // W_L = V_L Λ_L^{-1/2} Û (then optional Σ scaling). The TSVD factors
    // are consumed in place — only the singular values are needed below.
    let mut u_scaled = t.u;
    // Pre-scale Û rows by Λ_L^{-1/2} (row i of Û pairs with eigenpair i).
    for j in 0..l {
        let col = u_scaled.col_mut(j);
        for (i, x) in col.iter_mut().enumerate() {
            *x /= lam_l[i].sqrt();
        }
    }
    let mut w_left = gemm(Trans::No, &vl, Trans::No, &u_scaled, 1.0);

    // W_R = V̂ᵀ Λ_R^{-1/2} V_Rᵀ (then optional Σ scaling), built as
    // (V_R Λ_R^{-1/2} V̂)ᵀ.
    let mut v_scaled = t.v;
    for j in 0..l {
        let col = v_scaled.col_mut(j);
        for (i, x) in col.iter_mut().enumerate() {
            *x /= lam_r[i].sqrt();
        }
    }
    let w_right_t = gemm(Trans::No, &vr, Trans::No, &v_scaled, 1.0);
    let mut w_right = w_right_t.transpose();

    match side {
        SingularSide::Left => {
            for (j, &s) in t.singular_values.iter().enumerate() {
                w_left.scale_col(j, s);
            }
        }
        SingularSide::Right => {
            for (i, &s) in t.singular_values.iter().enumerate() {
                for j in 0..r {
                    w_right[(i, j)] *= s;
                }
            }
        }
        SingularSide::Split => {
            for (j, &s) in t.singular_values.iter().enumerate() {
                let h = s.sqrt();
                w_left.scale_col(j, h);
                for c in 0..r {
                    w_right[(j, c)] *= h;
                }
            }
        }
    }

    BondUpdate {
        w_left,
        w_right,
        info: BondTruncation {
            bond,
            rank_before: r,
            rank_after: l,
            discarded,
            sigma_max,
        },
    }
}

/// Clamps a descending spectrum from below at `λ_max · ε` (and at the
/// smallest positive double for an all-zero spectrum) so `Λ^{-1/2}` stays
/// finite.
fn clamp_spectrum(values: &[f64]) -> Vec<f64> {
    let lam_max = values.first().copied().unwrap_or(0.0).max(0.0);
    let floor = (lam_max * f64::EPSILON).max(f64::MIN_POSITIVE);
    values.iter().map(|&v| v.max(floor)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tt_linalg::syrk;

    /// Builds A (m×r), B (k×r) and checks that the Gram truncation of
    /// X = A Bᵀ reproduces X to the threshold.
    fn check_product_truncation(side: SingularSide) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (m, k, r) = (30, 25, 8);
        let a = Matrix::gaussian(m, r, &mut rng);
        let b = Matrix::gaussian(k, r, &mut rng);
        let ga = syrk(&a, 1.0);
        let gb = syrk(&b, 1.0);
        let upd = gram_truncate(1, &ga, &gb, 1e-12, None, side);
        // No truncation should occur at this tight threshold...
        assert_eq!(upd.info.rank_after, r);
        // ... and Â B̂ᵀ must equal A Bᵀ.
        let a_hat = gemm(Trans::No, &a, Trans::No, &upd.w_left, 1.0);
        let b_hat_t = gemm(Trans::No, &upd.w_right, Trans::Yes, &b, 1.0);
        let x = gemm(Trans::No, &a, Trans::Yes, &b, 1.0);
        let x_hat = gemm(Trans::No, &a_hat, Trans::No, &b_hat_t, 1.0);
        assert!(
            x.max_abs_diff(&x_hat) < 1e-9 * (1.0 + x.max_abs()),
            "reconstruction failed for {side:?}"
        );
    }

    #[test]
    fn exact_reconstruction_right() {
        check_product_truncation(SingularSide::Right);
    }

    #[test]
    fn exact_reconstruction_left() {
        check_product_truncation(SingularSide::Left);
    }

    #[test]
    fn exact_reconstruction_split() {
        check_product_truncation(SingularSide::Split);
    }

    #[test]
    fn truncates_redundant_rank() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        // A, B of rank 3 embedded in 6 columns: [C | C] pattern.
        let c_a = Matrix::gaussian(40, 3, &mut rng);
        let c_b = Matrix::gaussian(35, 3, &mut rng);
        let mut a = Matrix::zeros(40, 6);
        let mut b = Matrix::zeros(35, 6);
        for j in 0..3 {
            a.col_mut(j).copy_from_slice(c_a.col(j));
            a.col_mut(j + 3).copy_from_slice(c_a.col(j));
            b.col_mut(j).copy_from_slice(c_b.col(j));
            b.col_mut(j + 3).copy_from_slice(c_b.col(j));
        }
        let x = gemm(Trans::No, &a, Trans::Yes, &b, 1.0);
        let upd = gram_truncate(
            1,
            &syrk(&a, 1.0),
            &syrk(&b, 1.0),
            1e-8 * x.fro_norm(),
            None,
            SingularSide::Right,
        );
        assert_eq!(upd.info.rank_after, 3, "redundant rank not detected");
        let a_hat = gemm(Trans::No, &a, Trans::No, &upd.w_left, 1.0);
        let b_hat_t = gemm(Trans::No, &upd.w_right, Trans::Yes, &b, 1.0);
        let x_hat = gemm(Trans::No, &a_hat, Trans::No, &b_hat_t, 1.0);
        assert!(x.max_abs_diff(&x_hat) < 1e-7 * (1.0 + x.max_abs()));
    }

    #[test]
    fn max_rank_cap_applies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let a = Matrix::gaussian(50, 10, &mut rng);
        let b = Matrix::gaussian(45, 10, &mut rng);
        let upd = gram_truncate(
            2,
            &syrk(&a, 1.0),
            &syrk(&b, 1.0),
            1e-14,
            Some(4),
            SingularSide::Split,
        );
        assert_eq!(upd.info.rank_after, 4);
        assert_eq!(upd.w_left.cols(), 4);
        assert_eq!(upd.w_right.rows(), 4);
        assert!(upd.info.discarded > 0.0);
    }

    #[test]
    fn zero_gram_matrices_do_not_produce_nans() {
        let g = Matrix::zeros(5, 5);
        let upd = gram_truncate(0, &g, &g, 1.0, None, SingularSide::Right);
        assert_eq!(upd.info.rank_after, 1);
        assert!(upd.w_left.as_slice().iter().all(|x| x.is_finite()));
        assert!(upd.w_right.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn left_orthonormality_of_right_side_variant() {
        // With SingularSide::Right, A·W_L must have orthonormal columns
        // (this is what keeps the left cores orthonormal in Alg. 6).
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let a = Matrix::gaussian(60, 7, &mut rng);
        let b = Matrix::gaussian(55, 7, &mut rng);
        let upd = gram_truncate(
            1,
            &syrk(&a, 1.0),
            &syrk(&b, 1.0),
            1e-13,
            None,
            SingularSide::Right,
        );
        let a_hat = gemm(Trans::No, &a, Trans::No, &upd.w_left, 1.0);
        let gram = syrk(&a_hat, 1.0);
        assert!(gram.max_abs_diff(&Matrix::identity(upd.info.rank_after)) < 1e-8);
    }
}
