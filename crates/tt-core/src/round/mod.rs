//! TT-Rounding algorithms.
//!
//! * [`qr`] — the baseline: TT-Rounding via orthogonalization (Alg. 2),
//!   parallelized with TSQR exactly as in Al Daas–Ballard–Benner [25].
//! * [`gram`] — the paper's contribution: TT-Rounding via Gram SVD, in the
//!   *simultaneous* (Alg. 5) and *sequence* (Alg. 6) variants, the latter in
//!   both RLR (right-to-left Gram sweep, left-to-right truncation) and LRL
//!   orderings.
//!
//! Every algorithm is written once against [`tt_comm::Communicator`] and
//! operates on the local block of the 1-D-distributed tensor; with
//! [`tt_comm::SelfComm`] it *is* the sequential algorithm. The top-level
//! functions here are the sequential conveniences.

pub mod gram;
pub mod qr;
pub mod random;
pub mod truncate;
pub mod tsqr;

pub use gram::{
    gram_sweep_left, gram_sweep_right, gram_sweep_right_symmetric, round_gram_seq_dist,
    round_gram_seq_dist_owned, round_gram_sim_dist, round_gram_sim_dist_owned,
};
pub use qr::round_qr_dist;
pub use random::{
    round_randomized, round_randomized_dist, round_randomized_dist_report, round_randomized_report,
    BondSketch, RandomizedOptions, RandomizedReport, RandomizedVariant,
};
pub use truncate::{BondTruncation, SingularSide};
pub use tsqr::tsqr;

use crate::tensor::TtTensor;
use tt_comm::SelfComm;

/// Precision in which the Gram matrices of the Gram-SVD variants are
/// accumulated.
///
/// The Gram approach already concedes `sqrt(eps)` accuracy (§II-B):
/// singular values below `sqrt(eps)·‖X‖` are unrecoverable from `GᵀG`
/// regardless of accumulation precision. [`GramPrecision::F32`] trades the
/// floor up from `sqrt(eps_f64) ≈ 1.5e-8` to `sqrt(eps_f32) ≈ 3.4e-4`
/// in exchange for half the Gram-product memory traffic and twice the
/// SIMD lane width — free accuracy-wise whenever the requested rounding
/// tolerance is looser than `~1e-3`. Truncation, orthogonalization, and
/// the cores themselves always stay `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GramPrecision {
    /// Accumulate Gram matrices in `f64` (default).
    #[default]
    F64,
    /// Accumulate Gram matrices in `f32` (opt-in, loose tolerances only).
    F32,
}

/// Options controlling a rounding call.
#[derive(Debug, Clone)]
pub struct RoundingOptions {
    /// Relative accuracy ε: the result satisfies
    /// `‖X − Y‖ ≤ ε‖X‖` (up to the Gram-SVD accuracy caveat of §II-B).
    pub tolerance: f64,
    /// Optional hard cap on every truncated rank (applied after the
    /// ε criterion). Scaling studies use this to pin the work.
    pub max_rank: Option<usize>,
    /// Gram-matrix accumulation precision (Gram-SVD variants only; the QR
    /// baseline ignores it).
    pub gram_precision: GramPrecision,
    /// Overlap each bond's Gram allreduce with the next bond's local work
    /// (post with `iallreduce_sum`, wait only when the truncation decision
    /// needs the reduced matrix). On by default; `serial_waits()` restores
    /// the post-and-immediately-wait schedule for A/B benchmarking. Both
    /// schedules consume identical bytes in identical order, so they are
    /// bitwise identical — pinned by the agreement suites.
    pub overlap: bool,
}

impl RoundingOptions {
    /// Tolerance-only options.
    pub fn with_tolerance(tolerance: f64) -> Self {
        RoundingOptions {
            tolerance,
            max_rank: None,
            gram_precision: GramPrecision::F64,
            overlap: true,
        }
    }

    /// Adds a hard rank cap.
    pub fn max_rank(mut self, r: usize) -> Self {
        self.max_rank = Some(r);
        self
    }

    /// Accumulates the Gram matrices in reduced (`f32`) precision — see
    /// [`GramPrecision`] for the accuracy trade.
    pub fn gram_f32(mut self) -> Self {
        self.gram_precision = GramPrecision::F32;
        self
    }

    /// Disables comm/compute overlap: every Gram allreduce is waited
    /// immediately at its post site. The result is bitwise identical to the
    /// pipelined schedule; only the wall-clock differs.
    pub fn serial_waits(mut self) -> Self {
        self.overlap = false;
        self
    }
}

impl Default for RoundingOptions {
    fn default() -> Self {
        RoundingOptions {
            tolerance: 1e-10,
            max_rank: None,
            gram_precision: GramPrecision::F64,
            overlap: true,
        }
    }
}

/// Gram-sweep ordering for the sequence variant (Alg. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GramOrder {
    /// Right-to-left Gram sweep, then left-to-right truncation (paper RLR).
    Rlr,
    /// Left-to-right Gram sweep, then right-to-left truncation (paper LRL).
    Lrl,
}

/// Diagnostics of one rounding call.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// `‖X‖` as computed by the algorithm (from `G₀ᴿ`/`G_Nᴸ` for the Gram
    /// variants, from the orthogonalized last core for QR).
    pub norm: f64,
    /// Rank chain before rounding.
    pub ranks_before: Vec<usize>,
    /// Rank chain after rounding.
    pub ranks_after: Vec<usize>,
    /// Per-bond truncation records, in the order the bonds were processed.
    pub truncations: Vec<truncate::BondTruncation>,
}

impl RoundReport {
    /// Upper bound on the rounding error accumulated over all bonds:
    /// `√(Σ discarded²)` (each bond discards at most ε₀ = ε‖X‖/√(N−1)).
    pub fn discarded_norm(&self) -> f64 {
        self.truncations
            .iter()
            .map(|t| t.discarded * t.discarded)
            .sum::<f64>()
            .sqrt()
    }
}

/// Sequential TT-Rounding via Gram SVD, sequence variant, RLR ordering
/// (Alg. 6 as printed).
pub fn round_gram_rlr(x: &TtTensor, tolerance: f64) -> TtTensor {
    round_gram_seq_dist(
        &SelfComm::new(),
        x,
        &RoundingOptions::with_tolerance(tolerance),
        GramOrder::Rlr,
    )
    .0
}

/// Sequential TT-Rounding via Gram SVD, sequence variant, LRL ordering.
pub fn round_gram_lrl(x: &TtTensor, tolerance: f64) -> TtTensor {
    round_gram_seq_dist(
        &SelfComm::new(),
        x,
        &RoundingOptions::with_tolerance(tolerance),
        GramOrder::Lrl,
    )
    .0
}

/// Sequential TT-Rounding via Gram SVD, simultaneous variant (Alg. 5).
pub fn round_gram_simultaneous(x: &TtTensor, tolerance: f64) -> TtTensor {
    round_gram_sim_dist(
        &SelfComm::new(),
        x,
        &RoundingOptions::with_tolerance(tolerance),
    )
    .0
}

/// Sequential TT-Rounding via orthogonalization (Alg. 2), the baseline.
pub fn round_qr(x: &TtTensor, tolerance: f64) -> TtTensor {
    round_qr_dist(
        &SelfComm::new(),
        x,
        &RoundingOptions::with_tolerance(tolerance),
    )
    .0
}
