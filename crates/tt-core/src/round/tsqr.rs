//! Tall-Skinny QR with explicit thin-Q reconstruction.
//!
//! The baseline rounding algorithm orthogonalizes row-distributed unfoldings
//! with the communication-avoiding TSQR of Demmel et al. [35]: local
//! Householder QRs, a binomial combine tree over the `R` factors (upsweep),
//! and a reverse tree propagating the per-rank `R × R` transformation that
//! turns each local `Q` into its block of the global thin `Q` (downsweep).
//! Bandwidth is `O(R² log P)` — the `log P` factor the Gram-SVD approach
//! eliminates.
//!
//! The leaf factorizations go through `tt_linalg::householder_qr`, which
//! routes tall-skinny local blocks to the compact-WY blocked QR — the leaves
//! dominate TSQR's arithmetic, so their panel updates run as packed GEMMs.

use tt_comm::{CollectiveKind, Communicator};
use tt_linalg::{gemm, householder_qr, qr_stacked_pair, Matrix, Trans};

/// Distributed TSQR: factors the row-distributed matrix whose local block is
/// `a_local` (`m_local × n`, `m_local` may be zero) into `Q R`.
///
/// Returns `(q_local, r)` where `q_local` is this rank's `m_local × n` block
/// of the global thin `Q` and `r` is the replicated `n × n` triangular
/// factor.
///
/// With a [`tt_comm::SelfComm`] this is a plain local Householder QR; with a
/// [`tt_comm::ModelComm`] the combine tree's per-rank computation is
/// executed locally and its messages are recorded for the cost model (see
/// DESIGN.md §2).
pub fn tsqr(comm: &impl Communicator, a_local: &Matrix) -> (Matrix, Matrix) {
    let n = a_local.cols();
    let p = comm.size();

    // Local QR pads zero rows so every rank contributes an n×n R (zero rows
    // change neither R nor orthonormality).
    let leaf_qr = |a: &Matrix| {
        let padded;
        let work: &Matrix = if a.rows() < n {
            padded = a.vstack(&Matrix::zeros(n - a.rows(), n));
            &padded
        } else {
            a
        };
        let f = householder_qr(work);
        (f.thin_q(), f.r())
    };

    if p == 1 {
        let (mut q_local, r_local) = leaf_qr(a_local);
        if a_local.rows() < n {
            q_local = q_local.sub_matrix(0, 0, a_local.rows(), n);
        }
        return (q_local, r_local);
    }

    if comm.is_model() {
        let (q_local, r_local) = leaf_qr(a_local);
        return tsqr_model(comm, a_local, q_local, r_local);
    }

    let rank = comm.rank();
    // The binomial tree's partners depend only on (rank, p): a rank receives
    // at every mask below its lowest set bit (while a partner exists) and
    // sends its combined R to `rank - lowbit(rank)`. Post every tree receive
    // *before* the leaf factorization, so the dominant local QR — and each
    // combine — runs with the inbound exchanges already in flight; waits then
    // consume them in post order, keeping the byte stream identical to the
    // blocking schedule.
    let mut recv_reqs = Vec::new();
    {
        let mut mask = 1usize;
        while mask < p && rank & mask == 0 {
            if rank + mask < p {
                recv_reqs.push((mask, comm.irecv(rank + mask)));
            }
            mask <<= 1;
        }
    }
    let parent_req = if rank == 0 {
        None
    } else {
        // lowbit(rank) is where the upsweep send happens; the downsweep T
        // comes back along the same edge.
        Some(comm.irecv(rank - (rank & rank.wrapping_neg())))
    };

    // Leaf QR, overlapped with the pre-posted tree traffic.
    let (q_local, r_local) = leaf_qr(a_local);

    // ---- Upsweep: binomial reduction of R factors to rank 0. ----
    // Each internal combine stores (mask, combine-Q) for the downsweep.
    let mut r_cur = r_local;
    let mut combines: Vec<(usize, Matrix)> = Vec::new();
    for (mask, req) in recv_reqs {
        let r_other = Matrix::from_col_major(n, n, req.wait());
        let (qc, rc) = qr_stacked_pair(&r_cur, &r_other);
        combines.push((mask, qc));
        r_cur = rc;
    }
    if rank != 0 {
        // The payload transmits at post time, so waiting here cannot stall
        // the tree; the wait only settles this rank's bookkeeping.
        comm.isend(
            rank - (rank & rank.wrapping_neg()),
            r_cur.as_slice().to_vec(),
        )
        .wait();
    }

    // ---- Downsweep: propagate the n×n transformation T down the tree. ----
    let mut t = match parent_req {
        None => Matrix::identity(n),
        Some(req) => Matrix::from_col_major(n, n, req.wait()),
    };
    for (mask, qc) in combines.into_iter().rev() {
        // qc is 2n×n: the top half transforms our branch, the bottom half
        // goes to the child that sent at this mask.
        let top = qc.sub_matrix(0, 0, n, n);
        let bot = qc.sub_matrix(n, 0, n, n);
        let t_child = gemm(Trans::No, &bot, Trans::No, &t, 1.0);
        comm.isend(rank + mask, t_child.into_vec()).wait();
        t = gemm(Trans::No, &top, Trans::No, &t, 1.0);
    }

    // Broadcast the final R from the root.
    let mut r_buf = r_cur.into_vec();
    comm.broadcast(0, &mut r_buf);
    let r_final = Matrix::from_col_major(n, n, r_buf);

    // Apply the accumulated transformation and drop any padding rows.
    let mut q = gemm(Trans::No, &q_local, Trans::No, &t, 1.0);
    if a_local.rows() < n {
        q = q.sub_matrix(0, 0, a_local.rows(), n);
    }
    (q, r_final)
}

/// Model-communicator path: execute one rank's combine-tree computation and
/// record the tree messages, without data-dependent receives.
fn tsqr_model(
    comm: &impl Communicator,
    a_local: &Matrix,
    q_local: Matrix,
    r_local: Matrix,
) -> (Matrix, Matrix) {
    let n = a_local.cols();
    let p = comm.size();
    let levels = p.next_power_of_two().trailing_zeros() as usize;
    let tri_words = n * (n + 1) / 2;

    let mut r_cur = r_local;
    let mut t = Matrix::identity(n);
    for _ in 0..levels {
        // One combine per level: QR of the stacked pair (the real tree
        // stacks this rank's R with a partner's; workload is identical).
        let (qc, mut rc) = qr_stacked_pair(&r_cur, &r_cur);
        let top = qc.sub_matrix(0, 0, n, n);
        let bot = qc.sub_matrix(n, 0, n, n);
        let t_new = gemm(Trans::No, &top, Trans::No, &t, 1.0);
        let t_child = gemm(Trans::No, &bot, Trans::No, &t, 1.0);
        std::hint::black_box(&t_child);
        t = t_new;
        // Stacking R with itself scales singular values by √2; undo so the
        // magnitudes downstream (TSVD thresholds) stay realistic.
        rc.scale(1.0 / std::f64::consts::SQRT_2);
        r_cur = rc;
        // Upsweep R exchange + downsweep T exchange.
        comm.record_event(CollectiveKind::PointToPoint, tri_words);
        comm.record_event(CollectiveKind::PointToPoint, tri_words);
    }
    let mut q = gemm(Trans::No, &q_local, Trans::No, &t, 1.0);
    if a_local.rows() < n {
        q = q.sub_matrix(0, 0, a_local.rows(), n);
    }
    (q, r_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::block_range;
    use rand::SeedableRng;
    use tt_comm::{ModelComm, SelfComm};
    use tt_linalg::jacobi_svd;

    #[test]
    fn self_comm_is_plain_qr() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Matrix::gaussian(40, 6, &mut rng);
        let (q, r) = tsqr(&SelfComm::new(), &a);
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(qr.max_abs_diff(&a) < 1e-12 * (1.0 + a.max_abs()));
    }

    #[test]
    fn distributed_tsqr_factors_the_stacked_matrix() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = 60;
        let n = 5;
        let a = Matrix::gaussian(m, n, &mut rng);
        for p in [2usize, 3, 4, 7] {
            let a = a.clone();
            let results = tt_comm::run_verified(p, |comm| {
                let range = block_range(m, p, comm.rank());
                let local = a.sub_matrix(range.start, 0, range.len(), n);
                tsqr(&comm, &local)
            });
            // Reassemble Q, check A = Q R, QᵀQ = I, R consistent.
            let r = results[0].1.clone();
            let mut q = results[0].0.clone();
            for (ql, rl) in &results[1..] {
                assert!(rl.max_abs_diff(&r) < 1e-13, "R not replicated (p={p})");
                q = q.vstack(ql);
            }
            let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
            assert!(
                qr.max_abs_diff(&a) < 1e-11 * (1.0 + a.max_abs()),
                "A=QR failed (p={p})"
            );
            let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
            assert!(
                qtq.max_abs_diff(&Matrix::identity(n)) < 1e-11,
                "Q not orthonormal (p={p})"
            );
        }
    }

    #[test]
    fn tsqr_r_has_correct_singular_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = 48;
        let n = 4;
        let a = Matrix::gaussian(m, n, &mut rng);
        let s_expect = jacobi_svd(&a).singular_values;
        let a2 = a.clone();
        let results = tt_comm::run_verified(4, move |comm| {
            let range = block_range(m, 4, comm.rank());
            let local = a2.sub_matrix(range.start, 0, range.len(), n);
            tsqr(&comm, &local).1
        });
        let s_got = jacobi_svd(&results[0]).singular_values;
        for (e, g) in s_expect.iter().zip(&s_got) {
            assert!((e - g).abs() < 1e-10 * (1.0 + e), "{e} vs {g}");
        }
    }

    #[test]
    fn ranks_with_few_rows_are_padded() {
        // 10 rows over 8 ranks with n = 4: some ranks own < 4 rows.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let m = 10;
        let n = 4;
        let a = Matrix::gaussian(m, n, &mut rng);
        let a2 = a.clone();
        let results = tt_comm::run_verified(8, move |comm| {
            let range = block_range(m, 8, comm.rank());
            let local = a2.sub_matrix(range.start, 0, range.len(), n);
            tsqr(&comm, &local)
        });
        let r = results[0].1.clone();
        let mut q = results[0].0.clone();
        for (ql, _) in &results[1..] {
            q = q.vstack(ql);
        }
        assert_eq!(q.rows(), m);
        let qr = gemm(Trans::No, &q, Trans::No, &r, 1.0);
        assert!(qr.max_abs_diff(&a) < 1e-11 * (1.0 + a.max_abs()));
    }

    #[test]
    fn model_path_records_tree_messages() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = Matrix::gaussian(30, 5, &mut rng);
        let comm = ModelComm::new(16);
        let (q, r) = tsqr(&comm, &a);
        assert_eq!(q.shape(), (30, 5));
        assert_eq!(r.shape(), (5, 5));
        let stats = comm.stats();
        // 4 levels × 2 messages of n(n+1)/2 = 15 words.
        assert_eq!(stats.count(CollectiveKind::PointToPoint), 8);
        assert_eq!(stats.words(CollectiveKind::PointToPoint), 8 * 15);
    }
}
