//! Distributed rounding correctness: every variant, run on P thread-backed
//! ranks over the 1-D slice distribution, must represent the same tensor as
//! its sequential counterpart.

use rand::SeedableRng;
use tt_comm::{run_verified, run_verified_with_timeout, Communicator, ModelComm};
use tt_core::round::{round_gram_seq_dist, round_gram_sim_dist, round_qr_dist};
use tt_core::{block_range, gather_tensor, scatter_tensor, GramOrder, RoundingOptions, TtTensor};

fn redundant(dims: &[usize], rank_half: usize, seed: u64) -> TtTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    tt_core::synthetic::generate_redundant(dims, rank_half, &mut rng)
}

/// Runs one distributed rounding variant on `p` ranks and returns the
/// gathered result (identical on all ranks; rank 0's copy returned).
///
/// Every rank's communicator is wrapped in `VerifyComm`, so these agreement
/// tests additionally certify that all variants issue well-matched SPMD
/// collective streams.
fn run_dist(x: &TtTensor, p: usize, opts: &RoundingOptions, variant: &str) -> TtTensor {
    let dims = x.dims();
    let results = run_verified(p, |comm| {
        let local = scatter_tensor(x, &comm);
        let (rounded, _report) = match variant {
            "rlr" => round_gram_seq_dist(&comm, &local, opts, GramOrder::Rlr),
            "lrl" => round_gram_seq_dist(&comm, &local, opts, GramOrder::Lrl),
            "sim" => round_gram_sim_dist(&comm, &local, opts),
            "qr" => round_qr_dist(&comm, &local, opts),
            _ => unreachable!(),
        };
        gather_tensor(&rounded, &dims, &comm)
    });
    // All ranks must agree exactly (they gathered the same blocks).
    for r in &results[1..] {
        assert_eq!(r.ranks(), results[0].ranks(), "ranks diverged across ranks");
    }
    results.into_iter().next().unwrap()
}

#[test]
fn distributed_matches_sequential_all_variants() {
    let dims = [8usize, 6, 9, 7];
    let x = redundant(&dims, 3, 42);
    let opts = RoundingOptions::with_tolerance(1e-9);
    let dense_x = x.to_dense();

    for variant in ["rlr", "lrl", "sim", "qr"] {
        // Sequential reference.
        let comm = tt_comm::SelfComm::new();
        let (seq, _) = match variant {
            "rlr" => round_gram_seq_dist(&comm, &x, &opts, GramOrder::Rlr),
            "lrl" => round_gram_seq_dist(&comm, &x, &opts, GramOrder::Lrl),
            "sim" => round_gram_sim_dist(&comm, &x, &opts),
            "qr" => round_qr_dist(&comm, &x, &opts),
            _ => unreachable!(),
        };
        assert_eq!(
            seq.ranks(),
            vec![1, 3, 3, 3, 1],
            "{variant}: sequential ranks"
        );

        for p in [2usize, 3, 4] {
            let dist = run_dist(&x, p, &opts, variant);
            assert_eq!(dist.ranks(), seq.ranks(), "{variant} p={p}: ranks");
            // The represented tensors agree with the original to tolerance.
            let err = dist.to_dense().fro_dist(&dense_x);
            assert!(
                err <= 1e-8 * (1.0 + dense_x.fro_norm()),
                "{variant} p={p}: error {err}"
            );
            // And with the sequential rounding result.
            let gap = dist.to_dense().fro_dist(&seq.to_dense());
            assert!(
                gap <= 1e-8 * (1.0 + dense_x.fro_norm()),
                "{variant} p={p}: dist-vs-seq gap {gap}"
            );
        }
    }
}

#[test]
fn distributed_rounding_with_uneven_blocks() {
    // Dimensions deliberately not divisible by P.
    let x = redundant(&[7, 5, 11], 2, 7);
    let opts = RoundingOptions::with_tolerance(1e-9);
    let dense_x = x.to_dense();
    for p in [3usize, 4, 6] {
        let dist = run_dist(&x, p, &opts, "rlr");
        assert_eq!(dist.ranks(), vec![1, 2, 2, 1], "p={p}");
        let err = dist.to_dense().fro_dist(&dense_x);
        assert!(err <= 1e-8 * (1.0 + dense_x.fro_norm()), "p={p}: {err}");
    }
}

#[test]
fn distributed_rounding_tolerance_guarantee_holds() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let x = TtTensor::random(&[8, 7, 6, 8], &[6, 7, 5], &mut rng);
    let dense_x = x.to_dense();
    let xnorm = dense_x.fro_norm();
    for tol in [1e-1, 1e-3] {
        let opts = RoundingOptions::with_tolerance(tol);
        for variant in ["rlr", "lrl", "sim", "qr"] {
            let dist = run_dist(&x, 3, &opts, variant);
            let err = dist.to_dense().fro_dist(&dense_x);
            assert!(
                err <= tol * xnorm * 1.5,
                "{variant} tol={tol}: err {err} vs {}",
                tol * xnorm
            );
        }
    }
}

#[test]
fn rank_capped_distributed_rounding() {
    let x = redundant(&[9, 8, 7], 4, 13);
    let opts = RoundingOptions::with_tolerance(1e-14).max_rank(2);
    for variant in ["rlr", "lrl", "sim", "qr"] {
        let dist = run_dist(&x, 2, &opts, variant);
        assert!(dist.max_rank() <= 2, "{variant}");
    }
}

/// The tentpole determinism pin for comm/compute overlap: the pipelined
/// schedule (allreduces posted early, waits moved to the consumption site)
/// must be **bitwise identical** to the serial-wait schedule at every rank
/// count — same local ops on same inputs, same reduction association order,
/// only the wait sites move. Runs under `VerifyComm`, so both schedules'
/// collective streams are also fingerprint-checked across ranks.
#[test]
fn pipelined_sweep_bitwise_matches_serial_waits() {
    let x = redundant(&[8, 6, 9, 7], 3, 42);
    let dims = x.dims();
    let pipelined_opts = RoundingOptions::with_tolerance(1e-9);
    let serial_opts = RoundingOptions::with_tolerance(1e-9).serial_waits();
    assert!(pipelined_opts.overlap && !serial_opts.overlap);
    for variant in ["rlr", "lrl", "sim"] {
        for p in [1usize, 2, 3, 4] {
            let mut gathered = Vec::new();
            for opts in [&pipelined_opts, &serial_opts] {
                let results = run_verified(p, |comm| {
                    let local = scatter_tensor(&x, &comm);
                    let (rounded, report) = match variant {
                        "rlr" => round_gram_seq_dist(&comm, &local, opts, GramOrder::Rlr),
                        "lrl" => round_gram_seq_dist(&comm, &local, opts, GramOrder::Lrl),
                        "sim" => round_gram_sim_dist(&comm, &local, opts),
                        _ => unreachable!(),
                    };
                    (gather_tensor(&rounded, &dims, &comm), report.norm)
                });
                gathered.push(results);
            }
            let serial = gathered.pop().unwrap();
            let pipelined = gathered.pop().unwrap();
            for (rank, ((tp, np), (ts, ns))) in pipelined.into_iter().zip(serial).enumerate() {
                assert_eq!(
                    np.to_bits(),
                    ns.to_bits(),
                    "{variant} p={p} rank {rank}: norm bits diverge"
                );
                assert_eq!(
                    tp, ts,
                    "{variant} p={p} rank {rank}: pipelined != serial-wait"
                );
            }
        }
    }
}

/// The acceptance scenario for the verification layer: a deliberately
/// mis-sequenced distributed rounding run — rank 0 slips one extra
/// collective in front of the sweep, the classic SPMD divergence bug —
/// must fail with the rank-annotated fingerprint diagnostic instead of
/// deadlocking or silently producing garbage.
#[test]
#[should_panic(expected = "SPMD collective stream mismatch")]
fn mis_sequenced_distributed_rounding_is_diagnosed() {
    let x = redundant(&[8, 6, 9, 7], 3, 42);
    let opts = RoundingOptions::with_tolerance(1e-9);
    run_verified_with_timeout(2, std::time::Duration::from_secs(10), |comm| {
        let local = scatter_tensor(&x, &comm);
        if comm.rank() == 0 {
            // Only rank 0 "helpfully" reduces a scalar first; from here on
            // the two ranks' collective streams are mis-sequenced: rank 0's
            // op #1 is a length-1 allreduce while rank 1's op #1 is the
            // sweep's first R×R Gram allreduce.
            let mut extra = vec![0.0];
            comm.allreduce_sum(&mut extra);
        }
        let (rounded, _report) = round_gram_seq_dist(&comm, &local, &opts, GramOrder::Rlr);
        rounded.ranks()
    });
}

#[test]
fn model_comm_executes_one_ranks_work() {
    // The performance-model backend must run without panicking for every
    // variant and record communication consistent with the algorithm:
    // Gram variants use allreduces only; QR uses TSQR point-to-point trees.
    let p = 16;
    let spec = tt_core::synthetic::ModelSpec::table1(4).scaled(0.01);
    let local_dims: Vec<usize> = spec
        .dims
        .iter()
        .map(|&d| block_range(d, p, 0).len().max(1))
        .collect();
    let x = redundant(&local_dims, 5, 17);
    let opts = RoundingOptions::with_tolerance(1e-8).max_rank(5);

    let comm = ModelComm::new(p);
    let (_, report) = round_gram_seq_dist(&comm, &x, &opts, GramOrder::Rlr);
    let stats = comm.stats();
    let n = x.order();
    // RLR: one allreduce per Gram-sweep step (N-1 bonds + the last core)
    // plus one per on-the-fly G^L — 2N-1 total.
    assert_eq!(stats.count(tt_comm::CollectiveKind::Allreduce), 2 * n - 1);
    assert_eq!(stats.count(tt_comm::CollectiveKind::PointToPoint), 0);
    assert!(report.ranks_after.iter().all(|&r| r <= 5));

    let comm = ModelComm::new(p);
    let _ = round_qr_dist(&comm, &x, &opts);
    let stats = comm.stats();
    // QR: TSQR trees communicate point-to-point; 4 levels × 2 msgs × (2N-2)
    // factorizations.
    assert_eq!(
        stats.count(tt_comm::CollectiveKind::PointToPoint),
        4 * 2 * (2 * n - 2),
        "TSQR message count"
    );
}
