//! Sequential ≡ distributed agreement for the randomized rounding family.
//!
//! Every `_dist` variant runs under [`tt_comm::run_verified`], so each test
//! additionally certifies (via `VerifyComm` fingerprinting) that all ranks
//! issue identical collective streams — the adaptive variant's data-dependent
//! sketch growth makes that a real claim, not a formality: one rank taking a
//! different grow/commit decision would diverge the stream and fail loudly.
//!
//! Bitwise scope: at `p = 1` the distributed run must equal the sequential
//! run *bit for bit* (same arithmetic, allreduce over one rank is the
//! identity). For `p > 1` an allreduce associates partial sums differently
//! than one local sum, so seq-vs-dist holds to floating tolerance — but all
//! ranks of one run must agree bitwise, every rank must take identical rank
//! decisions, and repeated runs must be bitwise reproducible.

use rand::SeedableRng;
use tt_core::round::{
    round_randomized_dist, round_randomized_dist_report, round_randomized_report,
    RandomizedOptions, RandomizedVariant,
};
use tt_core::{gather_tensor, scatter_tensor, TtTensor};

const ALL_VARIANTS: [RandomizedVariant; 4] = [
    RandomizedVariant::RandThenOrth,
    RandomizedVariant::OrthThenRand,
    RandomizedVariant::TwoSided,
    RandomizedVariant::AdaptiveKr,
];

fn redundant(dims: &[usize], rank_half: usize, seed: u64) -> TtTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    tt_core::synthetic::generate_redundant(dims, rank_half, &mut rng)
}

fn opts_for(variant: RandomizedVariant, dims: &[usize], rank: usize) -> RandomizedOptions {
    match variant {
        RandomizedVariant::AdaptiveKr => RandomizedOptions::adaptive(1e-7).seed(99),
        v => RandomizedOptions::uniform(rank, dims.len())
            .oversample(4)
            .seed(99)
            .variant(v),
    }
}

fn assert_tensors_bitwise_eq(a: &TtTensor, b: &TtTensor, what: &str) {
    assert_eq!(a.ranks(), b.ranks(), "{what}: ranks");
    for k in 0..a.order() {
        for (idx, (x, y)) in a
            .core(k)
            .v()
            .as_slice()
            .iter()
            .zip(b.core(k).v().as_slice())
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: core {k} entry {idx} differs: {x:?} vs {y:?}"
            );
        }
    }
}

/// Runs one distributed variant on `p` verified ranks; returns every rank's
/// gathered copy.
fn run_dist(x: &TtTensor, p: usize, opts: &RandomizedOptions) -> Vec<TtTensor> {
    let dims = x.dims();
    tt_comm::run_verified(p, |comm| {
        let local = scatter_tensor(x, &comm);
        let rounded = round_randomized_dist(&comm, &local, &dims, opts);
        gather_tensor(&rounded, &dims, &comm)
    })
}

#[test]
fn single_rank_distributed_is_bitwise_sequential() {
    let dims = [8usize, 6, 9, 7];
    let x = redundant(&dims, 3, 21);
    for variant in ALL_VARIANTS {
        let opts = opts_for(variant, &dims, 3);
        let (seq, _) = round_randomized_report(&x, &opts);
        let gathered = run_dist(&x, 1, &opts);
        assert_tensors_bitwise_eq(&seq, &gathered[0], &format!("{variant:?} p=1"));
    }
}

#[test]
fn multi_rank_agreement_all_variants() {
    let dims = [8usize, 6, 9, 7];
    let x = redundant(&dims, 3, 21);
    let dense = x.to_dense();
    let norm = dense.fro_norm();
    for variant in ALL_VARIANTS {
        let opts = opts_for(variant, &dims, 3);
        let (seq, _) = round_randomized_report(&x, &opts);
        for p in [2usize, 4] {
            let gathered = run_dist(&x, p, &opts);
            // All ranks gathered the same blocks: bitwise identical copies,
            // and (crucially for the adaptive variant) identical *rank
            // decisions* on every rank.
            for (r, g) in gathered.iter().enumerate().skip(1) {
                assert_tensors_bitwise_eq(&gathered[0], g, &format!("{variant:?} p={p} rank {r}"));
            }
            assert_eq!(gathered[0].ranks(), seq.ranks(), "{variant:?} p={p}");
            // Sequential vs distributed: same algorithm, reassociated sums.
            let gap = gathered[0].to_dense().fro_dist(&seq.to_dense());
            assert!(
                gap <= 1e-8 * (1.0 + norm),
                "{variant:?} p={p}: seq-vs-dist gap {gap}"
            );
            // And a repeated run is bitwise reproducible.
            let again = run_dist(&x, p, &opts);
            assert_tensors_bitwise_eq(&gathered[0], &again[0], &format!("{variant:?} p={p} rerun"));
        }
    }
}

#[test]
fn adaptive_reports_agree_on_every_rank() {
    // The certificate and posterior are computed from replicated reductions:
    // every rank must report exactly the same numbers and bond records.
    let dims = [9usize, 7, 8];
    let x = redundant(&dims, 3, 5);
    let opts = RandomizedOptions::adaptive(1e-6).seed(7);
    let gdims = x.dims();
    for p in [2usize, 3] {
        let reports = tt_comm::run_verified(p, |comm| {
            let local = scatter_tensor(&x, &comm);
            let (_, report) = round_randomized_dist_report(&comm, &local, &gdims, &opts);
            (
                report.ranks_after.clone(),
                report.certified_error,
                report.posterior_error,
                report
                    .bonds
                    .iter()
                    .map(|b| (b.bond, b.sketch_cols, b.rank))
                    .collect::<Vec<_>>(),
            )
        });
        for r in &reports[1..] {
            assert_eq!(r.0, reports[0].0, "p={p}: ranks");
            assert_eq!(
                r.1.map(f64::to_bits),
                reports[0].1.map(f64::to_bits),
                "p={p}: certified error"
            );
            assert_eq!(
                r.2.map(f64::to_bits),
                reports[0].2.map(f64::to_bits),
                "p={p}: posterior error"
            );
            assert_eq!(r.3, reports[0].3, "p={p}: bond records");
        }
    }
}

#[test]
fn sketch_seed_determinism_and_independence() {
    let dims = [8usize, 7, 6];
    let x = redundant(&dims, 3, 33);
    let expect = x.to_dense();
    let norm = expect.fro_norm();
    for variant in ALL_VARIANTS {
        // Same seed ⇒ bitwise identical output (p = 1 and p = 2 each
        // reproduce themselves).
        let a = run_dist(&x, 2, &opts_for(variant, &dims, 3));
        let b = run_dist(&x, 2, &opts_for(variant, &dims, 3));
        assert_tensors_bitwise_eq(&a[0], &b[0], &format!("{variant:?} same seed"));

        // Different seeds ⇒ (generically) different sketches, but both
        // results stay within the variant's error bound — randomness moves
        // the sketch, not the guarantee.
        let other = match variant {
            RandomizedVariant::AdaptiveKr => RandomizedOptions::adaptive(1e-7).seed(1234),
            v => RandomizedOptions::uniform(3, dims.len())
                .oversample(4)
                .seed(1234)
                .variant(v),
        };
        let c = run_dist(&x, 2, &other);
        let slack = match variant {
            RandomizedVariant::TwoSided => 1e-5,
            _ => 1e-7,
        };
        for (name, out) in [("seed 99", &a[0]), ("seed 1234", &c[0])] {
            let err = out.to_dense().fro_dist(&expect);
            assert!(err <= slack * (1.0 + norm), "{variant:?} {name}: err {err}");
        }
    }
}
