//! TSQR agreement: the distributed factorization over thread-backed ranks
//! must produce the same `R` as a sequential QR of the full matrix, up to
//! the per-row sign ambiguity of the QR factorization, and its distributed
//! `Q` blocks must assemble into an orthonormal factor reconstructing `A`.
//!
//! Runs under `run_verified` (every rank's communicator wrapped in
//! `VerifyComm`), so it also certifies that the TSQR combine tree issues a
//! well-matched SPMD collective stream now that the leaf factorizations run
//! through the compact-WY blocked QR.

use rand::SeedableRng;
use tt_comm::{run_verified, Communicator};
use tt_core::block_range;
use tt_core::round::tsqr::tsqr;
use tt_linalg::{gemm, householder_qr, Matrix, Trans};

/// Flips each row of `r` so its diagonal entry is non-negative, removing the
/// sign ambiguity between two valid QR factorizations.
fn normalize_row_signs(r: &Matrix) -> Matrix {
    let (k, n) = r.shape();
    Matrix::from_fn(k, n, |i, j| {
        let s = if r[(i, i)] < 0.0 { -1.0 } else { 1.0 };
        s * r[(i, j)]
    })
}

fn check_tsqr_agreement(m: usize, n: usize, p: usize, seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = Matrix::gaussian(m, n, &mut rng);

    // Sequential reference on the full matrix.
    let r_seq = normalize_row_signs(&householder_qr(&a).r());

    // Distributed: each rank factors its contiguous row block.
    let results = run_verified(p, |comm| {
        let range = block_range(m, comm.size(), comm.rank());
        let local = a.sub_matrix(range.start, 0, range.end - range.start, n);
        tsqr(&comm, &local)
    });

    // Every rank's replicated R matches the sequential one up to sign.
    let tol = 1e-12 * (m as f64) * (1.0 + a.max_abs());
    for (rank, (_, r_dist)) in results.iter().enumerate() {
        let r_dist = normalize_row_signs(r_dist);
        assert!(
            r_dist.max_abs_diff(&r_seq) <= tol,
            "({m}x{n}, p={p}) rank {rank}: R differs by {:.3e}",
            r_dist.max_abs_diff(&r_seq)
        );
    }

    // The Q blocks stack into an orthonormal factor with Q·R = A.
    let mut q = results[0].0.clone();
    for (ql, _) in &results[1..] {
        q = q.vstack(ql);
    }
    assert_eq!(q.shape(), (m, n));
    let qtq = gemm(Trans::Yes, &q, Trans::No, &q, 1.0);
    assert!(
        qtq.max_abs_diff(&Matrix::identity(n)) <= 1e-12 * m as f64,
        "({m}x{n}, p={p}): Q not orthonormal"
    );
    let qr = gemm(Trans::No, &q, Trans::No, &results[0].1, 1.0);
    assert!(
        qr.max_abs_diff(&a) <= tol,
        "({m}x{n}, p={p}): QR does not reconstruct A"
    );
}

#[test]
fn tsqr_matches_sequential_qr_small_ranks() {
    check_tsqr_agreement(60, 5, 2, 1);
    check_tsqr_agreement(90, 7, 3, 2);
}

#[test]
fn tsqr_matches_sequential_qr_more_ranks() {
    // Non-power-of-two and rank counts where some leaves are short.
    check_tsqr_agreement(100, 6, 5, 3);
    check_tsqr_agreement(64, 8, 8, 4);
}

#[test]
fn tsqr_matches_sequential_qr_blocked_leaves() {
    // Local blocks large enough that every leaf QR takes the compact-WY
    // blocked path (m_local*n >= 2048, n >= 4).
    check_tsqr_agreement(600, 12, 2, 5);
    check_tsqr_agreement(900, 8, 3, 6);
}

#[test]
fn tsqr_handles_ragged_and_empty_leaves() {
    // 13 rows over 4 ranks: ragged blocks, some smaller than n.
    check_tsqr_agreement(13, 3, 4, 7);
}
