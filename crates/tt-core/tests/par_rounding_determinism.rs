//! Thread-count determinism for the rounding algorithms.
//!
//! The parallel kernel layer (`tt_linalg::par`) promises bitwise-identical
//! results at any thread count. These tests lift that promise from kernels
//! to whole algorithms: every rounding variant run under a 4-thread kernel
//! pool must produce a TT tensor bit-for-bit equal to the 1-thread run —
//! same ranks, same core entries, same sign conventions.

use rand::SeedableRng;
use tt_core::round::{round_gram_lrl, round_gram_rlr, round_gram_simultaneous, round_qr};
use tt_core::TtTensor;
use tt_linalg::par::with_threads;

fn redundant(dims: &[usize], rank_half: usize, seed: u64) -> TtTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    tt_core::synthetic::generate_redundant(dims, rank_half, &mut rng)
}

fn assert_tensors_bitwise_eq(a: &TtTensor, b: &TtTensor, what: &str) {
    assert_eq!(a.ranks(), b.ranks(), "{what}: ranks");
    for k in 0..a.order() {
        let (ca, cb) = (a.core(k), b.core(k));
        assert_eq!(
            (ca.r0(), ca.mode_dim(), ca.r1()),
            (cb.r0(), cb.mode_dim(), cb.r1()),
            "{what}: core {k} shape"
        );
        for (idx, (x, y)) in ca.v().as_slice().iter().zip(cb.v().as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: core {k} entry {idx} differs: {x:?} vs {y:?}"
            );
        }
    }
}

type Rounder = fn(&TtTensor, f64) -> TtTensor;

#[test]
fn all_rounding_variants_bitwise_identical_under_4_threads() {
    let x = redundant(&[8, 7, 6, 8, 5], 6, 4242);
    let tol = 1e-8;
    let variants: [(&str, Rounder); 4] = [
        ("rlr", round_gram_rlr),
        ("lrl", round_gram_lrl),
        ("sim", round_gram_simultaneous),
        ("qr", round_qr),
    ];
    for (name, round) in variants {
        let serial = with_threads(1, || round(&x, tol));
        let parallel = with_threads(4, || round(&x, tol));
        assert_tensors_bitwise_eq(&serial, &parallel, name);
        // And a second parallel run must be reproducible too (no hidden
        // scheduling dependence).
        let again = with_threads(4, || round(&x, tol));
        assert_tensors_bitwise_eq(&parallel, &again, &format!("{name} repeat"));
    }
}

#[test]
fn randomized_family_bitwise_identical_across_thread_counts() {
    // The randomized family routes through the same kernel layer (gemm,
    // TSQR, Jacobi SVD, eigh) plus seeded sketch generation, which is
    // thread-count-independent by construction. Sweep every variant over
    // TT_NUM_THREADS ∈ {1, 2, 4}.
    use tt_core::round::{round_randomized, RandomizedOptions, RandomizedVariant};
    let x = redundant(&[8, 7, 6, 8, 5], 6, 4242);
    let variants = [
        RandomizedVariant::RandThenOrth,
        RandomizedVariant::OrthThenRand,
        RandomizedVariant::TwoSided,
        RandomizedVariant::AdaptiveKr,
    ];
    for variant in variants {
        let opts = match variant {
            RandomizedVariant::AdaptiveKr => RandomizedOptions::adaptive(1e-8).seed(11),
            v => RandomizedOptions::uniform(6, 5)
                .oversample(4)
                .seed(11)
                .variant(v),
        };
        let serial = with_threads(1, || round_randomized(&x, &opts));
        for threads in [2usize, 4] {
            let parallel = with_threads(threads, || round_randomized(&x, &opts));
            assert_tensors_bitwise_eq(
                &serial,
                &parallel,
                &format!("{variant:?} threads={threads}"),
            );
        }
        // Reproducibility within one thread count, too (no hidden
        // scheduling dependence in the adaptive grow/commit loop).
        let again = with_threads(4, || round_randomized(&x, &opts));
        assert_tensors_bitwise_eq(&serial, &again, &format!("{variant:?} repeat"));
    }
}

#[test]
fn thread_count_does_not_change_truncated_ranks() {
    // Rank decisions come from singular-value thresholds — the most
    // sensitive consumer of kernel bit-patterns. Sweep several tolerances.
    let x = redundant(&[9, 8, 7, 9], 5, 777);
    for &tol in &[1e-2, 1e-6, 1e-12] {
        let r1 = with_threads(1, || round_gram_rlr(&x, tol));
        let r4 = with_threads(4, || round_gram_rlr(&x, tol));
        assert_eq!(r1.ranks(), r4.ranks(), "tol {tol}: ranks diverged");
        assert_tensors_bitwise_eq(&r1, &r4, &format!("rlr tol {tol}"));
    }
}
