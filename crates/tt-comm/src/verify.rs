//! SPMD collective-matching verification layer.
//!
//! Every distributed algorithm in this reproduction is SPMD code written
//! against [`Communicator`]: correctness silently assumes that **every rank
//! executes an identical stream of collectives** (same operations, in the
//! same order, with compatible shapes and roots). Violations of that
//! assumption — the classic MPI bug class that verifiers like MUST exist to
//! catch — otherwise surface as wrong numbers or a hung test.
//!
//! [`VerifyComm`] is a decorator over any [`Communicator`] that makes the
//! assumption machine-checked:
//!
//! * every operation gets a per-rank **sequence number** and a **call
//!   fingerprint** (collective position, operation kind, root, buffer
//!   length) — point-to-point ops are traced but excluded from the
//!   cross-checked collective position, since tree algorithms legitimately
//!   issue different send/recv counts per rank;
//! * for real multi-rank backends ([`crate::ThreadComm`]) the fingerprint is
//!   **piggybacked through the underlying communicator** (one small
//!   `allreduce_max` check round per collective) and cross-checked across all
//!   ranks *before* the real operation executes, so a mismatched or
//!   reordered collective panics with a rank-annotated diagnostic instead of
//!   deadlocking or corrupting data;
//! * point-to-point messages carry a fingerprint header checked on receive;
//! * for single-rank and model backends ([`crate::SelfComm`],
//!   [`crate::ModelComm`]) the stream is **recorded locally** ([`VerifyComm::trace`])
//!   so separate runs can be diffed with [`assert_streams_match`].
//!
//! The decorator holds the last [`TRACE_CAPACITY`] events of every rank in a
//! shared ring, and dumps all of them on any mismatch. Overhead is one
//! 8-word allreduce per collective — negligible for a validation backend,
//! and exactly zero for production paths that do not opt in.
//!
//! Layering: [`VerifyComm`] catches *semantic* divergence before it
//! deadlocks; the [`crate::ThreadComm`] watchdog catches whatever still
//! hangs (e.g. one rank exiting early) by aborting the stuck operation with
//! a per-rank event dump. Use both in tests:
//! [`run_verified`] wraps every rank of a [`crate::ThreadComm`] job.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cost::{CollectiveKind, CommStats};
use crate::{Communicator, DetachedRequest, Request, ThreadComm};

/// Number of per-rank events retained for mismatch diagnostics.
pub const TRACE_CAPACITY: usize = 16;

/// Magic word marking a fingerprinted point-to-point message.
const P2P_MAGIC: f64 = -(0x7EAC0DE as f64);

/// The kind of a fingerprinted communication operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`Communicator::allreduce_sum`].
    AllreduceSum,
    /// [`Communicator::allreduce_max`].
    AllreduceMax,
    /// [`Communicator::broadcast`].
    Broadcast,
    /// [`Communicator::allgather`] (lengths may legitimately differ per rank).
    Allgather,
    /// [`Communicator::barrier`].
    Barrier,
    /// [`Communicator::send`].
    Send,
    /// [`Communicator::recv`].
    Recv,
    /// [`Communicator::iallreduce_sum`] (fingerprinted at post, checked at
    /// wait).
    IallreduceSum,
    /// [`Communicator::isend`].
    Isend,
    /// [`Communicator::irecv`].
    Irecv,
}

impl OpKind {
    fn id(self) -> u64 {
        match self {
            OpKind::AllreduceSum => 1,
            OpKind::AllreduceMax => 2,
            OpKind::Broadcast => 3,
            OpKind::Allgather => 4,
            OpKind::Barrier => 5,
            OpKind::Send => 6,
            OpKind::Recv => 7,
            OpKind::IallreduceSum => 8,
            OpKind::Isend => 9,
            OpKind::Irecv => 10,
        }
    }

    fn from_id(id: u64) -> &'static str {
        match id {
            1 => "allreduce_sum",
            2 => "allreduce_max",
            3 => "broadcast",
            4 => "allgather",
            5 => "barrier",
            6 => "send",
            7 => "recv",
            8 => "iallreduce_sum",
            9 => "isend",
            10 => "irecv",
            _ => "<unknown op>",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(OpKind::from_id(self.id()))
    }
}

/// One fingerprinted communication event of one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in this rank's operation stream (1-based).
    pub seq: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Root rank (broadcast) — 0 for rootless operations.
    pub root: usize,
    /// Buffer length in `f64` words (0 where lengths may legitimately
    /// differ per rank, i.e. allgather, or are not defined, i.e. barrier).
    pub len: usize,
    /// Peer rank for point-to-point operations.
    pub peer: Option<usize>,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.kind, self.peer) {
            (OpKind::Send, Some(p)) => write!(f, "#{} send(to={p}, len={})", self.seq, self.len),
            (OpKind::Recv, Some(p)) => write!(f, "#{} recv(from={p})", self.seq),
            (OpKind::Isend, Some(p)) => write!(f, "#{} isend(to={p}, len={})", self.seq, self.len),
            (OpKind::Irecv, Some(p)) => write!(f, "#{} irecv(from={p})", self.seq),
            (OpKind::Broadcast, _) => {
                write!(
                    f,
                    "#{} broadcast(root={}, len={})",
                    self.seq, self.root, self.len
                )
            }
            (OpKind::Allgather, _) => write!(f, "#{} allgather(local_len={})", self.seq, self.len),
            (OpKind::Barrier, _) => write!(f, "#{} barrier", self.seq),
            (kind, _) => write!(f, "#{} {kind}(len={})", self.seq, self.len),
        }
    }
}

/// Shared per-rank ring of recent events, dumped on mismatch.
#[derive(Debug)]
struct TraceRegistry {
    rings: Mutex<Vec<VecDeque<Event>>>,
}

impl TraceRegistry {
    fn new(p: usize) -> Arc<Self> {
        Arc::new(TraceRegistry {
            rings: Mutex::new((0..p).map(|_| VecDeque::new()).collect()),
        })
    }

    fn push(&self, rank: usize, ev: Event) {
        let mut rings = match self.rings.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let ring = &mut rings[rank];
        if ring.len() == TRACE_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    fn trace_of(&self, rank: usize) -> Vec<Event> {
        let rings = match self.rings.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        rings[rank].iter().cloned().collect()
    }

    fn render(&self) -> String {
        let rings = match self.rings.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        rings
            .iter()
            .enumerate()
            .map(|(r, ring)| {
                let events: Vec<String> = ring.iter().map(|e| e.to_string()).collect();
                format!(
                    "  rank {r}: {}",
                    if events.is_empty() {
                        "<no events observed by this verifier>".to_string()
                    } else {
                        events.join("; ")
                    }
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A verifying decorator over any [`Communicator`]; see the module docs.
pub struct VerifyComm<C: Communicator> {
    inner: C,
    seq: Cell<u64>,
    /// Number of *collectives* issued — the cross-checked position. Kept
    /// separate from `seq` because point-to-point patterns are legitimately
    /// asymmetric (a TSQR combine tree's root does more sends/recvs than a
    /// leaf), so the overall op count may differ across ranks even when the
    /// collective streams are perfectly matched.
    coll_seq: Cell<u64>,
    traces: Arc<TraceRegistry>,
    /// Whether fingerprints are cross-checked through the underlying
    /// communicator (true for real multi-rank backends).
    piggyback: bool,
    next_req_id: Cell<u64>,
    /// Posted nonblocking operations with their post-time fingerprints;
    /// completed strictly in post order, so the check rounds (issued at
    /// wait) execute at identical program points on every rank.
    pending: RefCell<VecDeque<VerifyPending>>,
    /// Results completed ahead of their own wait by the FIFO progression.
    completed: RefCell<BTreeMap<u64, Vec<f64>>>,
}

/// One posted-but-unwaited nonblocking operation under verification.
struct VerifyPending {
    id: u64,
    /// Collective fingerprint fields captured at post time, cross-checked
    /// through the inner communicator when the request is completed.
    check: Option<[f64; 4]>,
    /// The operation's trace event (diagnostics + frame validation).
    ev: Event,
    /// The inner backend's request, decoupled from its borrow.
    inner_req: DetachedRequest,
}

impl<C: Communicator> VerifyComm<C> {
    /// Wraps a single communicator endpoint.
    ///
    /// For multi-rank non-model backends the fingerprint check rounds are
    /// enabled; [`crate::SelfComm`] and [`crate::ModelComm`] get local-stream
    /// recording only (their collective streams can be diffed across runs
    /// with [`assert_streams_match`]).
    pub fn new(inner: C) -> Self {
        let piggyback = inner.size() > 1 && !inner.is_model();
        let traces = TraceRegistry::new(inner.size());
        VerifyComm {
            seq: Cell::new(0),
            coll_seq: Cell::new(0),
            traces,
            piggyback,
            next_req_id: Cell::new(0),
            pending: RefCell::new(VecDeque::new()),
            completed: RefCell::new(BTreeMap::new()),
            inner,
        }
    }

    /// Wraps every endpoint of a communicator group so that all ranks share
    /// one event-trace registry: any mismatch diagnostic then includes the
    /// last [`TRACE_CAPACITY`] events of *every* rank, not just the
    /// panicking one.
    pub fn wrap_all(comms: Vec<C>) -> Vec<VerifyComm<C>> {
        let p = comms.len();
        let traces = TraceRegistry::new(p);
        comms
            .into_iter()
            .map(|inner| {
                let piggyback = inner.size() > 1 && !inner.is_model();
                VerifyComm {
                    seq: Cell::new(0),
                    coll_seq: Cell::new(0),
                    traces: Arc::clone(&traces),
                    piggyback,
                    next_req_id: Cell::new(0),
                    pending: RefCell::new(VecDeque::new()),
                    completed: RefCell::new(BTreeMap::new()),
                    inner,
                }
            })
            .collect()
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// This rank's recorded event stream (oldest of the retained events
    /// first; at most [`TRACE_CAPACITY`] events are retained).
    pub fn trace(&self) -> Vec<Event> {
        self.traces.trace_of(self.inner.rank())
    }

    /// Number of operations this rank has issued through the verifier.
    pub fn ops_issued(&self) -> u64 {
        self.seq.get()
    }

    fn record(&self, kind: OpKind, root: usize, len: usize, peer: Option<usize>) -> Event {
        let seq = self.seq.get() + 1;
        self.seq.set(seq);
        let ev = Event {
            seq,
            kind,
            root,
            len,
            peer,
        };
        self.traces.push(self.inner.rank(), ev.clone());
        ev
    }

    /// Assigns the next collective position and captures `ev`'s fingerprint
    /// fields. For blocking collectives this happens at the call; for
    /// nonblocking ones at *post* time, so the recorded position reflects
    /// where the operation was issued, not where it was waited.
    fn fingerprint(&self, ev: &Event) -> [f64; 4] {
        let coll_seq = self.coll_seq.get() + 1;
        self.coll_seq.set(coll_seq);
        [
            coll_seq as f64,
            ev.kind.id() as f64,
            ev.root as f64,
            ev.len as f64,
        ]
    }

    /// Cross-checks a blocking collective's fingerprint before it executes.
    fn check_collective(&self, ev: &Event) {
        let fields = self.fingerprint(ev);
        self.check_fingerprint(ev, fields);
    }

    /// Cross-checks captured fingerprint fields across all ranks through the
    /// underlying communicator; panics with a rank-annotated diagnostic on
    /// the first divergent call.
    fn check_fingerprint(&self, ev: &Event, fields: [f64; 4]) {
        if !self.piggyback {
            return;
        }
        // Fingerprint fields, piggybacked as [v, -v] through one
        // allreduce_max: afterwards word i holds max_i and word i+4 holds
        // -min_i, so any cross-rank disagreement makes max_i != min_i. The
        // check rounds themselves run in lockstep, so `collective#` can only
        // disagree if the underlying backend delivered check rounds out of
        // order — it is a self-check on the verifier more than on the
        // algorithm; divergent algorithms surface as kind/root/len
        // mismatches at the first divergent collective.
        let mut check = [0.0f64; 8];
        for (i, v) in fields.iter().enumerate() {
            check[i] = *v;
            check[i + 4] = -*v;
        }
        self.inner.allreduce_max(&mut check);
        let names = ["collective#", "kind", "root", "len"];
        let mut mismatches = Vec::new();
        for i in 0..4 {
            let max = check[i];
            let min = -check[i + 4];
            if max != min {
                let (lo, hi) = if names[i] == "kind" {
                    (
                        OpKind::from_id(min as u64).to_string(),
                        OpKind::from_id(max as u64).to_string(),
                    )
                } else {
                    (format!("{min}"), format!("{max}"))
                };
                mismatches.push(format!(
                    "  {}: disagrees across ranks (min {lo}, max {hi}; this rank: {})",
                    names[i],
                    if names[i] == "kind" {
                        ev.kind.to_string()
                    } else {
                        fields[i].to_string()
                    }
                ));
            }
        }
        if !mismatches.is_empty() {
            // analyze::allow(panic_surface): the verifier's contract is to abort on the first divergent collective with a full fingerprint report
            panic!(
                "VerifyComm rank {}: SPMD collective stream mismatch at this rank's \
                 operation #{}.\nThis rank called: {}\nDivergent fingerprint \
                 fields:\n{}\nLast {} events per rank (oldest first):\n{}",
                self.inner.rank(),
                ev.seq,
                ev,
                mismatches.join("\n"),
                TRACE_CAPACITY,
                self.traces.render()
            );
        }
    }

    fn alloc_req(&self) -> u64 {
        let id = self.next_req_id.get();
        self.next_req_id.set(id + 1);
        id
    }

    /// Validates a fingerprinted point-to-point frame and strips the header.
    fn validate_frame(
        &self,
        framed: Vec<f64>,
        from: usize,
        ev: &Event,
        expect: OpKind,
    ) -> Vec<f64> {
        let fail = |why: String| -> ! {
            // analyze::allow(panic_surface): the verifier's contract is to abort on the first mismatched p2p frame with a full event report
            panic!(
                "VerifyComm rank {}: point-to-point mismatch at this rank's \
                 operation #{} ({ev}): {why}\nLast {} events per rank (oldest \
                 first):\n{}",
                self.inner.rank(),
                ev.seq,
                TRACE_CAPACITY,
                self.traces.render()
            );
        };
        if framed.len() < 4 || framed[0] != P2P_MAGIC {
            fail(format!(
                "received a {}-word message without a fingerprint header — the \
                 sender is not running under VerifyComm, or a collective's \
                 internal message was misrouted into a recv",
                framed.len()
            ));
        }
        let kind = framed[1] as u64;
        let sender = framed[2] as usize;
        let len = framed[3] as usize;
        if kind != expect.id() {
            fail(format!(
                "message header says the peer issued {}, not {expect}",
                OpKind::from_id(kind)
            ));
        }
        if sender != from {
            fail(format!(
                "expected a message from rank {from} but the header says it was \
                 sent by rank {sender}"
            ));
        }
        if len != framed.len() - 4 {
            fail(format!(
                "header announces {len} payload words but {} arrived",
                framed.len() - 4
            ));
        }
        framed[4..].to_vec()
    }

    /// Completes one pending nonblocking operation: runs its deferred
    /// fingerprint check round (collectives), waits on the inner request,
    /// and validates the frame (irecv).
    fn complete_pending(&self, req: VerifyPending) -> Vec<f64> {
        if let Some(fields) = req.check {
            self.check_fingerprint(&req.ev, fields);
        }
        let raw = match req.inner_req {
            DetachedRequest::Ready(v) => v,
            DetachedRequest::Pending(inner_id) => self.inner.req_wait(inner_id),
        };
        if req.ev.kind == OpKind::Irecv && self.piggyback {
            // Every Irecv event is constructed with `peer: Some(from)` at
            // its single post site; a peerless one skips frame validation.
            if let Some(from) = req.ev.peer {
                return self.validate_frame(raw, from, &req.ev, OpKind::Isend);
            }
        }
        raw
    }
}

impl<C: Communicator> Communicator for VerifyComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn allreduce_sum(&self, buf: &mut [f64]) {
        let ev = self.record(OpKind::AllreduceSum, 0, buf.len(), None);
        self.check_collective(&ev);
        self.inner.allreduce_sum(buf);
    }

    fn allreduce_max(&self, buf: &mut [f64]) {
        let ev = self.record(OpKind::AllreduceMax, 0, buf.len(), None);
        self.check_collective(&ev);
        self.inner.allreduce_max(buf);
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        let ev = self.record(OpKind::Broadcast, root, buf.len(), None);
        self.check_collective(&ev);
        self.inner.broadcast(root, buf);
    }

    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        // Allgatherv semantics: per-rank lengths may legitimately differ, so
        // the fingerprint carries len = 0 (the local length is still
        // recorded in the trace for diagnostics).
        let mut ev = self.record(OpKind::Allgather, 0, send.len(), None);
        ev.len = 0;
        self.check_collective(&ev);
        self.inner.allgather(send)
    }

    fn send(&self, to: usize, buf: &[f64]) {
        let ev = self.record(OpKind::Send, 0, buf.len(), Some(to));
        if self.piggyback {
            // Fingerprint header travels with the message and is validated
            // by the receiving VerifyComm.
            let mut framed = Vec::with_capacity(buf.len() + 4);
            framed.extend_from_slice(&[
                P2P_MAGIC,
                ev.kind.id() as f64,
                self.inner.rank() as f64,
                buf.len() as f64,
            ]);
            framed.extend_from_slice(buf);
            self.inner.send(to, &framed);
        } else {
            self.inner.send(to, buf);
        }
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        let ev = self.record(OpKind::Recv, 0, 0, Some(from));
        if !self.piggyback {
            return self.inner.recv(from);
        }
        let framed = self.inner.recv(from);
        self.validate_frame(framed, from, &ev, OpKind::Send)
    }

    /// Fingerprint captured and traced at **post** time; the cross-rank
    /// check round runs when the request completes (post order), so the
    /// verification contract survives reordered waits — see DESIGN.md §14.
    fn iallreduce_sum(&self, buf: Vec<f64>) -> Request<'_> {
        let ev = self.record(OpKind::IallreduceSum, 0, buf.len(), None);
        let check = Some(self.fingerprint(&ev));
        let inner_req = self.inner.iallreduce_sum(buf).detach();
        let id = self.alloc_req();
        self.pending.borrow_mut().push_back(VerifyPending {
            id,
            check,
            ev,
            inner_req,
        });
        Request::pending(self, id)
    }

    fn isend(&self, to: usize, buf: Vec<f64>) -> Request<'_> {
        let ev = self.record(OpKind::Isend, 0, buf.len(), Some(to));
        let inner_req = if self.piggyback {
            let mut framed = Vec::with_capacity(buf.len() + 4);
            framed.extend_from_slice(&[
                P2P_MAGIC,
                ev.kind.id() as f64,
                self.inner.rank() as f64,
                buf.len() as f64,
            ]);
            framed.extend_from_slice(&buf);
            self.inner.isend(to, framed).detach()
        } else {
            self.inner.isend(to, buf).detach()
        };
        let id = self.alloc_req();
        self.pending.borrow_mut().push_back(VerifyPending {
            id,
            check: None,
            ev,
            inner_req,
        });
        Request::pending(self, id)
    }

    fn irecv(&self, from: usize) -> Request<'_> {
        let ev = self.record(OpKind::Irecv, 0, 0, Some(from));
        let inner_req = self.inner.irecv(from).detach();
        let id = self.alloc_req();
        self.pending.borrow_mut().push_back(VerifyPending {
            id,
            check: None,
            ev,
            inner_req,
        });
        Request::pending(self, id)
    }

    /// Completes in post (FIFO) order, like the backends: the deferred
    /// fingerprint check rounds are themselves collectives on the inner
    /// communicator, so executing them in post order keeps them lockstep
    /// across ranks even when user code waits out of order.
    fn req_wait(&self, id: u64) -> Vec<f64> {
        loop {
            if let Some(v) = self.completed.borrow_mut().remove(&id) {
                return v;
            }
            let req = self.pending.borrow_mut().pop_front();
            let Some(req) = req else {
                // analyze::allow(panic_surface): an id with no pending entry means a request was completed twice or crossed communicators — an unrecoverable harness bug
                panic!(
                    "VerifyComm rank {}: req_wait(id={id}) found no matching \
                     pending request — a Request was completed twice or used \
                     with a different communicator",
                    self.inner.rank()
                );
            };
            let req_id = req.id;
            let result = self.complete_pending(req);
            if req_id == id {
                return result;
            }
            self.completed.borrow_mut().insert(req_id, result);
        }
    }

    /// Conservative: only reports requests the FIFO progression has already
    /// completed. Speculatively completing here would run the deferred
    /// check round — a collective — at a rank-dependent moment, breaking
    /// the lockstep the verifier itself relies on; `wait` is the completion
    /// path.
    fn req_test(&self, id: u64) -> Option<Vec<f64>> {
        self.completed.borrow_mut().remove(&id)
    }

    fn barrier(&self) {
        let ev = self.record(OpKind::Barrier, 0, 0, None);
        self.check_collective(&ev);
        self.inner.barrier();
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn is_model(&self) -> bool {
        self.inner.is_model()
    }

    fn record_event(&self, kind: CollectiveKind, words: usize) {
        self.inner.record_event(kind, words)
    }
}

/// Runs `f` as an SPMD program on `p` verified thread-backed ranks: every
/// rank's communicator is a [`VerifyComm`] over [`ThreadComm`] sharing one
/// trace registry, so collective mismatches panic with a full per-rank event
/// dump and deadlocks are bounded by the watchdog.
pub fn run_verified<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(VerifyComm<ThreadComm>) -> R + Sync,
{
    run_verified_with_timeout(p, ThreadComm::DEFAULT_WATCHDOG, f)
}

/// [`run_verified`] with a custom watchdog timeout.
pub fn run_verified_with_timeout<R, F>(p: usize, watchdog: Duration, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(VerifyComm<ThreadComm>) -> R + Sync,
{
    let comms = ThreadComm::create_with_timeout(p, watchdog);
    let verified = VerifyComm::wrap_all(comms);
    let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = verified
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect()
}

/// Asserts that independently recorded per-rank event streams (from
/// [`VerifyComm::trace`], e.g. separate [`crate::SelfComm`] or
/// [`crate::ModelComm`] runs) are identical, panicking at the first
/// divergence with both streams' context.
pub fn assert_streams_match(streams: &[Vec<Event>]) {
    let Some((first, rest)) = streams.split_first() else {
        return;
    };
    for (r, stream) in rest.iter().enumerate() {
        if stream.len() != first.len() {
            // analyze::allow(panic_surface): post-run assertion helper — divergent recorded streams must fail the harness loudly
            panic!(
                "recorded collective streams diverge: stream 0 has {} events, \
                 stream {} has {}",
                first.len(),
                r + 1,
                stream.len()
            );
        }
        for (i, (a, b)) in first.iter().zip(stream.iter()).enumerate() {
            // Peer ranks legitimately differ across ranks (tree edges);
            // kind/root/len/seq must not.
            if a.seq != b.seq || a.kind != b.kind || a.root != b.root || a.len != b.len {
                // analyze::allow(panic_surface): post-run assertion helper — divergent recorded streams must fail the harness loudly
                panic!(
                    "recorded collective streams diverge at event {i}: stream 0 \
                     has {a}, stream {} has {b}",
                    r + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelComm, SelfComm};

    #[test]
    fn matched_streams_pass_and_compute_correctly() {
        for p in [1usize, 2, 3, 5] {
            let results = run_verified(p, |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0; 4];
                comm.allreduce_sum(&mut buf);
                let mut maxb = vec![comm.rank() as f64];
                comm.allreduce_max(&mut maxb);
                let mut b = vec![if comm.rank() == 0 { 7.0 } else { 0.0 }; 3];
                comm.broadcast(0, &mut b);
                comm.barrier();
                let g = comm.allgather(&[comm.rank() as f64; 2]);
                (buf[0], maxb[0], b[2], g.len())
            });
            let sum: f64 = (1..=p).map(|r| r as f64).sum();
            for (s, m, b, g) in results {
                assert_eq!(s, sum, "p={p}");
                assert_eq!(m, (p - 1) as f64);
                assert_eq!(b, 7.0);
                assert_eq!(g, 2 * p);
            }
        }
    }

    #[test]
    fn verified_p2p_round_trips() {
        let p = 4;
        let results = run_verified(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, &[comm.rank() as f64, 42.0]);
            comm.recv(prev)
        });
        for (r, msg) in results.iter().enumerate() {
            assert_eq!(msg, &vec![((r + p - 1) % p) as f64, 42.0]);
        }
    }

    #[test]
    #[should_panic(expected = "SPMD collective stream mismatch")]
    fn wrong_collective_kind_is_caught() {
        run_verified(2, |comm| {
            let mut buf = vec![1.0; 4];
            if comm.rank() == 0 {
                comm.allreduce_sum(&mut buf);
            } else {
                comm.allreduce_max(&mut buf);
            }
        });
    }

    #[test]
    #[should_panic(expected = "len: disagrees across ranks")]
    fn wrong_length_is_caught() {
        run_verified(3, |comm| {
            let mut buf = vec![1.0; 4 + comm.rank() % 2];
            comm.allreduce_sum(&mut buf);
        });
    }

    #[test]
    #[should_panic(expected = "root: disagrees across ranks")]
    fn wrong_root_is_caught() {
        run_verified(2, |comm| {
            let mut buf = vec![1.0; 4];
            comm.broadcast(comm.rank(), &mut buf);
        });
    }

    #[test]
    #[should_panic(expected = "kind: disagrees across ranks")]
    fn skipped_collective_is_caught() {
        // Rank 1 forgets a barrier, so its operation stream runs one step
        // ahead: the check rounds stay lockstep, so the skip surfaces as a
        // kind mismatch at the first divergent operation (barrier on rank 0
        // meets allreduce_sum on rank 1).
        run_verified(2, |comm| {
            let mut buf = vec![1.0; 4];
            if comm.rank() == 0 {
                comm.barrier();
            }
            comm.allreduce_sum(&mut buf);
        });
    }

    #[test]
    fn nonblocking_matched_streams_pass() {
        for p in [1usize, 2, 3] {
            let results = run_verified(p, |comm| {
                let a = comm.iallreduce_sum(vec![1.0; 4]);
                let b = comm.iallreduce_sum(vec![2.0; 3]);
                // Waiting out of post order must still verify: fingerprints
                // were taken at post, check rounds run in post order.
                let vb = b.wait();
                let va = a.wait();
                (va[0], vb[0])
            });
            for (va, vb) in results {
                assert_eq!(va, p as f64, "p={p}");
                assert_eq!(vb, 2.0 * p as f64, "p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "len: disagrees across ranks")]
    fn nonblocking_len_mismatch_is_caught_at_wait() {
        run_verified(3, |comm| {
            let req = comm.iallreduce_sum(vec![1.0; 4 + comm.rank() % 2]);
            req.wait();
        });
    }

    #[test]
    #[should_panic(expected = "kind: disagrees across ranks")]
    fn nonblocking_vs_blocking_kind_mismatch_is_caught() {
        // A rank that posts iallreduce_sum where its peer calls the blocking
        // allreduce_sum has genuinely diverged (the backends route them over
        // different channels), and the fingerprint kinds differ.
        run_verified(2, |comm| {
            if comm.rank() == 0 {
                comm.iallreduce_sum(vec![1.0; 4]).wait();
            } else {
                let mut buf = vec![1.0; 4];
                comm.allreduce_sum(&mut buf);
            }
        });
    }

    #[test]
    fn verified_isend_irecv_ring_round_trips() {
        let p = 4;
        let results = run_verified(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            let rx = comm.irecv(prev);
            let tx = comm.isend(next, vec![comm.rank() as f64, 42.0]);
            tx.wait();
            rx.wait()
        });
        for (r, msg) in results.iter().enumerate() {
            assert_eq!(msg, &vec![((r + p - 1) % p) as f64, 42.0]);
        }
    }

    #[test]
    fn self_comm_records_stream_locally() {
        let comm = VerifyComm::new(SelfComm::new());
        let mut buf = vec![1.0, 2.0];
        comm.allreduce_sum(&mut buf);
        comm.broadcast(0, &mut buf);
        comm.barrier();
        assert_eq!(buf, vec![1.0, 2.0], "SelfComm ops must stay no-ops");
        let trace = comm.trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].kind, OpKind::AllreduceSum);
        assert_eq!(trace[1].kind, OpKind::Broadcast);
        assert_eq!(trace[2].kind, OpKind::Barrier);
        assert_eq!(comm.ops_issued(), 3);
    }

    #[test]
    fn model_comm_records_stream_and_stats() {
        let comm = VerifyComm::new(ModelComm::new(8));
        let mut buf = vec![0.0; 10];
        comm.allreduce_sum(&mut buf);
        comm.allreduce_sum(&mut buf);
        assert_eq!(comm.stats().count(CollectiveKind::Allreduce), 2);
        assert_eq!(comm.trace().len(), 2);
        assert!(comm.is_model());
    }

    #[test]
    fn identical_recorded_streams_match() {
        let run = |scale: f64| {
            let comm = VerifyComm::new(SelfComm::new());
            let mut buf = vec![scale; 4];
            comm.allreduce_sum(&mut buf);
            comm.broadcast(0, &mut buf);
            comm.trace()
        };
        assert_streams_match(&[run(1.0), run(2.0)]);
    }

    #[test]
    #[should_panic(expected = "streams diverge at event 1")]
    fn divergent_recorded_streams_panic() {
        let a = {
            let comm = VerifyComm::new(SelfComm::new());
            comm.allreduce_sum(&mut [0.0; 4]);
            comm.broadcast(0, &mut [0.0; 4]);
            comm.trace()
        };
        let b = {
            let comm = VerifyComm::new(SelfComm::new());
            comm.allreduce_sum(&mut [0.0; 4]);
            comm.allreduce_sum(&mut [0.0; 4]);
            comm.trace()
        };
        assert_streams_match(&[a, b]);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let comm = VerifyComm::new(SelfComm::new());
        for _ in 0..(TRACE_CAPACITY + 9) {
            comm.barrier();
        }
        let trace = comm.trace();
        assert_eq!(trace.len(), TRACE_CAPACITY);
        assert_eq!(trace[0].seq, 10, "ring must keep the newest events");
        assert_eq!(comm.ops_issued(), (TRACE_CAPACITY + 9) as u64);
    }
}
