//! Thread-backed communicator: `P` ranks as OS threads.
//!
//! This backend exists to *validate* the distributed algorithms — the
//! binomial reduce/broadcast trees perform the same data movement an MPI
//! implementation would, so integration tests can assert that the
//! distributed rounding variants agree with their sequential counterparts.
//! (On a multi-core machine it also yields real speedup; scaling *studies*
//! use the analytic model in [`crate::cost`] instead, see DESIGN.md.)

use std::cell::RefCell;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::cost::{CollectiveKind, CommStats};
use crate::Communicator;

/// One rank's endpoint of a `P`-rank thread communicator.
///
/// Handles are created in bulk with [`ThreadComm::create`] and moved into
/// their threads; [`ThreadComm::run`] wraps the whole spawn/join dance.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// `senders[to]` feeds rank `to`'s mailbox for messages from us.
    senders: Vec<Sender<Vec<f64>>>,
    /// `receivers[from]` drains our mailbox for messages from `from`.
    receivers: Vec<Receiver<Vec<f64>>>,
    barrier: Arc<std::sync::Barrier>,
    stats: RefCell<CommStats>,
}

impl ThreadComm {
    /// Creates the `p` connected endpoints of a new communicator.
    pub fn create(p: usize) -> Vec<ThreadComm> {
        assert!(p >= 1);
        // mesh[from][to]
        let mut senders_by_from: Vec<Vec<Sender<Vec<f64>>>> = Vec::with_capacity(p);
        let mut receivers_by_to: Vec<Vec<Receiver<Vec<f64>>>> =
            (0..p).map(|_| Vec::new()).collect();
        for _from in 0..p {
            let mut row = Vec::with_capacity(p);
            for to in 0..p {
                let (s, r) = unbounded();
                row.push(s);
                receivers_by_to[to].push(r);
            }
            senders_by_from.push(row);
        }
        let barrier = Arc::new(std::sync::Barrier::new(p));
        senders_by_from
            .into_iter()
            .zip(receivers_by_to)
            .enumerate()
            .map(|(rank, (senders, receivers))| ThreadComm {
                rank,
                size: p,
                senders,
                receivers,
                barrier: Arc::clone(&barrier),
                stats: RefCell::new(CommStats::default()),
            })
            .collect()
    }

    /// Runs `f` as an SPMD program on `p` ranks (threads), returning each
    /// rank's result in rank order.
    pub fn run<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::create(p);
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    scope.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("SPMD rank panicked"))
                .collect()
        })
    }

    fn raw_send(&self, to: usize, buf: &[f64]) {
        self.senders[to].send(buf.to_vec()).expect("peer hung up");
    }

    fn raw_recv(&self, from: usize) -> Vec<f64> {
        self.receivers[from].recv().expect("peer hung up")
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    /// Binomial-tree reduce to rank 0 followed by a binomial broadcast —
    /// the same `O(log P)` data movement an MPI allreduce performs.
    fn allreduce_sum(&self, buf: &mut [f64]) {
        self.reduce_with(buf, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc.iter()) {
                *a += b;
            }
        });
        self.broadcast_internal(0, buf);
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
    }

    fn allreduce_max(&self, buf: &mut [f64]) {
        self.reduce_with(buf, |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc.iter()) {
                if *b > *a {
                    *a = *b;
                }
            }
        });
        self.broadcast_internal(0, buf);
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        self.broadcast_internal(root, buf);
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Broadcast, buf.len());
    }

    /// Gather-to-root + broadcast (binomial trees on both legs), supporting
    /// per-rank payload lengths (MPI_Allgatherv semantics).
    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        let p = self.size;
        let mut gathered: Vec<f64>;
        if self.rank == 0 {
            let mut parts: Vec<Vec<f64>> = Vec::with_capacity(p);
            parts.push(send.to_vec());
            for from in 1..p {
                parts.push(self.raw_recv(from));
            }
            gathered = parts.concat();
        } else {
            self.raw_send(0, send);
            gathered = Vec::new();
        }
        // Broadcast the total length, then the payload.
        let mut len_buf = [gathered.len() as f64];
        self.broadcast_internal(0, &mut len_buf);
        let total = len_buf[0] as usize;
        gathered.resize(total, 0.0);
        self.broadcast_internal(0, &mut gathered);
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allgather, total);
        gathered
    }

    fn send(&self, to: usize, buf: &[f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::PointToPoint, buf.len());
        self.raw_send(to, buf);
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        self.raw_recv(from)
    }

    fn barrier(&self) {
        self.barrier.wait();
    }

    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

impl ThreadComm {
    /// Binomial-tree reduction to rank 0 with a custom combiner.
    fn reduce_with(&self, buf: &mut [f64], combine: impl Fn(&mut [f64], &[f64])) {
        let p = self.size;
        let rank = self.rank;
        let mut mask = 1;
        while mask < p {
            if rank & mask != 0 {
                self.raw_send(rank - mask, buf);
                break;
            } else if rank + mask < p {
                let inc = self.raw_recv(rank + mask);
                combine(buf, &inc);
            }
            mask <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root` (standard MPICH virtual-rank
    /// formulation), without recording a stats event.
    fn broadcast_internal(&self, root: usize, buf: &mut [f64]) {
        let p = self.size;
        if p == 1 {
            return;
        }
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let vsrc = vrank - mask;
                let src = (vsrc + root) % p;
                let data = self.raw_recv(src);
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 && vrank + mask < p {
                let vdst = vrank + mask;
                let dst = (vdst + root) % p;
                self.raw_send(dst, buf);
            }
            mask >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            let results = ThreadComm::run(p, |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0, 10.0 * (comm.rank() as f64 + 1.0)];
                comm.allreduce_sum(&mut buf);
                buf
            });
            let expect0: f64 = (1..=p).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r[0], expect0, "p={p}");
                assert_eq!(r[1], 10.0 * expect0, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_max_across_ranks() {
        for p in [2usize, 3, 7] {
            let results = ThreadComm::run(p, |comm| {
                let mut buf = vec![-(comm.rank() as f64), comm.rank() as f64];
                comm.allreduce_max(&mut buf);
                buf
            });
            for r in results {
                assert_eq!(r[0], 0.0);
                assert_eq!(r[1], (p - 1) as f64);
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [2usize, 3, 4, 6] {
            for root in 0..p {
                let results = ThreadComm::run(p, |comm| {
                    let mut buf = if comm.rank() == root {
                        vec![42.0, root as f64]
                    } else {
                        vec![0.0, 0.0]
                    };
                    comm.broadcast(root, &mut buf);
                    buf
                });
                for r in results {
                    assert_eq!(r, vec![42.0, root as f64], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn point_to_point_ring() {
        let p = 4;
        let results = ThreadComm::run(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, &[comm.rank() as f64]);
            comm.recv(prev)[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        for p in [1usize, 2, 3, 5] {
            let results = ThreadComm::run(p, |comm| {
                // Variable-length payloads: rank r contributes r+1 values.
                let send: Vec<f64> = (0..comm.rank() + 1).map(|i| (comm.rank() * 10 + i) as f64).collect();
                comm.allgather(&send)
            });
            let expect: Vec<f64> = (0..p)
                .flat_map(|r| (0..r + 1).map(move |i| (r * 10 + i) as f64))
                .collect();
            for r in results {
                assert_eq!(r, expect, "p={p}");
            }
        }
    }

    #[test]
    fn barrier_completes() {
        let results = ThreadComm::run(5, |comm| {
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stats_are_per_rank() {
        let results = ThreadComm::run(3, |comm| {
            let mut buf = vec![1.0; 10];
            comm.allreduce_sum(&mut buf);
            comm.stats().count(CollectiveKind::Allreduce)
        });
        assert_eq!(results, vec![1, 1, 1]);
    }
}
