//! Thread-backed communicator: `P` ranks as OS threads.
//!
//! This backend exists to *validate* the distributed algorithms — the
//! binomial reduce/broadcast trees perform the same data movement an MPI
//! implementation would, so integration tests can assert that the
//! distributed rounding variants agree with their sequential counterparts.
//! (On a multi-core machine it also yields real speedup; scaling *studies*
//! use the analytic model in [`crate::cost`] instead, see DESIGN.md.)
//!
//! # Deadlock watchdog
//!
//! The classic failure mode of SPMD code is ranks issuing mismatched or
//! reordered collectives, which under a blocking runtime surfaces as a hung
//! test suite. Every blocking operation here (point-to-point receive, the
//! internal tree receives of the collectives, and [`Communicator::barrier`])
//! is therefore guarded by a watchdog: if the operation does not complete
//! within the communicator's timeout ([`ThreadComm::create_with_timeout`],
//! default [`ThreadComm::DEFAULT_WATCHDOG`]), the rank panics with a
//! diagnostic that names the stuck operation and dumps every rank's last
//! communication event, instead of hanging forever. Cross-rank *semantic*
//! checking (catching the mismatch before it deadlocks) is layered on top by
//! [`crate::verify::VerifyComm`].

use std::cell::RefCell;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cost::{CollectiveKind, CommStats};
use crate::Communicator;

/// Shared per-rank "last event" table used for watchdog diagnostics.
#[derive(Debug)]
struct StatusBoard {
    entries: Mutex<Vec<String>>,
}

impl StatusBoard {
    fn new(p: usize) -> Self {
        StatusBoard {
            entries: Mutex::new(vec!["<no events yet>".to_string(); p]),
        }
    }

    fn set(&self, rank: usize, event: String) {
        match self.entries.lock() {
            Ok(mut e) => e[rank] = event,
            // A poisoned board means another rank already panicked while
            // holding the lock; diagnostics are best-effort at that point.
            Err(poisoned) => poisoned.into_inner()[rank] = event,
        }
    }

    fn snapshot(&self) -> Vec<String> {
        match self.entries.lock() {
            Ok(e) => e.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn render(&self) -> String {
        self.snapshot()
            .iter()
            .enumerate()
            .map(|(r, e)| format!("  rank {r}: {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A reusable barrier whose `wait` panics with a diagnostic instead of
/// blocking forever when some rank never arrives.
#[derive(Debug)]
struct WatchdogBarrier {
    size: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl WatchdogBarrier {
    fn new(size: usize) -> Self {
        WatchdogBarrier {
            size,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all ranks arrive or `timeout` elapses; on timeout calls
    /// `diag` for a panic message.
    fn wait(&self, timeout: Duration, diag: impl FnOnce(Duration) -> String) {
        let mut guard = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.arrived += 1;
        if guard.arrived == self.size {
            guard.arrived = 0;
            guard.generation = guard.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let gen_at_entry = guard.generation;
        let start = Instant::now();
        while guard.generation == gen_at_entry {
            let remaining = match timeout.checked_sub(start.elapsed()) {
                Some(d) if !d.is_zero() => d,
                // analyze::allow(panic_surface): watchdog abort — turning a silent deadlock into a loud diagnostic is this type's purpose
                _ => panic!("{}", diag(start.elapsed())),
            };
            guard = match self.cv.wait_timeout(guard, remaining) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// One rank's endpoint of a `P`-rank thread communicator.
///
/// Handles are created in bulk with [`ThreadComm::create`] and moved into
/// their threads; [`ThreadComm::run`] wraps the whole spawn/join dance.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// `senders[to]` feeds rank `to`'s mailbox for messages from us.
    senders: Vec<Sender<Vec<f64>>>,
    /// `receivers[from]` drains our mailbox for messages from `from`.
    receivers: Vec<Receiver<Vec<f64>>>,
    barrier: Arc<WatchdogBarrier>,
    board: Arc<StatusBoard>,
    watchdog: Duration,
    stats: RefCell<CommStats>,
}

impl ThreadComm {
    /// Default watchdog timeout for [`ThreadComm::create`]/[`ThreadComm::run`]:
    /// generous enough for any legitimate collective in the test suite, small
    /// enough that a deadlocked test fails rather than hanging CI.
    pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

    /// Creates the `p` connected endpoints of a new communicator with the
    /// default watchdog timeout.
    pub fn create(p: usize) -> Vec<ThreadComm> {
        Self::create_with_timeout(p, Self::DEFAULT_WATCHDOG)
    }

    /// Creates the `p` connected endpoints with a custom watchdog timeout:
    /// any blocking receive or barrier that exceeds `watchdog` panics with a
    /// per-rank event dump instead of hanging.
    pub fn create_with_timeout(p: usize, watchdog: Duration) -> Vec<ThreadComm> {
        assert!(p >= 1);
        // mesh[from][to]
        let mut senders_by_from: Vec<Vec<Sender<Vec<f64>>>> = Vec::with_capacity(p);
        let mut receivers_by_to: Vec<Vec<Receiver<Vec<f64>>>> =
            (0..p).map(|_| Vec::new()).collect();
        for _from in 0..p {
            let mut row = Vec::with_capacity(p);
            for inbox in receivers_by_to.iter_mut() {
                let (s, r) = channel();
                row.push(s);
                inbox.push(r);
            }
            senders_by_from.push(row);
        }
        let barrier = Arc::new(WatchdogBarrier::new(p));
        let board = Arc::new(StatusBoard::new(p));
        senders_by_from
            .into_iter()
            .zip(receivers_by_to)
            .enumerate()
            .map(|(rank, (senders, receivers))| ThreadComm {
                rank,
                size: p,
                senders,
                receivers,
                barrier: Arc::clone(&barrier),
                board: Arc::clone(&board),
                watchdog,
                stats: RefCell::new(CommStats::default()),
            })
            .collect()
    }

    /// Runs `f` as an SPMD program on `p` ranks (threads), returning each
    /// rank's result in rank order.
    ///
    /// If a rank panics (including watchdog and [`crate::verify::VerifyComm`]
    /// diagnostics), the panic is re-raised on the caller's thread after all
    /// ranks have terminated, preserving the original message.
    pub fn run<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        Self::run_with_timeout(p, Self::DEFAULT_WATCHDOG, f)
    }

    /// [`ThreadComm::run`] with a custom watchdog timeout.
    pub fn run_with_timeout<R, F>(p: usize, watchdog: Duration, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::create_with_timeout(p, watchdog);
        // Join every rank before propagating any panic: resuming a panic
        // while sibling ranks are still running would make the scope's
        // implicit join panic during unwinding and abort the process.
        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    scope.spawn(move || f(comm))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// The configured watchdog timeout.
    pub fn watchdog_timeout(&self) -> Duration {
        self.watchdog
    }

    fn note(&self, event: String) {
        self.board.set(self.rank, event);
    }

    pub(crate) fn raw_send(&self, to: usize, buf: &[f64]) {
        if self.senders[to].send(buf.to_vec()).is_err() {
            // analyze::allow(panic_surface): peer death mid-run is unrecoverable for a blocking transport; panic carries the per-rank event board
            panic!(
                "ThreadComm rank {}: send(to={to}, len={}) failed: rank {to} has \
                 terminated (its endpoint was dropped). Per-rank last events:\n{}",
                self.rank,
                buf.len(),
                self.board.render()
            );
        }
    }

    pub(crate) fn raw_recv(&self, from: usize) -> Vec<f64> {
        let start = Instant::now();
        loop {
            let remaining = match self.watchdog.checked_sub(start.elapsed()) {
                Some(d) if !d.is_zero() => d,
                // analyze::allow(panic_surface): watchdog abort — turning a silent deadlock into a loud diagnostic is this type's purpose
                _ => panic!(
                    "ThreadComm watchdog: rank {} stuck in recv(from={from}) for \
                     {:?} (timeout {:?}). Per-rank last events:\n{}\n\
                     This usually means ranks issued mismatched or reordered \
                     collectives; wrap the communicator in \
                     tt_comm::verify::VerifyComm to pinpoint the first divergent \
                     call.",
                    self.rank,
                    start.elapsed(),
                    self.watchdog,
                    self.board.render()
                ),
            };
            match self.receivers[from].recv_timeout(remaining) {
                Ok(msg) => return msg,
                Err(RecvTimeoutError::Timeout) => continue,
                // analyze::allow(panic_surface): peer death mid-run is unrecoverable for a blocking transport; panic carries the per-rank event board
                Err(RecvTimeoutError::Disconnected) => panic!(
                    "ThreadComm rank {}: recv(from={from}) failed: rank {from} has \
                     terminated without sending (its endpoint was dropped). \
                     Per-rank last events:\n{}",
                    self.rank,
                    self.board.render()
                ),
            }
        }
    }

    /// Receive for the internal collective trees, where the expected payload
    /// length is known: a length mismatch means a foreign message (from a
    /// misaligned operation on the peer) was consumed, and is reported as
    /// such rather than silently corrupting the reduction.
    fn raw_recv_expect(&self, from: usize, expected_len: usize, op: &str) -> Vec<f64> {
        let msg = self.raw_recv(from);
        if msg.len() != expected_len {
            // analyze::allow(panic_surface): consuming a foreign message would silently corrupt the reduction; abort with the divergence report instead
            panic!(
                "ThreadComm rank {}: {op} expected a {expected_len}-word message \
                 from rank {from} but received {} words — the ranks' collective \
                 streams have diverged (mismatched or reordered operations). \
                 Per-rank last events:\n{}",
                self.rank,
                msg.len(),
                self.board.render()
            );
        }
        msg
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    /// Binomial-tree reduce to rank 0 followed by a binomial broadcast —
    /// the same `O(log P)` data movement an MPI allreduce performs.
    fn allreduce_sum(&self, buf: &mut [f64]) {
        self.note(format!("in allreduce_sum(len={})", buf.len()));
        self.reduce_with(buf, "allreduce_sum", |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc.iter()) {
                *a += b;
            }
        });
        self.broadcast_internal(0, buf, "allreduce_sum");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
        self.note(format!("after allreduce_sum(len={})", buf.len()));
    }

    fn allreduce_max(&self, buf: &mut [f64]) {
        self.note(format!("in allreduce_max(len={})", buf.len()));
        self.reduce_with(buf, "allreduce_max", |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc.iter()) {
                if *b > *a {
                    *a = *b;
                }
            }
        });
        self.broadcast_internal(0, buf, "allreduce_max");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
        self.note(format!("after allreduce_max(len={})", buf.len()));
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        self.note(format!("in broadcast(root={root}, len={})", buf.len()));
        self.broadcast_internal(root, buf, "broadcast");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Broadcast, buf.len());
        self.note(format!("after broadcast(root={root}, len={})", buf.len()));
    }

    /// Gather-to-root + broadcast (binomial trees on both legs), supporting
    /// per-rank payload lengths (MPI_Allgatherv semantics).
    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        self.note(format!("in allgather(local_len={})", send.len()));
        let p = self.size;
        let mut gathered: Vec<f64>;
        if self.rank == 0 {
            let mut parts: Vec<Vec<f64>> = Vec::with_capacity(p);
            parts.push(send.to_vec());
            for from in 1..p {
                parts.push(self.raw_recv(from));
            }
            gathered = parts.concat();
        } else {
            self.raw_send(0, send);
            gathered = Vec::new();
        }
        // Broadcast the total length, then the payload.
        let mut len_buf = [gathered.len() as f64];
        self.broadcast_internal(0, &mut len_buf, "allgather");
        let total = len_buf[0] as usize;
        gathered.resize(total, 0.0);
        self.broadcast_internal(0, &mut gathered, "allgather");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allgather, total);
        self.note(format!("after allgather(local_len={})", send.len()));
        gathered
    }

    fn send(&self, to: usize, buf: &[f64]) {
        self.note(format!("in send(to={to}, len={})", buf.len()));
        self.stats
            .borrow_mut()
            .record(CollectiveKind::PointToPoint, buf.len());
        self.raw_send(to, buf);
        self.note(format!("after send(to={to}, len={})", buf.len()));
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        self.note(format!("in recv(from={from})"));
        let msg = self.raw_recv(from);
        self.note(format!("after recv(from={from}, len={})", msg.len()));
        msg
    }

    fn barrier(&self) {
        self.note("in barrier".to_string());
        let rank = self.rank;
        let board = Arc::clone(&self.board);
        self.barrier.wait(self.watchdog, move |elapsed| {
            format!(
                "ThreadComm watchdog: rank {rank} stuck in barrier for {elapsed:?}: \
                 some rank never arrived. Per-rank last events:\n{}",
                board.render()
            )
        });
        self.note("after barrier".to_string());
    }

    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

impl ThreadComm {
    /// Binomial-tree reduction to rank 0 with a custom combiner.
    fn reduce_with(&self, buf: &mut [f64], op: &str, combine: impl Fn(&mut [f64], &[f64])) {
        let p = self.size;
        let rank = self.rank;
        let mut mask = 1;
        while mask < p {
            if rank & mask != 0 {
                self.raw_send(rank - mask, buf);
                break;
            } else if rank + mask < p {
                let inc = self.raw_recv_expect(rank + mask, buf.len(), op);
                combine(buf, &inc);
            }
            mask <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root` (standard MPICH virtual-rank
    /// formulation), without recording a stats event.
    fn broadcast_internal(&self, root: usize, buf: &mut [f64], op: &str) {
        let p = self.size;
        if p == 1 {
            return;
        }
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let vsrc = vrank - mask;
                let src = (vsrc + root) % p;
                let data = self.raw_recv_expect(src, buf.len(), op);
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 && vrank + mask < p {
                let vdst = vrank + mask;
                let dst = (vdst + root) % p;
                self.raw_send(dst, buf);
            }
            mask >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            let results = ThreadComm::run(p, |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0, 10.0 * (comm.rank() as f64 + 1.0)];
                comm.allreduce_sum(&mut buf);
                buf
            });
            let expect0: f64 = (1..=p).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r[0], expect0, "p={p}");
                assert_eq!(r[1], 10.0 * expect0, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_max_across_ranks() {
        for p in [2usize, 3, 7] {
            let results = ThreadComm::run(p, |comm| {
                let mut buf = vec![-(comm.rank() as f64), comm.rank() as f64];
                comm.allreduce_max(&mut buf);
                buf
            });
            for r in results {
                assert_eq!(r[0], 0.0);
                assert_eq!(r[1], (p - 1) as f64);
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [2usize, 3, 4, 6] {
            for root in 0..p {
                let results = ThreadComm::run(p, |comm| {
                    let mut buf = if comm.rank() == root {
                        vec![42.0, root as f64]
                    } else {
                        vec![0.0, 0.0]
                    };
                    comm.broadcast(root, &mut buf);
                    buf
                });
                for r in results {
                    assert_eq!(r, vec![42.0, root as f64], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn point_to_point_ring() {
        let p = 4;
        let results = ThreadComm::run(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, &[comm.rank() as f64]);
            comm.recv(prev)[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        for p in [1usize, 2, 3, 5] {
            let results = ThreadComm::run(p, |comm| {
                // Variable-length payloads: rank r contributes r+1 values.
                let send: Vec<f64> = (0..comm.rank() + 1)
                    .map(|i| (comm.rank() * 10 + i) as f64)
                    .collect();
                comm.allgather(&send)
            });
            let expect: Vec<f64> = (0..p)
                .flat_map(|r| (0..r + 1).map(move |i| (r * 10 + i) as f64))
                .collect();
            for r in results {
                assert_eq!(r, expect, "p={p}");
            }
        }
    }

    #[test]
    fn barrier_completes() {
        let results = ThreadComm::run(5, |comm| {
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stats_are_per_rank() {
        let results = ThreadComm::run(3, |comm| {
            let mut buf = vec![1.0; 10];
            comm.allreduce_sum(&mut buf);
            comm.stats().count(CollectiveKind::Allreduce)
        });
        assert_eq!(results, vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn watchdog_fires_on_missing_sender() {
        // Rank 1 waits for a message rank 0 never sends.
        ThreadComm::run_with_timeout(2, Duration::from_millis(200), |comm| {
            if comm.rank() == 1 {
                comm.recv(0);
            } else {
                // Keep rank 0 alive past the timeout so the failure is a
                // watchdog timeout, not a disconnect.
                std::thread::sleep(Duration::from_millis(400));
            }
        });
    }

    #[test]
    #[should_panic(expected = "stuck in barrier")]
    fn watchdog_fires_on_abandoned_barrier() {
        ThreadComm::run_with_timeout(2, Duration::from_millis(200), |comm| {
            if comm.rank() == 0 {
                comm.barrier();
            } else {
                std::thread::sleep(Duration::from_millis(400));
            }
        });
    }

    #[test]
    #[should_panic(expected = "terminated without sending")]
    fn disconnect_is_reported_structurally() {
        ThreadComm::run_with_timeout(2, Duration::from_secs(5), |comm| {
            if comm.rank() == 1 {
                comm.recv(0); // rank 0 returns immediately; its endpoint drops
            }
        });
    }

    #[test]
    #[should_panic(expected = "collective streams have diverged")]
    fn length_mismatch_in_tree_is_reported() {
        // Both ranks enter "allreduce_sum" but with different buffer lengths:
        // the internal tree detects the foreign message length.
        ThreadComm::run_with_timeout(2, Duration::from_secs(5), |comm| {
            let mut buf = vec![1.0; if comm.rank() == 0 { 4 } else { 7 }];
            comm.allreduce_sum(&mut buf);
        });
    }

    #[test]
    #[should_panic(expected = "ThreadComm watchdog")]
    fn watchdog_diagnoses_mismatched_collectives() {
        // The canonical mismatched-collective deadlock: rank 0 broadcasts
        // while rank 1 allreduces. The 4-word reduce message rank 1 sends is
        // consumed by rank 0's broadcast receive (the length matches, so the
        // structural check cannot see the divergence); rank 0 completes and
        // idles while rank 1 blocks forever waiting for the result broadcast.
        // The watchdog must convert that silent hang into a diagnostic panic
        // naming the stuck receive and dumping every rank's last event.
        ThreadComm::run_with_timeout(2, Duration::from_millis(300), |comm| {
            let mut buf = vec![1.0; 4];
            if comm.rank() == 0 {
                comm.broadcast(1, &mut buf);
                // Stay alive past the timeout so rank 1's failure is the
                // watchdog, not a disconnect.
                std::thread::sleep(Duration::from_millis(900));
            } else {
                comm.allreduce_sum(&mut buf);
            }
        });
    }

    #[test]
    fn deep_trees_and_watchdog_coexist() {
        // A legitimate long chain of collectives at P=8 must not trip the
        // watchdog.
        let results = ThreadComm::run_with_timeout(8, Duration::from_secs(10), |comm| {
            let mut acc = 0.0;
            for round in 0..50 {
                let mut buf = vec![(comm.rank() + round) as f64; 3];
                comm.allreduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        });
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }
}
