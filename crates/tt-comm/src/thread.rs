//! Thread-backed communicator: `P` ranks as OS threads.
//!
//! This backend exists to *validate* the distributed algorithms — the
//! binomial reduce/broadcast trees perform the same data movement an MPI
//! implementation would, so integration tests can assert that the
//! distributed rounding variants agree with their sequential counterparts.
//! (On a multi-core machine it also yields real speedup; scaling *studies*
//! use the analytic model in [`crate::cost`] instead, see DESIGN.md.)
//!
//! # Deadlock watchdog
//!
//! The classic failure mode of SPMD code is ranks issuing mismatched or
//! reordered collectives, which under a blocking runtime surfaces as a hung
//! test suite. Every blocking operation here (point-to-point receive, the
//! internal tree receives of the collectives, and [`Communicator::barrier`])
//! is therefore guarded by a watchdog: if the operation does not complete
//! within the communicator's timeout ([`ThreadComm::create_with_timeout`],
//! default [`ThreadComm::DEFAULT_WATCHDOG`]), the rank panics with a
//! diagnostic that names the stuck operation and dumps every rank's last
//! communication event, instead of hanging forever. Cross-rank *semantic*
//! checking (catching the mismatch before it deadlocks) is layered on top by
//! [`crate::verify::VerifyComm`].

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cost::{CollectiveKind, CommStats};
use crate::{Communicator, Request};

/// Shared per-rank "last event" table used for watchdog diagnostics, plus a
/// per-rank summary of posted-but-unwaited nonblocking requests: a hang with
/// an in-flight iallreduce must name the unserved request, not show an empty
/// queue.
#[derive(Debug)]
struct StatusBoard {
    entries: Mutex<Vec<String>>,
    pending: Mutex<Vec<String>>,
}

impl StatusBoard {
    fn new(p: usize) -> Self {
        StatusBoard {
            entries: Mutex::new(vec!["<no events yet>".to_string(); p]),
            pending: Mutex::new(vec!["none".to_string(); p]),
        }
    }

    fn set(&self, rank: usize, event: String) {
        match self.entries.lock() {
            Ok(mut e) => e[rank] = event,
            // A poisoned board means another rank already panicked while
            // holding the lock; diagnostics are best-effort at that point.
            Err(poisoned) => poisoned.into_inner()[rank] = event,
        }
    }

    fn set_pending(&self, rank: usize, summary: String) {
        match self.pending.lock() {
            Ok(mut e) => e[rank] = summary,
            Err(poisoned) => poisoned.into_inner()[rank] = summary,
        }
    }

    fn snapshot(&self) -> Vec<String> {
        match self.entries.lock() {
            Ok(e) => e.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn snapshot_pending(&self) -> Vec<String> {
        match self.pending.lock() {
            Ok(e) => e.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn render(&self) -> String {
        self.snapshot()
            .iter()
            .zip(self.snapshot_pending())
            .enumerate()
            .map(|(r, (e, p))| format!("  rank {r}: {e} | in-flight: {p}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Tag marking a nonblocking point-to-point message on the nonblocking
/// channel mesh (collective messages carry their post-order counter).
const NB_P2P_TAG: u64 = u64::MAX;

/// A tagged payload on the nonblocking channel mesh.
type TaggedMsg = (u64, Vec<f64>);

/// One posted-but-uncompleted nonblocking operation of a rank.
struct PendingReq {
    id: u64,
    op: PendingOp,
}

enum PendingOp {
    /// Flat-exchange iallreduce: the contribution was eagerly sent to every
    /// peer at post time; ours is kept for the tree-order combine at wait.
    Allreduce { tag: u64, buf: Vec<f64> },
    /// Deferred receive of a peer's `isend`.
    Recv { from: usize },
}

impl PendingOp {
    fn describe(&self) -> String {
        match self {
            PendingOp::Allreduce { tag, buf } => {
                format!("iallreduce#{tag}(len={})", buf.len())
            }
            PendingOp::Recv { from } => format!("irecv(from={from})"),
        }
    }
}

/// A reusable barrier whose `wait` panics with a diagnostic instead of
/// blocking forever when some rank never arrives.
#[derive(Debug)]
struct WatchdogBarrier {
    size: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl WatchdogBarrier {
    fn new(size: usize) -> Self {
        WatchdogBarrier {
            size,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all ranks arrive or `timeout` elapses; on timeout calls
    /// `diag` for a panic message.
    fn wait(&self, timeout: Duration, diag: impl FnOnce(Duration) -> String) {
        let mut guard = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.arrived += 1;
        if guard.arrived == self.size {
            guard.arrived = 0;
            guard.generation = guard.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let gen_at_entry = guard.generation;
        let start = Instant::now();
        while guard.generation == gen_at_entry {
            let remaining = match timeout.checked_sub(start.elapsed()) {
                Some(d) if !d.is_zero() => d,
                // analyze::allow(panic_surface): watchdog abort — turning a silent deadlock into a loud diagnostic is this type's purpose
                _ => panic!("{}", diag(start.elapsed())),
            };
            guard = match self.cv.wait_timeout(guard, remaining) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// One rank's endpoint of a `P`-rank thread communicator.
///
/// Handles are created in bulk with [`ThreadComm::create`] and moved into
/// their threads; [`ThreadComm::run`] wraps the whole spawn/join dance.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// `senders[to]` feeds rank `to`'s mailbox for messages from us.
    senders: Vec<Sender<Vec<f64>>>,
    /// `receivers[from]` drains our mailbox for messages from `from`.
    receivers: Vec<Receiver<Vec<f64>>>,
    /// Second, independent mesh for nonblocking traffic (tagged messages):
    /// blocking collectives issued between a post and its wait can never
    /// consume an in-flight nonblocking message, and vice versa.
    nb_senders: Vec<Sender<TaggedMsg>>,
    nb_receivers: Vec<Receiver<TaggedMsg>>,
    /// Per-peer park for nonblocking messages pulled off the channel while
    /// looking for a different tag (out-of-order waits).
    nb_stash: RefCell<Vec<VecDeque<TaggedMsg>>>,
    /// Post-order counter tagging nonblocking collective messages; SPMD
    /// programs post in identical order, so tags agree across ranks.
    nb_coll_tag: Cell<u64>,
    next_req_id: Cell<u64>,
    /// Posted-but-uncompleted requests, completed strictly in post (FIFO)
    /// order regardless of the order the user waits in.
    pending: RefCell<VecDeque<PendingReq>>,
    /// Results of requests completed ahead of their own wait by the FIFO
    /// progression.
    completed: RefCell<BTreeMap<u64, Vec<f64>>>,
    barrier: Arc<WatchdogBarrier>,
    board: Arc<StatusBoard>,
    watchdog: Duration,
    stats: RefCell<CommStats>,
}

impl ThreadComm {
    /// Default watchdog timeout for [`ThreadComm::create`]/[`ThreadComm::run`]:
    /// generous enough for any legitimate collective in the test suite, small
    /// enough that a deadlocked test fails rather than hanging CI.
    pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

    /// Creates the `p` connected endpoints of a new communicator with the
    /// default watchdog timeout.
    pub fn create(p: usize) -> Vec<ThreadComm> {
        Self::create_with_timeout(p, Self::DEFAULT_WATCHDOG)
    }

    /// Creates the `p` connected endpoints with a custom watchdog timeout:
    /// any blocking receive or barrier that exceeds `watchdog` panics with a
    /// per-rank event dump instead of hanging.
    pub fn create_with_timeout(p: usize, watchdog: Duration) -> Vec<ThreadComm> {
        assert!(p >= 1);
        // mesh[from][to], one per traffic class (blocking / nonblocking)
        let mut senders_by_from: Vec<Vec<Sender<Vec<f64>>>> = Vec::with_capacity(p);
        let mut receivers_by_to: Vec<Vec<Receiver<Vec<f64>>>> =
            (0..p).map(|_| Vec::new()).collect();
        let mut nb_senders_by_from: Vec<Vec<Sender<TaggedMsg>>> = Vec::with_capacity(p);
        let mut nb_receivers_by_to: Vec<Vec<Receiver<TaggedMsg>>> =
            (0..p).map(|_| Vec::new()).collect();
        for _from in 0..p {
            let mut row = Vec::with_capacity(p);
            for inbox in receivers_by_to.iter_mut() {
                let (s, r) = channel();
                row.push(s);
                inbox.push(r);
            }
            senders_by_from.push(row);
            let mut nb_row = Vec::with_capacity(p);
            for inbox in nb_receivers_by_to.iter_mut() {
                let (s, r) = channel();
                nb_row.push(s);
                inbox.push(r);
            }
            nb_senders_by_from.push(nb_row);
        }
        let barrier = Arc::new(WatchdogBarrier::new(p));
        let board = Arc::new(StatusBoard::new(p));
        senders_by_from
            .into_iter()
            .zip(receivers_by_to)
            .zip(nb_senders_by_from.into_iter().zip(nb_receivers_by_to))
            .enumerate()
            .map(
                |(rank, ((senders, receivers), (nb_senders, nb_receivers)))| ThreadComm {
                    rank,
                    size: p,
                    senders,
                    receivers,
                    nb_senders,
                    nb_receivers,
                    nb_stash: RefCell::new((0..p).map(|_| VecDeque::new()).collect()),
                    nb_coll_tag: Cell::new(0),
                    next_req_id: Cell::new(0),
                    pending: RefCell::new(VecDeque::new()),
                    completed: RefCell::new(BTreeMap::new()),
                    barrier: Arc::clone(&barrier),
                    board: Arc::clone(&board),
                    watchdog,
                    stats: RefCell::new(CommStats::default()),
                },
            )
            .collect()
    }

    /// Runs `f` as an SPMD program on `p` ranks (threads), returning each
    /// rank's result in rank order.
    ///
    /// If a rank panics (including watchdog and [`crate::verify::VerifyComm`]
    /// diagnostics), the panic is re-raised on the caller's thread after all
    /// ranks have terminated, preserving the original message.
    pub fn run<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        Self::run_with_timeout(p, Self::DEFAULT_WATCHDOG, f)
    }

    /// [`ThreadComm::run`] with a custom watchdog timeout.
    pub fn run_with_timeout<R, F>(p: usize, watchdog: Duration, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::create_with_timeout(p, watchdog);
        // Join every rank before propagating any panic: resuming a panic
        // while sibling ranks are still running would make the scope's
        // implicit join panic during unwinding and abort the process.
        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    scope.spawn(move || f(comm))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// The configured watchdog timeout.
    pub fn watchdog_timeout(&self) -> Duration {
        self.watchdog
    }

    fn note(&self, event: String) {
        self.board.set(self.rank, event);
    }

    pub(crate) fn raw_send(&self, to: usize, buf: &[f64]) {
        if self.senders[to].send(buf.to_vec()).is_err() {
            // analyze::allow(panic_surface): peer death mid-run is unrecoverable for a blocking transport; panic carries the per-rank event board
            panic!(
                "ThreadComm rank {}: send(to={to}, len={}) failed: rank {to} has \
                 terminated (its endpoint was dropped). Per-rank last events:\n{}",
                self.rank,
                buf.len(),
                self.board.render()
            );
        }
    }

    pub(crate) fn raw_recv(&self, from: usize) -> Vec<f64> {
        let start = Instant::now();
        loop {
            let remaining = match self.watchdog.checked_sub(start.elapsed()) {
                Some(d) if !d.is_zero() => d,
                // analyze::allow(panic_surface): watchdog abort — turning a silent deadlock into a loud diagnostic is this type's purpose
                _ => panic!(
                    "ThreadComm watchdog: rank {} stuck in recv(from={from}) for \
                     {:?} (timeout {:?}). Per-rank last events:\n{}\n\
                     This usually means ranks issued mismatched or reordered \
                     collectives; wrap the communicator in \
                     tt_comm::verify::VerifyComm to pinpoint the first divergent \
                     call.",
                    self.rank,
                    start.elapsed(),
                    self.watchdog,
                    self.board.render()
                ),
            };
            match self.receivers[from].recv_timeout(remaining) {
                Ok(msg) => return msg,
                Err(RecvTimeoutError::Timeout) => continue,
                // analyze::allow(panic_surface): peer death mid-run is unrecoverable for a blocking transport; panic carries the per-rank event board
                Err(RecvTimeoutError::Disconnected) => panic!(
                    "ThreadComm rank {}: recv(from={from}) failed: rank {from} has \
                     terminated without sending (its endpoint was dropped). \
                     Per-rank last events:\n{}",
                    self.rank,
                    self.board.render()
                ),
            }
        }
    }

    /// Receive for the internal collective trees, where the expected payload
    /// length is known: a length mismatch means a foreign message (from a
    /// misaligned operation on the peer) was consumed, and is reported as
    /// such rather than silently corrupting the reduction.
    fn raw_recv_expect(&self, from: usize, expected_len: usize, op: &str) -> Vec<f64> {
        let msg = self.raw_recv(from);
        if msg.len() != expected_len {
            // analyze::allow(panic_surface): consuming a foreign message would silently corrupt the reduction; abort with the divergence report instead
            panic!(
                "ThreadComm rank {}: {op} expected a {expected_len}-word message \
                 from rank {from} but received {} words — the ranks' collective \
                 streams have diverged (mismatched or reordered operations). \
                 Per-rank last events:\n{}",
                self.rank,
                msg.len(),
                self.board.render()
            );
        }
        msg
    }

    fn alloc_req(&self) -> u64 {
        let id = self.next_req_id.get();
        self.next_req_id.set(id + 1);
        id
    }

    /// Publishes this rank's pending-request queue (plus the op currently
    /// being completed, if any) to the shared board, so watchdog dumps name
    /// in-flight requests.
    fn note_pending(&self, completing: Option<&PendingOp>) {
        let mut items: Vec<String> = Vec::new();
        if let Some(op) = completing {
            items.push(format!("{} (in wait)", op.describe()));
        }
        items.extend(self.pending.borrow().iter().map(|r| r.op.describe()));
        let summary = if items.is_empty() {
            "none".to_string()
        } else {
            items.join(", ")
        };
        self.board.set_pending(self.rank, summary);
    }

    fn nb_send(&self, to: usize, tag: u64, buf: Vec<f64>) {
        let len = buf.len();
        if self.nb_senders[to].send((tag, buf)).is_err() {
            // analyze::allow(panic_surface): peer death mid-run is unrecoverable for a blocking transport; panic carries the per-rank event board
            panic!(
                "ThreadComm rank {}: nonblocking send(to={to}, len={len}) failed: \
                 rank {to} has terminated (its endpoint was dropped). Per-rank \
                 last events:\n{}",
                self.rank,
                self.board.render()
            );
        }
    }

    /// Blocking receive of the nonblocking message with tag `want` from
    /// `from`; foreign-tagged messages are parked in the stash for the
    /// requests they belong to. Watchdog-guarded like every blocking wait.
    fn nb_recv_tagged(&self, from: usize, want: u64, op: &str) -> Vec<f64> {
        {
            let mut stash = self.nb_stash.borrow_mut();
            let q = &mut stash[from];
            if let Some((_, payload)) = q
                .iter()
                .position(|(t, _)| *t == want)
                .and_then(|pos| q.remove(pos))
            {
                return payload;
            }
        }
        let start = Instant::now();
        loop {
            let remaining = match self.watchdog.checked_sub(start.elapsed()) {
                Some(d) if !d.is_zero() => d,
                // analyze::allow(panic_surface): watchdog abort — turning a silent deadlock into a loud diagnostic is this type's purpose
                _ => panic!(
                    "ThreadComm watchdog: rank {} stuck completing {op} (waiting \
                     for a nonblocking message from rank {from}) for {:?} \
                     (timeout {:?}). Per-rank last events and in-flight \
                     requests:\n{}\n\
                     This usually means some rank never posted the matching \
                     nonblocking operation, or waits were placed at divergent \
                     program points; wrap the communicator in \
                     tt_comm::verify::VerifyComm to pinpoint the first \
                     divergent call.",
                    self.rank,
                    start.elapsed(),
                    self.watchdog,
                    self.board.render()
                ),
            };
            match self.nb_receivers[from].recv_timeout(remaining) {
                Ok((tag, msg)) if tag == want => return msg,
                Ok(other) => self.nb_stash.borrow_mut()[from].push_back(other),
                Err(RecvTimeoutError::Timeout) => continue,
                // analyze::allow(panic_surface): peer death mid-run is unrecoverable for a blocking transport; panic carries the per-rank event board
                Err(RecvTimeoutError::Disconnected) => panic!(
                    "ThreadComm rank {}: completing {op} failed: rank {from} has \
                     terminated without sending (its endpoint was dropped). \
                     Per-rank last events:\n{}",
                    self.rank,
                    self.board.render()
                ),
            }
        }
    }

    /// Drains whatever nonblocking messages have already arrived into the
    /// stash without blocking (`req_test` progression).
    fn nb_pump(&self) {
        let mut stash = self.nb_stash.borrow_mut();
        for (from, rx) in self.nb_receivers.iter().enumerate() {
            while let Ok(msg) = rx.try_recv() {
                stash[from].push_back(msg);
            }
        }
    }

    /// Whether `op` can complete from the stash alone (after [`nb_pump`]).
    fn op_is_ready(&self, op: &PendingOp) -> bool {
        let stash = self.nb_stash.borrow();
        match op {
            PendingOp::Allreduce { tag, .. } => (0..self.size)
                .filter(|&from| from != self.rank)
                .all(|from| stash[from].iter().any(|(t, _)| t == tag)),
            PendingOp::Recv { from } => stash[*from].iter().any(|(t, _)| *t == NB_P2P_TAG),
        }
    }

    /// Completes one pending operation, blocking as needed.
    ///
    /// For an iallreduce the exchange already happened at post time (every
    /// rank eagerly sent its contribution to all peers); here the P
    /// contributions are combined **in the exact association order of the
    /// blocking binomial tree** (`reduce_with` + broadcast from rank 0), so
    /// the result is bitwise identical to `allreduce_sum` on every rank.
    fn complete_op(&self, op: PendingOp) -> Vec<f64> {
        match op {
            PendingOp::Allreduce { tag, buf } => {
                let p = self.size;
                let len = buf.len();
                let mut acc: Vec<Vec<f64>> = Vec::with_capacity(p);
                for from in 0..p {
                    if from == self.rank {
                        acc.push(Vec::new()); // placeholder, filled below
                        continue;
                    }
                    let msg = self.nb_recv_tagged(from, tag, "iallreduce_sum");
                    if msg.len() != len {
                        // analyze::allow(panic_surface): consuming a foreign message would silently corrupt the reduction; abort with the divergence report instead
                        panic!(
                            "ThreadComm rank {}: iallreduce_sum#{tag} expected a \
                             {len}-word contribution from rank {from} but received \
                             {} words — the ranks' nonblocking collective streams \
                             have diverged. Per-rank last events:\n{}",
                            self.rank,
                            msg.len(),
                            self.board.render()
                        );
                    }
                    acc.push(msg);
                }
                acc[self.rank] = buf;
                // Binomial-tree-order combine, replayed locally: identical
                // floating-point operations in identical order on every rank.
                let mut mask = 1usize;
                while mask < p {
                    let mut r = 0usize;
                    while r + mask < p {
                        let (lo, hi) = acc.split_at_mut(r + mask);
                        for (a, b) in lo[r].iter_mut().zip(hi[0].iter()) {
                            *a += b;
                        }
                        r += mask << 1;
                    }
                    mask <<= 1;
                }
                acc.swap_remove(0)
            }
            PendingOp::Recv { from } => self.nb_recv_tagged(from, NB_P2P_TAG, "irecv"),
        }
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    /// Binomial-tree reduce to rank 0 followed by a binomial broadcast —
    /// the same `O(log P)` data movement an MPI allreduce performs.
    fn allreduce_sum(&self, buf: &mut [f64]) {
        self.note(format!("in allreduce_sum(len={})", buf.len()));
        self.reduce_with(buf, "allreduce_sum", |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc.iter()) {
                *a += b;
            }
        });
        self.broadcast_internal(0, buf, "allreduce_sum");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
        self.note(format!("after allreduce_sum(len={})", buf.len()));
    }

    fn allreduce_max(&self, buf: &mut [f64]) {
        self.note(format!("in allreduce_max(len={})", buf.len()));
        self.reduce_with(buf, "allreduce_max", |acc, inc| {
            for (a, b) in acc.iter_mut().zip(inc.iter()) {
                if *b > *a {
                    *a = *b;
                }
            }
        });
        self.broadcast_internal(0, buf, "allreduce_max");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
        self.note(format!("after allreduce_max(len={})", buf.len()));
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        self.note(format!("in broadcast(root={root}, len={})", buf.len()));
        self.broadcast_internal(root, buf, "broadcast");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Broadcast, buf.len());
        self.note(format!("after broadcast(root={root}, len={})", buf.len()));
    }

    /// Gather-to-root + broadcast (binomial trees on both legs), supporting
    /// per-rank payload lengths (MPI_Allgatherv semantics).
    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        self.note(format!("in allgather(local_len={})", send.len()));
        let p = self.size;
        let mut gathered: Vec<f64>;
        if self.rank == 0 {
            let mut parts: Vec<Vec<f64>> = Vec::with_capacity(p);
            parts.push(send.to_vec());
            for from in 1..p {
                parts.push(self.raw_recv(from));
            }
            gathered = parts.concat();
        } else {
            self.raw_send(0, send);
            gathered = Vec::new();
        }
        // Broadcast the total length, then the payload.
        let mut len_buf = [gathered.len() as f64];
        self.broadcast_internal(0, &mut len_buf, "allgather");
        let total = len_buf[0] as usize;
        gathered.resize(total, 0.0);
        self.broadcast_internal(0, &mut gathered, "allgather");
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allgather, total);
        self.note(format!("after allgather(local_len={})", send.len()));
        gathered
    }

    fn send(&self, to: usize, buf: &[f64]) {
        self.note(format!("in send(to={to}, len={})", buf.len()));
        self.stats
            .borrow_mut()
            .record(CollectiveKind::PointToPoint, buf.len());
        self.raw_send(to, buf);
        self.note(format!("after send(to={to}, len={})", buf.len()));
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        self.note(format!("in recv(from={from})"));
        let msg = self.raw_recv(from);
        self.note(format!("after recv(from={from}, len={})", msg.len()));
        msg
    }

    fn barrier(&self) {
        self.note("in barrier".to_string());
        let rank = self.rank;
        let board = Arc::clone(&self.board);
        self.barrier.wait(self.watchdog, move |elapsed| {
            format!(
                "ThreadComm watchdog: rank {rank} stuck in barrier for {elapsed:?}: \
                 some rank never arrived. Per-rank last events:\n{}",
                board.render()
            )
        });
        self.note("after barrier".to_string());
    }

    /// Nonblocking allreduce as an eager **flat exchange**: the contribution
    /// is sent to every peer at post time, so between post and wait the only
    /// outstanding work is receiving the P−1 peer contributions — which is
    /// exactly what overlapped compute hides. The combine at wait time
    /// replays the blocking binomial-tree association order, so results are
    /// bitwise identical to [`Communicator::allreduce_sum`].
    fn iallreduce_sum(&self, buf: Vec<f64>) -> Request<'_> {
        self.note(format!("posted iallreduce_sum(len={})", buf.len()));
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
        if self.size == 1 {
            return Request::ready(buf);
        }
        let tag = self.nb_coll_tag.get();
        self.nb_coll_tag.set(tag + 1);
        for to in 0..self.size {
            if to != self.rank {
                self.nb_send(to, tag, buf.clone());
            }
        }
        let id = self.alloc_req();
        self.pending.borrow_mut().push_back(PendingReq {
            id,
            op: PendingOp::Allreduce { tag, buf },
        });
        self.note_pending(None);
        Request::pending(self, id)
    }

    fn isend(&self, to: usize, buf: Vec<f64>) -> Request<'_> {
        self.note(format!("isend(to={to}, len={})", buf.len()));
        self.stats
            .borrow_mut()
            .record(CollectiveKind::PointToPoint, buf.len());
        self.nb_send(to, NB_P2P_TAG, buf);
        // Eager channel send: locally complete as soon as it is posted.
        Request::ready(Vec::new())
    }

    fn irecv(&self, from: usize) -> Request<'_> {
        self.note(format!("posted irecv(from={from})"));
        let id = self.alloc_req();
        self.pending.borrow_mut().push_back(PendingReq {
            id,
            op: PendingOp::Recv { from },
        });
        self.note_pending(None);
        Request::pending(self, id)
    }

    /// Completes requests strictly in post order until `id` is served:
    /// waiting on a later request first simply drags the earlier ones to
    /// completion ahead of it (their results are held for their own waits).
    /// This pins the byte-consumption order to the post order, which is the
    /// determinism contract the pipelined sweeps rely on (DESIGN.md §14).
    fn req_wait(&self, id: u64) -> Vec<f64> {
        loop {
            if let Some(v) = self.completed.borrow_mut().remove(&id) {
                return v;
            }
            let req = self.pending.borrow_mut().pop_front();
            let Some(req) = req else {
                // analyze::allow(panic_surface): an id with no pending entry means a request was completed twice or crossed communicators — an unrecoverable harness bug
                panic!(
                    "ThreadComm rank {}: req_wait(id={id}) found no matching \
                     pending request — a Request was completed twice or used \
                     with a different communicator",
                    self.rank
                );
            };
            self.note_pending(Some(&req.op));
            let result = self.complete_op(req.op);
            self.note_pending(None);
            if req.id == id {
                return result;
            }
            self.completed.borrow_mut().insert(req.id, result);
        }
    }

    /// Nonblocking progression: drains arrived messages, then completes
    /// pending requests in post order for as long as the queue head can
    /// finish without blocking.
    fn req_test(&self, id: u64) -> Option<Vec<f64>> {
        loop {
            if let Some(v) = self.completed.borrow_mut().remove(&id) {
                return Some(v);
            }
            self.nb_pump();
            let head_ready = {
                let pending = self.pending.borrow();
                match pending.front() {
                    Some(req) => self.op_is_ready(&req.op),
                    None => return None,
                }
            };
            if !head_ready {
                return None;
            }
            // `head_ready` proved the queue non-empty just above, but pop
            // defensively anyway rather than unwrap.
            let req = self.pending.borrow_mut().pop_front()?;
            let result = self.complete_op(req.op);
            self.note_pending(None);
            self.completed.borrow_mut().insert(req.id, result);
        }
    }

    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

impl ThreadComm {
    /// Binomial-tree reduction to rank 0 with a custom combiner.
    fn reduce_with(&self, buf: &mut [f64], op: &str, combine: impl Fn(&mut [f64], &[f64])) {
        let p = self.size;
        let rank = self.rank;
        let mut mask = 1;
        while mask < p {
            if rank & mask != 0 {
                self.raw_send(rank - mask, buf);
                break;
            } else if rank + mask < p {
                let inc = self.raw_recv_expect(rank + mask, buf.len(), op);
                combine(buf, &inc);
            }
            mask <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root` (standard MPICH virtual-rank
    /// formulation), without recording a stats event.
    fn broadcast_internal(&self, root: usize, buf: &mut [f64], op: &str) {
        let p = self.size;
        if p == 1 {
            return;
        }
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let vsrc = vrank - mask;
                let src = (vsrc + root) % p;
                let data = self.raw_recv_expect(src, buf.len(), op);
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 && vrank + mask < p {
                let vdst = vrank + mask;
                let dst = (vdst + root) % p;
                self.raw_send(dst, buf);
            }
            mask >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            let results = ThreadComm::run(p, |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0, 10.0 * (comm.rank() as f64 + 1.0)];
                comm.allreduce_sum(&mut buf);
                buf
            });
            let expect0: f64 = (1..=p).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r[0], expect0, "p={p}");
                assert_eq!(r[1], 10.0 * expect0, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_max_across_ranks() {
        for p in [2usize, 3, 7] {
            let results = ThreadComm::run(p, |comm| {
                let mut buf = vec![-(comm.rank() as f64), comm.rank() as f64];
                comm.allreduce_max(&mut buf);
                buf
            });
            for r in results {
                assert_eq!(r[0], 0.0);
                assert_eq!(r[1], (p - 1) as f64);
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [2usize, 3, 4, 6] {
            for root in 0..p {
                let results = ThreadComm::run(p, |comm| {
                    let mut buf = if comm.rank() == root {
                        vec![42.0, root as f64]
                    } else {
                        vec![0.0, 0.0]
                    };
                    comm.broadcast(root, &mut buf);
                    buf
                });
                for r in results {
                    assert_eq!(r, vec![42.0, root as f64], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn point_to_point_ring() {
        let p = 4;
        let results = ThreadComm::run(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, &[comm.rank() as f64]);
            comm.recv(prev)[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        for p in [1usize, 2, 3, 5] {
            let results = ThreadComm::run(p, |comm| {
                // Variable-length payloads: rank r contributes r+1 values.
                let send: Vec<f64> = (0..comm.rank() + 1)
                    .map(|i| (comm.rank() * 10 + i) as f64)
                    .collect();
                comm.allgather(&send)
            });
            let expect: Vec<f64> = (0..p)
                .flat_map(|r| (0..r + 1).map(move |i| (r * 10 + i) as f64))
                .collect();
            for r in results {
                assert_eq!(r, expect, "p={p}");
            }
        }
    }

    #[test]
    fn barrier_completes() {
        let results = ThreadComm::run(5, |comm| {
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stats_are_per_rank() {
        let results = ThreadComm::run(3, |comm| {
            let mut buf = vec![1.0; 10];
            comm.allreduce_sum(&mut buf);
            comm.stats().count(CollectiveKind::Allreduce)
        });
        assert_eq!(results, vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn watchdog_fires_on_missing_sender() {
        // Rank 1 waits for a message rank 0 never sends.
        ThreadComm::run_with_timeout(2, Duration::from_millis(200), |comm| {
            if comm.rank() == 1 {
                comm.recv(0);
            } else {
                // Keep rank 0 alive past the timeout so the failure is a
                // watchdog timeout, not a disconnect.
                std::thread::sleep(Duration::from_millis(400));
            }
        });
    }

    #[test]
    #[should_panic(expected = "stuck in barrier")]
    fn watchdog_fires_on_abandoned_barrier() {
        ThreadComm::run_with_timeout(2, Duration::from_millis(200), |comm| {
            if comm.rank() == 0 {
                comm.barrier();
            } else {
                std::thread::sleep(Duration::from_millis(400));
            }
        });
    }

    #[test]
    #[should_panic(expected = "terminated without sending")]
    fn disconnect_is_reported_structurally() {
        ThreadComm::run_with_timeout(2, Duration::from_secs(5), |comm| {
            if comm.rank() == 1 {
                comm.recv(0); // rank 0 returns immediately; its endpoint drops
            }
        });
    }

    #[test]
    #[should_panic(expected = "collective streams have diverged")]
    fn length_mismatch_in_tree_is_reported() {
        // Both ranks enter "allreduce_sum" but with different buffer lengths:
        // the internal tree detects the foreign message length.
        ThreadComm::run_with_timeout(2, Duration::from_secs(5), |comm| {
            let mut buf = vec![1.0; if comm.rank() == 0 { 4 } else { 7 }];
            comm.allreduce_sum(&mut buf);
        });
    }

    #[test]
    #[should_panic(expected = "ThreadComm watchdog")]
    fn watchdog_diagnoses_mismatched_collectives() {
        // The canonical mismatched-collective deadlock: rank 0 broadcasts
        // while rank 1 allreduces. The 4-word reduce message rank 1 sends is
        // consumed by rank 0's broadcast receive (the length matches, so the
        // structural check cannot see the divergence); rank 0 completes and
        // idles while rank 1 blocks forever waiting for the result broadcast.
        // The watchdog must convert that silent hang into a diagnostic panic
        // naming the stuck receive and dumping every rank's last event.
        ThreadComm::run_with_timeout(2, Duration::from_millis(300), |comm| {
            let mut buf = vec![1.0; 4];
            if comm.rank() == 0 {
                comm.broadcast(1, &mut buf);
                // Stay alive past the timeout so rank 1's failure is the
                // watchdog, not a disconnect.
                std::thread::sleep(Duration::from_millis(900));
            } else {
                comm.allreduce_sum(&mut buf);
            }
        });
    }

    #[test]
    fn iallreduce_matches_blocking_bitwise() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            let blocking = ThreadComm::run(p, |comm| {
                let mut buf: Vec<f64> =
                    (0..6).map(|i| (comm.rank() * 7 + i) as f64 / 3.0).collect();
                comm.allreduce_sum(&mut buf);
                buf
            });
            let nonblocking = ThreadComm::run(p, |comm| {
                let buf: Vec<f64> = (0..6).map(|i| (comm.rank() * 7 + i) as f64 / 3.0).collect();
                comm.iallreduce_sum(buf).wait()
            });
            assert_eq!(blocking, nonblocking, "p={p}");
        }
    }

    #[test]
    fn out_of_order_waits_complete_in_post_order() {
        for p in [2usize, 3, 4] {
            let results = ThreadComm::run(p, |comm| {
                let a = comm.iallreduce_sum(vec![1.0; 3]);
                let b = comm.iallreduce_sum(vec![10.0; 5]);
                // Waiting b first must still serve both correctly.
                let vb = b.wait();
                let va = a.wait();
                (va, vb)
            });
            for (va, vb) in results {
                assert_eq!(va, vec![p as f64; 3]);
                assert_eq!(vb, vec![10.0 * p as f64; 5]);
            }
        }
    }

    #[test]
    fn isend_irecv_ring_round_trips() {
        let p = 4;
        let results = ThreadComm::run(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            let req = comm.irecv(prev);
            comm.isend(next, vec![comm.rank() as f64, 0.5]).wait();
            req.wait()
        });
        for (r, msg) in results.iter().enumerate() {
            assert_eq!(msg, &vec![((r + p - 1) % p) as f64, 0.5]);
        }
    }

    #[test]
    fn nonblocking_and_blocking_traffic_stay_separate() {
        // A blocking collective issued between post and wait must not
        // consume the in-flight nonblocking messages.
        let p = 3;
        let results = ThreadComm::run(p, |comm| {
            let req = comm.iallreduce_sum(vec![comm.rank() as f64 + 1.0; 4]);
            let mut mid = vec![1.0; 2];
            comm.allreduce_sum(&mut mid);
            comm.barrier();
            let out = req.wait();
            (out[0], mid[0])
        });
        let expect: f64 = (1..=p).map(|r| r as f64).sum();
        for (a, m) in results {
            assert_eq!(a, expect);
            assert_eq!(m, p as f64);
        }
    }

    #[test]
    fn test_progresses_without_blocking() {
        let p = 2;
        let results = ThreadComm::run(p, |comm| {
            let mut req = comm.iallreduce_sum(vec![2.0; 3]);
            // Poll until the peer contribution arrives; a bounded spin keeps
            // the test finite even if test() were broken (wait() then
            // produces the diagnosis).
            for _ in 0..10_000 {
                if req.test() {
                    break;
                }
                std::thread::yield_now();
            }
            req.wait()
        });
        for r in results {
            assert_eq!(r, vec![4.0; 3]);
        }
    }

    #[test]
    #[should_panic(expected = "in-flight: iallreduce")]
    fn watchdog_dump_names_pending_requests() {
        // Rank 0 waits on an iallreduce rank 1 never posts: the watchdog
        // panic must name the unserved in-flight request in the per-rank
        // dump rather than showing an empty queue.
        ThreadComm::run_with_timeout(2, Duration::from_millis(300), |comm| {
            if comm.rank() == 0 {
                comm.iallreduce_sum(vec![1.0; 4]).wait();
            } else {
                std::thread::sleep(Duration::from_millis(900));
            }
        });
    }

    #[test]
    fn deep_trees_and_watchdog_coexist() {
        // A legitimate long chain of collectives at P=8 must not trip the
        // watchdog.
        let results = ThreadComm::run_with_timeout(8, Duration::from_secs(10), |comm| {
            let mut acc = 0.0;
            for round in 0..50 {
                let mut buf = vec![(comm.rank() + round) as f64; 3];
                comm.allreduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        });
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }
}
