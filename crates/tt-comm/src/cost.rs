//! LogP-style analytic communication cost model and event instrumentation.
//!
//! The paper's complexity analysis (§IV-E) prices the algorithms with
//! per-flop (γ), per-word (β), and per-message (α) costs:
//!
//! * Gram-SVD rounding: `β·O(NR²) + α·O(N log P)` — one well-optimized
//!   allreduce per mode;
//! * QR-based rounding: `β·O(NR² log P) + α·O(N log P)` — TSQR trees whose
//!   bandwidth term carries an extra `log P` factor.
//!
//! [`CostModel`] reproduces exactly these expressions so the scaling
//! harnesses can convert recorded communication events into modeled times.

/// Classification of a communication event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// MPI_Allreduce (recursive doubling / reduce+bcast tree).
    Allreduce,
    /// MPI_Bcast (binomial tree).
    Broadcast,
    /// MPI_Allgather (concatenation across ranks).
    Allgather,
    /// A point-to-point message (one TSQR tree edge).
    PointToPoint,
}

const KINDS: [CollectiveKind; 4] = [
    CollectiveKind::Allreduce,
    CollectiveKind::Broadcast,
    CollectiveKind::Allgather,
    CollectiveKind::PointToPoint,
];

/// Per-rank record of communication events (counts and word volumes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    counts: [usize; 4],
    words: [usize; 4],
}

impl CommStats {
    fn idx(kind: CollectiveKind) -> usize {
        match kind {
            CollectiveKind::Allreduce => 0,
            CollectiveKind::Broadcast => 1,
            CollectiveKind::Allgather => 2,
            CollectiveKind::PointToPoint => 3,
        }
    }

    /// Records one event of `kind` moving `words` `f64` words.
    pub fn record(&mut self, kind: CollectiveKind, words: usize) {
        self.counts[Self::idx(kind)] += 1;
        self.words[Self::idx(kind)] += words;
    }

    /// Number of events of the given kind.
    pub fn count(&self, kind: CollectiveKind) -> usize {
        self.counts[Self::idx(kind)]
    }

    /// Total `f64` words moved by events of the given kind.
    pub fn words(&self, kind: CollectiveKind) -> usize {
        self.words[Self::idx(kind)]
    }

    /// Total events of all kinds.
    pub fn total_messages(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Total words of all kinds.
    pub fn total_words(&self) -> usize {
        self.words.iter().sum()
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &CommStats) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
            self.words[i] += other.words[i];
        }
    }

    /// Prices every recorded event with `model` at `p` ranks and returns the
    /// total modeled communication time in seconds.
    pub fn modeled_time(&self, model: &CostModel, p: usize) -> f64 {
        let mut t = 0.0;
        for kind in KINDS {
            let count = self.count(kind);
            if count == 0 {
                continue;
            }
            let n = count as f64;
            let avg_words = self.words(kind) as f64 / n;
            t += n * model.collective_time(kind, avg_words, p);
        }
        t
    }
}

/// Machine parameters for the analytic model.
///
/// Defaults approximate a mid-2020s HPC interconnect of the Andes class
/// (EDR InfiniBand-ish): α = 2 µs per message, β = 8 ns per 8-byte word
/// (≈ 1 GB/s effective per-rank bandwidth, deliberately conservative), and
/// γ calibrated at runtime from a GEMM probe (defaulting to 0.5 ns/flop
/// ≈ 2 Gflop/s/core if not calibrated).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Latency per message, seconds.
    pub alpha: f64,
    /// Inverse bandwidth, seconds per `f64` word.
    pub beta: f64,
    /// Inverse compute rate, seconds per flop.
    pub gamma: f64,
    /// Optional "congestion knee": beyond this many ranks, latency inflates
    /// by `congestion_factor` per doubling — reproduces the super-logarithmic
    /// allreduce behavior the paper observed on Andes past 32 nodes (§V-C).
    /// `None` disables the effect (the default).
    pub congestion_knee: Option<usize>,
    /// Latency inflation per doubling past the knee (e.g. 2.0).
    pub congestion_factor: f64,
    /// Fraction of communication that a pipelined sweep hides behind
    /// independent local compute, in `[0, 1]`. 1.0 is perfect overlap
    /// (`max(compute, comm)`); 0.0 degenerates to the serial sum. The
    /// default 0.8 reflects that posting/progression and the final wait are
    /// never free on real transports.
    pub overlap_efficiency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 2.0e-6,
            beta: 8.0e-9,
            gamma: 5.0e-10,
            congestion_knee: None,
            congestion_factor: 2.0,
            overlap_efficiency: 0.8,
        }
    }
}

impl CostModel {
    /// An Andes-like HPC interconnect (the paper's platform class):
    /// 2 µs messages, ≈1 GB/s effective per-rank bandwidth.
    pub fn hpc() -> Self {
        CostModel::default()
    }

    /// Commodity 10 GbE cluster: ~25 µs latency, ~1 GB/s shared bandwidth.
    pub fn ethernet() -> Self {
        CostModel {
            alpha: 25.0e-6,
            beta: 8.0e-9,
            ..CostModel::default()
        }
    }

    /// Modern HDR InfiniBand: ~1 µs latency, ≈20 GB/s per rank.
    pub fn infiniband() -> Self {
        CostModel {
            alpha: 1.0e-6,
            beta: 0.4e-9,
            ..CostModel::default()
        }
    }

    /// Andes-with-congestion: the §V-C allreduce anomaly past 32 nodes,
    /// modeled as a latency knee (for reproducing Fig. 4's tail).
    pub fn hpc_with_knee() -> Self {
        CostModel {
            congestion_knee: Some(1024),
            congestion_factor: 3.0,
            ..CostModel::default()
        }
    }

    /// Effective per-message latency at `p` ranks (applies the congestion
    /// knee if configured).
    pub fn effective_alpha(&self, p: usize) -> f64 {
        match self.congestion_knee {
            Some(knee) if p > knee => {
                let doublings = ((p as f64) / (knee as f64)).log2().max(0.0);
                self.alpha * self.congestion_factor.powf(doublings)
            }
            _ => self.alpha,
        }
    }

    /// Modeled time of a single collective moving `words` words at `p` ranks.
    pub fn collective_time(&self, kind: CollectiveKind, words: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let lg = (p as f64).log2().ceil();
        let alpha = self.effective_alpha(p);
        match kind {
            // Recursive-doubling allreduce: log P rounds; for the short
            // messages of this workload (R² words) the bandwidth term is
            // ~2βw total (Rabenseifner), latency α log P.
            CollectiveKind::Allreduce => alpha * lg + 2.0 * self.beta * words,
            // Binomial-tree broadcast.
            CollectiveKind::Broadcast => lg * (alpha + self.beta * words),
            // Bruck/ring allgather: `words` is the total gathered volume.
            CollectiveKind::Allgather => alpha * lg + self.beta * words,
            // One tree edge.
            CollectiveKind::PointToPoint => alpha + self.beta * words,
        }
    }

    /// Modeled compute time for a given flop count.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops * self.gamma
    }

    /// Modeled time of a pipelined stage that runs `compute` seconds of
    /// local work concurrently with `comm` seconds of posted communication:
    /// `max + (1 − e)·min`, where `e` is [`overlap_efficiency`]. At `e = 1`
    /// the shorter leg vanishes behind the longer; at `e = 0` the legs
    /// serialize and the serial sum is recovered.
    ///
    /// [`overlap_efficiency`]: CostModel::overlap_efficiency
    pub fn pipelined_time(&self, compute: f64, comm: f64) -> f64 {
        let eff = self.overlap_efficiency.clamp(0.0, 1.0);
        compute.max(comm) + (1.0 - eff) * compute.min(comm)
    }

    /// Modeled time of a full TSQR factorization tree on `p` ranks with `n`
    /// columns: `⌈log₂ p⌉` levels, each exchanging an upper-triangular
    /// `n(n+1)/2` words — the `β·O(R² log P)` term of the baseline.
    /// The factor 2 covers the Q-reconstruction down-sweep.
    pub fn tsqr_time(&self, n: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let lg = (p as f64).log2().ceil();
        let tri_words = (n * (n + 1) / 2) as f64;
        2.0 * lg * (self.effective_alpha(p) + self.beta * tri_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_costs_nothing() {
        let m = CostModel::default();
        assert_eq!(m.collective_time(CollectiveKind::Allreduce, 1000.0, 1), 0.0);
        assert_eq!(m.tsqr_time(20, 1), 0.0);
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let m = CostModel::default();
        let t4 = m.collective_time(CollectiveKind::Allreduce, 400.0, 4);
        let t16 = m.collective_time(CollectiveKind::Allreduce, 400.0, 16);
        // latency term doubles from log 4 = 2 to log 16 = 4
        let lat4 = m.alpha * 2.0;
        let lat16 = m.alpha * 4.0;
        assert!((t16 - t4 - (lat16 - lat4)).abs() < 1e-15);
    }

    #[test]
    fn tsqr_bandwidth_carries_log_factor() {
        let m = CostModel::default();
        // For equal word volume, TSQR must be more expensive than one
        // allreduce at large P (the paper's headline communication claim).
        let r = 20;
        let words = (r * r) as f64;
        for p in [4usize, 64, 1024] {
            assert!(m.tsqr_time(r, p) > m.collective_time(CollectiveKind::Allreduce, words, p));
        }
    }

    #[test]
    fn congestion_knee_inflates_latency() {
        let m = CostModel {
            congestion_knee: Some(1024),
            congestion_factor: 4.0,
            ..Default::default()
        };
        assert_eq!(m.effective_alpha(512), m.alpha);
        assert_eq!(m.effective_alpha(1024), m.alpha);
        assert!((m.effective_alpha(2048) - 4.0 * m.alpha).abs() < 1e-18);
    }

    #[test]
    fn stats_record_and_price() {
        let mut s = CommStats::default();
        s.record(CollectiveKind::Allreduce, 100);
        s.record(CollectiveKind::Allreduce, 300);
        s.record(CollectiveKind::PointToPoint, 50);
        assert_eq!(s.count(CollectiveKind::Allreduce), 2);
        assert_eq!(s.words(CollectiveKind::Allreduce), 400);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_words(), 450);
        let m = CostModel::default();
        let t = s.modeled_time(&m, 8);
        let expect = 2.0 * m.collective_time(CollectiveKind::Allreduce, 200.0, 8)
            + m.collective_time(CollectiveKind::PointToPoint, 50.0, 8);
        assert!((t - expect).abs() < 1e-18);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let w = 400.0;
        let p = 256;
        let t_ib = CostModel::infiniband().collective_time(CollectiveKind::Allreduce, w, p);
        let t_hpc = CostModel::hpc().collective_time(CollectiveKind::Allreduce, w, p);
        let t_eth = CostModel::ethernet().collective_time(CollectiveKind::Allreduce, w, p);
        assert!(t_ib < t_hpc && t_hpc < t_eth);
        let knee = CostModel::hpc_with_knee();
        assert!(knee.effective_alpha(2048) > knee.alpha);
    }

    #[test]
    fn pipelined_time_interpolates_between_serial_and_perfect_overlap() {
        let serial = CostModel {
            overlap_efficiency: 0.0,
            ..Default::default()
        };
        let perfect = CostModel {
            overlap_efficiency: 1.0,
            ..Default::default()
        };
        let partial = CostModel {
            overlap_efficiency: 0.75,
            ..Default::default()
        };
        let (c, m) = (3.0e-3, 1.0e-3);
        assert_eq!(serial.pipelined_time(c, m), c + m);
        assert_eq!(perfect.pipelined_time(c, m), c);
        let t = partial.pipelined_time(c, m);
        assert!(c < t && t < c + m, "partial overlap lands between: {t}");
        assert!((t - (c + 0.25 * m)).abs() < 1e-18);
        // Symmetric in its arguments: which leg is longer doesn't matter.
        assert_eq!(partial.pipelined_time(m, c), t);
        // Out-of-range efficiencies clamp instead of extrapolating.
        let wild = CostModel {
            overlap_efficiency: 7.0,
            ..Default::default()
        };
        assert_eq!(wild.pipelined_time(c, m), c);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::default();
        a.record(CollectiveKind::Broadcast, 10);
        let mut b = CommStats::default();
        b.record(CollectiveKind::Broadcast, 20);
        b.record(CollectiveKind::Allreduce, 5);
        a.merge(&b);
        assert_eq!(a.count(CollectiveKind::Broadcast), 2);
        assert_eq!(a.words(CollectiveKind::Broadcast), 30);
        assert_eq!(a.count(CollectiveKind::Allreduce), 1);
    }
}
