//! Simulated distributed-memory runtime.
//!
//! The paper's implementation runs flat MPI (one rank per core) on the Andes
//! cluster, with all communication in the Gram-SVD rounding path cast as
//! `MPI_Allreduce` and the QR-based baseline using the TSQR reduction tree.
//! This crate substitutes for MPI with two cooperating layers:
//!
//! * [`Communicator`] — the MPI-analog interface the TT algorithms are
//!   written against (point-to-point send/recv plus the collectives the
//!   algorithms use), with
//!   * [`ThreadComm`]: a real shared-memory backend executing `P` ranks as
//!     OS threads with binomial-tree collectives, used to validate that the
//!     distributed algorithms compute exactly what the sequential ones do;
//!   * [`SelfComm`]: the trivial single-rank communicator;
//!   * [`ModelComm`]: a single-thread "rank 0 of P" harness backend that
//!     executes one representative rank's local work for performance
//!     studies (see [`cost`]).
//! * [`cost`] — a LogP-style analytic cost model (α latency, β per-word,
//!   γ per-flop) with per-rank instrumentation, used to produce the modeled
//!   communication times in the scaling figures. The model is the same one
//!   the paper's complexity analysis (§IV-E) uses.
//!
//! Every communicator records the collectives it performs ([`CommStats`]),
//! so harnesses can report computation/communication breakdowns.

#![forbid(unsafe_code)]

pub mod cost;
pub mod thread;
pub mod verify;

pub use cost::{CollectiveKind, CommStats, CostModel};
pub use thread::ThreadComm;
pub use verify::{run_verified, run_verified_with_timeout, VerifyComm};

/// MPI-analog communication interface used by the distributed TT kernels.
///
/// All collectives operate on `f64` buffers and must be called by every rank
/// of the communicator (SPMD style), like their MPI counterparts.
pub trait Communicator {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Element-wise global sum; every rank ends with the reduced buffer
    /// (MPI_Allreduce with MPI_SUM).
    fn allreduce_sum(&self, buf: &mut [f64]);

    /// Element-wise global max; every rank ends with the reduced buffer.
    fn allreduce_max(&self, buf: &mut [f64]);

    /// Broadcast `buf` from `root` to all ranks.
    fn broadcast(&self, root: usize, buf: &mut [f64]);

    /// Gathers every rank's buffer (arbitrary, possibly differing lengths)
    /// and returns the concatenation in rank order on every rank
    /// (MPI_Allgatherv).
    fn allgather(&self, send: &[f64]) -> Vec<f64>;

    /// Blocking point-to-point send (used by the TSQR tree).
    fn send(&self, to: usize, buf: &[f64]);

    /// Blocking point-to-point receive of a message from `from`.
    fn recv(&self, from: usize) -> Vec<f64>;

    /// Synchronization barrier.
    fn barrier(&self);

    /// Snapshot of the communication events this rank has performed.
    fn stats(&self) -> CommStats;

    /// Resets the event counters.
    fn reset_stats(&self);

    /// True for performance-model backends ([`ModelComm`]): algorithms with
    /// data-dependent communication (TSQR trees) take a model-aware path
    /// that executes one rank's computation and records the messages.
    fn is_model(&self) -> bool {
        false
    }

    /// Manually records a communication event (used by model-aware code
    /// paths for communication the backend does not itself perform).
    fn record_event(&self, kind: CollectiveKind, words: usize) {
        let _ = (kind, words);
    }
}

/// The trivial single-rank communicator: every collective is a no-op.
/// Sequential algorithm runs use this, so one code path serves both the
/// sequential and distributed implementations.
#[derive(Debug, Default)]
pub struct SelfComm {
    stats: std::cell::RefCell<CommStats>,
}

impl SelfComm {
    /// Creates a fresh single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn allreduce_sum(&self, _buf: &mut [f64]) {}
    fn allreduce_max(&self, _buf: &mut [f64]) {}
    fn broadcast(&self, _root: usize, _buf: &mut [f64]) {}
    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        send.to_vec()
    }
    fn send(&self, to: usize, buf: &[f64]) {
        // analyze::allow(panic_surface): single-rank backend — p2p here is a caller contract violation; the message documents the required size()==1 branch
        panic!(
            "SelfComm::send(to={to}, len={}): SelfComm has a single rank, so \
             point-to-point communication is always a caller bug. Algorithms \
             with data-dependent messaging (the TSQR reduction tree in \
             tt_core::round::tsqr) must branch on size() == 1 and take their \
             sequential path instead of sending.",
            buf.len()
        );
    }
    fn recv(&self, from: usize) -> Vec<f64> {
        // analyze::allow(panic_surface): single-rank backend — p2p here is a caller contract violation; the message documents the required size()==1 branch
        panic!(
            "SelfComm::recv(from={from}): SelfComm has a single rank, so \
             point-to-point communication is always a caller bug. Algorithms \
             with data-dependent messaging (the TSQR reduction tree in \
             tt_core::round::tsqr) must branch on size() == 1 and take their \
             sequential path instead of receiving."
        );
    }
    fn barrier(&self) {}
    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }
    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

/// A performance-study communicator: executes as a single thread that plays
/// the role of rank 0 in a `P`-rank job.
///
/// Collectives leave the local buffer untouched (numerically this yields one
/// rank's *contribution* rather than the global sum — performance harnesses
/// run with fixed target ranks so the executed instruction stream is
/// identical to a real run) but are *recorded* with their true sizes, so the
/// cost model can price the communication exactly as the real job would
/// perform it.
#[derive(Debug)]
pub struct ModelComm {
    size: usize,
    stats: std::cell::RefCell<CommStats>,
}

impl ModelComm {
    /// Creates a model communicator pretending to be rank 0 of `size` ranks.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1);
        ModelComm {
            size,
            stats: std::cell::RefCell::new(CommStats::default()),
        }
    }
}

impl Communicator for ModelComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        self.size
    }
    fn allreduce_sum(&self, buf: &mut [f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
    }
    fn allreduce_max(&self, buf: &mut [f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
    }
    fn broadcast(&self, _root: usize, buf: &mut [f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Broadcast, buf.len());
    }
    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        // One representative rank: record the full gathered volume, return
        // P copies of the local contribution (correct sizes, modeled data).
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allgather, send.len() * self.size);
        let mut out = Vec::with_capacity(send.len() * self.size);
        for _ in 0..self.size {
            out.extend_from_slice(send);
        }
        out
    }
    fn send(&self, _to: usize, buf: &[f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::PointToPoint, buf.len());
    }
    fn recv(&self, from: usize) -> Vec<f64> {
        // analyze::allow(panic_surface): model backend cannot materialize peer data — recv is a documented contract violation, not a recoverable error
        panic!(
            "ModelComm::recv(from={from}): a performance-model backend plays \
             one representative rank and cannot materialize data another rank \
             would have sent. Algorithms with data-dependent messaging must \
             check is_model() and take their model-aware path — execute the \
             local computation and account for the messages with \
             record_event(), as tt_core::round::tsqr::tsqr_q does."
        );
    }
    fn barrier(&self) {}
    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }
    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
    fn is_model(&self) -> bool {
        true
    }
    fn record_event(&self, kind: CollectiveKind, words: usize) {
        self.stats.borrow_mut().record(kind, words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_comm_is_identity() {
        let c = SelfComm::new();
        let mut buf = vec![1.0, 2.0];
        c.allreduce_sum(&mut buf);
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.stats().total_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "sequential path instead of sending")]
    fn self_comm_send_names_the_sequential_path() {
        SelfComm::new().send(0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "sequential path instead of receiving")]
    fn self_comm_recv_names_the_sequential_path() {
        SelfComm::new().recv(0);
    }

    #[test]
    #[should_panic(expected = "model-aware path")]
    fn model_comm_recv_names_the_model_aware_path() {
        ModelComm::new(4).recv(1);
    }

    #[test]
    fn model_comm_records_events() {
        let c = ModelComm::new(16);
        let mut buf = vec![0.0; 100];
        c.allreduce_sum(&mut buf);
        c.allreduce_sum(&mut buf);
        c.broadcast(0, &mut buf[..10]);
        let s = c.stats();
        assert_eq!(s.count(CollectiveKind::Allreduce), 2);
        assert_eq!(s.words(CollectiveKind::Allreduce), 200);
        assert_eq!(s.count(CollectiveKind::Broadcast), 1);
        c.reset_stats();
        assert_eq!(c.stats().total_messages(), 0);
    }
}
