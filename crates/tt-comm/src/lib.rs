//! Simulated distributed-memory runtime.
//!
//! The paper's implementation runs flat MPI (one rank per core) on the Andes
//! cluster, with all communication in the Gram-SVD rounding path cast as
//! `MPI_Allreduce` and the QR-based baseline using the TSQR reduction tree.
//! This crate substitutes for MPI with two cooperating layers:
//!
//! * [`Communicator`] — the MPI-analog interface the TT algorithms are
//!   written against (point-to-point send/recv plus the collectives the
//!   algorithms use), with
//!   * [`ThreadComm`]: a real shared-memory backend executing `P` ranks as
//!     OS threads with binomial-tree collectives, used to validate that the
//!     distributed algorithms compute exactly what the sequential ones do;
//!   * [`SelfComm`]: the trivial single-rank communicator;
//!   * [`ModelComm`]: a single-thread "rank 0 of P" harness backend that
//!     executes one representative rank's local work for performance
//!     studies (see [`cost`]).
//! * [`cost`] — a LogP-style analytic cost model (α latency, β per-word,
//!   γ per-flop) with per-rank instrumentation, used to produce the modeled
//!   communication times in the scaling figures. The model is the same one
//!   the paper's complexity analysis (§IV-E) uses.
//!
//! Every communicator records the collectives it performs ([`CommStats`]),
//! so harnesses can report computation/communication breakdowns.

#![forbid(unsafe_code)]

pub mod cost;
pub mod thread;
pub mod verify;

pub use cost::{CollectiveKind, CommStats, CostModel};
pub use thread::ThreadComm;
pub use verify::{run_verified, run_verified_with_timeout, VerifyComm};

/// A handle to an in-flight nonblocking operation (MPI_Request analog).
///
/// Obtained from [`Communicator::iallreduce_sum`], [`Communicator::isend`],
/// or [`Communicator::irecv`]; consumed by [`Request::wait`], which returns
/// the operation's result buffer (the reduced vector for an iallreduce, the
/// received message for an irecv, empty for an isend). [`Request::test`]
/// polls for completion without blocking.
///
/// Dropping a request that was never waited on is a program bug (the posted
/// operation's result is silently discarded, and on a real backend its
/// messages would leak into a later receive); in debug builds the drop
/// panics. The `cargo xtask analyze` `request_pairing` pass flags the same
/// bug statically.
pub struct Request<'a> {
    state: RequestState<'a>,
}

enum RequestState<'a> {
    /// Completed locally at post time (single-rank and model backends, and
    /// eager sends).
    Ready(Vec<f64>),
    /// In flight on `host`; completion goes through
    /// [`Communicator::req_wait`]/[`Communicator::req_test`].
    Pending { host: &'a dyn Communicator, id: u64 },
    /// `wait`/`detach` already consumed the result.
    Discharged,
}

/// A [`Request`] decoupled from its host borrow — used by decorating
/// communicators ([`VerifyComm`]) that must store an inner backend's request
/// inside themselves without creating a self-referential struct.
pub enum DetachedRequest {
    /// The operation completed at post time with this payload.
    Ready(Vec<f64>),
    /// Still in flight under the host-side id; complete it with
    /// [`Communicator::req_wait`] on the host that issued it.
    Pending(u64),
}

impl<'a> Request<'a> {
    /// A request that completed at post time.
    pub fn ready(payload: Vec<f64>) -> Request<'static> {
        Request {
            state: RequestState::Ready(payload),
        }
    }

    /// A request in flight on `host` under a backend-assigned id.
    pub fn pending(host: &'a dyn Communicator, id: u64) -> Request<'a> {
        Request {
            state: RequestState::Pending { host, id },
        }
    }

    /// Blocks until the operation completes and returns its result buffer.
    pub fn wait(mut self) -> Vec<f64> {
        match std::mem::replace(&mut self.state, RequestState::Discharged) {
            RequestState::Ready(v) => v,
            RequestState::Pending { host, id } => host.req_wait(id),
            RequestState::Discharged => unreachable!("Request::wait consumes the handle"),
        }
    }

    /// Polls for completion: `true` once the result is locally available
    /// (after which [`Request::wait`] returns without blocking). A `false`
    /// may be conservative — decorating backends defer completion work to
    /// `wait` (see `VerifyComm`) — so `test` must never be the only
    /// completion path.
    pub fn test(&mut self) -> bool {
        match &self.state {
            RequestState::Ready(_) => true,
            RequestState::Discharged => true,
            RequestState::Pending { host, id } => match host.req_test(*id) {
                Some(v) => {
                    self.state = RequestState::Ready(v);
                    true
                }
                None => false,
            },
        }
    }

    /// Splits the handle from its host borrow, marking it discharged; the
    /// caller takes over completion (decorator backends only).
    pub fn detach(mut self) -> DetachedRequest {
        match std::mem::replace(&mut self.state, RequestState::Discharged) {
            RequestState::Ready(v) => DetachedRequest::Ready(v),
            RequestState::Pending { id, .. } => DetachedRequest::Pending(id),
            RequestState::Discharged => unreachable!("Request::detach consumes the handle"),
        }
    }
}

impl Drop for Request<'_> {
    fn drop(&mut self) {
        if cfg!(debug_assertions)
            && !std::thread::panicking()
            && !matches!(self.state, RequestState::Discharged)
        {
            // analyze::allow(panic_surface): dropping an unwaited request silently discards a posted operation's result — a leak this debug panic makes loud
            panic!(
                "Request dropped without wait(): a posted nonblocking operation \
                 was never completed. Every iallreduce_sum/isend/irecv request \
                 must be discharged with wait() (or detach() in a decorator) on \
                 every path."
            );
        }
    }
}

/// MPI-analog communication interface used by the distributed TT kernels.
///
/// All collectives operate on `f64` buffers and must be called by every rank
/// of the communicator (SPMD style), like their MPI counterparts.
///
/// # Nonblocking operations
///
/// [`Communicator::iallreduce_sum`], [`Communicator::isend`], and
/// [`Communicator::irecv`] post an operation and return a [`Request`]
/// immediately, letting callers overlap communication with local compute;
/// the blocking `allreduce_sum`/`send`/`recv` have default implementations
/// as post-then-wait, so trivial backends only implement the nonblocking
/// forms. Nonblocking point-to-point messages travel on their own virtual
/// channel: an `isend` matches an `irecv`, a blocking `send` matches a
/// blocking `recv` (the algorithms use them as distinct tags; backends that
/// override the blocking ops keep the streams separate).
pub trait Communicator {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Element-wise global sum; every rank ends with the reduced buffer
    /// (MPI_Allreduce with MPI_SUM).
    fn allreduce_sum(&self, buf: &mut [f64]) {
        let out = self.iallreduce_sum(buf.to_vec()).wait();
        buf.copy_from_slice(&out);
    }

    /// Element-wise global max; every rank ends with the reduced buffer.
    fn allreduce_max(&self, buf: &mut [f64]);

    /// Broadcast `buf` from `root` to all ranks.
    fn broadcast(&self, root: usize, buf: &mut [f64]);

    /// Gathers every rank's buffer (arbitrary, possibly differing lengths)
    /// and returns the concatenation in rank order on every rank
    /// (MPI_Allgatherv).
    fn allgather(&self, send: &[f64]) -> Vec<f64>;

    /// Blocking point-to-point send (used by the TSQR tree).
    fn send(&self, to: usize, buf: &[f64]) {
        self.isend(to, buf.to_vec()).wait();
    }

    /// Blocking point-to-point receive of a message from `from`.
    fn recv(&self, from: usize) -> Vec<f64> {
        self.irecv(from).wait()
    }

    /// Posts a nonblocking element-wise global sum of `buf` (MPI_Iallreduce
    /// with MPI_SUM) and returns immediately; [`Request::wait`] yields the
    /// reduced buffer. Must be posted by every rank (SPMD), and a rank's
    /// waits must occur in deterministic program positions — see DESIGN.md
    /// §14 for the determinism contract.
    fn iallreduce_sum(&self, buf: Vec<f64>) -> Request<'_>;

    /// Posts a nonblocking point-to-point send of `buf` to `to`; the
    /// returned request's `wait` yields an empty buffer. Matches an `irecv`
    /// on the peer (not a blocking `recv`; see the trait docs).
    fn isend(&self, to: usize, buf: Vec<f64>) -> Request<'_>;

    /// Posts a nonblocking point-to-point receive from `from`; `wait`
    /// yields the message. Matches an `isend` on the peer.
    fn irecv(&self, from: usize) -> Request<'_>;

    /// Completes the pending request `id`, blocking if necessary (called by
    /// [`Request::wait`]; not part of the user-facing API). Backends whose
    /// nonblocking ops always return ready requests never reach this.
    fn req_wait(&self, id: u64) -> Vec<f64> {
        // analyze::allow(panic_surface): only reachable if a backend hands out Pending requests without overriding completion — a backend implementation bug
        panic!(
            "Communicator::req_wait(id={id}): this backend never returns \
             pending requests, so no request id can reach it"
        );
    }

    /// Polls the pending request `id` (called by [`Request::test`]); `Some`
    /// carries the result. Backends may conservatively return `None` when
    /// completion requires blocking work.
    fn req_test(&self, id: u64) -> Option<Vec<f64>> {
        let _ = id;
        None
    }

    /// Synchronization barrier.
    fn barrier(&self);

    /// Snapshot of the communication events this rank has performed.
    fn stats(&self) -> CommStats;

    /// Resets the event counters.
    fn reset_stats(&self);

    /// True for performance-model backends ([`ModelComm`]): algorithms with
    /// data-dependent communication (TSQR trees) take a model-aware path
    /// that executes one rank's computation and records the messages.
    fn is_model(&self) -> bool {
        false
    }

    /// Manually records a communication event (used by model-aware code
    /// paths for communication the backend does not itself perform).
    fn record_event(&self, kind: CollectiveKind, words: usize) {
        let _ = (kind, words);
    }
}

/// The trivial single-rank communicator: every collective is a no-op.
/// Sequential algorithm runs use this, so one code path serves both the
/// sequential and distributed implementations.
#[derive(Debug, Default)]
pub struct SelfComm {
    stats: std::cell::RefCell<CommStats>,
}

impl SelfComm {
    /// Creates a fresh single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn allreduce_sum(&self, _buf: &mut [f64]) {}
    fn allreduce_max(&self, _buf: &mut [f64]) {}
    fn broadcast(&self, _root: usize, _buf: &mut [f64]) {}
    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        send.to_vec()
    }
    fn send(&self, to: usize, buf: &[f64]) {
        // analyze::allow(panic_surface): single-rank backend — p2p here is a caller contract violation; the message documents the required size()==1 branch
        panic!(
            "SelfComm::send(to={to}, len={}): SelfComm has a single rank, so \
             point-to-point communication is always a caller bug. Algorithms \
             with data-dependent messaging (the TSQR reduction tree in \
             tt_core::round::tsqr) must branch on size() == 1 and take their \
             sequential path instead of sending.",
            buf.len()
        );
    }
    fn recv(&self, from: usize) -> Vec<f64> {
        // analyze::allow(panic_surface): single-rank backend — p2p here is a caller contract violation; the message documents the required size()==1 branch
        panic!(
            "SelfComm::recv(from={from}): SelfComm has a single rank, so \
             point-to-point communication is always a caller bug. Algorithms \
             with data-dependent messaging (the TSQR reduction tree in \
             tt_core::round::tsqr) must branch on size() == 1 and take their \
             sequential path instead of receiving."
        );
    }
    fn iallreduce_sum(&self, buf: Vec<f64>) -> Request<'_> {
        // Single rank: the local contribution is the global sum, completed
        // at post time.
        Request::ready(buf)
    }
    fn isend(&self, to: usize, buf: Vec<f64>) -> Request<'_> {
        // analyze::allow(panic_surface): single-rank backend — p2p here is a caller contract violation; the message documents the required size()==1 branch
        panic!(
            "SelfComm::isend(to={to}, len={}): SelfComm has a single rank, so \
             point-to-point communication is always a caller bug. Algorithms \
             with data-dependent messaging must branch on size() == 1 and take \
             their sequential path instead of sending.",
            buf.len()
        );
    }
    fn irecv(&self, from: usize) -> Request<'_> {
        // analyze::allow(panic_surface): single-rank backend — p2p here is a caller contract violation; the message documents the required size()==1 branch
        panic!(
            "SelfComm::irecv(from={from}): SelfComm has a single rank, so \
             point-to-point communication is always a caller bug. Algorithms \
             with data-dependent messaging must branch on size() == 1 and take \
             their sequential path instead of receiving."
        );
    }
    fn barrier(&self) {}
    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }
    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
}

/// A performance-study communicator: executes as a single thread that plays
/// the role of rank 0 in a `P`-rank job.
///
/// Collectives leave the local buffer untouched (numerically this yields one
/// rank's *contribution* rather than the global sum — performance harnesses
/// run with fixed target ranks so the executed instruction stream is
/// identical to a real run) but are *recorded* with their true sizes, so the
/// cost model can price the communication exactly as the real job would
/// perform it.
#[derive(Debug)]
pub struct ModelComm {
    size: usize,
    stats: std::cell::RefCell<CommStats>,
}

impl ModelComm {
    /// Creates a model communicator pretending to be rank 0 of `size` ranks.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1);
        ModelComm {
            size,
            stats: std::cell::RefCell::new(CommStats::default()),
        }
    }
}

impl Communicator for ModelComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        self.size
    }
    fn allreduce_sum(&self, buf: &mut [f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
    }
    fn allreduce_max(&self, buf: &mut [f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
    }
    fn broadcast(&self, _root: usize, buf: &mut [f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Broadcast, buf.len());
    }
    fn allgather(&self, send: &[f64]) -> Vec<f64> {
        // One representative rank: record the full gathered volume, return
        // P copies of the local contribution (correct sizes, modeled data).
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allgather, send.len() * self.size);
        let mut out = Vec::with_capacity(send.len() * self.size);
        for _ in 0..self.size {
            out.extend_from_slice(send);
        }
        out
    }
    fn send(&self, _to: usize, buf: &[f64]) {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::PointToPoint, buf.len());
    }
    fn recv(&self, from: usize) -> Vec<f64> {
        // analyze::allow(panic_surface): model backend cannot materialize peer data — recv is a documented contract violation, not a recoverable error
        panic!(
            "ModelComm::recv(from={from}): a performance-model backend plays \
             one representative rank and cannot materialize data another rank \
             would have sent. Algorithms with data-dependent messaging must \
             check is_model() and take their model-aware path — execute the \
             local computation and account for the messages with \
             record_event(), as tt_core::round::tsqr::tsqr_q does."
        );
    }
    fn iallreduce_sum(&self, buf: Vec<f64>) -> Request<'_> {
        // Same accounting as the blocking form: the event is priced at post
        // time (the model has no notion of in-flight time), and the local
        // contribution is returned untouched.
        self.stats
            .borrow_mut()
            .record(CollectiveKind::Allreduce, buf.len());
        Request::ready(buf)
    }
    fn isend(&self, _to: usize, buf: Vec<f64>) -> Request<'_> {
        self.stats
            .borrow_mut()
            .record(CollectiveKind::PointToPoint, buf.len());
        Request::ready(Vec::new())
    }
    fn irecv(&self, from: usize) -> Request<'_> {
        // analyze::allow(panic_surface): model backend cannot materialize peer data — recv is a documented contract violation, not a recoverable error
        panic!(
            "ModelComm::irecv(from={from}): a performance-model backend plays \
             one representative rank and cannot materialize data another rank \
             would have sent. Algorithms with data-dependent messaging must \
             check is_model() and take their model-aware path — execute the \
             local computation and account for the messages with \
             record_event()."
        );
    }
    fn barrier(&self) {}
    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }
    fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }
    fn is_model(&self) -> bool {
        true
    }
    fn record_event(&self, kind: CollectiveKind, words: usize) {
        self.stats.borrow_mut().record(kind, words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_comm_is_identity() {
        let c = SelfComm::new();
        let mut buf = vec![1.0, 2.0];
        c.allreduce_sum(&mut buf);
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.stats().total_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "sequential path instead of sending")]
    fn self_comm_send_names_the_sequential_path() {
        SelfComm::new().send(0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "sequential path instead of receiving")]
    fn self_comm_recv_names_the_sequential_path() {
        SelfComm::new().recv(0);
    }

    #[test]
    #[should_panic(expected = "model-aware path")]
    fn model_comm_recv_names_the_model_aware_path() {
        ModelComm::new(4).recv(1);
    }

    #[test]
    fn self_comm_iallreduce_completes_at_post() {
        let c = SelfComm::new();
        let mut req = c.iallreduce_sum(vec![3.0, 4.0]);
        assert!(req.test(), "single-rank requests are ready immediately");
        assert_eq!(req.wait(), vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "sequential path instead of sending")]
    fn self_comm_isend_names_the_sequential_path() {
        let _ = SelfComm::new().isend(0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "sequential path instead of receiving")]
    fn self_comm_irecv_names_the_sequential_path() {
        let _ = SelfComm::new().irecv(0);
    }

    #[test]
    #[should_panic(expected = "model-aware path")]
    fn model_comm_irecv_names_the_model_aware_path() {
        let _ = ModelComm::new(4).irecv(1);
    }

    #[test]
    fn model_comm_nonblocking_records_like_blocking() {
        let c = ModelComm::new(8);
        let req = c.iallreduce_sum(vec![0.0; 25]);
        assert_eq!(req.wait(), vec![0.0; 25]);
        c.isend(3, vec![1.0; 7]).wait();
        let s = c.stats();
        assert_eq!(s.count(CollectiveKind::Allreduce), 1);
        assert_eq!(s.words(CollectiveKind::Allreduce), 25);
        assert_eq!(s.count(CollectiveKind::PointToPoint), 1);
        assert_eq!(s.words(CollectiveKind::PointToPoint), 7);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "drop check is debug-only")]
    #[should_panic(expected = "Request dropped without wait()")]
    fn dropping_an_unwaited_request_panics_in_debug() {
        let c = SelfComm::new();
        let req = c.iallreduce_sum(vec![1.0]);
        drop(req);
    }

    #[test]
    fn model_comm_records_events() {
        let c = ModelComm::new(16);
        let mut buf = vec![0.0; 100];
        c.allreduce_sum(&mut buf);
        c.allreduce_sum(&mut buf);
        c.broadcast(0, &mut buf[..10]);
        let s = c.stats();
        assert_eq!(s.count(CollectiveKind::Allreduce), 2);
        assert_eq!(s.words(CollectiveKind::Allreduce), 200);
        assert_eq!(s.count(CollectiveKind::Broadcast), 1);
        c.reset_stats();
        assert_eq!(c.stats().total_messages(), 0);
    }
}
