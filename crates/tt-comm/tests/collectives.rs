//! Property tests for the thread-backed collectives: results must match the
//! sequential reductions exactly for arbitrary rank counts and payloads.

use proptest::prelude::*;
use tt_comm::{Communicator, ThreadComm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Allreduce-sum across P ranks equals the serial sum of contributions.
    #[test]
    fn allreduce_sum_correct(p in 1usize..=6, len in 1usize..40, seed in any::<u32>()) {
        // Deterministic per-rank contributions.
        let contribution = |rank: usize, i: usize| -> f64 {
            (((seed as usize).wrapping_mul(31) + rank * 101 + i * 7) % 1000) as f64 - 500.0
        };
        let expected: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| contribution(r, i)).sum())
            .collect();
        let results = ThreadComm::run(p, |comm| {
            let mut buf: Vec<f64> = (0..len).map(|i| contribution(comm.rank(), i)).collect();
            comm.allreduce_sum(&mut buf);
            buf
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    /// Allreduce-max across P ranks equals the serial max.
    #[test]
    fn allreduce_max_correct(p in 1usize..=6, len in 1usize..20, seed in any::<u32>()) {
        let contribution = |rank: usize, i: usize| -> f64 {
            (((seed as usize).wrapping_mul(17) + rank * 59 + i * 13) % 997) as f64
        };
        let expected: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| contribution(r, i)).fold(f64::MIN, f64::max))
            .collect();
        let results = ThreadComm::run(p, |comm| {
            let mut buf: Vec<f64> = (0..len).map(|i| contribution(comm.rank(), i)).collect();
            comm.allreduce_max(&mut buf);
            buf
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// Broadcast delivers the root's buffer verbatim to all ranks.
    #[test]
    fn broadcast_correct(p in 1usize..=6, root_pick in any::<usize>(), len in 1usize..30) {
        let root = root_pick % p;
        let payload: Vec<f64> = (0..len).map(|i| i as f64 * 1.5 - 3.0).collect();
        let expected = payload.clone();
        let results = ThreadComm::run(p, |comm| {
            let mut buf = if comm.rank() == root { payload.clone() } else { vec![0.0; len] };
            comm.broadcast(root, &mut buf);
            buf
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// Allgather returns the rank-ordered concatenation on every rank.
    #[test]
    fn allgather_correct(p in 1usize..=6, base_len in 1usize..10) {
        let expect: Vec<f64> = (0..p)
            .flat_map(|r| (0..base_len + r).map(move |i| (r * 100 + i) as f64))
            .collect();
        let results = ThreadComm::run(p, |comm| {
            let send: Vec<f64> =
                (0..base_len + comm.rank()).map(|i| (comm.rank() * 100 + i) as f64).collect();
            comm.allgather(&send)
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// Chained collectives don't interleave payloads (ordering safety).
    #[test]
    fn repeated_collectives_stay_ordered(p in 2usize..=5, rounds in 1usize..6) {
        let results = ThreadComm::run(p, |comm| {
            let mut out = Vec::new();
            for round in 0..rounds {
                let mut buf = vec![(comm.rank() + round) as f64];
                comm.allreduce_sum(&mut buf);
                out.push(buf[0]);
            }
            out
        });
        for r in &results {
            for (round, &v) in r.iter().enumerate() {
                let expect: f64 = (0..p).map(|rk| (rk + round) as f64).sum();
                prop_assert_eq!(v, expect);
            }
        }
    }
}
