//! Property tests for the thread-backed collectives: results must match the
//! sequential reductions exactly for arbitrary rank counts and payloads.

use proptest::prelude::*;
use tt_comm::{Communicator, ThreadComm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Allreduce-sum across P ranks equals the serial sum of contributions.
    #[test]
    fn allreduce_sum_correct(p in 1usize..=6, len in 1usize..40, seed in any::<u32>()) {
        // Deterministic per-rank contributions.
        let contribution = |rank: usize, i: usize| -> f64 {
            (((seed as usize).wrapping_mul(31) + rank * 101 + i * 7) % 1000) as f64 - 500.0
        };
        let expected: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| contribution(r, i)).sum())
            .collect();
        let results = ThreadComm::run(p, |comm| {
            let mut buf: Vec<f64> = (0..len).map(|i| contribution(comm.rank(), i)).collect();
            comm.allreduce_sum(&mut buf);
            buf
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    /// Allreduce-max across P ranks equals the serial max.
    #[test]
    fn allreduce_max_correct(p in 1usize..=6, len in 1usize..20, seed in any::<u32>()) {
        let contribution = |rank: usize, i: usize| -> f64 {
            (((seed as usize).wrapping_mul(17) + rank * 59 + i * 13) % 997) as f64
        };
        let expected: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| contribution(r, i)).fold(f64::MIN, f64::max))
            .collect();
        let results = ThreadComm::run(p, |comm| {
            let mut buf: Vec<f64> = (0..len).map(|i| contribution(comm.rank(), i)).collect();
            comm.allreduce_max(&mut buf);
            buf
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// Broadcast delivers the root's buffer verbatim to all ranks.
    #[test]
    fn broadcast_correct(p in 1usize..=6, root_pick in any::<usize>(), len in 1usize..30) {
        let root = root_pick % p;
        let payload: Vec<f64> = (0..len).map(|i| i as f64 * 1.5 - 3.0).collect();
        let expected = payload.clone();
        let results = ThreadComm::run(p, |comm| {
            let mut buf = if comm.rank() == root { payload.clone() } else { vec![0.0; len] };
            comm.broadcast(root, &mut buf);
            buf
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// Allgather returns the rank-ordered concatenation on every rank.
    #[test]
    fn allgather_correct(p in 1usize..=6, base_len in 1usize..10) {
        let expect: Vec<f64> = (0..p)
            .flat_map(|r| (0..base_len + r).map(move |i| (r * 100 + i) as f64))
            .collect();
        let results = ThreadComm::run(p, |comm| {
            let send: Vec<f64> =
                (0..base_len + comm.rank()).map(|i| (comm.rank() * 100 + i) as f64).collect();
            comm.allgather(&send)
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// Posting an iallreduce and waiting immediately is bitwise identical to
    /// the blocking allreduce_sum for arbitrary rank counts and payloads.
    #[test]
    fn iallreduce_post_then_wait_matches_blocking(p in 1usize..=6, len in 1usize..40, seed in any::<u32>()) {
        let contribution = |rank: usize, i: usize| -> f64 {
            (((seed as usize).wrapping_mul(43) + rank * 97 + i * 11) % 1000) as f64 - 500.0
        };
        let results = ThreadComm::run(p, |comm| {
            let local: Vec<f64> = (0..len).map(|i| contribution(comm.rank(), i)).collect();
            let mut blocking = local.clone();
            comm.allreduce_sum(&mut blocking);
            let nonblocking = comm.iallreduce_sum(local).wait();
            (blocking, nonblocking)
        });
        for (blocking, nonblocking) in results {
            // Bitwise: the nonblocking path replays the blocking combine order.
            prop_assert_eq!(blocking, nonblocking);
        }
    }

    /// Two in-flight iallreduces can be waited in either order and each
    /// returns its own reduction, unperturbed by the other.
    #[test]
    fn out_of_order_waits_return_matching_payloads(
        p in 2usize..=6,
        len_a in 1usize..20,
        len_b in 1usize..20,
        wait_b_first in any::<bool>(),
    ) {
        let expect_a: f64 = (0..p).map(|r| (r + 1) as f64).sum();
        let expect_b: f64 = (0..p).map(|r| (r * 2) as f64).sum();
        let results = ThreadComm::run(p, |comm| {
            let a = comm.iallreduce_sum(vec![(comm.rank() + 1) as f64; len_a]);
            let b = comm.iallreduce_sum(vec![(comm.rank() * 2) as f64; len_b]);
            if wait_b_first {
                let vb = b.wait();
                (a.wait(), vb)
            } else {
                (a.wait(), b.wait())
            }
        });
        for (va, vb) in results {
            prop_assert_eq!(va.len(), len_a);
            prop_assert_eq!(vb.len(), len_b);
            for v in va {
                prop_assert_eq!(v, expect_a);
            }
            for v in vb {
                prop_assert_eq!(v, expect_b);
            }
        }
    }

    /// Chained collectives don't interleave payloads (ordering safety).
    #[test]
    fn repeated_collectives_stay_ordered(p in 2usize..=5, rounds in 1usize..6) {
        let results = ThreadComm::run(p, |comm| {
            let mut out = Vec::new();
            for round in 0..rounds {
                let mut buf = vec![(comm.rank() + round) as f64];
                comm.allreduce_sum(&mut buf);
                out.push(buf[0]);
            }
            out
        });
        for r in &results {
            for (round, &v) in r.iter().enumerate() {
                let expect: f64 = (0..p).map(|rk| (rk + round) as f64).sum();
                prop_assert_eq!(v, expect);
            }
        }
    }
}

/// Letting a `Request` go out of scope without `wait`/`test` is a leaked
/// rendezvous; the debug drop guard turns it into an immediate panic.
#[test]
#[cfg_attr(not(debug_assertions), ignore = "drop check is debug-only")]
#[should_panic(expected = "Request dropped without wait()")]
fn dropping_an_unwaited_request_panics_in_debug() {
    ThreadComm::run(1, |comm| {
        let _forgotten = comm.iallreduce_sum(vec![1.0, 2.0]);
    });
}
