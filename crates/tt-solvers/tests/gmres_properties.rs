//! Property tests for TT-GMRES on randomly generated SPD Kronecker systems.

use proptest::prelude::*;
use tt_solvers::gmres::TrueResidualMode;
use tt_solvers::{
    tt_gmres, GmresOptions, IdentityPreconditioner, KroneckerSumOperator, ModeFactor,
    RoundingMethod, TtOperator,
};
use tt_sparse::{CooBuilder, CsrMatrix};

/// Diagonally dominant symmetric tridiagonal matrix (SPD).
fn spd_tridiag(n: usize, seed: u64) -> CsrMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 100) as f64) / 100.0
    };
    let mut b = CooBuilder::new(n, n);
    for i in 0..n {
        let off = if i + 1 < n {
            -(0.5 + 0.5 * next())
        } else {
            0.0
        };
        if i + 1 < n {
            b.add(i, i + 1, off);
            b.add(i + 1, i, off);
        }
        b.add(i, i, 2.5 + next());
    }
    b.build()
}

/// A small SPD two-term Kronecker operator on random dimensions.
fn random_system(n1: usize, n2: usize, seed: u64) -> (KroneckerSumOperator, tt_core::TtTensor) {
    let mut op = KroneckerSumOperator::new();
    op.add_term(vec![
        ModeFactor::Sparse(spd_tridiag(n1, seed)),
        ModeFactor::Identity,
    ]);
    let diag: Vec<f64> = (0..n2).map(|i| 0.2 + (i as f64) * 0.3).collect();
    op.add_term(vec![
        ModeFactor::Sparse(spd_tridiag(n1, seed.wrapping_add(3))),
        ModeFactor::Diagonal(diag),
    ]);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(7));
    let f = tt_core::TtTensor::random(&[n1, n2], &[1], &mut rng);
    (op, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// TT-GMRES solves random SPD Kronecker systems to tolerance (true
    /// residual within the paper-observed inexactness factor).
    #[test]
    fn gmres_solves_random_spd(n1 in 4usize..12, n2 in 2usize..5, seed in any::<u64>()) {
        let (op, f) = random_system(n1, n2, seed);
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 60,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Dense,
            stagnation_window: 8,
            restart: None,
        };
        let (u, trace) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
        prop_assert!(trace.converged, "{:?}", trace.computed_relative_residual);
        prop_assert!(trace.true_relative_residual < 1e-4,
            "true residual {}", trace.true_relative_residual);
        // Residual identity holds densely.
        let gu = op.apply(&u);
        let resid = f.to_dense().fro_dist(&gu.to_dense()) / f.norm();
        prop_assert!(resid < 1e-4, "{resid}");
    }

    /// QR-based and Gram-based rounding give the same solve (within the
    /// inexactness budget) on the same system.
    #[test]
    fn rounding_choice_does_not_change_solution(n1 in 4usize..10, seed in any::<u64>()) {
        let (op, f) = random_system(n1, 3, seed);
        let mk = |method| GmresOptions {
            tolerance: 1e-7,
            max_iters: 60,
            rounding: method,
            true_residual: TrueResidualMode::Off,
            stagnation_window: 8,
            restart: None,
        };
        let (u_qr, t_qr) = tt_gmres(&op, &IdentityPreconditioner, &f, &mk(RoundingMethod::Qr));
        let (u_gr, t_gr) =
            tt_gmres(&op, &IdentityPreconditioner, &f, &mk(RoundingMethod::GramLrl));
        prop_assert!(t_qr.converged && t_gr.converged);
        let gap = u_qr.to_dense().fro_dist(&u_gr.to_dense());
        let scale = 1.0 + u_qr.norm();
        prop_assert!(gap < 1e-4 * scale, "solutions diverged: {gap}");
    }
}
