//! TT-structured linear solvers.
//!
//! Implements TT-GMRES (Dolgov [8], Algorithm 1 of the paper) with pluggable
//! TT-Rounding — the application through which the paper evaluates its
//! Gram-SVD rounding end-to-end (§V-D) — together with the low-operator-rank
//! Kronecker-sum operators of parametrized PDEs and the rank-one *mean
//! preconditioner* of Kressner–Tobler [26].

#![forbid(unsafe_code)]

pub mod dist_gmres;
pub mod gmres;
pub mod operator;
pub mod precond;
pub mod richardson;

pub use dist_gmres::{dist_tt_gmres, DistKroneckerOperator, DistMeanPreconditioner};
pub use gmres::{tt_gmres, GmresOptions, GmresTrace, IterationRecord, RoundingMethod};
pub use operator::{KroneckerSumOperator, ModeFactor, TtOperator};
pub use precond::{IdentityPreconditioner, MeanPreconditioner, Preconditioner};
pub use richardson::{tt_richardson, RichardsonOptions, RichardsonTrace};
