//! Preconditioned TT-Richardson iteration.
//!
//! The simplest TT solver exploiting rounding: the fixed-point iteration
//!
//! ```text
//!   u_{k+1} = round( u_k + M⁻¹ (F − G u_k), δ )
//! ```
//!
//! converges whenever `‖I − M⁻¹G‖ < 1` (e.g. the mean preconditioner on the
//! cookies problem with moderate parameter contrast). It is the classical
//! baseline TT-GMRES is measured against in the low-rank-solver literature
//! [2, 26]: cheaper per iteration (no Krylov basis, one rounding per step)
//! but with a fixed linear rate, versus GMRES's superlinear convergence at
//! the cost of basis orthogonalization. Every iteration is dominated by one
//! operator application and one TT-Rounding — so the relative performance of
//! the rounding algorithms transfers directly.

use std::time::Instant;

use crate::gmres::RoundingMethod;
use crate::operator::TtOperator;
use crate::precond::Preconditioner;
use tt_core::TtTensor;

/// Options for the Richardson iteration.
#[derive(Debug, Clone)]
pub struct RichardsonOptions {
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Damping factor ω (1.0 for a plain preconditioned iteration).
    pub damping: f64,
    /// The TT-Rounding algorithm applied to the iterate each step.
    pub rounding: RoundingMethod,
    /// Rounding tolerance per step (relative); usually a fraction of
    /// `tolerance`.
    pub rounding_tolerance: f64,
}

impl Default for RichardsonOptions {
    fn default() -> Self {
        RichardsonOptions {
            tolerance: 1e-6,
            max_iters: 200,
            damping: 1.0,
            rounding: RoundingMethod::GramLrl,
            rounding_tolerance: 1e-8,
        }
    }
}

/// Convergence record of a Richardson solve.
#[derive(Debug, Clone)]
pub struct RichardsonTrace {
    /// Relative residual after each iteration.
    pub residuals: Vec<f64>,
    /// Maximum TT rank of the iterate after each iteration.
    pub ranks: Vec<usize>,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Total seconds.
    pub total_seconds: f64,
    /// Seconds inside TT-Rounding.
    pub rounding_seconds: f64,
}

/// Solves `G u = F` by damped preconditioned Richardson iteration with
/// TT-Rounding after every update.
pub fn tt_richardson(
    op: &dyn TtOperator,
    precond: &dyn Preconditioner,
    f: &TtTensor,
    opts: &RichardsonOptions,
) -> (TtTensor, RichardsonTrace) {
    let t0 = Instant::now();
    let fnorm = f.norm();
    assert!(fnorm > 0.0, "zero right-hand side");

    // u_0 = ω·M⁻¹F.
    let mut u = precond.apply(f);
    u.scale(opts.damping);
    u = opts.rounding.round_owned(u, opts.rounding_tolerance);

    let mut residuals = Vec::new();
    let mut ranks = Vec::new();
    let mut rounding_seconds = 0.0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        // r = F − G u  (formal), relative residual from TT norm.
        let gu = op.apply(&u);
        let r = f.sub(&gu);
        let tr = Instant::now();
        let r = opts.rounding.round_owned(r, opts.rounding_tolerance);
        rounding_seconds += tr.elapsed().as_secs_f64();
        let rel = r.norm() / fnorm;
        residuals.push(rel);
        ranks.push(u.max_rank());
        if rel <= opts.tolerance {
            converged = true;
            break;
        }
        // u ← round(u + ω M⁻¹ r).
        let mut corr = precond.apply(&r);
        corr.scale(opts.damping);
        let next = u.add(&corr);
        let tr = Instant::now();
        u = opts.rounding.round_owned(next, opts.rounding_tolerance);
        rounding_seconds += tr.elapsed().as_secs_f64();
    }

    let trace = RichardsonTrace {
        residuals,
        ranks,
        converged,
        total_seconds: t0.elapsed().as_secs_f64(),
        rounding_seconds,
    };
    (u, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{KroneckerSumOperator, ModeFactor};
    use crate::precond::MeanPreconditioner;
    use tt_sparse::{CooBuilder, CsrMatrix};

    fn tridiag(n: usize, diag: f64) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, diag);
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
                b.add(i + 1, i, -1.0);
            }
        }
        b.build()
    }

    /// A ⊗ I + B ⊗ diag(ρ) with small ρ: the mean preconditioner gives a
    /// contraction.
    fn contractive_system() -> (KroneckerSumOperator, TtTensor, MeanPreconditioner) {
        let n1 = 14;
        let n2 = 4;
        let rho: Vec<f64> = (0..n2).map(|i| 0.8 + 0.1 * i as f64).collect();
        let a = tridiag(n1, 4.0);
        let b = tridiag(n1, 2.0);
        let mut op = KroneckerSumOperator::new();
        op.add_term(vec![ModeFactor::Sparse(a.clone()), ModeFactor::Identity]);
        op.add_term(vec![
            ModeFactor::Sparse(b.clone()),
            ModeFactor::Diagonal(rho.clone()),
        ]);
        let mean_rho = rho.iter().sum::<f64>() / rho.len() as f64;
        let mean = a.add_scaled(mean_rho, &b);
        let pre = MeanPreconditioner::new(&mean);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let f = TtTensor::random(&[n1, n2], &[1], &mut rng);
        (op, f, pre)
    }

    #[test]
    fn richardson_converges_on_contractive_system() {
        let (op, f, pre) = contractive_system();
        let opts = RichardsonOptions {
            tolerance: 1e-8,
            max_iters: 300,
            ..Default::default()
        };
        let (u, trace) = tt_richardson(&op, &pre, &f, &opts);
        assert!(
            trace.converged,
            "residuals: {:?}",
            &trace.residuals[..8.min(trace.residuals.len())]
        );
        // True residual densely.
        let gu = crate::operator::TtOperator::apply(&op, &u);
        let res = f.to_dense().fro_dist(&gu.to_dense()) / f.norm();
        assert!(res < 1e-6, "true residual {res}");
    }

    #[test]
    fn residuals_decrease_monotonically_at_linear_rate() {
        let (op, f, pre) = contractive_system();
        let opts = RichardsonOptions {
            tolerance: 1e-10,
            max_iters: 60,
            ..Default::default()
        };
        let (_, trace) = tt_richardson(&op, &pre, &f, &opts);
        // Linear convergence: ratios roughly constant and < 1.
        let rs = &trace.residuals;
        for w in rs.windows(2).take(20) {
            assert!(w[1] < w[0] * 1.01, "non-decreasing: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn ranks_stay_bounded() {
        let (op, f, pre) = contractive_system();
        let opts = RichardsonOptions {
            tolerance: 1e-8,
            max_iters: 200,
            ..Default::default()
        };
        let (_, trace) = tt_richardson(&op, &pre, &f, &opts);
        // The solution manifold has modest ranks; rounding must keep the
        // iterates from inflating (the whole point of rounding in solvers).
        assert!(trace.ranks.iter().all(|&r| r <= 8), "{:?}", trace.ranks);
    }

    #[test]
    fn gmres_beats_richardson_in_iterations() {
        let (op, f, pre) = contractive_system();
        let r_opts = RichardsonOptions {
            tolerance: 1e-6,
            max_iters: 400,
            ..Default::default()
        };
        let (_, rich) = tt_richardson(&op, &pre, &f, &r_opts);
        let g_opts = crate::gmres::GmresOptions {
            tolerance: 1e-6,
            max_iters: 50,
            rounding: RoundingMethod::GramLrl,
            true_residual: crate::gmres::TrueResidualMode::Off,
            stagnation_window: 5,
            restart: None,
        };
        let (_, gm) = crate::gmres::tt_gmres(&op, &pre, &f, &g_opts);
        assert!(rich.converged && gm.converged);
        assert!(
            gm.iterations.len() <= rich.residuals.len(),
            "GMRES {} vs Richardson {}",
            gm.iterations.len(),
            rich.residuals.len()
        );
    }
}
