//! TT-GMRES — Algorithm 1 of the paper (Dolgov [8]).
//!
//! A full-orthogonalization GMRES over TT vectors in which every Krylov
//! vector is compressed by TT-Rounding with an adaptive tolerance
//! `δ = ε·β/r` (looser as the residual drops — the "inexact Krylov"
//! relaxation). The rounding algorithm is pluggable ([`RoundingMethod`]),
//! which is exactly the §V-D experiment: swapping QR-based rounding for
//! Gram-SVD rounding inside an otherwise identical solver.

use std::time::Instant;

use crate::operator::TtOperator;
use crate::precond::Preconditioner;
use tt_core::round::{round_gram_seq_dist_owned, round_gram_sim_dist_owned, round_qr_dist};
use tt_core::{GramOrder, RoundingOptions, TtTensor};
use tt_linalg::{householder_qr, solve_upper, Matrix};

/// Which TT-Rounding algorithm the solver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundingMethod {
    /// Orthogonalization-based rounding (Alg. 2) — the baseline.
    Qr,
    /// Gram-SVD sequence variant, RLR ordering (Alg. 6).
    GramRlr,
    /// Gram-SVD sequence variant, LRL ordering.
    GramLrl,
    /// Gram-SVD simultaneous variant (Alg. 5).
    GramSim,
}

impl RoundingMethod {
    /// Rounds `x` to relative accuracy `tol`.
    pub fn round(&self, x: &TtTensor, tol: f64) -> TtTensor {
        match self {
            // The Gram variants round in place on an owned train; cloning
            // here (instead of inside) keeps a single copy for both paths.
            RoundingMethod::Qr => {
                let comm = tt_comm::SelfComm::new();
                round_qr_dist(&comm, x, &RoundingOptions::with_tolerance(tol)).0
            }
            _ => self.round_owned(x.clone(), tol),
        }
    }

    /// By-value variant of [`RoundingMethod::round`]: the Gram variants
    /// consume `x` and round in place, skipping the full-train clone. Use
    /// this whenever the unrounded tensor is discarded afterwards (every
    /// solver inner loop).
    pub fn round_owned(&self, x: TtTensor, tol: f64) -> TtTensor {
        let comm = tt_comm::SelfComm::new();
        let opts = RoundingOptions::with_tolerance(tol);
        match self {
            RoundingMethod::Qr => round_qr_dist(&comm, &x, &opts).0,
            RoundingMethod::GramRlr => round_gram_seq_dist_owned(&comm, x, &opts, GramOrder::Rlr).0,
            RoundingMethod::GramLrl => round_gram_seq_dist_owned(&comm, x, &opts, GramOrder::Lrl).0,
            RoundingMethod::GramSim => round_gram_sim_dist_owned(&comm, x, &opts).0,
        }
    }

    /// Short display name (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            RoundingMethod::Qr => "QR",
            RoundingMethod::GramRlr => "Gram-RLR",
            RoundingMethod::GramLrl => "Gram-LRL",
            RoundingMethod::GramSim => "Gram-Sim",
        }
    }
}

/// How (and whether) to compute the true residual at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrueResidualMode {
    /// Skip (large problems).
    Off,
    /// Via TT arithmetic (fast; accuracy floored at `√ε·‖F‖` by
    /// inner-product cancellation).
    Tt,
    /// Via dense materialization (exact; tiny problems only).
    Dense,
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct GmresOptions {
    /// Relative residual tolerance ε (also enters the rounding tolerance).
    pub tolerance: f64,
    /// Maximum Krylov dimension `m` (no restarting, per Alg. 1).
    pub max_iters: usize,
    /// The TT-Rounding algorithm to use.
    pub rounding: RoundingMethod,
    /// How to compute the final true residual.
    pub true_residual: TrueResidualMode,
    /// Stop early if the computed residual improves by less than 0.1% over
    /// this many consecutive iterations (stagnation at the TT-arithmetic
    /// noise floor; 0 disables the guard).
    pub stagnation_window: usize,
    /// `Some(m)`: restarted GMRES(m) — bound the Krylov basis at `m`
    /// vectors, restarting from the explicit residual (`max_iters` then
    /// caps the *total* inner iterations). `None` (the default and Alg. 1's
    /// formulation): one full cycle.
    pub restart: Option<usize>,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            tolerance: 1e-5,
            max_iters: 50,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Tt,
            stagnation_window: 5,
            restart: None,
        }
    }
}

/// Per-iteration diagnostics (the data behind Figs. 5b and 6).
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 1-based iteration index `j`.
    pub iter: usize,
    /// Computed relative residual `r/β` after this iteration (from the
    /// small least-squares problem, line 11 of Alg. 1).
    pub relative_residual: f64,
    /// Maximum TT rank of the Krylov vector `V_{j+1}` built this iteration.
    pub max_rank: usize,
    /// Seconds spent inside TT-Rounding this iteration.
    pub rounding_seconds: f64,
    /// Total seconds for this iteration.
    pub total_seconds: f64,
}

/// Full solve diagnostics.
#[derive(Debug, Clone)]
pub struct GmresTrace {
    /// One record per iteration performed.
    pub iterations: Vec<IterationRecord>,
    /// Whether the computed residual met the tolerance.
    pub converged: bool,
    /// Final computed relative residual.
    pub computed_relative_residual: f64,
    /// Final true relative residual `‖F − G·u‖/‖F‖` (`NaN` when
    /// [`TrueResidualMode::Off`]).
    pub true_relative_residual: f64,
    /// Total seconds inside TT-Rounding.
    pub rounding_seconds: f64,
    /// Total solve seconds.
    pub total_seconds: f64,
    /// Maximum TT rank of the returned solution.
    pub solution_max_rank: usize,
}

impl GmresTrace {
    /// Largest Krylov-vector TT rank over the whole solve (paper Fig. 6,
    /// dashed lines).
    pub fn max_krylov_rank(&self) -> usize {
        self.iterations
            .iter()
            .map(|r| r.max_rank)
            .max()
            .unwrap_or(0)
    }
}

/// Right-preconditioned TT-GMRES: solves `G M⁻¹ w = F`, returns
/// `u = M⁻¹ w` (so residual norms are those of the original system).
///
/// Follows Alg. 1 line by line, with the Krylov basis kept in TT format and
/// every new basis vector rounded twice (after the operator application and
/// after orthogonalization) at the adaptive tolerance `δ = ε·β/r`.
pub fn tt_gmres(
    op: &dyn TtOperator,
    precond: &dyn Preconditioner,
    f: &TtTensor,
    opts: &GmresOptions,
) -> (TtTensor, GmresTrace) {
    if let Some(m) = opts.restart {
        return tt_gmres_restarted(op, precond, f, opts, m);
    }
    let t_start = Instant::now();
    let mut rounding_seconds = 0.0;

    let beta = f.norm();
    assert!(beta > 0.0, "zero right-hand side");
    let mut v1 = f.clone();
    v1.scale(1.0 / beta);
    let mut basis: Vec<TtTensor> = vec![v1];

    // H stored column-major as a growing dense matrix (m+1) × m.
    let m = opts.max_iters;
    let mut h = Matrix::zeros(m + 1, m);
    let mut r = beta;
    let mut iterations = Vec::new();
    let mut converged = false;
    let mut n_iters = 0;

    for j in 0..m {
        let t_iter = Instant::now();
        // Adaptive inexact-Krylov rounding tolerance (Alg. 1 line 4), capped
        // so late-iteration Krylov vectors retain enough accuracy to finish
        // the last fraction of the residual reduction.
        let delta = (opts.tolerance * beta / r).min(0.2);

        // Line 5: W = round(G M⁻¹ V_j, δ).
        let gv = op.apply(&precond.apply(&basis[j]));
        let t0 = Instant::now();
        let mut w = opts.rounding.round_owned(gv, delta);
        let mut round_iter = t0.elapsed().as_secs_f64();

        // Lines 6–9: Gram–Schmidt orthogonalization with rounding. Alg. 1
        // writes the classical form (one formal sum of j+1 tensors, one
        // rounding); practical TT-GMRES implementations (Dolgov [8],
        // TT-Toolbox) use *modified* Gram–Schmidt with rounding after each
        // subtraction — the formal rank stays at rank(W) + rank(V_i)
        // instead of growing linearly in j, and the coefficients are the
        // same in exact arithmetic. The per-subtraction tolerance is
        // δ/√(j+1): the j+1 rounding perturbations are uncorrelated, so
        // they accumulate in quadrature and the iteration's total stays
        // ~δ without over-tightening (which needlessly inflates the
        // Krylov ranks).
        let delta_orth = delta / ((j + 1) as f64).sqrt();
        for (i, vi) in basis.iter().enumerate() {
            let hij = w.inner(vi);
            h[(i, j)] = hij;
            // analyze::allow(float_cmp): skip-exact-zero fast path — any nonzero coefficient, however small, must still be applied and rounded
            if hij != 0.0 {
                let mut scaled = vi.clone();
                scaled.scale(-hij);
                let sum = w.add(&scaled);
                let t0 = Instant::now();
                w = opts.rounding.round_owned(sum, delta_orth);
                round_iter += t0.elapsed().as_secs_f64();
            }
        }

        // Line 10.
        let wnorm = w.norm();
        h[(j + 1, j)] = wnorm;

        // Line 11: small least-squares residual.
        r = ls_residual(&h, j + 1, beta);
        n_iters = j + 1;

        // Line 12.
        let max_rank = w.max_rank();
        if wnorm > 0.0 {
            w.scale(1.0 / wnorm);
        }
        basis.push(w);

        rounding_seconds += round_iter;
        iterations.push(IterationRecord {
            iter: j + 1,
            relative_residual: r / beta,
            max_rank,
            rounding_seconds: round_iter,
            total_seconds: t_iter.elapsed().as_secs_f64(),
        });

        // analyze::allow(float_cmp): happy-breakdown test — only an exactly zero norm means the Krylov space is exhausted; a tolerance here would stop early
        if r / beta <= opts.tolerance || wnorm == 0.0 {
            converged = true;
            break;
        }
        // Stagnation guard: TT inner products have a cancellation floor of
        // roughly √ε·‖F‖; once the residual stalls there, further iterations
        // only grow the Krylov ranks.
        if opts.stagnation_window > 0 && iterations.len() > opts.stagnation_window {
            let now = iterations[iterations.len() - 1].relative_residual;
            let then = iterations[iterations.len() - 1 - opts.stagnation_window].relative_residual;
            if now > 0.999 * then {
                break;
            }
        }
    }

    // Lines 14–15: assemble the solution from the minimizer.
    let y = ls_solve(&h, n_iters, beta);
    let mut w_sol: Option<TtTensor> = None;
    for (j, &yj) in y.iter().enumerate() {
        // analyze::allow(float_cmp): skip-exact-zero fast path — omitting an exactly zero term is lossless, any tolerance would change the solution
        if yj == 0.0 {
            continue;
        }
        let mut term = basis[j].clone();
        term.scale(yj);
        w_sol = Some(match w_sol {
            None => term,
            Some(acc) => acc.add(&term),
        });
    }
    let w_sol = w_sol.unwrap_or_else(|| {
        let mut z = f.clone();
        z.scale(0.0);
        z
    });
    let t0 = Instant::now();
    let w_sol = opts.rounding.round_owned(w_sol, opts.tolerance);
    rounding_seconds += t0.elapsed().as_secs_f64();
    // Undo the right preconditioning.
    let u = precond.apply(&w_sol);

    // True residual.
    let true_rel = match opts.true_residual {
        TrueResidualMode::Off => f64::NAN,
        TrueResidualMode::Tt => {
            let gu = op.apply(&u);
            f.sub(&gu).norm() / beta
        }
        TrueResidualMode::Dense => {
            let gu = op.apply(&u).to_dense();
            f.to_dense().fro_dist(&gu) / beta
        }
    };

    let trace = GmresTrace {
        converged,
        computed_relative_residual: r / beta,
        true_relative_residual: true_rel,
        rounding_seconds,
        total_seconds: t_start.elapsed().as_secs_f64(),
        solution_max_rank: u.max_rank(),
        iterations,
    };
    (u, trace)
}

/// Restarted GMRES(m): repeated single cycles from the explicit residual.
fn tt_gmres_restarted(
    op: &dyn TtOperator,
    precond: &dyn Preconditioner,
    f: &TtTensor,
    opts: &GmresOptions,
    m: usize,
) -> (TtTensor, GmresTrace) {
    assert!(m >= 1, "restart length must be positive");
    let t_start = Instant::now();
    let beta0 = f.norm();
    assert!(beta0 > 0.0, "zero right-hand side");

    let mut inner_opts = opts.clone();
    inner_opts.restart = None;
    inner_opts.true_residual = TrueResidualMode::Off;

    let mut u: Option<TtTensor> = None;
    let mut r = f.clone();
    let mut rel = 1.0;
    let mut iterations: Vec<IterationRecord> = Vec::new();
    let mut rounding_seconds = 0.0;
    let mut converged = false;

    while iterations.len() < opts.max_iters {
        inner_opts.max_iters = m.min(opts.max_iters - iterations.len());
        // Inner tolerance relative to the *current* residual so the cycle
        // targets the remaining reduction.
        inner_opts.tolerance = (opts.tolerance / rel).min(0.5);
        let (du, cycle) = tt_gmres(op, precond, &r, &inner_opts);
        rounding_seconds += cycle.rounding_seconds;
        // Record the cycle's iterations rescaled to the global residual.
        let offset = iterations.len();
        for it in &cycle.iterations {
            iterations.push(IterationRecord {
                iter: offset + it.iter,
                relative_residual: it.relative_residual * rel,
                max_rank: it.max_rank,
                rounding_seconds: it.rounding_seconds,
                total_seconds: it.total_seconds,
            });
        }
        // u += du, rounded at the outer tolerance.
        let new_u = match &u {
            None => du,
            Some(prev) => {
                let sum = prev.add(&du);
                let t0 = Instant::now();
                let rounded = opts.rounding.round_owned(sum, opts.tolerance);
                rounding_seconds += t0.elapsed().as_secs_f64();
                rounded
            }
        };
        // Explicit restart residual r = F − G u.
        let gu = op.apply(&new_u);
        let diff = f.sub(&gu);
        let t0 = Instant::now();
        r = opts
            .rounding
            .round_owned(diff, (opts.tolerance * 0.1).max(1e-14));
        rounding_seconds += t0.elapsed().as_secs_f64();
        u = Some(new_u);
        rel = r.norm() / beta0;
        if rel <= opts.tolerance {
            converged = true;
            break;
        }
        if cycle.iterations.is_empty() {
            break; // safety: no progress possible
        }
    }

    let u = u.unwrap_or_else(|| {
        let mut z = f.clone();
        z.scale(0.0);
        z
    });
    let true_rel = match opts.true_residual {
        TrueResidualMode::Off => f64::NAN,
        TrueResidualMode::Tt => {
            let gu = op.apply(&u);
            f.sub(&gu).norm() / beta0
        }
        TrueResidualMode::Dense => {
            let gu = op.apply(&u).to_dense();
            f.to_dense().fro_dist(&gu) / beta0
        }
    };
    let trace = GmresTrace {
        converged,
        computed_relative_residual: rel,
        true_relative_residual: true_rel,
        rounding_seconds,
        total_seconds: t_start.elapsed().as_secs_f64(),
        solution_max_rank: u.max_rank(),
        iterations,
    };
    (u, trace)
}

/// Residual of `min_y ‖H(1:j+1, 1:j) y − β e₁‖`.
pub(crate) fn ls_residual(h: &Matrix, j: usize, beta: f64) -> f64 {
    let (qt_rhs, _) = ls_qr(h, j, beta);
    qt_rhs[(j, 0)].abs()
}

/// Minimizer `y` of the small least-squares problem.
pub(crate) fn ls_solve(h: &Matrix, j: usize, beta: f64) -> Vec<f64> {
    let (mut qt_rhs, r) = ls_qr(h, j, beta);
    let mut rhs = Matrix::from_fn(j, 1, |i, _| qt_rhs[(i, 0)]);
    let r_sq = r.sub_matrix(0, 0, j, j);
    solve_upper(&r_sq, &mut rhs);
    qt_rhs = rhs;
    (0..j).map(|i| qt_rhs[(i, 0)]).collect()
}

/// QR of the leading `(j+1) × j` block of `H`, returning `(Qᵀ·βe₁, R)`.
fn ls_qr(h: &Matrix, j: usize, beta: f64) -> (Matrix, Matrix) {
    let hj = h.sub_matrix(0, 0, j + 1, j);
    let f = householder_qr(&hj);
    let mut rhs = Matrix::zeros(j + 1, 1);
    rhs[(0, 0)] = beta;
    f.apply_qt(&mut rhs);
    (rhs, f.r())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{KroneckerSumOperator, ModeFactor};
    use crate::precond::{IdentityPreconditioner, MeanPreconditioner};
    use rand::SeedableRng;
    use tt_sparse::{CooBuilder, CsrMatrix};

    fn tridiag(n: usize, diag: f64) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, diag);
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
                b.add(i + 1, i, -1.0);
            }
        }
        b.build()
    }

    /// A small SPD parametrized system:
    /// G = A ⊗ I + B ⊗ diag(ρ), both terms SPD-ish.
    fn small_system() -> (KroneckerSumOperator, TtTensor) {
        let n1 = 12;
        let n2 = 5;
        let mut op = KroneckerSumOperator::new();
        op.add_term(vec![
            ModeFactor::Sparse(tridiag(n1, 4.0)),
            ModeFactor::Identity,
        ]);
        op.add_term(vec![
            ModeFactor::Sparse(tridiag(n1, 2.5)),
            ModeFactor::Diagonal((0..n2).map(|i| 0.1 + 0.2 * i as f64).collect()),
        ]);
        // RHS: rank-one f ⊗ 1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut f = TtTensor::random(&[n1, n2], &[1], &mut rng);
        // make the second core all ones
        let ones = tt_linalg::Matrix::from_fn(n2, 1, |_, _| 1.0);
        f.set_core(1, tt_core::TtCore::from_v(ones, 1, n2, 1));
        (op, f)
    }

    fn check_solution(op: &KroneckerSumOperator, f: &TtTensor, u: &TtTensor, tol: f64) {
        let gu = crate::operator::TtOperator::apply(op, u);
        let res = f.to_dense().fro_dist(&gu.to_dense()) / f.norm();
        assert!(res <= tol * 10.0, "true residual {res} vs tol {tol}");
    }

    #[test]
    fn gmres_solves_small_system_all_roundings() {
        let (op, f) = small_system();
        for method in [
            RoundingMethod::Qr,
            RoundingMethod::GramRlr,
            RoundingMethod::GramLrl,
            RoundingMethod::GramSim,
        ] {
            let opts = GmresOptions {
                tolerance: 1e-6,
                max_iters: 60,
                rounding: method,
                true_residual: TrueResidualMode::Dense,
                stagnation_window: 5,
                restart: None,
            };
            let (u, trace) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
            assert!(trace.converged, "{method:?} did not converge: {trace:?}");
            // Inexact Krylov: the true residual trails the computed one by a
            // modest factor (the paper's own §V-D2 tables show 3.6x-40x).
            assert!(
                trace.true_relative_residual <= 5e-5,
                "{method:?}: true residual {}",
                trace.true_relative_residual
            );
            check_solution(&op, &f, &u, 5e-5);
        }
    }

    #[test]
    fn mean_preconditioner_accelerates() {
        let (op, f) = small_system();
        // Mean operator: A + mean(ρ)·B.
        let mean_rho: f64 = (0..5).map(|i| 0.1 + 0.2 * i as f64).sum::<f64>() / 5.0;
        let mean = tridiag(12, 4.0).add_scaled(mean_rho, &tridiag(12, 2.5));
        let pre = MeanPreconditioner::new(&mean);
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 60,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Dense,
            stagnation_window: 5,
            restart: None,
        };
        let (_, plain) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
        let (_, pred) = tt_gmres(&op, &pre, &f, &opts);
        assert!(pred.converged);
        assert!(
            pred.iterations.len() < plain.iterations.len(),
            "preconditioner should reduce iterations: {} vs {}",
            pred.iterations.len(),
            plain.iterations.len()
        );
        assert!(pred.true_relative_residual <= 1e-5);
    }

    #[test]
    fn exact_preconditioner_converges_in_one_iteration() {
        // Single-term operator G = A ⊗ I with M = A: GM⁻¹ = I.
        let n1 = 10;
        let a = tridiag(n1, 3.0);
        let mut op = KroneckerSumOperator::new();
        op.add_term(vec![ModeFactor::Sparse(a.clone()), ModeFactor::Identity]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let f = TtTensor::random(&[n1, 4], &[2], &mut rng);
        let pre = MeanPreconditioner::new(&a);
        let opts = GmresOptions {
            tolerance: 1e-8,
            max_iters: 10,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Dense,
            stagnation_window: 5,
            restart: None,
        };
        let (_, trace) = tt_gmres(&op, &pre, &f, &opts);
        assert!(trace.converged);
        assert!(
            trace.iterations.len() <= 2,
            "{} iterations",
            trace.iterations.len()
        );
        assert!(trace.true_relative_residual <= 1e-7);
    }

    #[test]
    fn residual_history_is_monotone_nonincreasing() {
        let (op, f) = small_system();
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 40,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Off,
            stagnation_window: 5,
            restart: None,
        };
        let (_, trace) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
        for w in trace.iterations.windows(2) {
            assert!(
                w[1].relative_residual <= w[0].relative_residual * (1.0 + 1e-8),
                "GMRES residual increased: {} -> {}",
                w[0].relative_residual,
                w[1].relative_residual
            );
        }
    }

    #[test]
    fn restarted_gmres_converges_with_bounded_basis() {
        let (op, f) = small_system();
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 80,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Dense,
            stagnation_window: 5,
            restart: Some(6),
        };
        let (_, trace) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
        assert!(
            trace.converged,
            "restarted GMRES failed: {:?}",
            trace.computed_relative_residual
        );
        assert!(trace.true_relative_residual < 1e-4);
        // Restart cost: typically more total iterations than full GMRES.
        let full = GmresOptions {
            restart: None,
            ..opts
        };
        let (_, full_trace) = tt_gmres(&op, &IdentityPreconditioner, &f, &full);
        assert!(trace.iterations.len() >= full_trace.iterations.len());
    }

    #[test]
    fn trace_records_ranks_and_times() {
        let (op, f) = small_system();
        let opts = GmresOptions {
            tolerance: 1e-4,
            max_iters: 30,
            rounding: RoundingMethod::Qr,
            true_residual: TrueResidualMode::Tt,
            stagnation_window: 5,
            restart: None,
        };
        let (u, trace) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
        assert!(!trace.iterations.is_empty());
        assert!(trace.iterations.iter().all(|r| r.max_rank >= 1));
        assert!(trace.rounding_seconds >= 0.0);
        assert!(trace.total_seconds >= trace.rounding_seconds);
        assert_eq!(trace.solution_max_rank, u.max_rank());
        assert!(trace.true_relative_residual.is_finite());
    }
}
