//! Low-operator-rank TT operators.
//!
//! The parametrized-PDE operators of §II-C have the Kronecker-sum form
//! `G = Σ_t  G_{t,1} ⊗ G_{t,2} ⊗ … ⊗ G_{t,N}` with a small number of terms
//! (the *operator rank*, `p+1` for the cookies problem) and structured
//! factors: one large sparse stiffness block on the spatial mode and
//! diagonal/identity factors on the parameter modes. Applying such an
//! operator to a TT vector multiplies every bond rank by the number of
//! terms — the rank growth that makes TT-Rounding the key operation of
//! TT-GMRES.

use tt_core::TtTensor;
use tt_linalg::Matrix;
use tt_sparse::CsrMatrix;

/// Anything that maps a TT vector to a TT vector.
pub trait TtOperator {
    /// Applies the operator (no rounding — ranks grow formally).
    fn apply(&self, x: &TtTensor) -> TtTensor;

    /// Factor by which bond ranks grow per application.
    fn rank_growth(&self) -> usize;
}

/// One factor of a Kronecker term, acting on a single physical mode.
#[derive(Debug, Clone)]
pub enum ModeFactor {
    /// The identity (skipped during application).
    Identity,
    /// A diagonal matrix (e.g. the parameter-sample values `ρ_i`).
    Diagonal(Vec<f64>),
    /// A general sparse matrix (e.g. a stiffness block).
    Sparse(CsrMatrix),
}

impl ModeFactor {
    /// Applies the factor to a mode-2 unfolding (`I × R₀R₁`).
    pub fn apply_unfold(&self, m: &Matrix) -> Matrix {
        match self {
            ModeFactor::Identity => m.clone(),
            ModeFactor::Diagonal(d) => {
                assert_eq!(d.len(), m.rows(), "diagonal factor dimension mismatch");
                let mut out = m.clone();
                for c in 0..out.cols() {
                    let col = out.col_mut(c);
                    for (i, x) in col.iter_mut().enumerate() {
                        *x *= d[i];
                    }
                }
                out
            }
            ModeFactor::Sparse(a) => a.mat_mul_dense(m),
        }
    }

    /// The mode dimension the factor expects (None for identity, which
    /// accepts anything).
    pub fn dim(&self) -> Option<usize> {
        match self {
            ModeFactor::Identity => None,
            ModeFactor::Diagonal(d) => Some(d.len()),
            ModeFactor::Sparse(a) => Some(a.cols()),
        }
    }
}

/// `G = Σ_t ⊗_k term[t][k]` — a sum of Kronecker products of mode factors.
#[derive(Debug, Clone, Default)]
pub struct KroneckerSumOperator {
    terms: Vec<Vec<ModeFactor>>,
}

impl KroneckerSumOperator {
    /// Creates an empty operator (use [`KroneckerSumOperator::add_term`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one Kronecker term (one factor per mode).
    pub fn add_term(&mut self, factors: Vec<ModeFactor>) {
        if let Some(first) = self.terms.first() {
            assert_eq!(
                first.len(),
                factors.len(),
                "terms must agree on the mode count"
            );
        }
        self.terms.push(factors);
    }

    /// Number of Kronecker terms (the operator rank).
    pub fn operator_rank(&self) -> usize {
        self.terms.len()
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.terms.first().map_or(0, |t| t.len())
    }

    /// The terms (for inspection / preconditioner construction).
    pub fn terms(&self) -> &[Vec<ModeFactor>] {
        &self.terms
    }

    /// Applies a single term to a TT vector.
    fn apply_term(&self, t: usize, x: &TtTensor) -> TtTensor {
        let mut y = x.clone();
        for (k, factor) in self.terms[t].iter().enumerate() {
            if matches!(factor, ModeFactor::Identity) {
                continue;
            }
            y.apply_mode(k, |m| factor.apply_unfold(m));
        }
        y
    }
}

impl TtOperator for KroneckerSumOperator {
    fn apply(&self, x: &TtTensor) -> TtTensor {
        assert!(!self.terms.is_empty(), "operator has no terms");
        assert_eq!(
            self.order(),
            x.order(),
            "operator/vector mode count mismatch"
        );
        let mut acc = self.apply_term(0, x);
        for t in 1..self.terms.len() {
            acc = acc.add(&self.apply_term(t, x));
        }
        acc
    }

    fn rank_growth(&self) -> usize {
        self.terms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_sparse::CooBuilder;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(seed)
    }

    fn tridiag(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
                b.add(i + 1, i, -1.0);
            }
        }
        b.build()
    }

    /// Dense application of a Kronecker-sum operator for verification.
    fn dense_apply(op: &KroneckerSumOperator, x: &tt_core::DenseTensor) -> tt_core::DenseTensor {
        let dims = x.dims().to_vec();
        let mut out = tt_core::DenseTensor::zeros(&dims);
        let mut idx = vec![0usize; dims.len()];
        // For every output entry, sum over terms and (sparse) input entries.
        // O(big) — tiny tests only. Build per-term dense factor matrices.
        for term in op.terms() {
            let mats: Vec<Matrix> = term
                .iter()
                .zip(&dims)
                .map(|(f, &d)| match f {
                    ModeFactor::Identity => Matrix::identity(d),
                    ModeFactor::Diagonal(v) => {
                        Matrix::from_fn(d, d, |i, j| if i == j { v[i] } else { 0.0 })
                    }
                    ModeFactor::Sparse(a) => a.to_dense(),
                })
                .collect();
            // y[i] += Σ_j Π_k M_k(i_k, j_k) x[j]
            let total: usize = dims.iter().product();
            for flat_out in 0..total {
                // decode
                let mut rem = flat_out;
                for (d, i) in idx.iter_mut().enumerate() {
                    *i = rem % dims[d];
                    rem /= dims[d];
                }
                let out_idx = idx.clone();
                let mut jdx = vec![0usize; dims.len()];
                let mut s = 0.0;
                for flat_in in 0..total {
                    let mut rem = flat_in;
                    for (d, j) in jdx.iter_mut().enumerate() {
                        *j = rem % dims[d];
                        rem /= dims[d];
                    }
                    let mut prod = 1.0;
                    for k in 0..dims.len() {
                        prod *= mats[k][(out_idx[k], jdx[k])];
                        if prod == 0.0 {
                            break;
                        }
                    }
                    if prod != 0.0 {
                        s += prod * x.at(&jdx);
                    }
                }
                *out.at_mut(&out_idx) += s;
            }
        }
        out
    }

    #[test]
    fn identity_operator_is_noop() {
        let mut r = rng(1);
        let x = TtTensor::random(&[3, 4, 2], &[2, 2], &mut r);
        let mut op = KroneckerSumOperator::new();
        op.add_term(vec![
            ModeFactor::Identity,
            ModeFactor::Identity,
            ModeFactor::Identity,
        ]);
        let y = op.apply(&x);
        assert!(y.to_dense().fro_dist(&x.to_dense()) < 1e-12);
    }

    #[test]
    fn kronecker_apply_matches_dense() {
        let mut r = rng(2);
        let x = TtTensor::random(&[4, 3, 3], &[2, 2], &mut r);
        let mut op = KroneckerSumOperator::new();
        op.add_term(vec![
            ModeFactor::Sparse(tridiag(4)),
            ModeFactor::Identity,
            ModeFactor::Identity,
        ]);
        op.add_term(vec![
            ModeFactor::Identity,
            ModeFactor::Diagonal(vec![1.0, 2.0, 3.0]),
            ModeFactor::Identity,
        ]);
        op.add_term(vec![
            ModeFactor::Sparse(tridiag(4)),
            ModeFactor::Identity,
            ModeFactor::Diagonal(vec![0.5, -1.0, 2.0]),
        ]);
        let y = op.apply(&x);
        assert_eq!(op.operator_rank(), 3);
        // Ranks multiply by the number of terms.
        assert_eq!(y.ranks(), vec![1, 6, 6, 1]);
        let expect = dense_apply(&op, &x.to_dense());
        assert!(
            y.to_dense().fro_dist(&expect) < 1e-10 * (1.0 + expect.fro_norm()),
            "dense mismatch"
        );
    }

    #[test]
    fn rank_growth_is_operator_rank() {
        let mut op = KroneckerSumOperator::new();
        op.add_term(vec![ModeFactor::Identity, ModeFactor::Identity]);
        op.add_term(vec![ModeFactor::Identity, ModeFactor::Identity]);
        assert_eq!(op.rank_growth(), 2);
    }
}
