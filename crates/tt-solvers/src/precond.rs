//! Preconditioners for TT-GMRES.
//!
//! The *mean preconditioner* of Kressner–Tobler [26] is the paper's choice
//! for the cookies problem: the operator-rank-one approximation
//! `M = Ḡ ⊗ I ⊗ … ⊗ I`, where `Ḡ` is the spatial operator evaluated at the
//! parameter means. Applying `M⁻¹` to a TT vector is a single direct solve
//! on the first core — it leaves TT ranks unchanged and costs one banded
//! backsolve per core column.

use tt_core::TtTensor;
use tt_sparse::{BandedCholesky, CsrMatrix};

/// Anything that applies an (approximate) inverse to a TT vector.
pub trait Preconditioner {
    /// Applies `M⁻¹` (must not grow TT ranks for the solver's rank
    /// accounting to stay meaningful).
    fn apply(&self, x: &TtTensor) -> TtTensor;
}

/// The do-nothing preconditioner.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, x: &TtTensor) -> TtTensor {
        x.clone()
    }
}

/// The rank-one mean preconditioner `(Ḡ ⊗ I ⊗ … ⊗ I)⁻¹`.
///
/// `Ḡ` must be SPD and banded (true for the FDM stiffness matrices of the
/// cookies problem); it is factored once with a banded Cholesky.
pub struct MeanPreconditioner {
    factor: BandedCholesky,
}

impl MeanPreconditioner {
    /// Factors the mean spatial operator.
    ///
    /// Panics if `mean_matrix` is not SPD (a stiffness matrix always is).
    pub fn new(mean_matrix: &CsrMatrix) -> Self {
        let Some(factor) = BandedCholesky::factor(mean_matrix) else {
            // analyze::allow(panic_surface): a stiffness matrix is SPD by construction; factorization failure means corrupted assembly, documented in the message
            panic!(
                "MeanPreconditioner::new: the mean matrix is not numerically \
                 SPD; a stiffness matrix always is, so the assembled operator \
                 is corrupted"
            )
        };
        MeanPreconditioner { factor }
    }

    /// The spatial dimension the preconditioner acts on.
    pub fn dim(&self) -> usize {
        self.factor.dim()
    }
}

impl Preconditioner for MeanPreconditioner {
    fn apply(&self, x: &TtTensor) -> TtTensor {
        let mut y = x.clone();
        y.apply_mode(0, |m| {
            let mut out = m.clone();
            self.factor.solve_dense_in_place(&mut out);
            out
        });
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tt_sparse::CooBuilder;

    fn tridiag(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
                b.add(i + 1, i, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn identity_preconditioner_is_noop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = TtTensor::random(&[4, 3], &[2], &mut rng);
        let y = IdentityPreconditioner.apply(&x);
        assert_eq!(x, y);
    }

    #[test]
    fn mean_preconditioner_inverts_mode_one_operator() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = TtTensor::random(&[6, 3, 4], &[2, 2], &mut rng);
        let a = tridiag(6);
        // Apply A on mode 0, then M^{-1} with M = A ⊗ I ⊗ I: round trip.
        let mut op = crate::operator::KroneckerSumOperator::new();
        op.add_term(vec![
            crate::operator::ModeFactor::Sparse(a.clone()),
            crate::operator::ModeFactor::Identity,
            crate::operator::ModeFactor::Identity,
        ]);
        let ax = crate::operator::TtOperator::apply(&op, &x);
        let pre = MeanPreconditioner::new(&a);
        let back = pre.apply(&ax);
        assert!(
            back.to_dense().fro_dist(&x.to_dense()) < 1e-9 * (1.0 + x.norm()),
            "M^{{-1}} A x != x"
        );
        // Ranks unchanged by the preconditioner.
        assert_eq!(back.ranks(), ax.ranks());
    }
}
