//! Distributed TT-GMRES — the paper's second stated future-work item
//! (§VI: "we plan to develop a scalable implementation of the TT-based
//! linear solver that can use our parallel TT-Rounding algorithms").
//!
//! Everything the Krylov loop needs already exists in distributed form:
//! rounding (`tt_core::round::*_dist`), inner products and norms
//! (`tt_core::dist`). This module adds the two missing pieces under the 1-D
//! slice distribution:
//!
//! * **operator application** ([`DistKroneckerOperator`]): identity and
//!   diagonal factors act slice-locally (the diagonal is pre-sliced to this
//!   rank's block); the mode-1 sparse stiffness factor couples slices, so
//!   the mode-1 core is allgathered (`I₁·R` words), multiplied, and the
//!   local block kept;
//! * **preconditioner application** ([`DistMeanPreconditioner`]): same
//!   allgather, redundant banded solve, keep the local block.
//!
//! The allgather-based mode-1 exchange is the simple-and-correct choice
//! (`β·I₁R` per application); a production implementation would exploit the
//! stiffness matrix's banded structure with halo exchanges (`β·bw·R`). The
//! communication structure of the *rounding* — the paper's subject — is
//! unaffected by this choice.

use crate::gmres::{GmresOptions, GmresTrace, IterationRecord, RoundingMethod, TrueResidualMode};
use crate::operator::{KroneckerSumOperator, ModeFactor};
use std::time::Instant;
use tt_comm::Communicator;
use tt_core::round::{round_gram_seq_dist, round_gram_sim_dist, round_qr_dist};
use tt_core::{block_range, GramOrder, RoundingOptions, TtTensor};
use tt_linalg::Matrix;
use tt_sparse::BandedCholesky;

/// A Kronecker-sum operator prepared for one rank of a 1-D-distributed run.
pub struct DistKroneckerOperator {
    /// Per-term, per-mode factors with diagonals pre-sliced to this rank's
    /// block and sparse factors kept global (they act on the gathered
    /// mode-1 core).
    terms: Vec<Vec<ModeFactor>>,
    global_dims: Vec<usize>,
}

impl DistKroneckerOperator {
    /// Prepares the distributed form of `op` for rank `rank` of `p`.
    pub fn new(op: &KroneckerSumOperator, global_dims: &[usize], p: usize, rank: usize) -> Self {
        let terms = op
            .terms()
            .iter()
            .map(|term| {
                term.iter()
                    .enumerate()
                    .map(|(k, f)| match f {
                        ModeFactor::Identity => ModeFactor::Identity,
                        ModeFactor::Diagonal(d) => {
                            let range = block_range(global_dims[k], p, rank);
                            ModeFactor::Diagonal(d[range].to_vec())
                        }
                        ModeFactor::Sparse(a) => {
                            assert_eq!(
                                k, 0,
                                "sparse factors are only supported on mode 1 \
                                 (the cookies structure)"
                            );
                            ModeFactor::Sparse(a.clone())
                        }
                    })
                    .collect()
            })
            .collect();
        DistKroneckerOperator {
            terms,
            global_dims: global_dims.to_vec(),
        }
    }

    /// Applies the operator to this rank's local block of a TT vector
    /// (formal rank growth, as in the sequential case).
    pub fn apply(&self, comm: &impl Communicator, x: &TtTensor) -> TtTensor {
        let mut acc: Option<TtTensor> = None;
        for term in &self.terms {
            let mut y = x.clone();
            for (k, factor) in term.iter().enumerate() {
                match factor {
                    ModeFactor::Identity => {}
                    ModeFactor::Diagonal(_) => {
                        // Slice-local (diagonal already restricted).
                        y.apply_mode(k, |m| factor.apply_unfold(m));
                    }
                    ModeFactor::Sparse(a) => {
                        debug_assert_eq!(k, 0);
                        y = apply_sparse_mode1(comm, &y, a, self.global_dims[0]);
                    }
                }
            }
            acc = Some(match acc {
                None => y,
                Some(prev) => prev.add(&y),
            });
        }
        match acc {
            Some(sum) => sum,
            // analyze::allow(panic_surface): construction invariant (an operator has ≥1 term); violation is a programming error at the build site, not runtime input
            None => panic!(
                "distributed operator application: the operator has no terms; \
                 construct it with at least one mode factor"
            ),
        }
    }
}

/// Applies a global sparse matrix to the distributed mode-1 core:
/// allgather the local vertical unfoldings (mode-1 core has `r0 = 1`, so
/// the local V is `I₁^loc × R`), multiply, keep the local row block.
fn apply_sparse_mode1(
    comm: &impl Communicator,
    x: &TtTensor,
    a: &tt_sparse::CsrMatrix,
    global_i1: usize,
) -> TtTensor {
    let core = x.core(0);
    assert_eq!(core.r0(), 1, "mode-1 core must have unit left rank");
    let r1 = core.r1();
    let p = comm.size();
    let rank = comm.rank();

    // Gather the full I₁ × R unfolding. Ranks own contiguous row blocks,
    // and allgather concatenates in rank order — but the data is
    // column-major per rank, so gather column-by-column to keep the
    // assembly simple and exact.
    let mut full = Matrix::zeros(global_i1, r1);
    for c in 0..r1 {
        let local_col: Vec<f64> = {
            let v = core.v();
            v.col(c).to_vec()
        };
        let gathered = comm.allgather(&local_col);
        assert_eq!(gathered.len(), global_i1, "allgather size mismatch");
        full.col_mut(c).copy_from_slice(&gathered);
    }
    let product = a.mat_mul_dense(&full);
    // Keep this rank's block.
    let range = block_range(global_i1, p, rank);
    let local = product.sub_matrix(range.start, 0, range.len(), r1);
    let mut y = x.clone();
    *y.core_mut(0) = tt_core::TtCore::from_v(local, 1, range.len(), r1);
    y
}

/// The mean preconditioner under the 1-D distribution: allgather the mode-1
/// core, solve with the banded Cholesky factor redundantly, keep the local
/// block.
pub struct DistMeanPreconditioner {
    factor: BandedCholesky,
    global_i1: usize,
}

impl DistMeanPreconditioner {
    /// Factors the (global) mean matrix; every rank holds the factor.
    pub fn new(mean_matrix: &tt_sparse::CsrMatrix) -> Self {
        let Some(factor) = BandedCholesky::factor(mean_matrix) else {
            // analyze::allow(panic_surface): a stiffness matrix is SPD by construction; factorization failure means corrupted assembly, documented in the message
            panic!(
                "DistMeanPreconditioner::new: the mean matrix is not \
                 numerically SPD; a stiffness matrix always is, so the \
                 assembled operator is corrupted"
            )
        };
        DistMeanPreconditioner {
            global_i1: factor.dim(),
            factor,
        }
    }

    /// Applies `M⁻¹` to the local block.
    pub fn apply(&self, comm: &impl Communicator, x: &TtTensor) -> TtTensor {
        let core = x.core(0);
        let r1 = core.r1();
        let p = comm.size();
        let rank = comm.rank();
        let mut full = Matrix::zeros(self.global_i1, r1);
        for c in 0..r1 {
            let local_col: Vec<f64> = core.v().col(c).to_vec();
            let gathered = comm.allgather(&local_col);
            full.col_mut(c).copy_from_slice(&gathered);
        }
        self.factor.solve_dense_in_place(&mut full);
        let range = block_range(self.global_i1, p, rank);
        let local = full.sub_matrix(range.start, 0, range.len(), r1);
        let mut y = x.clone();
        *y.core_mut(0) = tt_core::TtCore::from_v(local, 1, range.len(), r1);
        y
    }
}

fn round_dist(
    comm: &impl Communicator,
    method: RoundingMethod,
    x: &TtTensor,
    tol: f64,
) -> TtTensor {
    let opts = RoundingOptions::with_tolerance(tol);
    match method {
        RoundingMethod::Qr => round_qr_dist(comm, x, &opts).0,
        RoundingMethod::GramRlr => round_gram_seq_dist(comm, x, &opts, GramOrder::Rlr).0,
        RoundingMethod::GramLrl => round_gram_seq_dist(comm, x, &opts, GramOrder::Lrl).0,
        RoundingMethod::GramSim => round_gram_sim_dist(comm, x, &opts).0,
    }
}

/// Distributed right-preconditioned TT-GMRES over the 1-D slice
/// distribution: Algorithm 1 with every operation (operator, rounding,
/// inner products, norms) in its distributed form. Returns this rank's
/// local block of the solution; every rank computes identical traces.
pub fn dist_tt_gmres(
    comm: &impl Communicator,
    op: &DistKroneckerOperator,
    precond: &DistMeanPreconditioner,
    f_local: &TtTensor,
    opts: &GmresOptions,
) -> (TtTensor, GmresTrace) {
    let t_start = Instant::now();
    let mut rounding_seconds = 0.0;
    let inner = |a: &TtTensor, b: &TtTensor| tt_core::dist::inner_local(comm, a, b);
    let norm = |a: &TtTensor| tt_core::dist::norm_local(comm, a);

    let beta = norm(f_local);
    assert!(beta > 0.0, "zero right-hand side");
    let mut v1 = f_local.clone();
    v1.scale(1.0 / beta);
    let mut basis = vec![v1];

    let m = opts.max_iters;
    let mut h = Matrix::zeros(m + 1, m);
    let mut r = beta;
    let mut iterations = Vec::new();
    let mut converged = false;
    let mut n_iters = 0;

    for j in 0..m {
        let t_iter = Instant::now();
        let delta = (opts.tolerance * beta / r).min(0.2);
        let gv = op.apply(comm, &precond.apply(comm, &basis[j]));
        let t0 = Instant::now();
        let mut w = round_dist(comm, opts.rounding, &gv, delta);
        let mut round_iter = t0.elapsed().as_secs_f64();

        let delta_orth = delta / ((j + 1) as f64).sqrt();
        for (i, vi) in basis.iter().enumerate() {
            let hij = inner(&w, vi);
            h[(i, j)] = hij;
            // analyze::allow(float_cmp): skip-exact-zero fast path — any nonzero coefficient, however small, must still be applied and rounded
            if hij != 0.0 {
                let mut scaled = vi.clone();
                scaled.scale(-hij);
                let sum = w.add(&scaled);
                let t0 = Instant::now();
                w = round_dist(comm, opts.rounding, &sum, delta_orth);
                round_iter += t0.elapsed().as_secs_f64();
            }
        }
        let wnorm = norm(&w);
        h[(j + 1, j)] = wnorm;
        r = crate::gmres::ls_residual(&h, j + 1, beta);
        n_iters = j + 1;
        let max_rank = w.max_rank();
        if wnorm > 0.0 {
            w.scale(1.0 / wnorm);
        }
        basis.push(w);

        rounding_seconds += round_iter;
        iterations.push(IterationRecord {
            iter: j + 1,
            relative_residual: r / beta,
            max_rank,
            rounding_seconds: round_iter,
            total_seconds: t_iter.elapsed().as_secs_f64(),
        });
        // analyze::allow(float_cmp): happy-breakdown test — only an exactly zero norm means the Krylov space is exhausted; a tolerance here would stop early
        if r / beta <= opts.tolerance || wnorm == 0.0 {
            converged = true;
            break;
        }
        if opts.stagnation_window > 0 && iterations.len() > opts.stagnation_window {
            let now = iterations[iterations.len() - 1].relative_residual;
            let then = iterations[iterations.len() - 1 - opts.stagnation_window].relative_residual;
            if now > 0.999 * then {
                break;
            }
        }
    }

    let y = crate::gmres::ls_solve(&h, n_iters, beta);
    let mut w_sol: Option<TtTensor> = None;
    for (j, &yj) in y.iter().enumerate() {
        // analyze::allow(float_cmp): skip-exact-zero fast path — omitting an exactly zero term is lossless, any tolerance would change the solution
        if yj == 0.0 {
            continue;
        }
        let mut term = basis[j].clone();
        term.scale(yj);
        w_sol = Some(match w_sol {
            None => term,
            Some(acc) => acc.add(&term),
        });
    }
    let w_sol = w_sol.unwrap_or_else(|| {
        let mut z = f_local.clone();
        z.scale(0.0);
        z
    });
    let t0 = Instant::now();
    let w_sol = round_dist(comm, opts.rounding, &w_sol, opts.tolerance);
    rounding_seconds += t0.elapsed().as_secs_f64();
    let u = precond.apply(comm, &w_sol);

    let true_rel = match opts.true_residual {
        TrueResidualMode::Off => f64::NAN,
        _ => {
            let gu = op.apply(comm, &u);
            let diff = f_local.sub(&gu);
            norm(&diff) / beta
        }
    };
    let trace = GmresTrace {
        converged,
        computed_relative_residual: r / beta,
        true_relative_residual: true_rel,
        rounding_seconds,
        total_seconds: t_start.elapsed().as_secs_f64(),
        solution_max_rank: u.max_rank(),
        iterations,
    };
    (u, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::MeanPreconditioner;
    use crate::{tt_gmres, IdentityPreconditioner, Preconditioner, TtOperator};
    use tt_comm::SelfComm;
    use tt_core::{gather_tensor, scatter_tensor};
    use tt_sparse::{CooBuilder, CsrMatrix};

    fn tridiag(n: usize, diag: f64) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, diag);
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
                b.add(i + 1, i, -1.0);
            }
        }
        b.build()
    }

    fn system() -> (KroneckerSumOperator, TtTensor, CsrMatrix, Vec<usize>) {
        let n1 = 12;
        let n2 = 5;
        let rho: Vec<f64> = (0..n2).map(|i| 0.3 + 0.4 * i as f64).collect();
        let a = tridiag(n1, 4.0);
        let b = tridiag(n1, 2.0);
        let mut op = KroneckerSumOperator::new();
        op.add_term(vec![ModeFactor::Sparse(a.clone()), ModeFactor::Identity]);
        op.add_term(vec![
            ModeFactor::Sparse(b.clone()),
            ModeFactor::Diagonal(rho.clone()),
        ]);
        let mean_rho = rho.iter().sum::<f64>() / rho.len() as f64;
        let mean = a.add_scaled(mean_rho, &b);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let f = TtTensor::random(&[n1, n2], &[2], &mut rng);
        (op, f, mean, vec![n1, n2])
    }

    #[test]
    fn distributed_operator_matches_sequential() {
        let (op, f, _, dims) = system();
        let seq = op.apply(&f);
        for p in [1usize, 2, 3] {
            let (op2, f2, dims2) = (op.clone(), f.clone(), dims.clone());
            let gathered = tt_comm::run_verified(p, |comm| {
                let dop = DistKroneckerOperator::new(&op2, &dims2, p, comm.rank());
                let local = scatter_tensor(&f2, &comm);
                let y = dop.apply(&comm, &local);
                gather_tensor(&y, &dims2, &comm)
            });
            for g in gathered {
                let gap = g.to_dense().fro_dist(&seq.to_dense());
                assert!(gap < 1e-10 * (1.0 + seq.norm()), "p={p}: {gap}");
            }
        }
    }

    #[test]
    fn distributed_preconditioner_matches_sequential() {
        let (_, f, mean, dims) = system();
        let seq = MeanPreconditioner::new(&mean).apply(&f);
        for p in [2usize, 4] {
            let (f2, mean2, dims2) = (f.clone(), mean.clone(), dims.clone());
            let gathered = tt_comm::run_verified(p, |comm| {
                let pre = DistMeanPreconditioner::new(&mean2);
                let local = scatter_tensor(&f2, &comm);
                let y = pre.apply(&comm, &local);
                gather_tensor(&y, &dims2, &comm)
            });
            for g in gathered {
                let gap = g.to_dense().fro_dist(&seq.to_dense());
                assert!(gap < 1e-9 * (1.0 + seq.norm()), "p={p}: {gap}");
            }
        }
    }

    #[test]
    fn distributed_gmres_matches_sequential() {
        let (op, f, mean, dims) = system();
        let opts = GmresOptions {
            tolerance: 1e-7,
            max_iters: 40,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Tt,
            stagnation_window: 5,
            restart: None,
        };
        // Sequential reference (same algorithm through SelfComm).
        let comm = SelfComm::new();
        let dop = DistKroneckerOperator::new(&op, &dims, 1, 0);
        let pre = DistMeanPreconditioner::new(&mean);
        let (u_seq, tr_seq) = dist_tt_gmres(&comm, &dop, &pre, &f, &opts);
        assert!(tr_seq.converged);
        // ... which must agree with the plain sequential solver.
        let (u_plain, _) = tt_gmres(&op, &MeanPreconditioner::new(&mean), &f, &opts);
        let gap = u_seq.to_dense().fro_dist(&u_plain.to_dense());
        assert!(
            gap < 1e-5 * (1.0 + u_plain.norm()),
            "self-comm vs sequential: {gap}"
        );

        for p in [2usize, 3] {
            let (op2, f2, mean2, dims2, opts2) = (
                op.clone(),
                f.clone(),
                mean.clone(),
                dims.clone(),
                opts.clone(),
            );
            let results = tt_comm::run_verified(p, |comm| {
                let dop = DistKroneckerOperator::new(&op2, &dims2, p, comm.rank());
                let pre = DistMeanPreconditioner::new(&mean2);
                let local = scatter_tensor(&f2, &comm);
                let (u, tr) = dist_tt_gmres(&comm, &dop, &pre, &local, &opts2);
                (
                    gather_tensor(&u, &dims2, &comm),
                    tr.converged,
                    tr.iterations.len(),
                )
            });
            for (g, conv, iters) in results {
                assert!(conv, "p={p} did not converge");
                assert_eq!(iters, tr_seq.iterations.len(), "p={p}: iteration count");
                let gap = g.to_dense().fro_dist(&u_seq.to_dense());
                assert!(
                    gap < 1e-6 * (1.0 + u_seq.norm()),
                    "p={p}: solution gap {gap}"
                );
            }
        }
    }

    #[test]
    fn unpreconditioned_reference_still_solves() {
        // Sanity anchor: the plain sequential solver agrees with the
        // distributed one even without preconditioning quality at stake.
        let (op, f, _, _) = system();
        let opts = GmresOptions {
            tolerance: 1e-6,
            max_iters: 60,
            rounding: RoundingMethod::GramLrl,
            true_residual: TrueResidualMode::Dense,
            stagnation_window: 5,
            restart: None,
        };
        let (_, tr) = tt_gmres(&op, &IdentityPreconditioner, &f, &opts);
        assert!(tr.converged);
    }
}
