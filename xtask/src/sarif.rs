//! SARIF 2.1.0 output for `cargo xtask analyze --format sarif`.
//!
//! GitHub code scanning ingests SARIF, so the CI lint job uploads this
//! rendering of the analysis report and findings annotate the PR diff at
//! the exact file/line — the reviewer sees "collective `broadcast` inside a
//! rank-dependent conditional" on the line that introduced it, without
//! opening the job log.
//!
//! The writer is hand-rolled JSON over the same escaping helper as the
//! `--format json` report (no serde in-tree) and emits the minimal
//! conforming document: one run, the tool driver with one reporting rule
//! per registered pass (per-file and interprocedural), one `result` per
//! unsuppressed diagnostic, and suppression errors / unused suppressions as
//! tool-execution notifications so they surface in the code-scanning UI
//! rather than vanishing.

use std::fmt::Write as _;

use crate::analyze::{json_str, Report};
use crate::passes::{all_graph_passes, all_passes};

/// Schema the document declares (code scanning validates against it).
const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders `report` as one SARIF 2.1.0 document.
pub fn report_to_sarif(report: &Report, check_suppressions: bool) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"$schema\":{},\"version\":\"2.1.0\",\"runs\":[{{",
        json_str(SARIF_SCHEMA)
    );

    // Tool driver + rule metadata (one rule per pass, stable order).
    s.push_str("\"tool\":{\"driver\":{\"name\":\"xtask-analyze\",");
    s.push_str("\"informationUri\":\"DESIGN.md\",\"rules\":[");
    let mut first = true;
    for (name, desc) in rule_table() {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            json_str(name),
            json_str(desc)
        );
    }
    s.push_str("]}},");

    // One result per unsuppressed diagnostic.
    s.push_str("\"results\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            json_str(d.pass),
            json_str(&d.message),
            json_str(&d.file),
            d.line.max(1)
        );
    }
    s.push_str("],");

    // Suppression problems travel as invocation notifications: they are
    // run-level defects (annotations, not code lines the diff UI can pin).
    let mut notes: Vec<String> = report.errors.clone();
    if check_suppressions {
        notes.extend(
            report
                .unused
                .iter()
                .map(|u| format!("{u}: suppression matches no diagnostic — remove it")),
        );
    }
    let _ = write!(
        s,
        "\"invocations\":[{{\"executionSuccessful\":{},\"toolExecutionNotifications\":[",
        report.is_clean(check_suppressions)
    );
    for (i, e) in notes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"level\":\"error\",\"message\":{{\"text\":{}}}}}",
            json_str(e)
        );
    }
    s.push_str("]}]}]}");
    s
}

/// `(id, description)` for every registered pass.
fn rule_table() -> Vec<(&'static str, &'static str)> {
    let mut out: Vec<(&'static str, &'static str)> = all_passes()
        .iter()
        .map(|p| (p.name(), p.description()))
        .collect();
    out.extend(
        all_graph_passes()
            .iter()
            .map(|p| (p.name(), p.description())),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::Diagnostic;

    fn sample_report() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                pass: "collective_order",
                file: "crates/tt-core/src/round/gram.rs".to_string(),
                line: 42,
                message: "call to `helper` with \"quotes\"".to_string(),
            }],
            suppressed: 1,
            errors: vec!["x.rs:1: malformed suppression".to_string()],
            unused: vec!["y.rs:2: analyze::allow(determinism)".to_string()],
            unused_sites: vec![crate::analyze::UnusedSite {
                file: "y.rs".to_string(),
                comment_line: 2,
                pass: "determinism".to_string(),
            }],
            files: 3,
        }
    }

    #[test]
    fn sarif_document_has_required_shape() {
        let s = report_to_sarif(&sample_report(), true);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"xtask-analyze\""));
        assert!(s.contains("\"ruleId\":\"collective_order\""));
        assert!(s.contains("\"startLine\":42"));
        assert!(s.contains("\"uri\":\"crates/tt-core/src/round/gram.rs\""));
        assert!(s.contains("\"executionSuccessful\":false"));
        // Both notification channels present.
        assert!(s.contains("malformed suppression"));
        assert!(s.contains("matches no diagnostic"));
    }

    #[test]
    fn every_pass_has_a_rule_entry() {
        let s = report_to_sarif(&Report::default(), true);
        for name in crate::passes::all_pass_names() {
            assert!(
                s.contains(&format!("\"id\":\"{name}\"")),
                "missing rule for pass {name}"
            );
        }
    }

    #[test]
    fn clean_report_is_successful_and_valid() {
        let s = report_to_sarif(&Report::default(), true);
        assert!(s.contains("\"executionSuccessful\":true"));
        assert!(s.contains("\"results\":[]"));
        assert!(s.ends_with("]}"));
    }
}
