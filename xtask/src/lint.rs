//! `cargo xtask lint` — the repo's fast static gate (DESIGN.md §7):
//!
//! 1. `cargo fmt --all -- --check` — formatting drift fails the build;
//! 2. `cargo clippy --workspace --all-targets` with a curated deny-list;
//! 3. a custom source lint forbidding `.unwrap()` / `.expect(` in non-test
//!    library code, built on the shared [`crate::scanner`] (so multi-line
//!    `/* */` comments and raw strings are classified correctly, which the
//!    original per-line sanitizer got wrong);
//! 4. an audit that every crate root opts into `#![forbid(unsafe_code)]`.
//!
//! The deeper SPMD/numeric heuristics live in `cargo xtask analyze`
//! ([`crate::analyze`]); `lint` stays the quick always-on gate.

use std::path::Path;
use std::process::{Command, ExitCode};

use crate::passes::is_unwrap_call;
use crate::scanner::CodeModel;
use crate::{collect_rs_files, crate_roots, LIBRARY_SRC_ROOTS};

/// Clippy lints promoted to errors. Curated rather than `-D warnings` so a
/// new toolchain's fresh lints do not brick the gate; extend deliberately.
const CLIPPY_DENY: &[&str] = &[
    "warnings",
    "clippy::dbg_macro",
    "clippy::todo",
    "clippy::unimplemented",
    "clippy::print_stdout",
];

/// CLI entry point for `cargo xtask lint`.
pub fn lint(repo: &Path) -> ExitCode {
    let mut failures: Vec<String> = Vec::new();

    run_step(
        &mut failures,
        "rustfmt",
        Command::new("cargo").args(["fmt", "--all", "--", "--check"]),
    );

    let mut clippy = Command::new("cargo");
    clippy.args(["clippy", "--workspace", "--all-targets", "--quiet", "--"]);
    for lint in CLIPPY_DENY {
        clippy.arg("-D").arg(lint);
    }
    // Targets whose job is user-facing stdout (tt-bench bins, examples, the
    // criterion shim) carry `#![allow(clippy::print_stdout)]` inline; the
    // deny stays meaningful for every library crate.
    run_step(&mut failures, "clippy", &mut clippy);

    match unwrap_lint(repo) {
        Ok(0) => eprintln!("lint: unwrap/expect source lint .......... ok"),
        Ok(n) => failures.push(format!(
            "{n} unwrap()/expect() uses in non-test library code"
        )),
        Err(e) => failures.push(format!("unwrap/expect lint could not run: {e}")),
    }

    match unsafe_audit(repo) {
        Ok(()) => eprintln!("lint: forbid(unsafe_code) audit ......... ok"),
        Err(missing) => failures.push(format!(
            "crate roots missing #![forbid(unsafe_code)]: {}",
            missing.join(", ")
        )),
    }

    if failures.is_empty() {
        eprintln!("lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("lint FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}

fn run_step(failures: &mut Vec<String>, name: &str, cmd: &mut Command) {
    match cmd.status() {
        Ok(status) if status.success() => {
            eprintln!(
                "lint: {name} {} ok",
                ".".repeat(38usize.saturating_sub(name.len()))
            );
        }
        Ok(status) => failures.push(format!("{name} failed with {status}")),
        Err(e) => failures.push(format!("{name} could not run: {e}")),
    }
}

/// Scans non-test library sources for `.unwrap()` / `.expect(` via the
/// shared token scanner. Returns the violation count.
fn unwrap_lint(repo: &Path) -> Result<usize, std::io::Error> {
    let mut files = Vec::new();
    for root in LIBRARY_SRC_ROOTS {
        collect_rs_files(&repo.join(root), &mut files)?;
    }
    files.sort();
    let mut violations = 0usize;
    for file in files {
        let text = std::fs::read_to_string(&file)?;
        for line in unwrap_findings(&text) {
            violations += 1;
            eprintln!(
                "lint: {}:{}: unwrap()/expect() in non-test library code",
                file.strip_prefix(repo).unwrap_or(&file).display(),
                line,
            );
        }
    }
    Ok(violations)
}

/// Lines (1-based) of `.unwrap()` / `.expect(` calls outside `#[cfg(test)]`
/// regions.
pub fn unwrap_findings(src: &str) -> Vec<usize> {
    let model = CodeModel::build(src);
    let mut out = Vec::new();
    for i in 0..model.tokens.len() {
        if model.in_test[i] {
            continue;
        }
        if is_unwrap_call(&model, i) {
            out.push(model.tokens[i].line);
        }
    }
    out
}

fn unsafe_audit(repo: &Path) -> Result<(), Vec<String>> {
    let mut missing = Vec::new();
    for root in crate_roots(repo) {
        let ok = std::fs::read_to_string(&root)
            .map(|text| text.contains("#![forbid(unsafe_code)]"))
            .unwrap_or(false);
        if !ok {
            missing.push(
                root.strip_prefix(repo)
                    .unwrap_or(&root)
                    .display()
                    .to_string(),
            );
        }
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_library_code_and_skips_tests() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() { z.expect(\"m\"); }\n";
        assert_eq!(unwrap_findings(src), vec![1, 6]);
    }

    #[test]
    fn multi_line_block_comments_do_not_fire() {
        // The old per-line sanitizer only understood `//`: a block comment
        // spanning lines left `.unwrap()` visible and tripped the lint.
        let src = "/* a block comment\n   mentioning x.unwrap() inside\n */\nfn a() {}\n";
        assert_eq!(unwrap_findings(src), Vec::<usize>::new());
    }

    #[test]
    fn raw_strings_do_not_fire() {
        // Likewise `r#"..."#` bodies (the old sanitizer had no raw-string
        // handling at all).
        let src = "fn a() -> &'static str {\n    r#\"say .unwrap() with \"quotes\"\"#\n}\n";
        assert_eq!(unwrap_findings(src), Vec::<usize>::new());
    }

    #[test]
    fn multi_line_string_then_code_still_fires() {
        let src =
            "const S: &str = \"line one\n.unwrap() in a string\n\";\nfn a() { q.unwrap(); }\n";
        assert_eq!(unwrap_findings(src), vec![4]);
    }
}
